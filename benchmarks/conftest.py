"""Benchmark-suite helpers: run a figure once, record, and persist."""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _jsonable(obj):
    """Best-effort conversion of figure rows/notes to JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalars
        return obj.item()
    return str(obj)


def write_bench_json(result) -> pathlib.Path:
    """Persist a FigureResult as a machine-readable ``BENCH_*.json``
    record (uploaded as a CI artifact and diffed against the checked-in
    baseline by ``check_regression.py``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"BENCH_{result.figure}.json"
    record = {
        "figure": result.figure,
        "description": result.description,
        "rows": _jsonable(result.rows),
        "notes": _jsonable(result.notes),
    }
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out


def run_figure(benchmark, runner, **kwargs):
    """Benchmark one figure runner (single round: these are experiment
    harnesses, not micro-benchmarks) and persist its table + JSON record."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{result.figure}.txt"
    notes = "\n".join(
        f"  {k}: {v}" for k, v in result.notes.items() if k != "reductions"
    )
    out.write_text(f"{result.table}\n\nnotes:\n{notes}\n")
    write_bench_json(result)
    print(f"\n{result.table}\nnotes:\n{notes}")
    return result


@pytest.fixture(autouse=True)
def _shared_measurement_cache():
    """Benchmarks share the harness measurement cache within a session
    (figures legitimately reuse grid points, as in the paper)."""
    yield
