"""Tests for functional collectives: dense vs two-phase irregular A2A."""

import numpy as np
import pytest

from repro.moe import dispatch, route_switch
from repro.moe.layer import softmax
from repro.runtime import (
    all_to_all_dense,
    all_to_all_irregular,
    allreduce_sum,
)
from repro.runtime.collectives import allreduce_mean


def routed_buffers(g=2, el=2, c=6, h=4, t=16, seed=0):
    """Per-device dispatch buffers with realistic routing + their counts."""
    rng = np.random.default_rng(seed)
    e = g * el
    bufs, counts = [], np.zeros((g, e), dtype=np.int64)
    for d in range(g):
        probs = softmax(rng.standard_normal((t, e)))
        info, _ = route_switch(probs, capacity=c)
        x = rng.standard_normal((t, h))
        bufs.append(dispatch(x, info))
        counts[d] = info.expert_counts()
    return bufs, counts


class TestIrregularAllToAll:
    @pytest.mark.parametrize("direction", ["scatter", "gather"])
    def test_matches_dense_on_padded_buffers(self, direction):
        bufs, counts = routed_buffers()
        if direction == "gather":
            # gather operates on expert-side buffers; produce them first
            bufs = all_to_all_dense(bufs, "scatter")
        dense = all_to_all_dense(bufs, direction)
        irr, _ = all_to_all_irregular(bufs, counts, direction)
        for a, b in zip(dense, irr):
            assert np.array_equal(a, b)

    def test_pair_bytes_accounting(self):
        bufs, counts = routed_buffers(g=2, el=2, c=6, h=4)
        _, pair = all_to_all_irregular(bufs, counts, "scatter")
        row_bytes = 4 * bufs[0].dtype.itemsize
        # bytes from device 0 to device 1 = tokens for experts 2,3
        expected = (counts[0, 2] + counts[0, 3]) * row_bytes
        assert pair[0, 1] == expected

    def test_gather_pair_bytes_transposed(self):
        bufs, counts = routed_buffers()
        fwd = all_to_all_dense(bufs, "scatter")
        _, p_scatter = all_to_all_irregular(bufs, counts, "scatter")
        _, p_gather = all_to_all_irregular(fwd, counts, "gather")
        assert np.array_equal(p_gather, p_scatter.T)

    def test_counts_exceeding_capacity_rejected(self):
        bufs, counts = routed_buffers(c=4)
        counts[0, 0] = 99
        with pytest.raises(ValueError):
            all_to_all_irregular(bufs, counts, "scatter")

    def test_roundtrip_scatter_gather(self):
        bufs, counts = routed_buffers()
        mid, _ = all_to_all_irregular(bufs, counts, "scatter")
        back, _ = all_to_all_irregular(mid, counts, "gather")
        for a, b in zip(bufs, back):
            assert np.array_equal(a, b)

    def test_unknown_direction(self):
        bufs, counts = routed_buffers()
        with pytest.raises(ValueError):
            all_to_all_irregular(bufs, counts, "sideways")


class TestAllReduce:
    def test_sum(self, rng):
        arrays = [rng.standard_normal((3, 3)) for _ in range(4)]
        outs = allreduce_sum(arrays)
        for o in outs:
            assert np.allclose(o, sum(arrays))

    def test_mean(self, rng):
        arrays = [rng.standard_normal((3, 3)) for _ in range(4)]
        outs = allreduce_mean(arrays)
        for o in outs:
            assert np.allclose(o, sum(arrays) / 4)

    def test_inputs_not_mutated(self, rng):
        arrays = [rng.standard_normal(3) for _ in range(2)]
        copies = [a.copy() for a in arrays]
        allreduce_sum(arrays)
        for a, c in zip(arrays, copies):
            assert np.array_equal(a, c)
