"""Planner latency: cold plan vs warm re-plan (extension of Fig. 15).

Acceptance gates of the fast re-planning subsystem:

- on the reference GPT2-S-MoE config (12 layers, 16 GPUs), a warm
  re-plan after a routing-signature change is >= 5x faster than a cold
  ``LancetOptimizer.optimize``;
- for every benchmarked config the fast planner's plans and predicted
  iteration times are bit-identical to the reference (naive) DP's, both
  cold and warm;
- the DP's logical cost-evaluation count matches the reference exactly
  (caching may skip work, never search less).
"""

from conftest import run_figure
from repro.bench.figures import opt_time


def test_opt_time(benchmark):
    result = run_figure(benchmark, opt_time.run)

    # bit-identity everywhere: cold DP vs reference, warm plan vs a
    # fresh cold optimizer handed the same signatures
    assert result.notes["all_bit_identical"]
    assert result.notes["all_evals_equal_reference"]

    # the headline acceptance number: warm re-plan >= 5x faster than a
    # cold plan on the reference config
    assert result.notes["reference_speedup"] >= 5.0

    # every grid point must re-plan substantially faster than cold (a
    # loose floor: wall-clock on shared CI runners is noisy, and the
    # deterministic eval/sim counts above gate the algorithmic property)
    for row in result.rows:
        assert row["speedup"] >= 2.5, row
        # warm re-plans stay in the paper's optimization-time regime
        assert row["warm_replan_ms"] < 5_000.0
