"""Numeric interpreter: runs an IR program with real numpy tensors on
``G`` simulated devices.

Used at small scale to verify that Lancet's graph transformations are
mathematically equivalent: an optimized program must produce bit-identical
losses, gradients and updated parameters to the original.

Communication ops synchronize across the per-device environments (the
interpreter plays the role of NCCL); everything else is a per-device
kernel from :mod:`repro.numerics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import Program
from ..numerics.kernels import FORWARD_KERNELS
from . import collectives

# importing grads registers the backward kernels in FORWARD_KERNELS
from ..numerics import grads as _grads  # noqa: F401


@dataclass
class DeviceEnv:
    """Value store of one simulated device."""

    index: int
    values: dict[int, object] = field(default_factory=dict)

    def __getitem__(self, vid: int):
        return self.values[vid]

    def __setitem__(self, vid: int, val) -> None:
        self.values[vid] = val


class NumericExecutor:
    """Interprets a program across simulated devices.

    Parameters
    ----------
    program:
        The IR to execute (any schedule -- original or Lancet-optimized).
    num_devices:
        Number of SPMD devices; must match the graph's expert sharding.
    """

    def __init__(self, program: Program, num_devices: int) -> None:
        self.program = program
        self.g = num_devices

    def run(self, envs: list[DeviceEnv]) -> list[DeviceEnv]:
        """Execute all instructions; returns the (mutated) environments."""
        if len(envs) != self.g:
            raise ValueError(f"expected {self.g} envs, got {len(envs)}")
        p = self.program
        for instr in p.instructions:
            if instr.op == "all_to_all":
                bufs = [env[instr.inputs[0]] for env in envs]
                outs = collectives.all_to_all_dense(
                    bufs, instr.attrs["direction"]
                )
                for env, out in zip(envs, outs):
                    env[instr.outputs[0]] = out
            elif instr.op == "allreduce":
                arrays = [env[instr.inputs[0]] for env in envs]
                if instr.attrs.get("reduce", "mean") == "mean":
                    outs = collectives.allreduce_mean(arrays)
                else:
                    outs = collectives.allreduce_sum(arrays)
                for env, out in zip(envs, outs):
                    env[instr.outputs[0]] = out
            else:
                fn = FORWARD_KERNELS.get(instr.op)
                if fn is None:
                    raise NotImplementedError(f"no kernel for op {instr.op!r}")
                for env in envs:
                    attrs = instr.attrs
                    if instr.op in ("routing", "routing_partial"):
                        # per-device RNG stream for stochastic gates
                        attrs = {**attrs, "seed": attrs.get("seed", 0) + env.index}
                    ins = [env[v] for v in instr.inputs]
                    outs = fn(ins, attrs)
                    for vid, val in zip(instr.outputs, outs):
                        env[vid] = val
        return envs

    def make_envs(
        self, per_device_values: list[dict[int, object]]
    ) -> list[DeviceEnv]:
        """Wrap raw value dicts (inputs + params + states) into envs."""
        return [
            DeviceEnv(index=i, values=dict(vals))
            for i, vals in enumerate(per_device_values)
        ]


def run_program(
    program: Program,
    per_device_values: list[dict[int, object]],
) -> list[DeviceEnv]:
    """One-shot convenience wrapper around :class:`NumericExecutor`."""
    ex = NumericExecutor(program, len(per_device_values))
    return ex.run(ex.make_envs(per_device_values))
