"""Communication cost model (paper Sec. 3).

Built by profiling collectives at geometrically spaced sizes (1 KB, 2 KB,
4 KB, ... up to the largest buffer the model communicates) and linearly
interpolating between the sampled points.

Irregular all-to-alls have runtime-dependent sizes unknown at compile
time; the paper uses a *static-shape approximation*: the cost of an
n-way-partitioned all-to-all with original capacity ``C`` is the profiled
(uniform) cost at capacity ``C / n``.  :meth:`CommCostModel.a2a_partitioned_ms`
implements exactly that, which is where the (small) prediction error of
Fig. 14 comes from.

Beyond the paper, :meth:`CommCostModel.a2a_skewed_ms` conditions the
estimate on a realized routing distribution: given a per-device load
vector (:class:`~repro.runtime.routing_model.RoutingSignature`, derived
from observed dispatch counts), the collective is priced at the
*bottleneck* device's bytes instead of the uniform mean.  With a
balanced signature this reduces to the legacy static-shape estimate
bit-for-bit, so skew-awareness is strictly opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import Instruction, Program
from ..runtime.cluster import ClusterSpec
from ..runtime.routing_model import RoutingSignature
from .cache import LRUCache
from .profiler import CachingOpProfiler

#: default bound of the signature-keyed all-to-all prediction cache.
#: Long runs with many distinct routing signatures otherwise grow it
#: without limit; 4096 entries comfortably cover every (bytes, parts)
#: pair of a large model times dozens of live signatures.
DEFAULT_A2A_CACHE_SIZE = 4096


@dataclass
class CommCostModel:
    """Piecewise-linear interpolated collective cost model."""

    cluster: ClusterSpec
    min_bytes: float = 1024.0
    max_bytes: float = 2.0**31  # 2 GB upper anchor
    _a2a_pts: tuple = field(default=None, repr=False)  # type: ignore[assignment]
    _ar_pts: tuple = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        sizes = [self.min_bytes]
        while sizes[-1] < self.max_bytes:
            sizes.append(sizes[-1] * 2)
        sizes = np.asarray(sizes)
        a2a = np.asarray([self.cluster.a2a_time_ms(s) for s in sizes])
        ar = np.asarray([self.cluster.allreduce_time_ms(s) for s in sizes])
        self._a2a_pts = (sizes, a2a)
        self._ar_pts = (sizes, ar)

    @staticmethod
    def _interp(pts: tuple, nbytes: float) -> float:
        sizes, times = pts
        if nbytes > sizes[-1]:
            # beyond the profiled range: extrapolate with the bandwidth
            # (slope) of the last profiled segment instead of clamping,
            # so multi-GB buffers are not priced as if they were 2 GB
            slope = (times[-1] - times[-2]) / (sizes[-1] - sizes[-2])
            return float(times[-1] + (nbytes - sizes[-1]) * slope)
        # below min_bytes np.interp clamps to the smallest sample, which
        # is the latency floor -- the right model for tiny buffers
        return float(np.interp(nbytes, sizes, times))

    def a2a_ms(self, nbytes: float) -> float:
        """Predicted uniform all-to-all time for a per-device buffer size."""
        return self._interp(self._a2a_pts, nbytes)

    def a2a_partitioned_ms(self, full_nbytes: float, parts: int) -> float:
        """Static-shape approximation for one chunk of an n-way partitioned
        (irregular) all-to-all: the uniform cost at capacity ``C / n``."""
        if parts < 1:
            raise ValueError("parts must be >= 1")
        return self.a2a_ms(full_nbytes / parts)

    def a2a_skewed_ms(
        self,
        full_nbytes: float,
        parts: int = 1,
        signature: RoutingSignature | None = None,
    ) -> float:
        """Routing-conditioned estimate of one (chunk of an) irregular
        all-to-all: the collective completes with its bottleneck device,
        so it is priced at that device's *realized* bytes,
        ``signature.mean_send_bytes * signature.bottleneck`` (falling
        back to the static ``full_nbytes`` scale when the signature
        carries no absolute volume).  Capacity clipping makes realized
        traffic differ from the padded size in both directions, which is
        exactly the error the uniform static-shape approximation makes.

        With ``signature=None`` or a balanced signature this is exactly
        :meth:`a2a_partitioned_ms` (same float ops, bit-for-bit).
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if signature is None or signature.bottleneck == 1.0:
            return self.a2a_ms(full_nbytes / parts)
        base = (
            signature.mean_send_bytes
            if signature.mean_send_bytes > 0
            else full_nbytes
        )
        return self.a2a_ms(base * signature.bottleneck / parts)

    def allreduce_ms(self, nbytes: float) -> float:
        """Predicted all-reduce time for a gradient bucket."""
        return self._interp(self._ar_pts, nbytes)


@dataclass
class CostEstimator:
    """Lancet's internal per-instruction cost oracle.

    Combines the caching op profiler (compute ops) and the communication
    cost model (collectives).  This is the cost the optimization passes
    *plan* with; the ground-truth simulator may disagree (irregular
    realized sizes, load imbalance), which is what the Fig. 14 accuracy
    experiment quantifies.

    When per-layer :class:`RoutingSignature` observations are installed
    via :meth:`set_signatures`, every irregular all-to-all estimate is
    conditioned on its layer's realized load distribution, which is what
    makes the dW-schedule pass and the partition DP optimize for the
    actual routing rather than the uniform approximation.
    """

    profiler: CachingOpProfiler
    comm: CommCostModel
    #: per-MoE-layer routing observations (layer key -> signature); the
    #: ``None`` key acts as the default for layers without their own entry
    signatures: dict | None = None
    #: LRU cap of the all-to-all prediction cache (``None`` = unbounded)
    a2a_cache_size: int | None = DEFAULT_A2A_CACHE_SIZE
    #: memoized all-to-all predictions.  Keyed by (bytes, parts,
    #: signature key) -- the signature component guarantees entries
    #: cached under uniform routing are never reused once the estimator
    #: is re-targeted at a skewed realization (and vice versa).  Bounded:
    #: every distinct signature mints fresh keys, so an unbounded dict
    #: would leak across a long re-optimizing run.
    _a2a_cache: LRUCache = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._a2a_cache is None:
            self._a2a_cache = LRUCache(
                self.a2a_cache_size, name="a2a-estimates"
            )

    def set_signatures(self, signatures: dict | None) -> None:
        """Install (or clear, with ``None``) routing observations.

        The prediction cache is *not* flushed: its keys embed the
        signature, so stale uniform-routing entries cannot leak into
        skew-aware queries after a re-optimization.
        """
        self.signatures = dict(signatures) if signatures else None

    def signature_for(self, instr: Instruction) -> RoutingSignature | None:
        """The routing signature governing one all-to-all, if any."""
        if not self.signatures:
            return None
        key = instr.attrs.get("moe_layer", instr.origin or instr.uid)
        sig = self.signatures.get(key)
        if sig is None:
            sig = self.signatures.get(None)
        return sig

    def _a2a_irregular_ms(
        self, nbytes: float, parts: int, sig: RoutingSignature | None
    ) -> float:
        key = (nbytes, parts, None if sig is None else sig.key(digits=6))
        hit = self._a2a_cache.get(key)
        if hit is None:
            hit = self.comm.a2a_skewed_ms(nbytes, parts, sig)
            self._a2a_cache.put(key, hit)
        return hit

    def a2a_chunk_ms(
        self, instr: Instruction, program: Program, parts: int, irregular: bool
    ) -> float:
        """Predicted duration of one chunk of a *planned* k-way split of
        an all-to-all (used by the pipeline scheduler before any IR is
        rewritten).  Irregular chunks use the static-shape approximation,
        conditioned on the layer's routing signature when one is set."""
        nbytes = float(program.type_of(instr.inputs[0]).nbytes)
        if irregular:
            return self._a2a_irregular_ms(
                nbytes, parts, self.signature_for(instr)
            )
        return self.comm.a2a_ms(nbytes / parts)

    def duration_ms(self, instr: Instruction, program: Program) -> float:
        """Predicted duration of one instruction."""
        if instr.op == "all_to_all":
            buf_t = program.type_of(instr.inputs[0])
            nbytes = float(buf_t.nbytes)
            if instr.attrs.get("irregular"):
                # irregular A2As move only realized tokens, not padding:
                # scale the static buffer size by the expected fill
                # fraction (tokens / total capacity slots)
                tokens = instr.attrs.get("tokens")
                if tokens is not None and buf_t.rank == 3:
                    slots = buf_t.shape[0] * buf_t.shape[1]
                    nbytes *= min(1.0, tokens / slots)
                parts = 1
                if instr.partition is not None:
                    # chunk of an irregular A2A: static-shape approximation
                    parts = instr.partition[1]
                return self._a2a_irregular_ms(
                    nbytes, parts, self.signature_for(instr)
                )
            return self.comm.a2a_ms(nbytes)
        if instr.op == "allreduce":
            nbytes = float(program.type_of(instr.inputs[0]).nbytes)
            return self.comm.allreduce_ms(nbytes)
        irr_parts = int(instr.attrs.get("irr_parts", 1))
        if irr_parts > 1:
            # irregular chunk: price at its realized occupancy (~C/k),
            # mirroring the runtime's grouped-kernel behaviour
            from ..runtime.simulate import _scale_capacity

            in_types = [
                _scale_capacity(program.type_of(v), irr_parts)
                for v in instr.inputs
            ]
            attrs = dict(instr.attrs)
            if "capacity" in attrs:
                attrs["capacity"] = max(
                    1, -(-int(attrs["capacity"]) // irr_parts)
                )
            return self.profiler.op_time_ms(instr.op, in_types, attrs)
        return self.profiler.instr_time_ms(instr, program)

    def predict_iteration_ms(self, program: Program) -> float:
        """Predicted end-to-end iteration time of a program.

        Runs the same two-stream schedule simulation as the ground truth,
        but with predicted per-op costs (the paper's cost-model output
        compared against measurement in Fig. 14).
        """
        from ..runtime.simulate import simulate_program

        return simulate_program(program, duration_fn=self.duration_ms).makespan
