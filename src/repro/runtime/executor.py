"""Numeric interpreter: runs an IR program with real numpy tensors on
``G`` simulated devices.

Used at small scale to verify that Lancet's graph transformations are
mathematically equivalent: an optimized program must produce bit-identical
losses, gradients and updated parameters to the original.

Communication ops synchronize across the per-device environments (the
interpreter plays the role of NCCL); everything else is a per-device
kernel from :mod:`repro.numerics`.  Between collectives the devices are
fully independent, so those kernel segments can run concurrently on a
thread pool -- numpy's BLAS kernels release the GIL -- without changing a
single bit of the result.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..ir import Instruction, Program
from ..numerics.kernels import FORWARD_KERNELS
from . import collectives

# importing grads registers the backward kernels in FORWARD_KERNELS
from ..numerics import grads as _grads  # noqa: F401

#: ops the interpreter executes as cross-device collectives
COLLECTIVE_OPS = frozenset({"all_to_all", "allreduce"})


@dataclass
class DeviceEnv:
    """Value store of one simulated device."""

    index: int
    values: dict[int, object] = field(default_factory=dict)

    def __getitem__(self, vid: int):
        return self.values[vid]

    def __setitem__(self, vid: int, val) -> None:
        self.values[vid] = val


class NumericExecutor:
    """Interprets a program across simulated devices.

    Parameters
    ----------
    program:
        The IR to execute (any schedule -- original or Lancet-optimized).
    num_devices:
        Number of SPMD devices; must match the graph's expert sharding.
    parallel:
        Run per-device kernel segments concurrently on a thread pool.
        ``None`` (default) enables it automatically on multi-core hosts
        when there is more than one device.  Devices only interact at
        collectives, which always synchronize, so parallel execution is
        bit-identical to serial.
    max_workers:
        Thread-pool size; defaults to ``min(num_devices, cpu_count)``.
    """

    def __init__(
        self,
        program: Program,
        num_devices: int,
        parallel: bool | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.program = program
        self.g = num_devices
        cpus = os.cpu_count() or 1
        if parallel is None:
            parallel = cpus > 1 and num_devices > 1
        self.parallel = bool(parallel) and num_devices > 1
        self.max_workers = max_workers or min(num_devices, max(cpus, 1))
        self._pool: ThreadPoolExecutor | None = None

    @staticmethod
    def _split_segments(
        program: Program,
    ) -> list[tuple[str, Instruction | list[Instruction]]]:
        """Split program order into maximal per-device kernel runs
        separated by collectives (the synchronization points)."""
        segments: list[tuple[str, Instruction | list[Instruction]]] = []
        run: list[Instruction] = []
        for instr in program.instructions:
            if instr.op in COLLECTIVE_OPS:
                if run:
                    segments.append(("kernels", run))
                    run = []
                segments.append(("collective", instr))
            else:
                run.append(instr)
        if run:
            segments.append(("kernels", run))
        return segments

    def _run_kernels(self, env: DeviceEnv, instrs: list[Instruction]) -> None:
        """Execute a collective-free instruction run on one device."""
        for instr in instrs:
            fn = FORWARD_KERNELS.get(instr.op)
            if fn is None:
                raise NotImplementedError(f"no kernel for op {instr.op!r}")
            attrs = instr.attrs
            if instr.op in ("routing", "routing_partial"):
                # per-device RNG stream for stochastic gates
                attrs = {**attrs, "seed": attrs.get("seed", 0) + env.index}
            ins = [env[v] for v in instr.inputs]
            outs = fn(ins, attrs)
            for vid, val in zip(instr.outputs, outs):
                env[vid] = val

    def _run_collective(self, envs: list[DeviceEnv], instr: Instruction) -> None:
        if instr.op == "all_to_all":
            bufs = [env[instr.inputs[0]] for env in envs]
            outs = collectives.all_to_all_dense(bufs, instr.attrs["direction"])
        else:  # allreduce
            arrays = [env[instr.inputs[0]] for env in envs]
            if instr.attrs.get("reduce", "mean") == "mean":
                outs = collectives.allreduce_mean(arrays)
            else:
                outs = collectives.allreduce_sum(arrays)
        for env, out in zip(envs, outs):
            env[instr.outputs[0]] = out

    def run(self, envs: list[DeviceEnv]) -> list[DeviceEnv]:
        """Execute all instructions; returns the (mutated) environments."""
        if len(envs) != self.g:
            raise ValueError(f"expected {self.g} envs, got {len(envs)}")
        # re-split every run: programs are mutable and passes rewrite
        # them in place; the split is O(n) appends, negligible next to
        # the numeric kernels
        segments = self._split_segments(self.program)
        if self.parallel:
            # the pool is created once and reused: training loops call
            # run() per step, and per-call thread spawn/join would
            # dominate the sub-millisecond kernels of small graphs
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            self._run_segments(envs, segments, self._pool)
        else:
            self._run_segments(envs, segments, None)
        return envs

    def close(self) -> None:
        """Shut down the worker pool (idempotent; optional -- idle
        threads are also reaped at interpreter exit)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _run_segments(
        self,
        envs: list[DeviceEnv],
        segments: list[tuple[str, Instruction | list[Instruction]]],
        pool: ThreadPoolExecutor | None,
    ) -> None:
        for tag, payload in segments:
            if tag == "collective":
                self._run_collective(envs, payload)
            elif pool is None:
                for env in envs:
                    self._run_kernels(env, payload)
            else:
                futures = [
                    pool.submit(self._run_kernels, env, payload)
                    for env in envs
                ]
                for f in futures:
                    f.result()  # propagate worker exceptions

    def make_envs(
        self, per_device_values: list[dict[int, object]]
    ) -> list[DeviceEnv]:
        """Wrap raw value dicts (inputs + params + states) into envs."""
        return [
            DeviceEnv(index=i, values=dict(vals))
            for i, vals in enumerate(per_device_values)
        ]


def run_program(
    program: Program,
    per_device_values: list[dict[int, object]],
    parallel: bool | None = None,
) -> list[DeviceEnv]:
    """One-shot convenience wrapper around :class:`NumericExecutor`."""
    ex = NumericExecutor(program, len(per_device_values), parallel=parallel)
    return ex.run(ex.make_envs(per_device_values))
