"""JSON serialization of IR programs.

The optimized schedule is Lancet's deployable artifact: a plan computed
once should be storable, versioned, and reloadable in another process
(see :mod:`repro.api`).  This module provides the IR half of that story:

- :func:`program_to_json` / :func:`program_from_json` round-trip a
  :class:`~repro.ir.program.Program` through plain JSON types
  **bit-identically** -- every value type, instruction attribute,
  ordering, uid, partition annotation, and grad mapping is reconstructed
  exactly, so a reloaded program simulates to the same timeline as the
  original (enforced by ``tests/test_ir_serialize.py``).
- :func:`structural_program_dict` is the uid-*independent* canonical
  form used for graph fingerprinting: two programs built independently
  (in different processes, with different global uid counters) that
  describe the same computation produce the same structure, so plan
  caches can key on it.

Instruction uids are preserved verbatim on load (passes and the
simulator key state on them); the module-global uid counter is advanced
past the loaded maximum so instructions created afterwards can never
collide with deserialized ones.
"""

from __future__ import annotations

import itertools

from .instruction import Instruction, InstrKind, ensure_uid_floor
from .ops import get_op
from .program import Program
from .tensor import Dim, DType, TensorType, Value

#: Version of the IR serialization schema itself (bumped on any change
#: to the layout below; consumers embed it in their own envelopes).
IR_SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """A program (or serialized form) that cannot be (de)serialized."""


# -- attribute codec ----------------------------------------------------------
#
# Instruction attrs are plain scalars today (ints, floats, bools,
# strings), but passes are free to attach richer static metadata.  JSON
# cannot tell a tuple from a list, and silently turning tuples into
# lists would break bit-identity (and dict-key hashability), so tuples
# are tagged.  Anything outside this closed set is an error -- refusing
# loudly beats deserializing garbage.

_TUPLE_TAG = "__tuple__"


def _encode_attr(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_attr(v) for v in value]}
    if isinstance(value, list):
        return [_encode_attr(v) for v in value]
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise SerializationError(
                f"attr dicts must have string keys, got {list(value)!r}"
            )
        if _TUPLE_TAG in value:
            raise SerializationError(
                f"attr dict key {_TUPLE_TAG!r} is reserved by the codec"
            )
        return {k: _encode_attr(v) for k, v in value.items()}
    raise SerializationError(
        f"cannot serialize instruction attr of type {type(value).__name__}: "
        f"{value!r}"
    )


def _decode_attr(value):
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode_attr(v) for v in value[_TUPLE_TAG])
        return {k: _decode_attr(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_attr(v) for v in value]
    return value


# -- values -------------------------------------------------------------------
#
# Programs have thousands of values but only a few dozen distinct tensor
# types (a GPT2-S-MoE training graph: ~2400 values, 34 types), so types
# are interned in a table and each value row is a compact
# ``[id, name, type_index]`` triple.  This keeps plan artifacts small
# and makes deserialization fast enough that a disk-cached plan loads in
# milliseconds (the whole point of :class:`repro.api.PlanStore`).


def _type_to_json(t: TensorType) -> dict:
    return {
        "shape": list(t.shape),
        "dtype": t.dtype.value,
        "dims": [d.value for d in t.dims],
    }


def _type_from_json(obj: dict) -> TensorType:
    try:
        return TensorType(
            shape=tuple(int(s) for s in obj["shape"]),
            dtype=DType(obj["dtype"]),
            dims=tuple(Dim(d) for d in obj["dims"]),
        )
    except (KeyError, ValueError, TypeError) as err:
        raise SerializationError(f"bad serialized type {obj!r}: {err}") from err


# -- instructions -------------------------------------------------------------


def _instruction_to_json(instr: Instruction) -> dict:
    obj = {
        "op": instr.op,
        "inputs": list(instr.inputs),
        "outputs": list(instr.outputs),
        "attrs": _encode_attr(dict(instr.attrs)),
        "kind": instr.kind.value,
        "uid": instr.uid,
    }
    # keep the common case compact: most instructions are unpartitioned
    if instr.partition is not None:
        obj["partition"] = list(instr.partition)
    if instr.origin is not None:
        obj["origin"] = instr.origin
    return obj


def _instruction_from_json(obj: dict) -> Instruction:
    try:
        op = str(obj["op"])
        get_op(op)  # unknown ops fail here, not deep inside a pass
        partition = obj.get("partition")
        return Instruction(
            op=op,
            inputs=tuple(int(v) for v in obj["inputs"]),
            outputs=tuple(int(v) for v in obj["outputs"]),
            attrs=_decode_attr(obj.get("attrs", {})),
            kind=InstrKind(obj["kind"]),
            uid=int(obj["uid"]),
            partition=tuple(int(v) for v in partition) if partition else None,
            origin=int(obj["origin"]) if obj.get("origin") is not None else None,
        )
    except SerializationError:
        raise
    except (KeyError, ValueError, TypeError) as err:
        raise SerializationError(
            f"bad serialized instruction {obj!r}: {err}"
        ) from err


# -- programs -----------------------------------------------------------------


def program_to_json(program: Program) -> dict:
    """Serialize a program to a JSON-compatible dict (see module doc)."""
    type_index: dict[TensorType, int] = {}
    values = []
    for v in program.values.values():
        idx = type_index.get(v.type)
        if idx is None:
            idx = type_index.setdefault(v.type, len(type_index))
        values.append([v.id, v.name, idx])
    return {
        "ir_version": IR_SCHEMA_VERSION,
        "name": program.name,
        "types": [_type_to_json(t) for t in type_index],
        "values": values,
        "instructions": [
            _instruction_to_json(i) for i in program.instructions
        ],
        "inputs": list(program.inputs),
        "params": list(program.params),
        "states": list(program.states),
        "outputs": list(program.outputs),
        # JSON object keys are strings; keep grads as pairs to preserve
        # the int->int mapping exactly
        "grads": [[k, v] for k, v in program.grads.items()],
    }


def program_from_json(obj: dict, check: bool = True) -> Program:
    """Reconstruct a program serialized by :func:`program_to_json`.

    Raises :class:`SerializationError` on malformed input (wrong IR
    schema version, unknown ops, missing fields) instead of building a
    half-valid program.  With ``check=True`` the result is additionally
    run through the IR validator.
    """
    if not isinstance(obj, dict):
        raise SerializationError(
            f"serialized program must be a dict, got {type(obj).__name__}"
        )
    version = obj.get("ir_version")
    if version != IR_SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported IR schema version {version!r} "
            f"(this build reads version {IR_SCHEMA_VERSION})"
        )
    try:
        p = Program(str(obj["name"]))
        types = [_type_from_json(to) for to in obj["types"]]
        for vid, name, tidx in obj["values"]:
            vid = int(vid)
            if vid in p.values:
                raise SerializationError(f"duplicate value id {vid}")
            p.values[vid] = Value(vid, types[tidx], str(name))
        p.instructions = [_instruction_from_json(io) for io in obj["instructions"]]
        p.inputs = [int(v) for v in obj["inputs"]]
        p.params = [int(v) for v in obj["params"]]
        p.states = [int(v) for v in obj["states"]]
        p.outputs = [int(v) for v in obj["outputs"]]
        p.grads = {int(k): int(v) for k, v in obj["grads"]}
    except SerializationError:
        raise
    except (KeyError, ValueError, TypeError) as err:
        raise SerializationError(f"malformed serialized program: {err}") from err

    # future values must allocate above every deserialized id, and the
    # process-global instruction counter must clear the loaded uids
    p._next_value_id = itertools.count(max(p.values, default=-1) + 1)
    ensure_uid_floor(max((i.uid for i in p.instructions), default=-1) + 1)

    if check:
        from .validate import validate

        try:
            validate(p)
        except Exception as err:
            raise SerializationError(
                f"deserialized program failed validation: {err}"
            ) from err
    return p


def structural_program_dict(program: Program) -> dict:
    """Uid-independent canonical form of a program, for fingerprinting.

    Identical to :func:`program_to_json` except that instruction uids
    are replaced by program positions (and ``origin`` references are
    remapped the same way, falling back to ``None`` for origins outside
    the program): two structurally identical programs built by different
    processes -- whose global uid counters differ -- hash identically.
    """
    obj = program_to_json(program)
    position_of = {i.uid: pos for pos, i in enumerate(program.instructions)}
    for pos, io in enumerate(obj["instructions"]):
        io["uid"] = pos
        if "origin" in io:
            origin = position_of.get(io["origin"])
            if origin is None:
                del io["origin"]
            else:
                io["origin"] = origin
    return obj
