"""Benchmark model definitions (GPT-2 MoE variants from the paper)."""

from .config import (
    ALL_GATES,
    BATCH_DEPENDENT_GATES,
    BATCH_PREFIX_STABLE_GATES,
    GPT2MoEConfig,
    RunConfig,
)
from .gpt2_moe import ModelGraph, build_forward, build_training_graph
from .transformer import MoELayerInfo

__all__ = [
    "ALL_GATES",
    "BATCH_DEPENDENT_GATES",
    "BATCH_PREFIX_STABLE_GATES",
    "GPT2MoEConfig",
    "ModelGraph",
    "MoELayerInfo",
    "RunConfig",
    "build_forward",
    "build_training_graph",
]
