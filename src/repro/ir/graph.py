"""Instruction dependency graph and reachability analysis.

The dW schedule pass (paper Sec. 4.1) labels, for every all-to-all
instruction ``Ia``, the set ``W_Ia`` of weight-gradient instructions with
*no directed path* to or from ``Ia`` in the dependency graph.  The paper
uses per-query BFS; we compute the full transitive closure once with a
bitset dynamic program over the topological order, which is `O(N^2 / 64)`
words and answers all queries in O(1).
"""

from __future__ import annotations

import numpy as np

from .instruction import Instruction
from .program import Program


class DependencyGraph:
    """Data-dependency DAG over a program's instructions.

    Nodes are instruction positions in program order (the program must be
    topologically sorted, which :meth:`from_program` verifies).  Edge
    ``i -> j`` means instruction ``j`` consumes an output of ``i``.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.succ: list[list[int]] = [[] for _ in range(n)]
        self.pred: list[list[int]] = [[] for _ in range(n)]
        self._descendants: np.ndarray | None = None

    @classmethod
    def from_program(cls, program: Program) -> "DependencyGraph":
        """Build the DAG and verify def-before-use ordering."""
        n = len(program.instructions)
        g = cls(n)
        producer_pos: dict[int, int] = {}
        for pos, instr in enumerate(program.instructions):
            for vin in instr.inputs:
                p = producer_pos.get(vin)
                if p is not None:
                    g.add_edge(p, pos)
                # else: program input / parameter, no edge
            for vout in instr.outputs:
                if vout in producer_pos:
                    raise ValueError(
                        f"value %{vout} defined twice (positions "
                        f"{producer_pos[vout]} and {pos})"
                    )
                producer_pos[vout] = pos
        return g

    def add_edge(self, src: int, dst: int) -> None:
        """Add dependency edge ``src -> dst`` (requires src < dst)."""
        if src >= dst:
            raise ValueError(f"edge {src}->{dst} violates topological order")
        self.succ[src].append(dst)
        self.pred[dst].append(src)
        self._descendants = None

    # -- reachability -----------------------------------------------------------

    def _closure(self) -> np.ndarray:
        """Boolean matrix ``R[i, j] = 1`` iff there is a path ``i -> j``."""
        if self._descendants is None:
            reach = np.zeros((self.n, self.n), dtype=bool)
            # nodes are already topologically ordered by position, so a single
            # reverse sweep suffices: desc(i) = children U desc(children)
            for i in range(self.n - 1, -1, -1):
                row = reach[i]
                for j in self.succ[i]:
                    row[j] = True
                    row |= reach[j]
            self._descendants = reach
        return self._descendants

    def reaches(self, src: int, dst: int) -> bool:
        """Whether there is a directed path from ``src`` to ``dst``."""
        return bool(self._closure()[src, dst])

    def independent(self, a: int, b: int) -> bool:
        """True iff no directed path exists between ``a`` and ``b`` either way."""
        closure = self._closure()
        return not (closure[a, b] or closure[b, a])

    def independent_set(self, anchor: int, candidates: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`independent` of ``anchor`` vs many candidates.

        Parameters
        ----------
        anchor:
            Instruction position (e.g. an all-to-all).
        candidates:
            Integer array of instruction positions.

        Returns
        -------
        Boolean array aligned with ``candidates``.
        """
        closure = self._closure()
        fwd = closure[anchor, candidates]
        bwd = closure[candidates, anchor]
        return ~(fwd | bwd)

    def ancestors(self, node: int) -> np.ndarray:
        """Positions of all transitive predecessors of ``node``."""
        return np.nonzero(self._closure()[:, node])[0]

    def descendants(self, node: int) -> np.ndarray:
        """Positions of all transitive successors of ``node``."""
        return np.nonzero(self._closure()[node])[0]


def verify_schedulable(
    program: Program, order: list[Instruction]
) -> None:
    """Check that ``order`` respects all data dependencies of ``program``.

    Raises
    ------
    ValueError
        If some instruction is scheduled before one of its producers.
    """
    defined: set[int] = set(program.inputs) | set(program.params) | set(program.states)
    for pos, instr in enumerate(order):
        for vin in instr.inputs:
            if vin not in defined:
                raise ValueError(
                    f"instruction at position {pos} ({instr.op}) consumes "
                    f"%{vin} before it is defined"
                )
        defined.update(instr.outputs)
