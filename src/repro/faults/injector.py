"""Derive degraded clusters from fault schedules and drive the simulator.

The injector is a *pure derivation*: given a base
:class:`~repro.runtime.simulate.SimulationConfig` and a
:class:`~repro.faults.model.FaultSchedule`, it produces -- per step -- a
degraded :class:`~repro.runtime.cluster.ClusterSpec`, per-device compute
slowdowns, and (under rank loss) a remapped routing model, assembled
into an ordinary :class:`SimulationConfig`.  Faulted timelines are
therefore *bit-identical* to simulating the degraded config directly:
there is no separate faulted simulator to drift out of sync.

Degradation semantics:

- **straggler** faults multiply the target device's compute time
  (``SimulationConfig.straggler_slowdown``, honoured by
  :func:`~repro.runtime.simulate.simulate_cluster` since PR 1).
- **nic_degrade** faults rescale the *cluster-wide* inter-node beta
  (``node_nic_gbps``) and alpha (``alpha_inter_us``) to the worst node's
  remaining fraction: every inter-node byte of the 2-hop exchange
  crosses some node's NIC and the collective completes with the worst
  path (MoNTA's argument), so the worst node's NIC sets the effective
  inter-node bandwidth for everyone.
- **rank_loss** folds the lost rank's data shard and expert ownership
  into a surviving *buddy* rank (next surviving rank on the same node
  when possible): the buddy's compute slows by ``1 + k`` for ``k``
  absorbed shards and the routing pair-bytes matrix has the lost rank's
  rows/columns folded into the buddy's.  The lost rank remains in the
  timeline as a zero-traffic *ghost* at nominal speed -- it never
  bottlenecks a collective, so the cluster makespan is governed by the
  survivors.

For *planning* against a degraded cluster, :attr:`DegradedCluster
.plan_spec` additionally folds the worst surviving compute slowdown
into the GPU model (collectives synchronize on the slowest device, so
the planner should price compute at the straggler's speed).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..runtime.cluster import ClusterSpec
from ..runtime.simulate import (
    SimulationConfig,
    simulate_cluster,
    simulate_cluster_batch,
)
from ..runtime.timeline import ClusterTimeline
from .model import FaultSchedule, FaultSpec


@dataclass
class RemappedRoutingModel:
    """Routing model with lost ranks folded into their buddies.

    Wraps any routing model (sharing its per-layer draw cache, so all
    configs over one schedule see consistent realizations) and rewrites
    the realized traffic: a lost rank dispatches nothing (its tokens now
    live on the buddy) and owns nothing (its experts moved too).
    """

    base: object
    #: (lost_rank, buddy_rank) pairs, applied in order
    fold: tuple[tuple[int, int], ...]

    def counts_for(self, key, num_devices, num_experts, tokens_per_device,
                   capacity, fraction=1.0) -> np.ndarray:
        counts = np.array(
            self.base.counts_for(
                key, num_devices, num_experts, tokens_per_device, capacity,
                fraction,
            )
        )
        for lost, buddy in self.fold:
            counts[buddy] += counts[lost]
            counts[lost] = 0
        return counts

    def pair_bytes_for(self, key, num_devices, num_experts,
                       tokens_per_device, capacity, bytes_per_token,
                       fraction=1.0) -> np.ndarray:
        pair = np.array(
            self.base.pair_bytes_for(
                key, num_devices, num_experts, tokens_per_device, capacity,
                bytes_per_token, fraction,
            )
        )
        for lost, buddy in self.fold:
            pair[buddy, :] += pair[lost, :]   # buddy sends the lost shard
            pair[lost, :] = 0.0
            pair[:, buddy] += pair[:, lost]   # buddy owns the lost experts
            pair[:, lost] = 0.0
        return pair

    def clear(self) -> None:
        self.base.clear()


@dataclass(frozen=True)
class DegradedCluster:
    """A base cluster with a set of faults applied."""

    base: ClusterSpec
    #: network-degraded spec (simulation target; GPU model unscaled --
    #: per-device compute degradation lives in :attr:`slowdowns`)
    spec: ClusterSpec
    #: :attr:`spec` with the worst surviving compute slowdown folded into
    #: the GPU model -- what a planner should compile against
    plan_spec: ClusterSpec
    #: per-device compute multipliers (1.0 = nominal; ghosts stay 1.0)
    slowdowns: tuple[float, ...]
    lost_ranks: tuple[int, ...]
    #: (lost_rank, buddy_rank) takeover pairs
    buddy_of: tuple[tuple[int, int], ...]
    faults: tuple[FaultSpec, ...]

    @property
    def degraded(self) -> bool:
        """True when any fault is applied."""
        return bool(self.faults)

    @property
    def worst_slowdown(self) -> float:
        return max(self.slowdowns) if self.slowdowns else 1.0

    def summary(self) -> dict:
        return {
            "faults": [f.to_dict() for f in self.faults],
            "worst_slowdown": self.worst_slowdown,
            "lost_ranks": list(self.lost_ranks),
            "buddy_of": {str(k): v for k, v in self.buddy_of},
            "node_nic_gbps": self.spec.node_nic_gbps,
            "alpha_inter_us": self.spec.alpha_inter_us,
        }


def _pick_buddy(lost: int, all_lost: set[int], spec: ClusterSpec) -> int:
    """Next surviving rank, same node first, then global scan order."""
    g = spec.num_gpus
    per = spec.gpus_per_node
    node_base = (lost // per) * per
    for off in range(1, per):
        cand = node_base + (lost - node_base + off) % per
        if cand < g and cand not in all_lost:
            return cand
    for off in range(1, g):
        cand = (lost + off) % g
        if cand not in all_lost:
            return cand
    raise ValueError("rank loss would leave no surviving rank")


def derive_degraded(
    base: ClusterSpec, faults: Sequence[FaultSpec]
) -> DegradedCluster:
    """Apply a set of (simultaneously active) faults to a cluster."""
    g = base.num_gpus
    slowdowns = np.ones(g)
    nic_fraction = 1.0
    lost: list[int] = []
    for f in faults:
        if f.kind == "straggler":
            if f.target >= g:
                raise ValueError(f"straggler target {f.target} >= {g} devices")
            slowdowns[f.target] *= f.severity
        elif f.kind == "nic_degrade":
            if f.target >= base.num_nodes:
                raise ValueError(
                    f"nic_degrade target {f.target} >= {base.num_nodes} nodes"
                )
            nic_fraction = min(nic_fraction, f.severity)
        else:  # rank_loss
            if f.target >= g:
                raise ValueError(f"rank_loss target {f.target} >= {g} devices")
            if f.target not in lost:
                lost.append(f.target)
    if len(lost) >= g:
        raise ValueError("rank loss would leave no surviving rank")

    lost_set = set(lost)
    buddy_of: list[tuple[int, int]] = []
    for r in sorted(lost):
        buddy = _pick_buddy(r, lost_set, base)
        buddy_of.append((r, buddy))
    takeovers: dict[int, int] = {}
    for _, b in buddy_of:
        takeovers[b] = takeovers.get(b, 0) + 1
    for b, k in takeovers.items():
        slowdowns[b] *= 1.0 + k
    # ghost ranks run at nominal speed with zero traffic: never critical
    for r in lost:
        slowdowns[r] = 1.0

    spec = base
    if nic_fraction < 1.0:
        spec = dataclasses.replace(
            base,
            name=f"{base.name}+nic{nic_fraction:.2f}",
            node_nic_gbps=base.node_nic_gbps * nic_fraction,
            alpha_inter_us=base.alpha_inter_us / nic_fraction,
        )
    worst = float(slowdowns.max())
    plan_spec = spec
    if worst > 1.0:
        plan_spec = dataclasses.replace(
            spec,
            name=f"{spec.name}+slow{worst:.2f}x",
            gpu=dataclasses.replace(
                spec.gpu,
                name=f"{spec.gpu.name}@{worst:.2f}x",
                peak_tflops=spec.gpu.peak_tflops / worst,
                mem_bw_gbps=spec.gpu.mem_bw_gbps / worst,
            ),
        )
    return DegradedCluster(
        base=base,
        spec=spec,
        plan_spec=plan_spec,
        slowdowns=tuple(float(v) for v in slowdowns),
        lost_ranks=tuple(sorted(lost)),
        buddy_of=tuple(buddy_of),
        faults=tuple(faults),
    )


class FaultInjector:
    """Drive the cluster simulator through a fault schedule.

    Wraps a nominal :class:`SimulationConfig` (the *template*: cluster,
    framework, routing model, protocol flags) and a
    :class:`FaultSchedule`; per step it derives the degraded config.
    With no active faults the template itself is returned, so fault-free
    steps are trivially bit-identical to pre-fault behaviour.
    """

    def __init__(
        self, template: SimulationConfig, schedule: FaultSchedule
    ) -> None:
        self.template = template
        self.schedule = schedule
        self._derived: dict[tuple[FaultSpec, ...], DegradedCluster] = {}

    def degraded_at(self, step: int) -> DegradedCluster:
        """The degraded cluster implied by the faults active at ``step``."""
        active = self.schedule.active_at(step)
        hit = self._derived.get(active)
        if hit is None:
            hit = derive_degraded(self.template.cluster, active)
            self._derived[active] = hit
        return hit

    def config_at(self, step: int) -> SimulationConfig:
        """The simulation config for ``step`` (the template when clean)."""
        degraded = self.degraded_at(step)
        if not degraded.degraded:
            return self.template
        base_slow = self.template.device_slowdowns()
        combined = base_slow * np.asarray(degraded.slowdowns)
        routing = self.template.routing
        if degraded.buddy_of:
            routing = RemappedRoutingModel(routing, degraded.buddy_of)
        return dataclasses.replace(
            self.template,
            cluster=degraded.spec,
            routing=routing,
            straggler_slowdown=tuple(float(v) for v in combined),
        )

    def simulate(self, program, step: int) -> ClusterTimeline:
        """Faulted per-device timelines of one iteration at ``step``."""
        return simulate_cluster(program, config=self.config_at(step))

    def simulate_batch(self, program, steps: Sequence[int]):
        """Vectorized faulted timelines for many steps in one pass
        (bit-identical to :meth:`simulate` per step, via the PR 6
        batch-equals-scalar guarantee)."""
        return simulate_cluster_batch(
            program, configs=[self.config_at(s) for s in steps]
        )
