"""Chaos harness: fault injection, recovery, and graceful degradation.

Not a paper figure -- reliability validation for the ISSUE 8 fault
stack (:mod:`repro.faults`, the failure-aware
:class:`~repro.train.ReoptimizingTrainer`, and the
:class:`~repro.serving.PlanServer` degradation tiers).  Three seeded,
fully deterministic drills:

- **injector** -- seeded randomized :class:`~repro.faults.FaultSchedule`
  families driven through both simulator paths: the vectorized batch
  path must agree with the scalar path *bit-for-bit* on every faulted
  step (the PR 6 differential guarantee must survive degraded specs,
  per-device slowdowns, and rank-loss routing remaps).
- **trainer** -- a persistent straggler is injected mid-training; the
  trainer's EWMA detector must flag it within a bounded number of
  steps, re-plan against the degraded cluster, and land within 10% of
  an *oracle* plan compiled directly against the degraded spec; on
  healing it must recover back to the nominal target.
- **server** -- a request stream through a :class:`~repro.faults
  .FlakyStore` and a stalling/failing :class:`~repro.faults
  .FlakyPlanner`, with blown deadlines, planner timeouts, an opened
  circuit breaker, and a half-open recovery: **every request must be
  answered** (zero unhandled exceptions) and the tier counters must
  prove the whole chain (deadline -> timeout -> breaker -> stale ->
  baseline -> heal) actually fired.

See ``docs/RELIABILITY.md`` for the fault model behind the drills.
"""

from __future__ import annotations

import time

from ...api import PlanStore, Scenario
from ...api.compiler import plan_resolved
from ...core import LancetOptimizer
from ...faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FlakyPlanner,
    FlakyStore,
    StragglerDetector,
    derive_degraded,
)
from ...models import GPT2MoEConfig, build_training_graph
from ...runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_cluster,
)
from ...serving import PlanServer
from ...train import ReoptimizingTrainer
from ..formatting import format_table
from .common import FigureResult

#: regression floor for the recovery gap: the realized
#: post-recovery-vs-oracle gap is ~0 (the re-plan targets the same
#: degraded spec the oracle compiles against), where a 20% relative
#: tolerance would gate on float jitter.  Floored here so the gate only
#: fires when the gap becomes meaningful -- well below the documented
#: 10% recovery contract.
RECOVERY_GAP_FLOOR = 0.02


def _injector_drill(
    num_schedules: int, steps_per_schedule: int, seed: int
) -> dict:
    """Seeded random schedules through scalar and batch simulation."""
    cluster = ClusterSpec.for_gpus("a100", 8)
    graph = build_training_graph(
        GPT2MoEConfig.tiny(), batch=8, seq=16, num_gpus=8
    )
    template = SimulationConfig(
        cluster=cluster, routing=SyntheticRoutingModel(seed=seed)
    )
    clean_ms = simulate_cluster(graph.program, config=template).makespan

    mismatches = 0
    faulted_steps = 0
    worst_inflation = 1.0
    kinds_seen: set[str] = set()
    for s in range(num_schedules):
        schedule = FaultSchedule.random(
            cluster.num_gpus,
            cluster.gpus_per_node,
            seed=seed + s,
            horizon=steps_per_schedule,
        )
        kinds_seen.update(f.kind for f in schedule)
        injector = FaultInjector(template, schedule)
        # probe each fault-set transition plus the step after it: the
        # interesting steps without simulating the whole horizon
        probe = sorted(
            {
                min(t + d, steps_per_schedule - 1)
                for t in schedule.transition_steps()
                for d in (0, 1)
            }
        )
        batch = injector.simulate_batch(graph.program, probe)
        for idx, step in enumerate(probe):
            scalar = injector.simulate(graph.program, step)
            batched = batch.timeline(idx)
            for a, b in zip(scalar.devices, batched.devices):
                if a.intervals != b.intervals:
                    mismatches += 1
            if injector.degraded_at(step).degraded:
                faulted_steps += 1
                worst_inflation = max(
                    worst_inflation, scalar.makespan / clean_ms
                )
    return {
        "schedules": num_schedules,
        "faulted_steps": faulted_steps,
        "kinds_seen": sorted(kinds_seen),
        "mismatched_timelines": mismatches,
        "worst_makespan_inflation": worst_inflation,
    }


def _trainer_drill(
    onset: int, heal: int, total_steps: int, severity: float, seed: int
) -> dict:
    """Persistent straggler: detect, re-plan, verify vs oracle, recover."""
    cluster = ClusterSpec.for_gpus("a100", 2)
    graph = build_training_graph(
        GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
    )
    optimizer = LancetOptimizer(cluster)
    trainer = ReoptimizingTrainer(
        graph,
        optimizer,
        drift_threshold=10.0,  # isolate the fault path from drift re-plans
        fault_detector=StragglerDetector(cluster.num_gpus),
        seed=seed,
    )
    fault = FaultSpec(
        "straggler", target=1, severity=severity,
        start_step=onset, end_step=heal,
    )
    injector = FaultInjector(
        SimulationConfig(cluster=cluster, framework=optimizer.framework),
        FaultSchedule((fault,)),
    )
    faulted_program = None
    for step in range(total_steps):
        trainer.step()
        timeline = injector.simulate(trainer.program, step)
        trainer.observe_device_times(timeline.per_device_compute_ms())
        if trainer.fault_replans and faulted_program is None:
            # the schedule in force right after the fault re-plan --
            # the heal at ``heal`` swaps it back out, so grade this one
            faulted_program = trainer.program

    detected_step = trainer.fault_events[0].step if trainer.fault_events else -1
    recovered_step = (
        trainer.recovery_events[0].step if trainer.recovery_events else -1
    )
    estimate = trainer.fault_events[0].ratio if trainer.fault_events else 0.0

    # oracle: a plan compiled directly against the true degraded spec,
    # both executed under the fault (the replan the trainer produced at
    # detection time is fetched from its event log)
    degraded = derive_degraded(cluster, [fault])
    oracle_program, _ = LancetOptimizer(
        degraded.plan_spec, framework=optimizer.framework
    ).optimize(graph)
    faulted_cfg = injector.config_at(onset)
    replan = next(e for e in trainer.fault_replans if e.trigger == "fault")
    post_ms = simulate_cluster(faulted_program, config=faulted_cfg).makespan
    oracle_ms = simulate_cluster(oracle_program, config=faulted_cfg).makespan
    return {
        "onset_step": onset,
        "heal_step": heal,
        "detected_step": detected_step,
        "detection_latency_steps": detected_step - onset,
        "estimated_slowdown": estimate,
        "injected_slowdown": severity,
        "replans": len(trainer.fault_replans),
        "migrated": replan.migrated,
        "migration_cost_ms": replan.migration_cost_ms,
        "recovered_step": recovered_step,
        "post_replan_ms": post_ms,
        "oracle_ms": oracle_ms,
        "recovery_gap": post_ms / oracle_ms - 1.0,
        "back_to_nominal": trainer.optimizer is trainer._nominal_optimizer,
    }


def _server_drill(seed: int, store_root) -> dict:
    """Request stream under store I/O faults, a stalling planner, blown
    deadlines, and a breaker-opening outage.  Every request must come
    back with a plan."""

    def scenario(i: int, **kw) -> Scenario:
        return Scenario(
            model="tiny", cluster="a100", num_gpus=8,
            routing_seed=seed * 1000 + i, **kw,
        )

    store = PlanStore(store_root)
    flaky_store = FlakyStore(store, seed=seed, error_rate=0.15)
    planner = FlakyPlanner(plan_resolved, seed=seed)
    answered = 0
    origins: dict[str, int] = {}

    def serve(server, sc, **kw):
        nonlocal answered
        result = server.serve(sc, **kw)
        assert result.plan is not None
        answered += 1
        origins[result.origin] = origins.get(result.origin, 0) + 1
        return result

    with PlanServer(
        flaky_store,
        planner=planner,
        store_retries=3,
        retry_backoff_s=0.001,
        breaker_threshold=3,
        breaker_cooldown_s=3600.0,  # opened until the drill heals it
    ) as server:
        # 1. healthy warm-up: populate the store (planner runs + the
        #    flaky store's transient failures exercise the retry path)
        warmup = [scenario(i) for i in range(4)]
        for sc in warmup:
            serve(server, sc)
        for sc in warmup:  # warm repeats
            serve(server, sc)

        # 2. blown deadlines on far-away buckets: answered from the
        #    degraded tiers immediately, healed in the background
        for i in range(3):
            serve(
                server,
                scenario(100 + i, concentration=0.05, hot_experts=2,
                         hot_boost=0.8 + 0.05 * i),
                deadline_s=0.0,
            )
        # 3. a deadline miss with *no* same-identity plan stored at any
        #    distance: only the baseline tier can answer
        serve(
            server,
            Scenario(model="tiny", cluster="a100", num_gpus=4,
                     routing_seed=seed * 1000 + 200),
            deadline_s=0.0,
        )

        # 4. planner brown-out: every run stalls past its budget, so
        #    cold requests time out (no exceptions), trip the breaker,
        #    and subsequent ones short-circuit straight to the fallback
        planner.delay_s = 0.25
        server.planner_timeout_s = 0.01
        for i in range(5):
            serve(server, scenario(300 + i, gate="bpr"))
        assert server.breaker.state == "open", server.breaker.snapshot()

        # 5. steady chaos while degraded: warm hits and fallback answers
        #    interleaved; still zero exceptions
        for i in range(8):
            serve(server, warmup[i % len(warmup)])
            serve(server, scenario(400 + i, gate="bpr"))

        # 6. heal: the planner recovers, the cooldown elapses, the
        #    half-open trial closes the breaker, cold planning resumes
        planner.delay_s = 0.0
        server.planner_timeout_s = None
        server.breaker.cooldown_s = 0.0
        # a structurally fresh workload (different seq => different
        # fingerprint): no stored plan can answer it, so a "planned"
        # origin proves cold planning is really back
        result = serve(
            server,
            Scenario(model="tiny", cluster="a100", num_gpus=8, seq=16,
                     routing_seed=seed * 1000 + 500),
        )
        assert result.origin == "planned", result.origin
        assert server.breaker.state == "closed"

        server.drain()
        # give abandoned brown-out runs time to land as late publishes
        deadline = time.monotonic() + 10.0
        while server.counters["late_plans"] < 1:
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
        counters = dict(server.counters)
        breaker = server.breaker.snapshot()

    return {
        "requests": counters["requests"],
        "answered": answered,
        "unanswered": counters["requests"] - answered - counters["coalesced"],
        "origins": origins,
        "injected_store_errors": flaky_store.injected_errors,
        "planner_calls": planner.calls,
        "counters": counters,
        "breaker": breaker,
    }


def run(
    num_schedules: int = 6,
    steps_per_schedule: int = 24,
    trainer_steps: int = 22,
    seed: int = 0,
    store_root=None,
) -> FigureResult:
    """Run all three chaos drills; returns per-drill summary rows."""
    import tempfile

    injector = _injector_drill(num_schedules, steps_per_schedule, seed)
    trainer = _trainer_drill(
        onset=3, heal=12, total_steps=trainer_steps, severity=2.0, seed=seed
    )
    with tempfile.TemporaryDirectory() as tmp:
        server = _server_drill(
            seed=seed, store_root=store_root if store_root else tmp
        )

    rows = [
        {
            "drill": "injector",
            "scale": f"{injector['schedules']} schedules",
            "outcome": f"{injector['mismatched_timelines']} mismatches",
            "detail": f"{injector['faulted_steps']} faulted steps, "
            f"worst inflation {injector['worst_makespan_inflation']:.2f}x",
        },
        {
            "drill": "trainer",
            "scale": f"{trainer_steps} steps",
            "outcome": f"detected +{trainer['detection_latency_steps']} "
            f"steps, gap {trainer['recovery_gap'] * 100:.2f}%",
            "detail": f"estimate {trainer['estimated_slowdown']:.2f}x of "
            f"{trainer['injected_slowdown']:.2f}x, "
            f"{trainer['replans']} re-plans",
        },
        {
            "drill": "server",
            "scale": f"{server['requests']} requests",
            "outcome": f"{server['unanswered']} unanswered",
            "detail": f"origins {server['origins']}, "
            f"{server['injected_store_errors']} store faults",
        },
    ]
    table = format_table(
        ["Drill", "Scale", "Outcome", "Detail"],
        [[r["drill"], r["scale"], r["outcome"], r["detail"]] for r in rows],
        title="Chaos drills: injection fidelity, failure-aware "
        "re-planning, graceful degradation",
    )
    notes = {
        "injector": injector,
        "trainer": trainer,
        "server": server,
        # lower-is-better gates for check_regression.py; all simulated /
        # counted quantities, deterministic across machines.  The
        # recovery gap is floored (see RECOVERY_GAP_FLOOR); unanswered
        # requests and timeline mismatches gate at exactly zero.
        "regression_metrics": {
            "mismatched_timelines": float(injector["mismatched_timelines"]),
            "detection_latency_steps": float(
                trainer["detection_latency_steps"]
            ),
            "recovery_gap_floored": max(
                trainer["recovery_gap"], RECOVERY_GAP_FLOOR
            ),
            "unanswered_requests": float(server["unanswered"]),
        },
    }
    return FigureResult(
        "fault_recovery",
        "chaos drills over the simulator, trainer, and plan server",
        rows,
        table,
        notes,
    )
