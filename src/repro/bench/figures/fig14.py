"""Figure 14: accuracy of Lancet's cost model.

Paper: predicted vs actual iteration time aggregated over all benchmarked
models and clusters; average percentile error 3.83%.  Here "actual" is
the ground-truth simulation (realized irregular sizes, load imbalance)
and "predicted" is the cost model's static-shape/interpolated estimate --
the same two quantities the paper compares.
"""

from __future__ import annotations

from ..formatting import format_table
from ..harness import Setting, run_setting
from .common import FigureResult


def run(
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    gpu_counts=(16, 32, 64),
    gates=("switch", "bpr"),
) -> FigureResult:
    rows = []
    for gate in gates:
        for model in models:
            for cluster in clusters:
                for gpus in gpu_counts:
                    m = run_setting(
                        Setting(
                            model=model,
                            cluster_kind=cluster,
                            num_gpus=gpus,
                            framework="lancet",
                            gate=gate,
                        )
                    )
                    predicted = m.info.get("predicted_ms")
                    if predicted is None:
                        continue
                    err = abs(predicted - m.iteration_ms) / m.iteration_ms
                    rows.append(
                        {
                            "model": model,
                            "cluster": cluster,
                            "gpus": gpus,
                            "gate": gate,
                            "predicted_ms": predicted,
                            "actual_ms": m.iteration_ms,
                            "abs_pct_error": 100.0 * err,
                        }
                    )

    avg_err = sum(r["abs_pct_error"] for r in rows) / len(rows)
    table = format_table(
        ["Model", "Cluster", "GPUs", "Gate", "Predicted", "Actual", "Err %"],
        [
            [
                r["model"],
                r["cluster"],
                r["gpus"],
                r["gate"],
                r["predicted_ms"],
                r["actual_ms"],
                r["abs_pct_error"],
            ]
            for r in rows
        ],
        title="Fig. 14 - cost model prediction accuracy",
    )
    notes = {
        "avg_pct_error": avg_err,
        "max_pct_error": max(r["abs_pct_error"] for r in rows),
        "paper_avg_pct_error": 3.83,
    }
    return FigureResult("fig14", "cost model accuracy", rows, table, notes)
