"""Fault injection, detection, and chaos tooling (ISSUE 8).

Three layers:

- :mod:`repro.faults.model` -- declarative :class:`FaultSpec` /
  :class:`FaultSchedule` (what breaks, when, how badly);
- :mod:`repro.faults.injector` -- :class:`FaultInjector` /
  :func:`derive_degraded`: turn a schedule into degraded
  :class:`~repro.runtime.cluster.ClusterSpec` + per-device slowdowns +
  remapped routing, and drive the cluster simulator bit-identically;
- :mod:`repro.faults.detector` -- :class:`StragglerDetector` (EWMA
  persistent-degradation detection) feeding the trainer's
  failure-aware re-planning, with :class:`FaultEvent` /
  :class:`RecoveryEvent` telemetry.

Plus :mod:`repro.faults.chaos`: seeded :class:`FlakyStore` /
:class:`FlakyPlanner` wrappers for end-to-end serving chaos drills.

See ``docs/RELIABILITY.md`` for the full fault model and the chaos
harness walkthrough.
"""

from .chaos import FlakyPlanner, FlakyStore
from .detector import FaultEvent, RecoveryEvent, StragglerDetector
from .injector import (
    DegradedCluster,
    FaultInjector,
    RemappedRoutingModel,
    derive_degraded,
)
from .model import FAULT_KINDS, FaultSchedule, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "DegradedCluster",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FlakyPlanner",
    "FlakyStore",
    "RecoveryEvent",
    "RemappedRoutingModel",
    "StragglerDetector",
    "derive_degraded",
]
