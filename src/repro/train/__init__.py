"""Training substrate: synthetic data, optimizer, numeric training loop."""

from .data import SyntheticCorpus
from .loop import (
    ReoptimizationEvent,
    ReoptimizingTrainer,
    StepResult,
    Trainer,
)
from .optimizer import SGD

__all__ = [
    "SGD",
    "ReoptimizationEvent",
    "ReoptimizingTrainer",
    "StepResult",
    "SyntheticCorpus",
    "Trainer",
]
