"""Extension ablations (paper Sec. 8 discussion, implemented here).

Three techniques the paper names as complementary future work, measured
on top of full Lancet:

* **a2a-over-allreduce priority** (Lina): gradient all-reduces yield to
  the next all-to-all on the communication stream.
* **block-sparse expert kernels** (MegaBlocks): expert computation skips
  padded capacity slots.
* **shared-expert architectures** (PR-MoE / DeepSeek-MoE): a dense expert
  whose computation naturally hides under the all-to-all.
"""


from repro import GPT2MoEConfig, LancetOptimizer, build_training_graph
from repro.bench import format_table
from repro.runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_program,
)


def _measure(graph, cluster, block_sparse=False, **opt_flags):
    opt, _ = LancetOptimizer(cluster, **opt_flags).optimize(graph)
    sim = SimulationConfig(
        cluster=cluster,
        padded_a2a=False,
        block_sparse_experts=block_sparse,
        routing=SyntheticRoutingModel(seed=1),
    )
    tl = simulate_program(opt, config=sim)
    return tl


def run_extension_ablation():
    cluster = ClusterSpec.for_gpus("v100", 32)
    graph = build_training_graph(
        GPT2MoEConfig.gpt2_l_moe(), batch=8, seq=512, num_gpus=32
    )
    shared_graph = build_training_graph(
        GPT2MoEConfig.gpt2_l_moe(shared_expert=True),
        batch=8,
        seq=512,
        num_gpus=32,
    )

    rows = []
    base = _measure(graph, cluster)
    rows.append(("lancet (paper)", base.makespan, 1.0))
    for name, graph_, kwargs in [
        ("+ a2a priority (Lina)", graph, dict(opt=dict(defer_allreduce=True))),
        ("+ block-sparse experts", graph, dict(block_sparse=True)),
        (
            "+ both",
            graph,
            dict(block_sparse=True, opt=dict(defer_allreduce=True)),
        ),
        ("shared-expert model", shared_graph, dict()),
    ]:
        opt_flags = kwargs.pop("opt", {})
        tl = _measure(graph_, cluster, **kwargs, **opt_flags)
        rows.append((name, tl.makespan, base.makespan / tl.makespan))
    return rows


def test_extension_ablation(benchmark):
    rows = benchmark.pedantic(
        run_extension_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    table = format_table(
        ["Configuration", "Iter (ms)", "Speedup vs Lancet"],
        [list(r) for r in rows],
        title="Extensions (GPT2-L-MoE, 32x V100)",
    )
    print(f"\n{table}")
    by_name = {r[0]: r for r in rows}
    # each extension helps on this comm-bound setting
    assert by_name["+ a2a priority (Lina)"][2] > 1.0
    assert by_name["+ block-sparse experts"][2] >= 0.99
    assert by_name["+ both"][2] >= by_name["+ a2a priority (Lina)"][2] * 0.99
