"""Top-level Lancet optimizer (paper Fig. 7).

Wires the two optimization passes behind one entry point:

1. Weight Gradient Computation Schedule Pass (backward overlap, Sec. 4)
2. Operator Partition Pass (forward partition + pipeline, Sec. 5)

supported by the caching op profiler and the communication cost model.
Each pass can be disabled independently for the paper's ablation study
(Fig. 16), and pass wall-times are recorded for the optimization-time
measurement (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import PassManager, PassTiming, Program
from ..models.gpt2_moe import ModelGraph
from ..runtime.cluster import ClusterSpec
from ..runtime.device import COMPILED, FrameworkProfile
from .cost_model import DEFAULT_A2A_CACHE_SIZE, CommCostModel, CostEstimator
from .dw_schedule import DWScheduleReport, WeightGradSchedulePass
from .partition import (
    DPResult,
    LancetHyperParams,
    OperatorPartitionPass,
    PlannerState,
)
from .profiler import CachingOpProfiler


@dataclass
class LancetReport:
    """Everything the optimizer learned while optimizing one program."""

    pass_timings: list[PassTiming] = field(default_factory=list)
    dw_schedule: DWScheduleReport | None = None
    partition: DPResult | None = None
    predicted_iteration_ms: float = 0.0
    profiled_ops: int = 0
    #: per-MoE-layer routing signatures the passes optimized for
    #: (``None`` = the legacy uniform static-shape approximation)
    routing_signatures: dict | None = None
    #: hit/miss/eviction counters of every cache the optimizer leans on
    #: (op profiler, signature-keyed a2a estimates, planner warm-start
    #: state); cumulative over the optimizer's lifetime
    cache_stats: dict = field(default_factory=dict)
    #: per-algorithm count of the plan's irregular all-to-alls
    #: (``{'flat': ..., 'hierarchical': ...}``); ``None`` when
    #: hierarchical collectives were disabled, so every a2a ran flat
    a2a_algorithms: dict | None = None
    #: failure-aware re-planning telemetry (ISSUE 8): set by the
    #: :class:`~repro.train.ReoptimizingTrainer` when this plan targets
    #: a degraded cluster -- the triggering :class:`~repro.faults
    #: .FaultEvent` / :class:`~repro.faults.RecoveryEvent` records,
    #: estimated per-device slowdowns, and the degraded spec's identity.
    #: ``None`` for plans compiled against a healthy cluster.
    fault_context: dict | None = None

    @property
    def skew_aware(self) -> bool:
        """Whether the plan was conditioned on observed routing."""
        return bool(self.routing_signatures)

    @property
    def hierarchical_a2a_count(self) -> int:
        """How many irregular all-to-alls the plan runs hierarchically."""
        return (self.a2a_algorithms or {}).get("hierarchical", 0)

    @property
    def warm_planned(self) -> bool:
        """Whether the partition DP reused a warm :class:`PlannerState`."""
        return bool(self.partition and self.partition.warm_start)

    @property
    def optimization_seconds(self) -> float:
        """Total optimization wall time (paper Fig. 15)."""
        return sum(t.seconds for t in self.pass_timings)

    def summary_dict(self) -> dict:
        """JSON-compatible summary of the optimizer run -- what a
        serialized :class:`~repro.api.Plan` records about its origin
        (the full report object holds live pass state and is not
        serializable itself)."""
        out = {
            "optimization_seconds": self.optimization_seconds,
            "pass_seconds": {t.name: t.seconds for t in self.pass_timings},
            "predicted_iteration_ms": self.predicted_iteration_ms,
            "profiled_ops": self.profiled_ops,
            "skew_aware": self.skew_aware,
            "warm_planned": self.warm_planned,
        }
        if self.dw_schedule is not None:
            out["num_dw_total"] = self.dw_schedule.num_dw_total
            out["num_dw_moved"] = self.dw_schedule.num_dw_moved
        if self.partition is not None:
            out["num_cost_evals"] = self.partition.num_cost_evals
            out["num_pipeline_sims"] = self.partition.num_pipeline_sims
            out["partition_degrees"] = [p.parts for p in self.partition.plans]
        if self.a2a_algorithms is not None:
            out["a2a_algorithms"] = dict(self.a2a_algorithms)
        if self.fault_context is not None:
            out["fault_context"] = dict(self.fault_context)
        return out


class LancetOptimizer:
    """Automatic MoE-training optimizer over the IR.

    Parameters
    ----------
    cluster:
        Target cluster (drives the profiler and communication cost model).
    framework:
        Execution-stack profile used for compute-cost profiling.
    hyper_params:
        The rho / gamma / iota knobs of the partition pass (Sec. 6).
    enable_dw_schedule / enable_partition:
        Ablation switches (paper Fig. 16).
    routing_signatures:
        Optional per-MoE-layer :class:`RoutingSignature` observations;
        when set, both passes price irregular all-to-alls at the
        bottleneck device's realized load instead of the uniform
        approximation.  Install later observations with
        :meth:`set_routing_signatures` or :meth:`observe_routing`.
    enable_hierarchical_a2a:
        When True, every irregular all-to-all is priced at the cheaper
        of the flat and the 2-hop hierarchical algorithm (per chunk,
        conditioned on the routing signature), the DP plans against
        those prices, and the optimized program's all-to-alls are
        annotated with the chosen algorithm (``attrs['a2a_algo']``),
        which the ground-truth simulator honors.  On single-node (or
        bandwidth-symmetric) clusters the choice always reduces to
        flat, so plans are unchanged.
    a2a_cache_size:
        LRU cap of the signature-keyed all-to-all estimate cache
        (``None`` keeps the default bound).
    placement:
        Optional expert placement (a bare
        :class:`~repro.placement.ExpertPlacement` or a
        ``{layer_key: placement}`` map) the cluster is assumed to run
        under.  Installed signatures are remapped through it
        (:meth:`RoutingSignature.remap
        <repro.runtime.RoutingSignature.remap>`) before pricing, so
        plans account for the placement's replica traffic splits.
        Signatures must carry count provenance to be remappable;
        :meth:`observe_routing` collects counts automatically when a
        placement is set.  Identity placements are exact no-ops.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        framework: FrameworkProfile = COMPILED,
        hyper_params: LancetHyperParams | None = None,
        enable_dw_schedule: bool = True,
        enable_partition: bool = True,
        defer_allreduce: bool = False,
        routing_signatures: dict | None = None,
        enable_hierarchical_a2a: bool = False,
        a2a_cache_size: int | None = None,
        placement=None,
    ) -> None:
        from ..placement import normalize_placement

        self.cluster = cluster
        self.placement = normalize_placement(placement)
        self.framework = framework
        self.hyper_params = hyper_params or LancetHyperParams()
        self.enable_dw_schedule = enable_dw_schedule
        self.enable_partition = enable_partition
        #: extension beyond the paper: prioritize all-to-all over
        #: all-reduce by deferring gradient sync (see core/comm_priority.py)
        self.defer_allreduce = defer_allreduce
        self.enable_hierarchical_a2a = enable_hierarchical_a2a
        self.profiler = CachingOpProfiler(gpu=cluster.gpu, framework=framework)
        self.costs = CostEstimator(
            self.profiler,
            CommCostModel(cluster),
            a2a_cache_size=(
                a2a_cache_size
                if a2a_cache_size is not None
                else DEFAULT_A2A_CACHE_SIZE
            ),
            enable_hierarchical=enable_hierarchical_a2a,
        )
        #: warm-start state of the partition planner: persists every
        #: signature-independent DP table across :meth:`optimize` calls,
        #: so a re-plan after routing drift only re-prices what the new
        #: signature invalidates (self-validating -- see
        #: :class:`~repro.core.partition.PlannerState`)
        self.planner_state = PlannerState()
        if routing_signatures:
            self.costs.set_signatures(self._remapped(routing_signatures))

    def reset_planner_state(self) -> None:
        """Drop the warm-start state (next :meth:`optimize` plans cold)."""
        self.planner_state.reset()

    def cache_stats(self) -> dict:
        """Counters of every cache the optimizer leans on."""
        stats = {
            "profiler": self.profiler._cache.stats(),
            "a2a_estimates": self.costs._a2a_cache.stats(),
        }
        stats.update(
            {f"planner_{k}": v for k, v in self.planner_state.stats().items()}
        )
        return stats

    def set_routing_signatures(self, signatures: dict | None) -> None:
        """Re-target the cost oracle at new routing observations (or back
        at the uniform approximation with ``None``).  Safe to call
        between :meth:`optimize` runs: prediction caches key on the
        signature, so stale entries are never reused.  With a
        ``placement`` set, signatures are remapped through it first."""
        self.costs.set_signatures(self._remapped(signatures))

    def set_placement(self, placement) -> None:
        """Install (or clear, with ``None``) the expert placement plans
        assume.  Takes effect on the next signature installation."""
        from ..placement import normalize_placement

        self.placement = normalize_placement(placement)

    def _remapped(self, signatures: dict | None) -> dict | None:
        """Signatures as the cost oracle should see them: folded through
        the active placement's traffic splits (no-op without one)."""
        from ..placement import placement_for, placement_map_is_identity

        if not signatures or placement_map_is_identity(self.placement):
            return signatures
        topology = self.cluster.topology
        out = {}
        for layer, sig in signatures.items():
            p = placement_for(self.placement, layer)
            out[layer] = sig.remap(p, topology=topology)
        return out

    def observe_routing(self, program_or_graph, routing) -> dict:
        """Extract per-layer signatures from a routing model's realization
        for this program, install them, and return them.

        ``routing`` is a :class:`SyntheticRoutingModel` (or any model
        with the same ``pair_bytes_for`` surface); on real hardware this
        step is replaced by reading the gate's dispatch counters.
        """
        from ..runtime.simulate import (
            SimulationConfig,
            observed_routing_signatures,
        )

        program = (
            program_or_graph.program
            if isinstance(program_or_graph, ModelGraph)
            else program_or_graph
        )
        config = SimulationConfig(
            cluster=self.cluster,
            framework=self.framework,
            padded_a2a=False,
            routing=routing,
        )
        signatures = observed_routing_signatures(
            program, config, with_counts=self.placement is not None
        )
        self.costs.set_signatures(self._remapped(signatures or None))
        return signatures

    def optimize(
        self, graph_or_program: ModelGraph | Program, check: bool = True
    ) -> tuple[Program, LancetReport]:
        """Optimize a training program; returns (new program, report).

        The input program is not modified.
        """
        program = (
            graph_or_program.program
            if isinstance(graph_or_program, ModelGraph)
            else graph_or_program
        )
        work = program.clone()

        pm = PassManager(validate_each=check)
        dw_pass = part_pass = None
        if self.enable_dw_schedule:
            dw_pass = WeightGradSchedulePass(self.costs)
            pm.add(dw_pass)
        if self.enable_partition:
            part_pass = OperatorPartitionPass(
                self.costs, self.hyper_params, state=self.planner_state
            )
            pm.add(part_pass)
        if self.defer_allreduce:
            from .comm_priority import GradSyncDeferPass

            pm.add(GradSyncDeferPass())
        work = pm.run(work)

        a2a_algorithms = None
        if self.enable_hierarchical_a2a:
            # pin the flat/hierarchical choice the plan was priced with
            # onto each irregular all-to-all, so the runtime (and the
            # prediction below) executes exactly what the DP assumed
            a2a_algorithms = self._annotate_a2a_algorithms(work)

        report = LancetReport(
            pass_timings=list(pm.timings),
            dw_schedule=dw_pass.report if dw_pass else None,
            partition=part_pass.result if part_pass else None,
            predicted_iteration_ms=self.costs.predict_iteration_ms(work),
            profiled_ops=self.profiler.profile_count,
            routing_signatures=(
                dict(self.costs.signatures) if self.costs.signatures else None
            ),
            cache_stats=self.cache_stats(),
            a2a_algorithms=a2a_algorithms,
        )
        return work, report

    def _annotate_a2a_algorithms(self, program: Program) -> dict:
        """Resolve and record the cheapest algorithm for every irregular
        all-to-all of ``program`` (in place; uids are preserved, so the
        planner warm-start state stays valid)."""
        counts = {"flat": 0, "hierarchical": 0}
        for i, ins in enumerate(program.instructions):
            if ins.op != "all_to_all" or not ins.attrs.get("irregular"):
                continue
            algo = self.costs.a2a_algorithm(
                ins, program, respect_annotation=False
            )
            counts[algo] += 1
            if ins.attrs.get("a2a_algo") != algo:
                program.instructions[i] = ins.with_(
                    attrs={**ins.attrs, "a2a_algo": algo}, uid=ins.uid
                )
        return counts

    def predict_iteration_ms(self, program: Program) -> float:
        """Cost-model prediction of a program's iteration time (Fig. 14)."""
        return self.costs.predict_iteration_ms(program)
