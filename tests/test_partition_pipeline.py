"""Tests for the pipeline scheduler, DP range selection and hyper-params."""

import pytest

from repro import GPT2MoEConfig, build_training_graph
from repro.core import (
    CachingOpProfiler,
    CommCostModel,
    CostEstimator,
    LancetHyperParams,
    plan_partitions,
)
from repro.core.partition import (
    build_groups,
    build_stages,
    chunk_type,
    forward_length,
    infer_axes,
    pipeline_cost_ms,
    sequential_cost_ms,
)
from repro.core.partition.pipeline import max_feasible_parts
from repro.ir import AXIS_IRREGULAR as IRR
from repro.ir import NOT_PARTITIONED as NP
from repro.ir import Dim, DType, TensorType
from repro.runtime import COMPILED, ClusterSpec


@pytest.fixture(scope="module")
def env():
    cluster = ClusterSpec.p4de(2)
    costs = CostEstimator(
        CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
        CommCostModel(cluster),
    )
    graph = build_training_graph(
        GPT2MoEConfig.gpt2_s_moe(num_layers=4), batch=16, seq=512, num_gpus=16
    )
    return cluster, costs, graph


class TestChunkType:
    def test_regular_axis(self):
        t = TensorType((8, 16, 32), DType.F16)
        assert chunk_type(t, 0, 4).shape == (2, 16, 32)

    def test_np_unchanged(self):
        t = TensorType((8, 16), DType.F16)
        assert chunk_type(t, NP, 4) == t

    def test_irregular_scales_capacity(self):
        t = TensorType((4, 12, 8), DType.F16, (Dim.EXPERT, Dim.CAPACITY, Dim.HIDDEN))
        assert chunk_type(t, IRR, 4).shape == (4, 3, 8)

    def test_irregular_scales_tokens(self):
        from repro.ir import route_type

        t = route_type(32)
        assert chunk_type(t, IRR, 4).shape == (8, 3)


class TestStages:
    def test_alternating_streams(self, env):
        _, _, graph = env
        p = graph.program
        pos = p.instr_index()
        ml = graph.moe_layers[0]
        instrs = p.instructions[
            pos[ml.dispatch_uid] : pos[ml.combine_uid] + 1
        ]
        stages = build_stages(instrs)
        kinds = [s.is_comm for s in stages]
        # dispatch | a2a | experts | a2a | combine
        assert kinds == [False, True, False, True, False]


class TestPipelineCost:
    def test_pipelining_beats_sequential_for_comm_heavy_range(self, env):
        """A range with real non-MoE compute around the all-to-alls (the
        preceding self-attention block) pipelines profitably -- this is
        the kind of range the DP selects."""
        _, costs, graph = env
        p = graph.program
        pos = p.instr_index()
        ml = graph.moe_layers[0]
        # include the whole self-attention block before the MoE layer and
        # the residual add after it
        start = pos[ml.gate_matmul_uid] - 1 - 9
        end = pos[ml.combine_uid] + 2
        instrs = p.instructions[start:end]
        axes = infer_axes(instrs, p)
        assert axes is not None
        seq = sequential_cost_ms(p, instrs, costs)
        piped = pipeline_cost_ms(p, instrs, axes, 4, costs)
        assert piped.pipeline_ms < seq

    def test_overhead_grows_with_parts(self, env):
        _, costs, graph = env
        p = graph.program
        pos = p.instr_index()
        ml = graph.moe_layers[0]
        instrs = p.instructions[pos[ml.gate_matmul_uid] - 1 : pos[ml.combine_uid] + 1]
        axes = infer_axes(instrs, p)
        outside = set()
        for ins in p.instructions:
            outside.update(ins.inputs)
        o2 = pipeline_cost_ms(p, instrs, axes, 2, costs, outside).overhead_ms
        o8 = pipeline_cost_ms(p, instrs, axes, 8, costs, outside).overhead_ms
        assert o8 > o2

    def test_max_feasible_parts(self, env):
        _, _, graph = env
        p = graph.program
        pos = p.instr_index()
        ml = graph.moe_layers[0]
        instrs = p.instructions[pos[ml.gate_matmul_uid] - 1 : pos[ml.combine_uid] + 1]
        axes = infer_axes(instrs, p)
        # the batch axis (16) is the binding constraint
        assert max_feasible_parts(instrs, p, axes) == 16


class TestGrouping:
    def test_structural_ops_isolated(self, env):
        _, costs, graph = env
        p = graph.program
        fwd = forward_length(p)
        groups = build_groups(p, fwd, costs, group_ms=0.5)
        for g in groups:
            ops = [p.instructions[i].op for i in range(g.start, g.end)]
            if any(op == "all_to_all" for op in ops):
                assert len(ops) == 1
                assert g.has_a2a

    def test_groups_cover_forward_exactly(self, env):
        _, costs, graph = env
        p = graph.program
        fwd = forward_length(p)
        groups = build_groups(p, fwd, costs, group_ms=0.5)
        assert groups[0].start == 0
        assert groups[-1].end == fwd
        for a, b in zip(groups, groups[1:]):
            assert a.end == b.start


class TestDP:
    def test_plans_one_pipeline_per_moe_layer(self, env):
        _, costs, graph = env
        res = plan_partitions(graph.program, costs)
        assert len(res.plans) == graph.cfg.num_moe_layers

    def test_plans_disjoint_and_in_forward(self, env):
        _, costs, graph = env
        res = plan_partitions(graph.program, costs)
        fwd = forward_length(graph.program)
        last_end = 0
        for plan in res.plans:
            assert plan.start >= last_end
            assert plan.end <= fwd
            last_end = plan.end

    def test_plans_contain_a2a(self, env):
        _, costs, graph = env
        res = plan_partitions(graph.program, costs)
        for plan in res.plans:
            ops = {
                i.op for i in graph.program.instructions[plan.start : plan.end]
            }
            assert "all_to_all" in ops

    def test_predicted_improvement(self, env):
        _, costs, graph = env
        res = plan_partitions(graph.program, costs)
        assert res.optimized_fwd_ms < res.baseline_fwd_ms

    def test_respects_max_partitions(self, env):
        _, costs, graph = env
        res = plan_partitions(
            graph.program, costs, LancetHyperParams(max_partitions=2)
        )
        assert all(p.parts <= 2 for p in res.plans)

    def test_k_candidates(self):
        assert LancetHyperParams(max_partitions=8).k_candidates == [2, 4, 8]
        assert LancetHyperParams(max_partitions=4).k_candidates == [2, 4]
        assert LancetHyperParams(max_partitions=1).k_candidates == []

    def test_bpr_plans_exclude_gate(self):
        cluster = ClusterSpec.p4de(2)
        costs = CostEstimator(
            CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
            CommCostModel(cluster),
        )
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=4, gate="bpr"),
            batch=16,
            seq=512,
            num_gpus=16,
        )
        res = plan_partitions(graph.program, costs)
        assert res.plans, "BPR should still allow post-gate pipelines"
        for plan in res.plans:
            ops = [
                i.op for i in graph.program.instructions[plan.start : plan.end]
            ]
            assert "routing" not in ops
