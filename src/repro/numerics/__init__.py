"""Numpy kernels implementing every IR op (forward and backward)."""

from . import grads as _grads  # noqa: F401  (registers backward kernels)
from .kernels import FORWARD_KERNELS, attention_forward, kernel

__all__ = ["FORWARD_KERNELS", "attention_forward", "kernel"]
