"""Forward numpy kernels for every IR compute op.

Each kernel has the signature ``fn(inputs: list[np.ndarray], attrs: dict)
-> list[np.ndarray]`` and is registered under the IR op name.  The MoE ops
delegate to :mod:`repro.moe`, so the interpreter and the standalone MoE
layer share one implementation.

Kernels run in float64 regardless of the IR dtype: the IR dtype drives the
*timing* model, while numeric execution exists to verify mathematical
equivalence of graph transformations, which wants exactness.
"""

from __future__ import annotations

import numpy as np

from ..moe.dispatch import combine as moe_combine_fn
from ..moe.dispatch import dispatch as moe_dispatch_fn
from ..moe.experts import expert_ffn as moe_expert_ffn
from ..moe.experts import gelu as gelu_fn
from ..moe.layer import softmax as softmax_fn
from ..moe.routing import route_tokens

KernelFn = object  # Callable[[list[np.ndarray], dict], list]

FORWARD_KERNELS: dict[str, KernelFn] = {}


def kernel(op: str):
    """Decorator registering a forward kernel for ``op``."""

    def deco(fn):
        FORWARD_KERNELS[op] = fn
        return fn

    return deco


@kernel("matmul")
def _k_matmul(ins, attrs):
    x, w = ins
    return [x @ w]


@kernel("bias_add")
def _k_bias_add(ins, attrs):
    x, b = ins
    return [x + b]


@kernel("add")
def _k_add(ins, attrs):
    return [ins[0] + ins[1]]


@kernel("scale")
def _k_scale(ins, attrs):
    return [ins[0] * attrs.get("alpha", 1.0)]


@kernel("gelu")
def _k_gelu(ins, attrs):
    return [gelu_fn(ins[0])]


@kernel("relu")
def _k_relu(ins, attrs):
    return [np.maximum(ins[0], 0.0)]


@kernel("softmax")
def _k_softmax(ins, attrs):
    return [softmax_fn(ins[0], axis=-1)]


LN_EPS = 1e-5


@kernel("layernorm")
def _k_layernorm(ins, attrs):
    x, gamma, beta = ins
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    xhat = (x - mu) / np.sqrt(var + LN_EPS)
    return [xhat * gamma + beta]


@kernel("split3")
def _k_split3(ins, attrs):
    return list(np.split(ins[0], 3, axis=-1))


@kernel("concat")
def _k_concat(ins, attrs):
    return [np.concatenate(ins, axis=attrs["axis"])]


@kernel("split_chunk")
def _k_split_chunk(ins, attrs):
    chunks = np.array_split(ins[0], attrs["parts"], axis=attrs["axis"])
    return [chunks[attrs["index"]]]


@kernel("accumulate")
def _k_accumulate(ins, attrs):
    out = ins[0]
    for x in ins[1:]:
        out = out + x
    return [out]


@kernel("embedding")
def _k_embedding(ins, attrs):
    table, ids = ins
    return [table[ids.astype(np.int64)]]


@kernel("pos_embedding")
def _k_pos_embedding(ins, attrs):
    x, pe = ins
    return [x + pe[None]]


def _attention_heads(x: np.ndarray, heads: int) -> np.ndarray:
    b, s, h = x.shape
    return x.reshape(b, s, heads, h // heads).transpose(0, 2, 1, 3)


def _attention_merge(x: np.ndarray) -> np.ndarray:
    b, a, s, d = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, s, a * d)


def attention_forward(q, k, v, num_heads: int, causal: bool = True):
    """Multi-head scaled-dot-product attention; returns (out, probs, qh, kh, vh)."""
    qh = _attention_heads(q, num_heads)
    kh = _attention_heads(k, num_heads)
    vh = _attention_heads(v, num_heads)
    d = qh.shape[-1]
    scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(d)
    if causal:
        s = scores.shape[-1]
        mask = np.triu(np.ones((s, s), dtype=bool), k=1)
        scores = np.where(mask, -1e30, scores)
    probs = softmax_fn(scores, axis=-1)
    out = _attention_merge(probs @ vh)
    return out, probs, qh, kh, vh


@kernel("attention")
def _k_attention(ins, attrs):
    q, k, v = ins
    out, *_ = attention_forward(
        q, k, v, attrs["num_heads"], attrs.get("causal", True)
    )
    return [out]


@kernel("cross_entropy")
def _k_cross_entropy(ins, attrs):
    logits, labels = ins
    t = labels.size
    flat = logits.reshape(t, -1)
    lab = labels.reshape(-1).astype(np.int64)
    m = flat.max(axis=-1, keepdims=True)
    lse = m.squeeze(-1) + np.log(np.exp(flat - m).sum(axis=-1))
    nll = lse - flat[np.arange(t), lab]
    return [np.asarray(nll.mean())]


# ---------------------------------------------------------------------------
# MoE ops
# ---------------------------------------------------------------------------


@kernel("routing")
def _k_routing(ins, attrs):
    probs = ins[0]
    flat = probs.reshape(-1, probs.shape[-1])
    info, _ = route_tokens(
        flat,
        attrs["gate_type"],
        attrs["capacity"],
        k=attrs.get("k", 1),
        seed=attrs.get("seed", 0),
        token_offset=attrs.get("token_offset", 0),
    )
    return [info]


@kernel("capacity_init")
def _k_capacity_init(ins, attrs):
    return [np.zeros(attrs["num_experts"], dtype=np.int64)]


@kernel("routing_partial")
def _k_routing_partial(ins, attrs):
    probs, counts = ins
    flat = probs.reshape(-1, probs.shape[-1])
    info, new_counts = route_tokens(
        flat,
        attrs["gate_type"],
        attrs["capacity"],
        k=attrs.get("k", 1),
        seed=attrs.get("seed", 0),
        token_offset=attrs.get("token_offset", 0),
        capacity_counts=counts,
    )
    return [info, new_counts]


@kernel("route_slice")
def _k_route_slice(ins, attrs):
    from ..moe.routing import RoutingInfo

    info = ins[0]
    lo, hi = attrs["start"], attrs["stop"]
    keep = (info.token_idx >= lo) & (info.token_idx < hi)
    return [
        RoutingInfo(
            num_experts=info.num_experts,
            capacity=info.capacity,
            k=info.k,
            token_idx=info.token_idx[keep] - lo,
            expert_idx=info.expert_idx[keep],
            slot_idx=info.slot_idx[keep],
            num_tokens=hi - lo,
        )
    ]


@kernel("route_concat")
def _k_route_concat(ins, attrs):
    from ..moe.routing import RoutingInfo

    first = ins[0]
    toks, exps, slots = [], [], []
    offset = 0
    for info in ins:
        toks.append(info.token_idx + offset)
        exps.append(info.expert_idx)
        slots.append(info.slot_idx)
        offset += info.num_tokens
    return [
        RoutingInfo(
            num_experts=first.num_experts,
            capacity=first.capacity,
            k=first.k,
            token_idx=np.concatenate(toks),
            expert_idx=np.concatenate(exps),
            slot_idx=np.concatenate(slots),
            num_tokens=offset,
        )
    ]


@kernel("moe_dispatch")
def _k_moe_dispatch(ins, attrs):
    x, info = ins
    flat = x.reshape(-1, x.shape[-1])
    return [moe_dispatch_fn(flat, info)]


@kernel("moe_combine")
def _k_moe_combine(ins, attrs):
    buf, info, probs = ins
    flat_probs = probs.reshape(-1, probs.shape[-1])
    y = moe_combine_fn(buf, info, flat_probs)
    return [y.reshape(probs.shape[:-1] + (buf.shape[-1],))]


@kernel("expert_ffn")
def _k_expert_ffn(ins, attrs):
    buf, w1, b1, w2, b2 = ins
    return [moe_expert_ffn(buf, w1, b1, w2, b2)]


@kernel("sgd_update")
def _k_sgd_update(ins, attrs):
    w, g, m = ins
    m2 = attrs["momentum"] * m + g
    w2 = w - attrs["lr"] * m2
    return [w2, m2]
