"""Shared helpers for the per-figure experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core import CachingOpProfiler, CommCostModel, CostEstimator
from ...runtime import (
    COMPILED,
    ClusterSpec,
    FrameworkProfile,
    SimulationConfig,
    SyntheticRoutingModel,
    Timeline,
    simulate_program,
)


@dataclass
class FigureResult:
    """Outcome of reproducing one paper figure."""

    figure: str
    description: str
    rows: list[dict] = field(default_factory=list)
    table: str = ""
    notes: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.figure}] {self.description}\n{self.table}"


def make_costs(
    cluster: ClusterSpec, framework: FrameworkProfile = COMPILED
) -> CostEstimator:
    """Cost estimator (profiler + comm model) for a cluster."""
    return CostEstimator(
        CachingOpProfiler(gpu=cluster.gpu, framework=framework),
        CommCostModel(cluster),
    )


def simulate(
    program,
    cluster: ClusterSpec,
    framework: FrameworkProfile = COMPILED,
    padded_a2a: bool = True,
    seed: int = 1,
) -> Timeline:
    """One-iteration ground-truth simulation."""
    cfg = SimulationConfig(
        cluster=cluster,
        framework=framework,
        padded_a2a=padded_a2a,
        routing=SyntheticRoutingModel(seed=seed),
    )
    return simulate_program(program, config=cfg)


def forward_time_ms(timeline: Timeline, program) -> float:
    """End time of the last forward-pass instruction."""
    from ...ir import InstrKind

    fwd_uids = {
        i.uid
        for i in program.instructions
        if i.kind in (InstrKind.FORWARD, InstrKind.COMM)
    }
    # communication also appears in backward; bound by first DX instead
    first_bwd = None
    for pos, i in enumerate(program.instructions):
        if i.kind in (InstrKind.DX, InstrKind.DW):
            first_bwd = pos
            break
    if first_bwd is None:
        return timeline.makespan
    fwd_uids = {i.uid for i in program.instructions[:first_bwd]}
    return max(
        (iv.end for iv in timeline.intervals if iv.uid in fwd_uids),
        default=0.0,
    )
