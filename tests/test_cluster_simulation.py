"""Tests for the per-device cluster simulator and parallel executor."""

import numpy as np
import pytest

from repro.ir import Stream
from repro.runtime import (
    ClusterSpec,
    GroundTruthCost,
    NumericExecutor,
    SimulationConfig,
    SyntheticRoutingModel,
    UniformRoutingModel,
    device_byte_loads,
    imbalance_summary,
    render_cluster_timeline,
    simulate_cluster,
    simulate_program,
)
from repro.testing import fresh_values


def uniform_config(cluster, **kw):
    return SimulationConfig(
        cluster=cluster, routing=UniformRoutingModel(), **kw
    )


def skewed_config(cluster, **kw):
    return SimulationConfig(
        cluster=cluster,
        padded_a2a=False,
        routing=SyntheticRoutingModel(
            seed=7, concentration=0.3, hot_experts=1, hot_boost=0.5
        ),
        **kw,
    )


class TestUniformEquivalence:
    """Per-device simulation degenerates to the legacy single timeline."""

    def test_padded_bitwise_equal(self, tiny_graph, small_cluster):
        cfg = uniform_config(small_cluster)
        legacy = simulate_program(tiny_graph.program, config=cfg)
        ctl = simulate_cluster(tiny_graph.program, config=cfg)
        assert ctl.num_devices == small_cluster.num_gpus
        for tl in ctl.devices:
            assert tl.intervals == legacy.intervals
        assert ctl.makespan == legacy.makespan

    def test_irregular_uniform_bitwise_equal(self, tiny_graph, small_cluster):
        cfg = uniform_config(small_cluster, padded_a2a=False)
        legacy = simulate_program(tiny_graph.program, config=cfg)
        ctl = simulate_cluster(tiny_graph.program, config=cfg)
        for tl in ctl.devices:
            assert tl.intervals == legacy.intervals

    def test_shared_cost_object(self, tiny_graph, small_cluster):
        cost = GroundTruthCost(uniform_config(small_cluster))
        legacy = simulate_program(tiny_graph.program, cost=cost)
        ctl = simulate_cluster(tiny_graph.program, cost=cost)
        assert ctl.makespan == legacy.makespan

    def test_needs_cost_or_config(self, tiny_graph):
        with pytest.raises(ValueError):
            simulate_cluster(tiny_graph.program)


class TestSkewedRouting:
    def test_skew_increases_a2a_time(self, tiny_graph, small_cluster):
        """Skewed routing strictly slows the realized all-to-alls: the
        collective completes with the most loaded device, and hot-expert
        owners receive more than the uniform share."""
        uni = simulate_cluster(
            tiny_graph.program, config=uniform_config(small_cluster, padded_a2a=False)
        )
        skew = simulate_cluster(
            tiny_graph.program, config=skewed_config(small_cluster)
        )
        uni_a2a = max(uni.per_device_time_of({"all_to_all"}))
        skew_a2a = max(skew.per_device_time_of({"all_to_all"}))
        assert skew_a2a > uni_a2a

    def test_distinct_per_device_durations(self):
        """Under skew, devices see different all-to-all busy times.

        Needs more than 2 devices: with G=2 the loads are inherently
        symmetric (d0's send is d1's receive), so every device bottleneck
        is identical regardless of skew.
        """
        from repro import GPT2MoEConfig, build_training_graph

        graph = build_training_graph(
            GPT2MoEConfig.tiny(), batch=8, seq=16, num_gpus=4
        )
        cluster = ClusterSpec.for_gpus("a100", 4)
        ctl = simulate_cluster(graph.program, config=skewed_config(cluster))
        per = ctl.per_device_time_of({"all_to_all"})
        assert ctl.imbalance_ms({"all_to_all"}) > 0
        assert len(set(per)) > 1

    def test_collectives_complete_at_max(self, tiny_graph, small_cluster):
        """Each device's a2a interval ends no later than the common
        completion time, and downstream compute waits for it."""
        ctl = simulate_cluster(tiny_graph.program, config=skewed_config(small_cluster))
        for uid in {
            iv.uid
            for iv in ctl.device(0).intervals
            if iv.op == "all_to_all"
        }:
            ends = [
                next(iv.end for iv in tl.intervals if iv.uid == uid)
                for tl in ctl.devices
            ]
            starts = [
                next(iv.start for iv in tl.intervals if iv.uid == uid)
                for tl in ctl.devices
            ]
            assert len(set(starts)) == 1  # all participants start together
            complete = max(ends)
            # every later interval on any device starts >= completion of
            # the collective it depends on (spot-check: comm stream)
            for tl in ctl.devices:
                comm = [iv for iv in tl.intervals if iv.stream == Stream.COMM]
                idx = next(i for i, iv in enumerate(comm) if iv.uid == uid)
                for later in comm[idx + 1 :]:
                    assert later.start >= complete - 1e-12

    def test_makespan_at_least_legacy(self, tiny_graph, small_cluster):
        cfg = skewed_config(small_cluster)
        legacy = simulate_program(tiny_graph.program, config=cfg)
        cfg2 = skewed_config(small_cluster)
        ctl = simulate_cluster(tiny_graph.program, config=cfg2)
        assert ctl.makespan >= legacy.makespan - 1e-9


class TestStragglers:
    def test_straggler_stretches_compute(self, tiny_graph, small_cluster):
        base = simulate_cluster(
            tiny_graph.program, config=uniform_config(small_cluster)
        )
        slow = simulate_cluster(
            tiny_graph.program,
            config=uniform_config(small_cluster, straggler_slowdown={1: 1.5}),
        )
        assert slow.makespan > base.makespan
        assert slow.critical_device == 1
        # the healthy device's own compute is unchanged (ulp tolerance:
        # its ops start later behind the straggler's collectives, and
        # summing end-start at shifted offsets re-rounds the durations)
        assert np.isclose(
            slow.device(0).total_time_of(kind="forward"),
            base.device(0).total_time_of(kind="forward"),
            rtol=1e-12,
        )

    def test_sequence_form_and_validation(self, tiny_graph, small_cluster):
        cfg = uniform_config(small_cluster, straggler_slowdown=(1.0, 2.0))
        ctl = simulate_cluster(tiny_graph.program, config=cfg)
        assert ctl.critical_device == 1
        with pytest.raises(ValueError):
            uniform_config(
                small_cluster, straggler_slowdown=(1.0,)
            ).device_slowdowns()
        with pytest.raises(ValueError):
            uniform_config(
                small_cluster, straggler_slowdown={5: 2.0}
            ).device_slowdowns()
        with pytest.raises(ValueError):
            uniform_config(
                small_cluster, straggler_slowdown=(1.0, -1.0)
            ).device_slowdowns()


class TestUnitConventions:
    """The alpha/beta unit conventions documented on ClusterSpec.

    Bandwidth fields are GB/s (1e9 *bytes* per second) despite the
    historical ``_gbps`` suffix; latency fields are microseconds; sizes
    are bytes; every returned time is milliseconds.
    """

    def test_nic_presets_are_line_rate_over_eight(self):
        # p4de: 4 x 100 Gbit/s EFA NICs; p3dn: one 100 Gbit/s NIC
        assert ClusterSpec.p4de(2).node_nic_gbps == 4 * 100 / 8
        assert ClusterSpec.p3dn(2).node_nic_gbps == 100 / 8
        # the per-GPU share divides the node aggregate evenly
        assert ClusterSpec.p4de(2).nic_per_gpu_gbps == 50.0 / 8

    def test_bandwidth_is_bytes_per_second(self):
        """Moving N bytes at B GB/s costs N / (B * 1e9) seconds: strip
        the latency floor and the uniform a2a transfer must match the
        hand-computed bottleneck-stream time."""
        cl = ClusterSpec.p4de(2)
        nbytes = 1e8
        g = cl.num_gpus
        t = cl.a2a_time_ms(nbytes) - cl.alpha_ms()
        frac_inter = (g - cl.gpus_per_node) / g
        expected_s = (nbytes * frac_inter) / (cl.nic_per_gpu_gbps * 1e9)
        assert np.isclose(t, expected_s * 1e3, rtol=1e-12)

    def test_alpha_is_microseconds(self):
        """A zero-byte collective costs exactly the latency floor,
        converted us -> ms."""
        single = ClusterSpec.for_gpus("a100", 8)
        assert single.a2a_time_ms(0.0) == single.alpha_intra_us * 1e-3
        multi = ClusterSpec.p4de(2)
        assert multi.alpha_ms() == multi.alpha_inter_us * 1e-3

    def test_irregular_completion_is_device_times_max(self):
        """a2a_time_ms_irregular is, by definition, the busiest device
        of a2a_device_times_ms -- for flat and hierarchical alike."""
        rng = np.random.default_rng(11)
        for cl in (ClusterSpec.for_gpus("a100", 8), ClusterSpec.p3dn(2)):
            pair = np.abs(rng.standard_normal((cl.num_gpus,) * 2)) * 1e6
            assert cl.a2a_time_ms_irregular(pair) == float(
                cl.a2a_device_times_ms(pair).max()
            )
            assert cl.hierarchical_a2a_time_ms_irregular(pair) == float(
                cl.hierarchical_a2a_device_times_ms(pair).max()
            )

    def test_topology_mirrors_cluster_spec(self):
        cl = ClusterSpec.p3dn(4)
        topo = cl.topology
        assert topo.num_gpus == cl.num_gpus
        assert topo.nic_per_gpu_gbps == cl.nic_per_gpu_gbps
        assert [topo.node_of(r) for r in range(cl.num_gpus)] == list(
            np.arange(cl.num_gpus) // cl.gpus_per_node
        )


class TestRoutingSkewKnobs:
    def test_hot_experts_off_reproduces_plain_draws(self):
        plain = SyntheticRoutingModel(seed=3)
        knobbed = SyntheticRoutingModel(seed=3, hot_experts=0, hot_boost=0.9)
        a = plain.counts_for("L", 4, 8, 256, 64)
        b = knobbed.counts_for("L", 4, 8, 256, 64)
        assert np.array_equal(a, b)

    def test_hot_experts_concentrate_load(self):
        m = SyntheticRoutingModel(
            seed=3, concentration=64.0, hot_experts=1, hot_boost=0.6
        )
        counts = m.counts_for("L", 4, 8, 256, 1_000_000)
        hot = counts.sum(axis=0).argmax()
        share = counts[:, hot].sum() / counts.sum()
        assert share > 0.5

    def test_device_byte_loads(self):
        pair = np.array([[1.0, 2.0], [3.0, 4.0]])
        send, recv = device_byte_loads(pair)
        assert send.tolist() == [2.0, 3.0]  # diagonal excluded
        assert recv.tolist() == [3.0, 2.0]


class TestClusterRendering:
    def test_render_and_summary(self, tiny_graph, small_cluster):
        ctl = simulate_cluster(tiny_graph.program, config=skewed_config(small_cluster))
        art = render_cluster_timeline(ctl, width=60)
        lines = art.splitlines()
        # header + 2 lanes per device + legend
        assert len(lines) == 1 + 2 * ctl.num_devices + 1
        assert "d0 comp |" in art and "comm |" in art
        summary = imbalance_summary(ctl)
        assert "spread" in summary and "critical device" in summary

    def test_device_subset(self, tiny_graph, small_cluster):
        ctl = simulate_cluster(
            tiny_graph.program, config=uniform_config(small_cluster)
        )
        art = render_cluster_timeline(ctl, width=40, devices=[1])
        assert "d1 comp |" in art and "d0" not in art


class TestParallelExecutor:
    def test_parallel_bit_identical(self, tiny_graph, tiny_values):
        serial = NumericExecutor(tiny_graph.program, 2, parallel=False)
        par = NumericExecutor(tiny_graph.program, 2, parallel=True)
        e1 = serial.run(serial.make_envs(fresh_values(tiny_values)))
        e2 = par.run(par.make_envs(fresh_values(tiny_values)))
        for d in range(2):
            assert set(e1[d].values) == set(e2[d].values)
            for vid, val in e1[d].values.items():
                other = e2[d][vid]
                if isinstance(val, np.ndarray):
                    assert np.array_equal(val, other, equal_nan=True), vid
                else:
                    assert val == other

    def test_segment_split_covers_program(self, tiny_graph):
        segments = NumericExecutor._split_segments(tiny_graph.program)
        total = sum(
            1 if tag == "collective" else len(instrs)
            for tag, instrs in segments
        )
        assert total == len(tiny_graph.program.instructions)
        tags = [tag for tag, _ in segments]
        assert "collective" in tags and "kernels" in tags

    def test_program_mutation_visible_on_next_run(self, tiny_graph, tiny_values):
        """The executor follows in-place program rewrites between runs
        (passes mutate programs; segments must not be stale)."""
        p = tiny_graph.program.clone()
        ex = NumericExecutor(p, 2, parallel=False)
        ex.run(ex.make_envs(fresh_values(tiny_values)))
        p.instructions[0] = p.instructions[0].with_(op="matmul_fused_bogus")
        with pytest.raises((NotImplementedError, KeyError)):
            ex.run(ex.make_envs(fresh_values(tiny_values)))

    def test_parallel_trainer_matches_serial(self, tiny_graph):
        from repro.train import Trainer

        t1 = Trainer(tiny_graph, seed=0, parallel=False)
        t2 = Trainer(tiny_graph, seed=0, parallel=True)
        r1 = t1.run(2)
        r2 = t2.run(2)
        assert [r.losses for r in r1] == [r.losses for r in r2]

    def test_parallel_error_propagates(self, tiny_graph, tiny_values):
        p = tiny_graph.program.clone()
        p.instructions[0] = p.instructions[0].with_(op="matmul_fused_bogus")
        ex = NumericExecutor(p, 2, parallel=True)
        with pytest.raises((NotImplementedError, KeyError)):
            ex.run(ex.make_envs(fresh_values(tiny_values)))
