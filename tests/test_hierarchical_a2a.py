"""Hierarchical (2-hop) all-to-all: numerics, timing model, planner choice.

The load-bearing invariants:

- ``hierarchical_all_to_all`` is **bit-identical** to
  ``all_to_all_irregular`` under randomized counts and skew (it moves
  exactly the same rows, just via relays);
- its realized per-phase traffic matches the analytic decomposition
  (``Topology.decompose_pair_bytes``) the network model prices with;
- on a single node the hierarchical timing and pricing reduce to the
  flat model exactly;
- the optimizer's per-a2a choice never makes a plan worse, and the
  ground-truth simulator honors the annotation.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import CommCostModel, LancetOptimizer
from repro.runtime import (
    ClusterSpec,
    RoutingSignature,
    Topology,
    all_to_all_irregular,
    hierarchical_all_to_all,
)
from repro.testing import (
    random_pair_bytes,
    routed_buffers,
    st_exchange_params,
)


class TestBitIdentity:
    @pytest.mark.parametrize("direction", ["scatter", "gather"])
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_flat_irregular(self, direction, seed):
        """Randomized counts/skew: same received buffers, bit for bit."""
        rng = np.random.default_rng(seed)
        g = int(rng.choice([4, 8, 16]))
        el = int(rng.choice([1, 2]))
        c, h, t = int(rng.integers(4, 10)), 4, int(rng.integers(8, 40))
        bufs, counts = routed_buffers(
            rng, g, el, c, h, t, temperature=rng.uniform(0.5, 4.0)
        )
        if direction == "gather":
            bufs, _ = all_to_all_irregular(bufs, counts, "scatter")
        gpn = 4 if g >= 8 else 2
        topo = Topology(
            num_nodes=g // gpn,
            gpus_per_node=gpn,
            intra_bw_gbps=200.0,
            node_nic_gbps=50.0,
        )
        flat, pair_flat = all_to_all_irregular(bufs, counts, direction)
        hier, pair_hier, traffic = hierarchical_all_to_all(
            bufs, counts, direction, topo
        )
        for a, b in zip(flat, hier):
            assert np.array_equal(a, b)
        assert np.array_equal(pair_flat, pair_hier)
        # realized per-phase traffic == analytic decomposition
        ref = topo.decompose_pair_bytes(pair_flat)
        assert np.allclose(ref.intra_gather, traffic.intra_gather)
        assert np.allclose(ref.inter_node, traffic.inter_node)
        assert np.allclose(ref.intra_scatter, traffic.intra_scatter)

    @given(params=st_exchange_params())
    @settings(max_examples=40, deadline=None)
    def test_property_bit_identical(self, params):
        """Hypothesis form of the invariant: for ANY realized routing
        (any skew, any clipping), the 2-hop exchange delivers the exact
        buffers of the flat irregular exchange.  The scenario strategy is
        shared with the batch-simulation differential harness
        (:mod:`repro.testing`)."""
        g = params["g"]
        rng = np.random.default_rng(params["seed"])
        bufs, counts = routed_buffers(
            rng, g, params["el"], params["c"], 4, params["t"],
            params["temperature"],
        )
        if params["direction"] == "gather":
            bufs, _ = all_to_all_irregular(bufs, counts, "scatter")
        topo = Topology(
            num_nodes=2,
            gpus_per_node=g // 2,
            intra_bw_gbps=200.0,
            node_nic_gbps=50.0,
        )
        flat, _ = all_to_all_irregular(bufs, counts, params["direction"])
        hier, _, _ = hierarchical_all_to_all(
            bufs, counts, params["direction"], topo
        )
        for a, b in zip(flat, hier):
            assert np.array_equal(a, b)

    def test_topology_size_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        bufs, counts = routed_buffers(rng, 4, 1, 6, 4, 16)
        topo = Topology(
            num_nodes=2, gpus_per_node=4, intra_bw_gbps=200, node_nic_gbps=50
        )
        with pytest.raises(ValueError):
            hierarchical_all_to_all(bufs, counts, "scatter", topo)


class TestDecomposition:
    def test_byte_conservation(self):
        """Every cross-node byte crosses once; intra legs cover the
        forwarding paths (gather: source->relay, scatter: relay->dest)."""
        rng = np.random.default_rng(1)
        topo = ClusterSpec.p4de(2).topology
        pair = random_pair_bytes(rng, topo.num_gpus, skew=8.0)
        tr = topo.decompose_pair_bytes(pair)
        node_of = topo.node_of_ranks()
        cross = np.where(node_of[:, None] != node_of[None, :], pair, 0.0)
        same = np.where(
            (node_of[:, None] == node_of[None, :])
            & ~np.eye(topo.num_gpus, dtype=bool),
            pair,
            0.0,
        )
        assert np.isclose(tr.inter_node.sum(), cross.sum())
        # gather = direct same-node traffic + cross traffic not already
        # sitting on its send relay; scatter = cross traffic not already
        # addressed to its receive relay
        assert tr.intra_gather.sum() <= same.sum() + cross.sum()
        assert tr.intra_gather.sum() >= same.sum()
        assert tr.intra_scatter.sum() <= cross.sum()
        # no phase matrix moves bytes device-to-itself
        assert np.all(np.diag(tr.intra_gather) == 0)
        assert np.all(np.diag(tr.intra_scatter) == 0)

    def test_relay_round_robin(self):
        topo = Topology(
            num_nodes=4, gpus_per_node=8, intra_bw_gbps=200, node_nic_gbps=50
        )
        # destination nodes spread over distinct local ranks of the source
        relays = {topo.send_relay(0, n) for n in range(1, 4)}
        assert len(relays) == 3
        for n in range(1, 4):
            assert topo.node_of(topo.send_relay(0, n)) == 0
            assert topo.node_of(topo.recv_relay(0, n)) == n


class TestTimingModel:
    def test_single_node_reduces_to_flat_exactly(self):
        rng = np.random.default_rng(2)
        cl = ClusterSpec.for_gpus("a100", 8)
        pair = random_pair_bytes(rng, 8, skew=4.0)
        assert np.array_equal(
            cl.hierarchical_a2a_device_times_ms(pair),
            cl.a2a_device_times_ms(pair),
        )
        assert cl.hierarchical_a2a_time_ms_irregular(
            pair
        ) == cl.a2a_time_ms_irregular(pair)

    def test_device_times_max_is_completion(self):
        rng = np.random.default_rng(3)
        for cl in (ClusterSpec.p4de(2), ClusterSpec.p3dn(4)):
            pair = random_pair_bytes(rng, cl.num_gpus, skew=16.0)
            times = cl.hierarchical_a2a_device_times_ms(pair)
            assert times.shape == (cl.num_gpus,)
            assert float(times.max()) == cl.hierarchical_a2a_time_ms_irregular(
                pair
            )

    def test_hierarchical_wins_under_concentrated_cross_skew(self):
        """A single hot receiver bottlenecks the flat exchange on its NIC
        share; node-aggregation spreads it over the whole node NIC."""
        cl = ClusterSpec.p4de(2)
        g = cl.num_gpus
        pair = np.full((g, g), 1e5)
        pair[:, 3] = 4e7
        assert cl.hierarchical_a2a_time_ms_irregular(
            pair
        ) < cl.a2a_time_ms_irregular(pair)

    def test_flat_wins_under_uniform_traffic(self):
        cl = ClusterSpec.p4de(2)
        pair = np.full((cl.num_gpus, cl.num_gpus), 1e6)
        assert cl.a2a_time_ms_irregular(
            pair
        ) < cl.hierarchical_a2a_time_ms_irregular(pair)


class TestHierarchicalPricing:
    def test_single_node_pricing_reduces_to_flat(self):
        """Property: hierarchical pricing == flat pricing, bit for bit,
        for single-node clusters -- at any size, parts, signature."""
        rng = np.random.default_rng(4)
        comm = CommCostModel(ClusterSpec.for_gpus("a100", 8))
        for _ in range(20):
            nbytes = float(rng.uniform(1e3, 1e9))
            parts = int(rng.choice([1, 2, 4, 8]))
            sig = RoutingSignature.from_pair_bytes(
                random_pair_bytes(rng, 8, skew=rng.uniform(1, 10))
            )
            assert comm.a2a_hierarchical_ms(
                nbytes, parts, sig
            ) == comm.a2a_skewed_ms(nbytes, parts, sig)
            assert comm.a2a_best_ms(nbytes, parts, sig)[1] == "flat"

    def test_bandwidth_symmetric_cluster_reduces_to_flat(self):
        """No NVLink advantage -> the 2-hop detour can never pay off."""
        import dataclasses

        cl = ClusterSpec.p4de(2)
        flat_fabric = dataclasses.replace(
            cl, intra_bw_gbps=cl.nic_per_gpu_gbps
        )
        comm = CommCostModel(flat_fabric)
        assert not comm.hierarchy_helps
        assert comm.a2a_hierarchical_ms(1e7, 2) == comm.a2a_skewed_ms(1e7, 2)

    def test_pricing_matches_ground_truth_completion(self):
        """With a signature summarizing the realized pair bytes, the
        hierarchical price reconstructs the simulator's completion time."""
        rng = np.random.default_rng(5)
        cl = ClusterSpec.p3dn(2)
        pair = random_pair_bytes(rng, cl.num_gpus, skew=12.0)
        sig = RoutingSignature.from_pair_bytes(pair, topology=cl.topology)
        assert sig.hier_load is not None
        priced = CommCostModel(cl).a2a_hierarchical_ms(0.0, 1, sig)
        truth = cl.hierarchical_a2a_time_ms_irregular(pair)
        assert np.isclose(priced, truth, rtol=1e-12)

    def test_skewed_signature_without_topology_stays_flat(self):
        """Regression: a *skewed* signature summarized without a topology
        carries no phase loads, so the 2-hop price would be a guess --
        the choice must stay flat rather than act on a guessed win, and
        the guess itself must at least scale with the bottleneck."""
        cl = ClusterSpec.p3dn(2)
        g = cl.num_gpus
        # cross traffic concentrated into node 0: node-aggregation does
        # NOT help here, uniform coefficients grossly underprice it
        pair = np.full((g, g), 1e4)
        pair[:, :8] = 3e6
        blind = RoutingSignature.from_pair_bytes(pair)  # no topology
        assert blind.hier_load is None and not blind.is_uniform
        comm = CommCostModel(cl)
        assert comm.a2a_best_ms(1e7, 1, blind)[1] == "flat"
        # the conservative estimate is bottleneck-scaled, not uniform
        # (same volume base: a signature without absolute scale)
        shape_only = RoutingSignature(load=blind.load)
        latency = cl.topology.latency_ms()
        assert np.isclose(
            comm.a2a_hierarchical_ms(1e7, 1, shape_only) - latency,
            (comm.a2a_hierarchical_ms(1e7, 1, None) - latency)
            * blind.bottleneck,
            rtol=1e-12,
        )
        # with the measured phase loads the choice is trustworthy again
        aware = RoutingSignature.from_pair_bytes(pair, topology=cl.topology)
        best_ms, algo = comm.a2a_best_ms(1e7, 1, aware)
        truth = cl.hierarchical_a2a_time_ms_irregular(pair)
        if algo == "hierarchical":
            assert np.isclose(best_ms, truth, rtol=1e-12)
        else:
            assert best_ms <= truth

    def test_signature_keys_distinguish_hierarchy(self):
        rng = np.random.default_rng(6)
        pair = random_pair_bytes(rng, 16, skew=6.0)
        plain = RoutingSignature.from_pair_bytes(pair)
        topo = ClusterSpec.p4de(2).topology
        aware = RoutingSignature.from_pair_bytes(pair, topology=topo)
        assert plain.load == aware.load
        assert plain.key() != aware.key()
        # single-node topology carries no hierarchy info
        single = RoutingSignature.from_pair_bytes(
            pair,
            topology=Topology(
                num_nodes=1,
                gpus_per_node=16,
                intra_bw_gbps=220.0,
                node_nic_gbps=50.0,
            ),
        )
        assert single.hier_load is None
        assert single.key() == plain.key()


class TestOptimizerChoice:
    @pytest.fixture(scope="class")
    def planned(self):
        import dataclasses

        from repro.models import GPT2MoEConfig, build_training_graph
        from repro.runtime import (
            SimulationConfig,
            SyntheticRoutingModel,
            simulate_cluster,
        )

        # large enough that a2a transfer time dwarfs the 2-hop latency
        # overhead (tiny buffers legitimately keep choosing flat)
        cfg = dataclasses.replace(GPT2MoEConfig.gpt2_s_moe(), num_layers=2)
        graph = build_training_graph(cfg, batch=8, seq=256, num_gpus=16)
        cluster = ClusterSpec.p3dn(2)
        routing = SyntheticRoutingModel(
            seed=1, concentration=0.3, hot_experts=1, hot_boost=0.7
        )

        opt_flat = LancetOptimizer(cluster)
        signatures = opt_flat.observe_routing(graph, routing)
        prog_flat, rep_flat = opt_flat.optimize(graph)

        opt_hier = LancetOptimizer(cluster, enable_hierarchical_a2a=True)
        opt_hier.set_routing_signatures(signatures or None)
        prog_hier, rep_hier = opt_hier.optimize(graph)

        def iter_ms(program):
            cfg = SimulationConfig(
                cluster=cluster, padded_a2a=False, routing=routing
            )
            return simulate_cluster(program, config=cfg).makespan

        return prog_flat, rep_flat, prog_hier, rep_hier, iter_ms

    def test_choice_recorded_and_annotated(self, planned):
        _, rep_flat, prog_hier, rep_hier, _ = planned
        assert rep_flat.a2a_algorithms is None
        assert rep_hier.a2a_algorithms is not None
        assert rep_hier.hierarchical_a2a_count > 0
        annotated = [
            ins.attrs.get("a2a_algo")
            for ins in prog_hier.instructions
            if ins.op == "all_to_all" and ins.attrs.get("irregular")
        ]
        assert all(a in ("flat", "hierarchical") for a in annotated)
        assert (
            annotated.count("hierarchical") == rep_hier.hierarchical_a2a_count
        )

    def test_hierarchical_plan_not_slower(self, planned):
        prog_flat, _, prog_hier, _, iter_ms = planned
        assert iter_ms(prog_hier) <= iter_ms(prog_flat) * 1.001

    def test_flat_only_programs_unannotated(self, planned):
        prog_flat, _, _, _, _ = planned
        assert not any(
            "a2a_algo" in ins.attrs for ins in prog_flat.instructions
        )


class TestTrainerIntegration:
    def test_hierarchical_trainer_trains_bit_identically(self):
        """The a2a algorithm annotation is a *timing* decision: numeric
        training under a hierarchical-enabled optimizer produces exactly
        the losses of the flat-only optimizer, re-plans included."""
        from repro.models import GPT2MoEConfig, build_training_graph
        from repro.train import ReoptimizingTrainer

        graph = build_training_graph(
            GPT2MoEConfig.tiny(), batch=8, seq=16, num_gpus=16
        )
        cluster = ClusterSpec.p3dn(2)

        def run(**kw):
            trainer = ReoptimizingTrainer(
                graph,
                LancetOptimizer(cluster, **kw),
                drift_threshold=0.02,
            )
            trainer.run(3)
            return trainer

        flat = run()
        hier = run(enable_hierarchical_a2a=True)
        assert [r.losses for r in flat.history] == [
            r.losses for r in hier.history
        ]
        # observed signatures carry the 2-hop phase loads for re-plans
        assert all(
            s.hier_load is not None or s.is_uniform
            for s in hier._observed.values()
        )
