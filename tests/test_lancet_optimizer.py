"""End-to-end tests for the LancetOptimizer."""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro import (
    GPT2MoEConfig,
    LancetHyperParams,
    LancetOptimizer,
    build_training_graph,
    validate,
)
from repro.runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    run_program,
    simulate_program,
)


@pytest.fixture(scope="module")
def medium():
    """A mid-size setting where partitioning actually pays off."""
    graph = build_training_graph(
        GPT2MoEConfig.gpt2_s_moe(num_layers=4), batch=8, seq=256, num_gpus=16
    )
    cluster = ClusterSpec.p4de(2)
    return graph, cluster


class TestOptimize:
    def test_produces_valid_program(self, medium):
        graph, cluster = medium
        optimized, _ = LancetOptimizer(cluster).optimize(graph)
        validate(optimized)

    def test_input_untouched(self, medium):
        graph, cluster = medium
        before = list(graph.program.instructions)
        LancetOptimizer(cluster).optimize(graph)
        assert graph.program.instructions == before

    def test_simulated_speedup(self, medium):
        graph, cluster = medium
        optimized, _ = LancetOptimizer(cluster).optimize(graph)
        base = SimulationConfig(
            cluster=cluster, padded_a2a=True, routing=SyntheticRoutingModel(seed=1)
        )
        lan = SimulationConfig(
            cluster=cluster, padded_a2a=False, routing=SyntheticRoutingModel(seed=1)
        )
        t0 = simulate_program(graph.program, config=base).makespan
        t1 = simulate_program(optimized, config=lan).makespan
        assert t1 < t0

    def test_report_contents(self, medium):
        graph, cluster = medium
        _, report = LancetOptimizer(cluster).optimize(graph)
        assert report.dw_schedule is not None
        assert report.partition is not None
        assert report.optimization_seconds > 0
        assert report.predicted_iteration_ms > 0
        assert report.profiled_ops > 0
        assert [t.name for t in report.pass_timings] == [
            "weight-grad-schedule",
            "operator-partition",
        ]

    def test_ablation_flags(self, medium):
        graph, cluster = medium
        _, r_full = LancetOptimizer(cluster).optimize(graph)
        _, r_nodw = LancetOptimizer(
            cluster, enable_dw_schedule=False
        ).optimize(graph)
        _, r_nopart = LancetOptimizer(
            cluster, enable_partition=False
        ).optimize(graph)
        assert r_nodw.dw_schedule is None and r_nodw.partition is not None
        assert r_nopart.partition is None and r_nopart.dw_schedule is not None
        assert r_full.dw_schedule is not None and r_full.partition is not None

    def test_hyper_params_threaded(self, medium):
        graph, cluster = medium
        hp = LancetHyperParams(max_partitions=2)
        _, report = LancetOptimizer(cluster, hyper_params=hp).optimize(graph)
        assert all(p.parts <= 2 for p in report.partition.plans)

    def test_profiler_cache_reused_across_optimizations(self, medium):
        graph, cluster = medium
        opt = LancetOptimizer(cluster)
        opt.optimize(graph)
        n1 = opt.profiler.profile_count
        opt.optimize(graph)
        assert opt.profiler.profile_count == n1  # all cache hits

    def test_numeric_equivalence_tiny(self, tiny_graph, tiny_values, small_cluster):
        """Whatever the optimizer decides on the tiny model must keep the
        numerics bit-identical."""
        optimized, _ = LancetOptimizer(small_cluster).optimize(tiny_graph)
        base = run_program(tiny_graph.program, fresh_values(tiny_values))
        out = run_program(optimized, fresh_values(tiny_values))
        assert np.array_equal(
            base[0][tiny_graph.loss], out[0][tiny_graph.loss]
        )
        for pid, gid in tiny_graph.program.grads.items():
            assert np.allclose(
                base[0][gid], out[0][optimized.grads[pid]], atol=0, rtol=0
            )

    def test_predict_iteration(self, medium):
        graph, cluster = medium
        opt = LancetOptimizer(cluster)
        pred = opt.predict_iteration_ms(graph.program)
        actual = simulate_program(
            graph.program,
            config=SimulationConfig(
                cluster=cluster, padded_a2a=True,
                routing=SyntheticRoutingModel(seed=1),
            ),
        ).makespan
        assert abs(pred - actual) / actual < 0.25
