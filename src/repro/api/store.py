"""Disk-backed plan cache shared across processes.

A :class:`PlanStore` maps *what was planned* -- the canonical key
``(graph fingerprint, cluster spec, framework, policy, signature
bucket)`` -- to a saved :class:`~repro.api.plan.Plan`, so that a second
process (or a fleet of trainers) gets a warm plan for the price of a
JSON read instead of a planner run.  Keys contain nothing process-local
(see :mod:`repro.api.fingerprint`); signatures enter the key in their
quantized bucket form, exactly like the in-memory plan cache of
:class:`~repro.train.ReoptimizingTrainer`, so realizations that would
yield the same plan share an entry.

Layout: one ``<digest>.plan.json`` per entry under the store root, plus
two sidecar memos -- ``scenario_index.json`` mapping scenario identities
to entry digests (the memo that lets ``compile(scenario, store=...)``
answer a warm lookup without even building the graph) and
``signature_index.json`` mapping each *base* identity (everything but
the signature bucket) to the buckets stored for it, which is what
nearest-signature serving (:meth:`PlanStore.nearest`,
:class:`repro.serving.PlanServer`) walks on an exact-bucket miss.

Concurrency: entry writes are atomic (write-to-temp + rename), and every
sidecar read-modify-write (index updates, eviction) runs under an
exclusive ``flock`` on ``<root>/.lock``, so any number of server workers
or fleet processes can share one store directory -- concurrent writers
at worst duplicate planning work, never corrupt an entry or an index.

Reads of entries this process already loaded are served from an
in-memory cache validated by *content fingerprint* (SHA-256 of the file
bytes), not by mtime: a file replaced within the filesystem's mtime
granularity -- easy to hit when a server hot-swaps a re-plan split
milliseconds after the original write -- is still detected and reloaded.

Capacity: ``max_entries`` / ``max_bytes`` bound the store; ``put``
evicts least-recently-*used* entries (entry files are touched on every
hit, so file mtime approximates cross-process LRU order) and prunes the
sidecar indexes.  Eviction counters join the hit/miss stats in
:meth:`PlanStore.stats`-- the same counter style as
``LancetReport.cache_stats``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import os
import pathlib
import warnings

try:  # POSIX; on platforms without fcntl the lock degrades to a no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..runtime.cluster import ClusterSpec
from ..runtime.device import FrameworkProfile
from .codec import cluster_to_json, framework_to_json
from .fingerprint import canonical_digest
from .plan import (
    Plan,
    PlanError,
    PlanPolicy,
    PlanSchemaError,
    atomic_write_text,
)
from .scenario import Scenario

#: quantization (decimal digits) of signature loads in store keys --
#: matches the ReoptimizingTrainer plan-cache default
DEFAULT_KEY_DIGITS = 2


def _plan_pipeline(plan: Plan) -> dict | None:
    """The pipeline-request portion of a plan's store key (``None`` for
    flat plans)."""
    stage_map = getattr(plan, "stage_map", None)
    return stage_map.request_dict() if stage_map is not None else None


def signature_bucket(signatures: dict | None, digits: int = DEFAULT_KEY_DIGITS):
    """Quantized, canonical form of a signature mapping for cache keys
    (``None`` -- the uniform approximation -- buckets as ``None``)."""
    if not signatures:
        return None
    return [
        [str(layer), list(sig.key(digits))]
        for layer, sig in sorted(signatures.items(), key=lambda kv: str(kv[0]))
    ]


def bucket_distance(a, b) -> float:
    """Distance between two quantized signature buckets.

    Mirrors :meth:`~repro.runtime.RoutingSignature.drift_from` on the
    bucketed form: per layer, the larger of the mean absolute load
    difference and the relative traffic-volume change, maximized over
    layers.  ``inf`` for structurally incomparable buckets (different
    layer sets, device counts, or hierarchy-awareness) and for
    uniform-vs-conditioned pairs -- nearest-signature serving must never
    silently cross those lines.
    """
    if a is None and b is None:
        return 0.0
    if a is None or b is None:
        return math.inf
    layers_a = {str(layer): key for layer, key in a}
    layers_b = {str(layer): key for layer, key in b}
    if set(layers_a) != set(layers_b):
        return math.inf
    worst = 0.0
    for layer, key_a in layers_a.items():
        key_b = layers_b[layer]
        if len(key_a) != len(key_b):
            return math.inf
        # key layout (RoutingSignature.key): (scale_MB, *loads[, *hier])
        scale_a, scale_b = float(key_a[0]), float(key_b[0])
        if scale_a > 0 and scale_b > 0:
            scale_d = abs(scale_a - scale_b) / max(scale_a, scale_b)
        elif scale_a == scale_b:
            scale_d = 0.0
        else:
            return math.inf
        loads_a, loads_b = key_a[1:], key_b[1:]
        load_d = sum(
            abs(float(x) - float(y)) for x, y in zip(loads_a, loads_b)
        ) / max(len(loads_a), 1)
        worst = max(worst, scale_d, load_d)
    return worst


class PlanStore:
    """Disk-backed, cross-process plan cache (see module docstring).

    Parameters
    ----------
    root:
        Directory holding the entries (created if missing).
    digits:
        Signature-bucket quantization used in keys.
    max_entries:
        Entry-count bound; ``put`` evicts approximately-LRU entries
        beyond it (``None`` = unbounded).
    max_bytes:
        Total-size bound over all entry files, same eviction policy.
    create:
        Create the root directory if missing (the default).  Pass
        ``False`` for read-only inspection (``serve stats``): a missing
        root then behaves as an empty store instead of leaving a fresh
        directory behind as a side effect.
    """

    def __init__(
        self,
        root,
        digits: int = DEFAULT_KEY_DIGITS,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        create: bool = True,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = pathlib.Path(root).expanduser()
        if self.root.exists() and not self.root.is_dir():
            raise PlanError(
                f"plan store root {self.root} exists but is not a directory"
            )
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        self.digits = digits
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: entry key -> (content sha256, Plan); validated against the
        #: file's current content digest, never its mtime
        self._memory: dict[str, tuple[str, Plan]] = {}
        self.stats = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "memory_hits": 0,
            "scenario_hits": 0,
            "nearest_hits": 0,
            "evictions": 0,
        }
        #: set once the first lock attempt fails (unsupported
        #: filesystem): later sidecar updates run lockless
        self._lock_broken = False

    # -- keys ----------------------------------------------------------------

    def _base_payload(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        placement=None,
        pipeline=None,
    ) -> dict:
        payload = {
            "fingerprint": fingerprint,
            "cluster": cluster_to_json(cluster),
            "framework": framework_to_json(framework),
            "policy": policy.to_dict(),
        }
        if placement is not None:
            # placement-free keys stay byte-identical to pre-placement
            # stores (existing entries keep resolving); a placement
            # qualifies the key by its content fingerprint so plans for
            # different expert layouts can never collide
            from ..placement import placement_map_fingerprint

            payload["placement"] = placement_map_fingerprint(placement)
        if pipeline is not None:
            # same optional-key pattern for staged plans: the *request*
            # (stages/microbatches/schedule) is part of the identity --
            # two schedules over the same graph must never share an
            # entry -- while chosen boundaries are planner output
            payload["pipeline"] = dict(pipeline)
        return payload

    def key_for(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        signatures: dict | None = None,
        placement=None,
        pipeline=None,
    ) -> str:
        """Digest of the canonical cache key."""
        payload = self._base_payload(
            fingerprint, cluster, policy, framework, placement, pipeline
        )
        payload["signatures"] = signature_bucket(signatures, self.digits)
        return canonical_digest(payload)

    def base_key_for(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        placement=None,
        pipeline=None,
    ) -> str:
        """Digest of the signature-free identity: the family of entries
        that differ only in their routing-signature bucket."""
        return canonical_digest(
            self._base_payload(
                fingerprint, cluster, policy, framework, placement, pipeline
            )
        )

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key[:32]}.plan.json"

    # -- locking -------------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive cross-process lock over the store's sidecar state.

        Entry files themselves never need it (atomic rename), but index
        read-modify-writes and eviction do: two unlocked writers would
        lose each other's index updates.

        On filesystems where ``flock`` is unavailable (some network /
        container mounts raise ``OSError``) the store degrades to
        *lockless* sidecar updates with a one-time warning rather than
        failing every ``put``: entry files stay safe either way (atomic
        rename), only concurrent index updates may then lose entries --
        which downstream code already treats as a cache miss.
        """
        if fcntl is None or self._lock_broken:  # pragma: no cover
            yield
            return
        fd = None
        try:
            fd = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR, 0o666)
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError as err:
            if fd is not None:
                os.close(fd)
            self._lock_broken = True
            warnings.warn(
                f"plan store locking unavailable on {self.root} ({err}); "
                f"degrading to lockless index updates (concurrent writers "
                f"may lose index entries, which reads treat as misses)",
                RuntimeWarning,
                stacklevel=3,
            )
            yield
            return
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- lookups -------------------------------------------------------------

    def get(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        signatures: dict | None = None,
        placement=None,
        pipeline=None,
    ) -> Plan | None:
        """Warm plan for a key, or ``None`` on a miss.

        Loaded plans are lazy (the program decodes on first access);
        corrupted entries raise :class:`~repro.api.plan.PlanError`
        rather than deserializing garbage.
        """
        key = self.key_for(
            fingerprint, cluster, policy, framework, signatures, placement,
            pipeline,
        )
        plan = self._load(key)
        self.stats["hits" if plan is not None else "misses"] += 1
        return plan

    def _load(self, key: str) -> Plan | None:
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        # content fingerprint, not mtime: an external overwrite within
        # the filesystem's timestamp granularity (hot-swap racing the
        # original write) must still invalidate the memory cache
        digest = hashlib.sha256(raw).hexdigest()
        cached = self._memory.get(key)
        if cached is not None and cached[0] == digest:
            self.stats["memory_hits"] += 1
            self._touch(path)
            return cached[1]
        try:
            obj = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise PlanError(
                f"corrupt plan store entry {path}: not valid JSON ({err})"
            ) from err
        try:
            plan = Plan.from_dict(obj, materialize=False)
        except PlanSchemaError as err:
            # preserve the type: schema mismatches mean "re-compile",
            # not "corrupt", and callers dispatch on it
            raise PlanSchemaError(f"plan store entry {path}: {err}") from err
        except PlanError as err:
            raise PlanError(f"corrupt plan store entry {path}: {err}") from err
        plan.from_store = True
        self._memory[key] = (digest, plan)
        self._touch(path)
        return plan

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        """Bump an entry's mtime on use: file mtime is the (approximate,
        cross-process) LRU order eviction works through."""
        try:
            os.utime(path)
        except OSError:  # entry raced away; the next get is a miss
            pass

    def put(self, plan: Plan, index_scenario: bool = True) -> pathlib.Path:
        """Persist a plan under its canonical key; returns the entry path.

        Only disk loads are memoized -- a later ``get`` of this entry
        returns a *store* plan (``from_store=True``), not the caller's
        freshly compiled object.  ``index_scenario=False`` suppresses
        the scenario-index entry (used when the plan was compiled with
        overrides -- cluster, explicit signatures -- that a plain
        scenario compile would not reproduce).
        """
        key = self.key_for(
            plan.fingerprint,
            plan.cluster,
            plan.policy,
            plan.framework,
            plan.signatures,
            plan.placement,
            _plan_pipeline(plan),
        )
        path = plan.save(self.path_for(key))
        self._memory.pop(key, None)
        self.stats["puts"] += 1
        with self._locked():
            self._index_signatures(plan, key)
            if index_scenario and plan.scenario is not None:
                self._index_scenario(
                    plan.scenario, plan.policy, plan.framework, key
                )
            self._evict_locked(protect=key)
        return path

    # -- scenario index ------------------------------------------------------
    #
    # The canonical key needs the graph fingerprint and observed
    # signatures, both of which cost a graph build to recompute.  For
    # declarative scenarios that mapping is deterministic, so the store
    # memoizes scenario identity -> entry digest on every put; a warm
    # ``compile(scenario, store=...)`` then costs one JSON read total.

    @property
    def _index_path(self) -> pathlib.Path:
        return self.root / "scenario_index.json"

    def _scenario_key(
        self, scenario: Scenario, policy: PlanPolicy, framework: FrameworkProfile
    ) -> str:
        return canonical_digest(
            {
                "scenario": scenario.to_dict(),
                "policy": policy.to_dict(),
                "framework": framework_to_json(framework),
            }
        )

    def _read_index(self) -> dict:
        try:
            return json.loads(self._index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def _index_scenario(
        self,
        scenario: Scenario,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        key: str,
    ) -> None:
        index = self._read_index()
        index[self._scenario_key(scenario, policy, framework)] = key
        atomic_write_text(
            self._index_path, json.dumps(index, indent=1, sort_keys=True)
        )

    def lookup_scenario(
        self,
        scenario: Scenario,
        policy: PlanPolicy,
        framework: FrameworkProfile,
    ) -> Plan | None:
        """Warm plan for a scenario identity, or ``None``."""
        key = self._read_index().get(
            self._scenario_key(scenario, policy, framework)
        )
        plan = self._load(key) if key else None
        if plan is not None:
            self.stats["scenario_hits"] += 1
            self.stats["hits"] += 1
        else:
            self.stats["misses"] += 1
        return plan

    # -- signature index / nearest-bucket serving ----------------------------
    #
    # Entry keys are opaque digests, so "which other buckets exist for
    # this graph/cluster/policy?" needs its own memo: base identity ->
    # {entry key: signature bucket}.  This is what lets a server answer
    # an exact-bucket miss with the *closest* stored plan immediately
    # while the exact re-plan runs in the background.

    @property
    def _signature_index_path(self) -> pathlib.Path:
        return self.root / "signature_index.json"

    def _read_signature_index(self) -> dict:
        try:
            return json.loads(self._signature_index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def _index_signatures(self, plan: Plan, key: str) -> None:
        index = self._read_signature_index()
        base = self.base_key_for(
            plan.fingerprint,
            plan.cluster,
            plan.policy,
            plan.framework,
            plan.placement,
            _plan_pipeline(plan),
        )
        family = index.setdefault(base, {})
        family[key] = signature_bucket(plan.signatures, self.digits)
        atomic_write_text(
            self._signature_index_path,
            json.dumps(index, indent=1, sort_keys=True),
        )

    def neighbors(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        placement=None,
        pipeline=None,
    ) -> dict[str, object]:
        """All stored ``{entry key: signature bucket}`` for one base
        identity (every plan of this graph/cluster/policy/framework/
        placement/pipeline-request, across routing buckets)."""
        base = self.base_key_for(
            fingerprint, cluster, policy, framework, placement, pipeline
        )
        return dict(self._read_signature_index().get(base, {}))

    def nearest(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        signatures: dict | None = None,
        max_distance: float = 0.25,
        placement=None,
        pipeline=None,
    ) -> tuple[Plan, float] | None:
        """Closest stored plan of the same base identity, by signature
        bucket (see :func:`bucket_distance`), within ``max_distance``.

        Returns ``(plan, distance)`` or ``None``.  A distance-0 result
        is possible (the exact bucket itself); callers that already
        missed on :meth:`get` simply won't see one.  Counted as
        ``nearest_hits`` (plus a ``hits`` entry) in :meth:`stats`.
        """
        target = signature_bucket(signatures, self.digits)
        best_key, best_d = None, math.inf
        for key, bucket in self.neighbors(
            fingerprint, cluster, policy, framework, placement, pipeline
        ).items():
            d = bucket_distance(target, bucket)
            if d < best_d:
                best_key, best_d = key, d
        if best_key is None or best_d > max_distance:
            return None
        plan = self._load(best_key)
        if plan is None:  # index pointed at an evicted/raced-away entry
            return None
        self.stats["nearest_hits"] += 1
        self.stats["hits"] += 1
        return plan, best_d

    # -- eviction ------------------------------------------------------------

    def _entry_stats(self) -> list[tuple[float, int, pathlib.Path]]:
        """(mtime, size, path) per entry, oldest-used first."""
        out = []
        for path in self.root.glob("*.plan.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        out.sort()
        return out

    def _over_budget(self, count: int, total: int) -> bool:
        return (self.max_entries is not None and count > self.max_entries) or (
            self.max_bytes is not None and total > self.max_bytes
        )

    def _evict_locked(self, protect: str | None = None) -> int:
        """Evict approximately-LRU entries until within budget (caller
        holds the lock).  ``protect`` names the entry that must survive
        -- the one this very ``put`` just wrote."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        protected = self.path_for(protect).name if protect else None
        entries = self._entry_stats()
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        evicted = []
        for _mtime, size, path in entries:
            if not self._over_budget(count, total):
                break
            if path.name == protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            evicted.append(path.name)
            count -= 1
            total -= size
            self.stats["evictions"] += 1
        if evicted:
            self._memory = {
                k: v
                for k, v in self._memory.items()
                if self.path_for(k).name not in set(evicted)
            }
            self._prune_indexes()
        return len(evicted)

    def _prune_indexes(self) -> None:
        """Drop index entries whose plan file no longer exists."""
        live = {p.name for p in self.root.glob("*.plan.json")}
        index = self._read_index()
        pruned = {
            k: v for k, v in index.items() if f"{v[:32]}.plan.json" in live
        }
        if pruned != index:
            atomic_write_text(
                self._index_path, json.dumps(pruned, indent=1, sort_keys=True)
            )
        sig_index = self._read_signature_index()
        sig_pruned = {}
        for base, family in sig_index.items():
            keep = {
                k: b for k, b in family.items() if f"{k[:32]}.plan.json" in live
            }
            if keep:
                sig_pruned[base] = keep
        if sig_pruned != sig_index:
            atomic_write_text(
                self._signature_index_path,
                json.dumps(sig_pruned, indent=1, sort_keys=True),
            )

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        """Paths of every stored plan."""
        return sorted(self.root.glob("*.plan.json"))

    def total_bytes(self) -> int:
        """Total size of all entry files (what ``max_bytes`` bounds)."""
        return sum(size for _, size, _ in self._entry_stats())

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> None:
        """Delete every entry (and the sidecar indexes)."""
        with self._locked():
            for path in self.entries():
                path.unlink()
            for sidecar in (self._index_path, self._signature_index_path):
                try:
                    sidecar.unlink()
                except OSError:
                    pass
        self._memory.clear()

    def __repr__(self) -> str:
        return f"PlanStore({str(self.root)!r}, {len(self)} plans)"
