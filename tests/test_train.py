"""Tests for the training substrate (data, optimizer, trainer loop)."""

import numpy as np
import pytest

from repro import GPT2MoEConfig, build_training_graph
from repro.train import SGD, SyntheticCorpus, Trainer


class TestSyntheticCorpus:
    def test_deterministic(self):
        c = SyntheticCorpus(vocab_size=100, seed=1)
        assert np.array_equal(c.tokens(50), c.tokens(50))

    def test_zipf_head_heavier(self):
        c = SyntheticCorpus(vocab_size=1000, zipf_alpha=1.2, seed=0)
        toks = c.tokens(20000)
        head = (toks < 10).mean()
        tail = ((toks >= 500) & (toks < 510)).mean()
        assert head > 10 * tail

    def test_labels_are_shifted_inputs(self):
        c = SyntheticCorpus(vocab_size=50, seed=2)
        ids, labels = c.batch(batch=2, seq=8)
        flat_ids = ids.reshape(-1)
        flat_labels = labels.reshape(-1)
        assert np.array_equal(flat_ids[1:], flat_labels[:-1])

    def test_devices_get_different_shards(self):
        c = SyntheticCorpus(vocab_size=100, seed=3)
        batches = c.device_batches(2, batch=2, seq=8)
        assert not np.array_equal(batches[0][0], batches[1][0])


class TestSGD:
    def test_momentum_update(self):
        opt = SGD(lr=0.1, momentum=0.5)
        w = np.ones(3)
        opt.step([w], [np.full(3, 2.0)])
        assert np.allclose(w, 1.0 - 0.1 * 2.0)
        opt.step([w], [np.full(3, 2.0)])
        # m = 0.5*2 + 2 = 3
        assert np.allclose(w, 0.8 - 0.1 * 3.0)

    def test_shape_mismatch(self):
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step([np.ones(3)], [np.ones(4)])

    def test_reset(self):
        opt = SGD(lr=0.1, momentum=0.9)
        w = np.ones(2)
        opt.step([w], [np.ones(2)])
        opt.reset()
        w2 = np.ones(2)
        opt.step([w2], [np.ones(2)])
        assert np.allclose(w2, 1.0 - 0.1)


class TestTrainer:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )

    def test_loss_decreases(self, graph):
        trainer = Trainer(graph, seed=0)
        results = trainer.run(6)
        curve = trainer.loss_curve()
        assert len(curve) == 6
        # training on a low-entropy synthetic corpus should make progress
        assert curve[-1] < curve[0]

    def test_deterministic(self, graph):
        t1 = Trainer(graph, seed=0)
        t2 = Trainer(graph, seed=0)
        r1 = t1.run(3)
        r2 = t2.run(3)
        assert [r.losses for r in r1] == [r.losses for r in r2]

    def test_optimized_schedule_identical_training(self, graph, small_cluster):
        from repro import LancetOptimizer

        optimized, _ = LancetOptimizer(small_cluster).optimize(graph)
        base = Trainer(graph, seed=1)
        opt = Trainer(graph, program=optimized, seed=1)
        for _ in range(3):
            rb = base.step()
            ro = opt.step()
            assert rb.losses == ro.losses
