"""Multi-step training driver over the numeric executor.

Runs real (small-scale) training iterations of a model graph on the
simulated multi-device runtime: feeds synthetic batches, executes the IR
numerically, and carries updated parameters / momentum into the next
step.  Works with any schedule -- original or Lancet-optimized -- which
is how the examples demonstrate that optimization leaves the training
trajectory bit-for-bit unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import Program
from ..models.gpt2_moe import ModelGraph
from ..models.init import init_param_values
from ..runtime.executor import NumericExecutor
from .data import SyntheticCorpus


@dataclass
class StepResult:
    """Outcome of one training step."""

    step: int
    losses: list[float]

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses))


class Trainer:
    """Step-by-step numeric training of a (possibly optimized) program.

    Parameters
    ----------
    graph:
        The built model graph (provides metadata: inputs, loss, devices).
    program:
        The schedule to execute; defaults to ``graph.program``.  Pass a
        Lancet-optimized program to train with the optimized schedule.
    seed:
        Controls parameter init and the synthetic corpus.
    parallel:
        Run per-device kernel segments concurrently (bit-identical to
        serial; see :class:`~repro.runtime.executor.NumericExecutor`).
        ``None`` auto-enables on multi-core hosts.
    """

    def __init__(
        self,
        graph: ModelGraph,
        program: Program | None = None,
        seed: int = 0,
        lr_corpus_alpha: float = 1.1,
        parallel: bool | None = None,
    ) -> None:
        self.graph = graph
        self.program = program if program is not None else graph.program
        self.g = graph.num_gpus
        self.corpus = SyntheticCorpus(
            vocab_size=graph.cfg.vocab_size, zipf_alpha=lr_corpus_alpha, seed=seed
        )
        self.executor = NumericExecutor(self.program, self.g, parallel=parallel)
        self.state: list[dict[int, np.ndarray]] = init_param_values(graph, seed)
        self._updated = self._update_map()
        self.history: list[StepResult] = []

    def _update_map(self) -> dict[int, tuple[int, int, int]]:
        """param id -> (new w id, momentum id, new momentum id)."""
        out = {}
        for ins in self.program.instructions:
            if ins.op == "sgd_update":
                w, _g, m = ins.inputs
                w2, m2 = ins.outputs
                out[w] = (w2, m, m2)
        return out

    def step(self) -> StepResult:
        """Run one training iteration across all simulated devices."""
        step_idx = len(self.history)
        batches = self.corpus.device_batches(
            self.g, self.graph.batch, self.graph.seq, step=step_idx
        )
        ids_vid, labels_vid = self.program.inputs[:2]
        envs = []
        for d in range(self.g):
            vals = dict(self.state[d])
            vals[ids_vid], vals[labels_vid] = batches[d]
            envs.append(vals)
        results = self.executor.run(self.executor.make_envs(envs))

        losses = [float(env[self.graph.loss]) for env in results]
        # carry updated params and momentum into the next step
        for d, env in enumerate(results):
            new_state = {}
            for pid, (w2, m, m2) in self._updated.items():
                new_state[pid] = env[w2]
                new_state[m] = env[m2]
            # keep params that have no update instruction (frozen)
            for pid in self.graph.program.params:
                if pid not in new_state:
                    new_state[pid] = env[pid]
            self.state[d] = new_state
        result = StepResult(step=step_idx, losses=losses)
        self.history.append(result)
        return result

    def run(self, steps: int) -> list[StepResult]:
        """Run several steps; returns the per-step results."""
        return [self.step() for _ in range(steps)]

    def loss_curve(self) -> list[float]:
        """Mean loss per executed step."""
        return [r.mean_loss for r in self.history]
