"""Topology sweep: flat vs hierarchical (2-hop) all-to-all plans (extension).

Not a paper figure.  Lancet's evaluation clusters are bandwidth-
asymmetric -- NVLink inside a node, a much slower shared NIC across
nodes -- yet a flat all-to-all forces every GPU's cross-node bytes
through its 1/L share of the node NIC.  The hierarchical extension
(`runtime/topology.py`) decomposes each irregular all-to-all into
intra-node gather -> node-aggregated inter-node exchange -> intra-node
scatter, and the planner picks flat vs hierarchical **per a2a chunk**
from the routing signature (`CommCostModel.a2a_best_ms`).

This sweep quantifies the decision across node counts and hot-expert
intensities: for every scenario two skew-aware Lancet plans are produced
for the same program -- one restricted to flat all-to-alls, one free to
choose -- and both are simulated per-device (`simulate_cluster`) under
the same realized routing.  Expected shape:

- single-node rows: the choice reduces to flat, both plans are
  identical (bit-for-bit);
- multi-node balanced rows: flat stays cheaper (the 2-hop detour adds
  NVLink hops and latency without relieving any bottleneck), so the
  hierarchical-enabled plan never loses;
- multi-node skewed rows: hot-expert owners bottleneck the flat
  exchange on their NIC share; node-aggregating the exchange spreads
  that traffic over the node's full NIC, and iteration time drops
  >= 10% at scale.
"""

from __future__ import annotations

import dataclasses

from ...core import LancetOptimizer
from ...runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_cluster,
)
from ..formatting import format_table
from ..harness import model_by_name, paper_batch
from .common import FigureResult


def run(
    model: str = "GPT2-S-MoE",
    cluster_kind: str = "v100",
    node_counts=(1, 2, 4),
    num_layers: int | None = 4,
    hot_boosts=(0.0, 0.5, 0.7),
    concentration: float = 0.3,
    hot_experts: int = 1,
    seed: int = 1,
) -> FigureResult:
    """Sweep node count x hot-expert intensity; plan flat-only vs
    hierarchical-enabled each time (both skew-aware)."""
    from ...models import build_training_graph

    cfg = model_by_name(model)
    if num_layers is not None:
        cfg = dataclasses.replace(cfg, num_layers=num_layers)
    batch = paper_batch(cluster_kind, model)

    rows = []
    for nodes in node_counts:
        num_gpus = nodes * 8
        graph = build_training_graph(
            cfg, batch=batch, seq=512, num_gpus=num_gpus
        )
        cluster = ClusterSpec.for_gpus(cluster_kind, num_gpus)
        for boost in hot_boosts:
            routing = SyntheticRoutingModel(
                seed=seed,
                concentration=concentration,
                hot_experts=hot_experts if boost > 0 else 0,
                hot_boost=boost,
            )

            opt_flat = LancetOptimizer(cluster)
            signatures = opt_flat.observe_routing(graph, routing)
            prog_flat, rep_flat = opt_flat.optimize(graph)

            # both plans condition on the exact same observation
            opt_hier = LancetOptimizer(cluster, enable_hierarchical_a2a=True)
            opt_hier.set_routing_signatures(signatures or None)
            prog_hier, rep_hier = opt_hier.optimize(graph)

            def iter_ms(program):
                sim = SimulationConfig(
                    cluster=cluster,
                    framework=opt_flat.framework,
                    padded_a2a=False,
                    routing=routing,
                )
                return simulate_cluster(program, config=sim).makespan

            t_flat = iter_ms(prog_flat)
            t_hier = iter_ms(prog_hier)
            rows.append(
                {
                    "num_nodes": nodes,
                    "num_gpus": num_gpus,
                    "hot_boost": boost,
                    "iter_flat_plan_ms": t_flat,
                    "iter_hier_plan_ms": t_hier,
                    "speedup": t_flat / t_hier,
                    "predicted_flat_ms": rep_flat.predicted_iteration_ms,
                    "predicted_hier_ms": rep_hier.predicted_iteration_ms,
                    "a2a_algorithms": rep_hier.a2a_algorithms,
                    "hierarchical_a2a": rep_hier.hierarchical_a2a_count,
                }
            )

    table = format_table(
        ["Nodes", "Hot boost", "Flat plan ms", "Hier plan ms", "Speedup",
         "Hier a2a"],
        [
            [
                r["num_nodes"],
                r["hot_boost"],
                r["iter_flat_plan_ms"],
                r["iter_hier_plan_ms"],
                r["speedup"],
                r["hierarchical_a2a"],
            ]
            for r in rows
        ],
        title=f"Topology sweep: flat vs hierarchical a2a plans ({model}, "
        f"{cluster_kind}, 8 GPUs/node)",
    )
    multi_skew = [
        r for r in rows if r["num_nodes"] > 1 and r["hot_boost"] > 0
    ]
    notes = {
        "max_speedup": max(r["speedup"] for r in rows),
        "max_multi_node_skew_speedup": max(
            (r["speedup"] for r in multi_skew), default=1.0
        ),
        # lower-is-better gates for the CI regression check
        "regression_metrics": {
            f"hier_plan_ms@nodes={r['num_nodes']},boost={r['hot_boost']}":
                r["iter_hier_plan_ms"]
            for r in rows
        },
    }
    return FigureResult(
        "topology",
        "flat vs hierarchical (2-hop) all-to-all plans across node counts "
        "and hot-expert intensities",
        rows,
        table,
        notes,
    )
