"""Smoke tests for the figure runners with reduced grids.

The full grids run under ``pytest benchmarks/ --benchmark-only``; these
unit-level checks keep the runners importable, well-formed and minimally
correct on tiny grids so refactors are caught by the fast suite.
"""

import pytest

from repro.bench import ALL_FIGURES
from repro.bench.figures import fig02, fig06, fig11, fig13, fig14, fig15, imbalance


class TestRegistry:
    def test_all_paper_figures_covered(self):
        assert set(ALL_FIGURES) == {
            "faults",
            "fig02",
            "fig06",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "headline",
            "imbalance",
            "opt_time",
            "pipeline",
            "placement",
            "plan_serving",
            "sim_throughput",
            "skew_sweep",
            "topology",
        }


class TestFig02:
    def test_small_grid(self):
        r = fig02.run(gpu_counts=(16,))
        assert len(r.rows) == 2  # tutel + deepspeed
        for row in r.rows:
            assert row["orig_ms"] >= row["curr_ms"] >= row["opt_ms"]
            # bars decompose the total exactly
            assert row["a2a_ms"] + row["expert_ms"] + row["others_ms"] == (
                pytest.approx(row["orig_ms"])
            )
        assert "Fig. 2" in r.table


class TestFig06:
    def test_minimal_sweep(self):
        r = fig06.run(range_points=(0.0, 2.0), parts=2)
        kinds = [row["range_ms"] for row in r.rows]
        assert kinds[0] == "Orig." and kinds[-1] == "DP"
        orig = r.rows[0]["time_ms"]
        assert all(row["time_ms"] > 0 for row in r.rows)
        assert r.rows[0]["normalized"] == 1.0
        # partitioning at range 0 (Tutel-like) already helps
        assert r.rows[1]["time_ms"] < orig


class TestFig11:
    def test_single_cell(self):
        r = fig11.run(
            gate="switch",
            models=("GPT2-S-MoE",),
            clusters=("a100",),
            gpu_counts=(16,),
            frameworks=("raf", "lancet"),
        )
        assert len(r.rows) == 2
        lancet = next(x for x in r.rows if x["framework"] == "lancet")
        raf = next(x for x in r.rows if x["framework"] == "raf")
        assert lancet["iteration_ms"] < raf["iteration_ms"]
        assert lancet["speedup_vs_best_baseline"] > 1.0


class TestFig13:
    def test_single_cell(self):
        r = fig13.run(
            models=("GPT2-S-MoE",), clusters=("a100",), num_gpus=16,
            frameworks=("lancet", "raf"),
        )
        lancet = next(x for x in r.rows if x["framework"] == "lancet")
        raf = next(x for x in r.rows if x["framework"] == "raf")
        assert lancet["comm_only_ms"] < raf["comm_only_ms"]
        assert r.notes["max_reduction_vs_raf"] > 0


class TestFig14:
    def test_single_cell(self):
        r = fig14.run(
            models=("GPT2-S-MoE",), clusters=("a100",), gpu_counts=(16,),
            gates=("switch",),
        )
        assert len(r.rows) == 1
        assert r.notes["avg_pct_error"] < 15.0


class TestFig15:
    def test_single_cell(self):
        r = fig15.run(
            models=("GPT2-S-MoE",), clusters=("a100",), gpu_counts=(16,)
        )
        assert len(r.rows) == 1
        assert r.rows[0]["partition_pass_s"] > r.rows[0]["dw_pass_s"]


class TestImbalance:
    def test_scenarios(self):
        r = imbalance.run(frameworks=("raf",), scenarios=("uniform", "hot"))
        by = {row["scenario"]: row for row in r.rows}
        assert by["uniform"]["slowdown_vs_uniform"] == 1.0
        # RAF moves the padded buffer: comm is skew-insensitive, so the
        # hot scenario's iteration time stays at the uniform baseline
        assert by["hot"]["iteration_ms"] == pytest.approx(
            by["uniform"]["iteration_ms"]
        )

    def test_straggler_slows_iteration(self):
        r = imbalance.run(
            frameworks=("raf",), scenarios=("uniform", "straggler")
        )
        by = {row["scenario"]: row for row in r.rows}
        assert by["straggler"]["slowdown_vs_uniform"] > 1.0
        assert by["straggler"]["critical_device"] == 0

    def test_lancet_skew_sensitivity(self):
        r = imbalance.run(
            frameworks=("lancet",), scenarios=("uniform", "mild", "hot")
        )
        by = {row["scenario"]: row for row in r.rows}
        # irregular all-to-all tracks the realized loads: skew spreads
        # per-device busy times, and mild imbalance (no capacity
        # clipping) slows the collective outright.  Heavy hot-expert
        # skew clips at capacity -- fewer bytes move, so iteration time
        # is NOT monotone in skew, but the spread keeps growing.
        assert by["mild"]["iteration_ms"] > by["uniform"]["iteration_ms"]
        assert by["mild"]["a2a_spread_ms"] > by["uniform"]["a2a_spread_ms"]
        assert by["hot"]["a2a_spread_ms"] > by["mild"]["a2a_spread_ms"]


class TestSimThroughput:
    def test_tiny_batch(self):
        from repro.bench.figures import sim_throughput

        r = sim_throughput.run(num_layers=4, num_scenarios=4, rounds=1)
        assert r.notes["bit_identical"] is True
        assert r.notes["makespans_equal"] is True
        (row,) = r.rows
        assert row["scenarios"] == 4
        assert row["batch_sims_per_s"] > 0


class TestTopologySweep:
    def test_small_grid(self):
        from repro.bench.figures import topology_sweep

        r = topology_sweep.run(node_counts=(1, 2), hot_boosts=(0.0, 0.7))
        by = {(row["num_nodes"], row["hot_boost"]): row for row in r.rows}
        # single node: the flat/hierarchical choice reduces to flat
        assert by[(1, 0.0)]["hierarchical_a2a"] == 0
        assert (
            by[(1, 0.7)]["iter_hier_plan_ms"]
            == by[(1, 0.7)]["iter_flat_plan_ms"]
        )
        # 2-node hot-expert skew: the 2-hop algorithm gets chosen and wins
        assert by[(2, 0.7)]["hierarchical_a2a"] > 0
        assert (
            by[(2, 0.7)]["iter_hier_plan_ms"]
            < by[(2, 0.7)]["iter_flat_plan_ms"]
        )
        assert "regression_metrics" in r.notes
