"""Fig. 13: iteration-time decomposition on 4 nodes (32 GPUs).

Checks the paper's three decomposition claims: (i) Lancet slashes
non-overlapped communication vs RAF and Tutel, (ii) Lancet's *total*
computation can exceed RAF's (partition overhead), (iii) Lancet's total
communication is lower (irregular all-to-all sends no padding).
"""

from conftest import run_figure
from repro.bench.figures import fig13


def test_fig13_decomposition(benchmark):
    result = run_figure(benchmark, fig13.run)
    assert result.notes["max_reduction_vs_raf"] > 0.5
    assert result.notes["max_reduction_vs_tutel"] > 0.5

    by = {
        (r["cluster"], r["model"], r["framework"]): r for r in result.rows
    }
    for cluster in ("v100", "a100"):
        for model in ("GPT2-S-MoE", "GPT2-L-MoE"):
            lancet = by[(cluster, model, "lancet")]
            raf = by[(cluster, model, "raf")]
            # (i) non-overlapped communication reduced
            assert lancet["comm_only_ms"] < raf["comm_only_ms"]
            # (ii) partition overhead: Lancet's total compute >= RAF's
            assert lancet["comp_total_ms"] > raf["comp_total_ms"] * 0.98
            # (iii) no-padding irregular A2A: total comm lower
            assert lancet["comm_total_ms"] < raf["comm_total_ms"]
            # end to end still faster
            assert lancet["iteration_ms"] < raf["iteration_ms"]
