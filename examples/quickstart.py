#!/usr/bin/env python
"""Quickstart: compile an MoE training plan with Lancet and measure it.

Uses the ``repro.api`` facade: declare the workload as a ``Scenario``,
``compile()`` it into a ``Plan`` (both Lancet passes: dW rescheduling +
operator partition), then replay the plan on the simulated cluster and
compare against the unoptimized schedule.

Run:  python examples/quickstart.py

This is the script version of docs/TUTORIAL.md steps 1-3; the tutorial
continues into skew-aware planning, online re-optimization, and plan
artifacts (see examples/plan_store.py for saving and reusing plans).
"""

from repro import SimulationConfig, Scenario, compile, simulate_program


def main() -> None:
    # 1. Declare the workload: the paper's GPT2-S-MoE (12 layers, every
    #    other FFN an MoE layer, two experts per GPU) on a 2-node p4de
    #    cluster (8x A100 + 4x100 Gbps NICs per node).  `Scenario.preset`
    #    names every benchmark workload; fields can be overridden.
    scenario = Scenario.preset("gpt2-s-moe/a100x16")
    graph = scenario.build_graph()
    cfg = scenario.model_config()
    print(f"model: {cfg.name}, {len(graph.program)} IR instructions, "
          f"{cfg.num_experts(16)} experts, "
          f"capacity {cfg.capacity(scenario.resolved_batch(), scenario.resolved_seq(), 16)}")

    # 2. Compile: runs Lancet's dW schedule pass + operator partition
    #    pass and returns a Plan -- the optimized program plus its
    #    annotations, routing signatures, and predicted iteration time.
    plan = compile(scenario)
    print(f"\nLancet compilation took {plan.planner['compile_seconds']:.2f}s")
    print(f"  dW instructions moved: {plan.planner['num_dw_moved']}"
          f"/{plan.planner['num_dw_total']}")
    print(f"  partition plans: {plan.partition_degrees()} "
          f"(one pipeline per MoE layer)")
    print(f"  predicted iteration time: {plan.predicted_iteration_ms:.1f} ms")

    # 3. Simulate one iteration of each schedule on the cluster model.
    #    plan.simulate() replays the plan under the scenario's routing;
    #    the baseline runs the unoptimized program with padded buffers.
    after = plan.simulate()
    before = simulate_program(
        graph.program,
        config=SimulationConfig(
            cluster=plan.cluster, padded_a2a=True,
            routing=scenario.routing_model(),
        ),
    )

    b0, b1 = before.breakdown(), after.breakdown()
    e0 = before.exposed_time_of({"all_to_all"})
    e1 = after.exposed_time_of({"all_to_all"})
    print(f"\n{'':16s}{'baseline':>12s}{'lancet':>12s}")
    print(f"{'iteration (ms)':16s}{b0.makespan:12.1f}{b1.makespan:12.1f}")
    print(f"{'exposed a2a (ms)':16s}{e0:12.1f}{e1:12.1f}")
    print(f"{'comm-only (ms)':16s}{b0.comm_only:12.1f}{b1.comm_only:12.1f}")
    print(f"{'overlap (ms)':16s}{b0.overlapped:12.1f}{b1.overlapped:12.1f}")
    print(f"\nend-to-end speedup: {b0.makespan / b1.makespan:.2f}x"
          f"   (paper: up to 1.3x)")
    print(f"non-overlapped a2a reduction: {100 * (1 - e1 / e0):.0f}%"
          f"   (paper: up to 77%)")


if __name__ == "__main__":
    main()
