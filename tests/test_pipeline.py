"""The repro.pipeline subsystem: hybrid pipeline x expert parallelism.

Covers the ISSUE 10 acceptance criteria:

- the stage model (:class:`~repro.pipeline.StagedCluster` /
  :class:`~repro.pipeline.StageMap`) validates its topology and
  round-trips through dicts;
- GPipe and 1F1B staged simulations are **bit-identical** to the naive
  event-replay reference across real programs x staged clusters x
  routing realizations (the differential grid);
- the stage-partitioner splits a layer-stamped program into valid
  per-stage segments and reassembles them losslessly;
- the stage planner never picks a split that simulates worse than the
  naive even split, and per-stage Lancet optimization reports ride
  along;
- staged scenarios thread through ``compile`` / ``Plan`` / ``PlanStore``
  (the pipeline request folds into store keys) and the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import GPT2MoEConfig, LancetOptimizer, build_training_graph
from repro.__main__ import main
from repro.api import PlanPolicy, Scenario, available_presets, compile, load_plan
from repro.pipeline import (
    SCHEDULES,
    Job,
    P2PCostModel,
    StagedCluster,
    StageMap,
    StageSpec,
    enumerate_layer_counts,
    gpipe_order,
    layer_costs,
    one_f_one_b_order,
    peak_in_flight,
    pipeline_bound_ms,
    plan_stages,
    reassemble,
    replay_reference,
    schedule_order,
    simulate_staged,
    split_stages,
    stage_costs,
)
from repro.pipeline.stage import _subcluster
from repro.runtime import ClusterSpec
from repro.testing import routing_models

A100x8 = ClusterSpec.for_gpus("a100", 8)


def staged_graph(layers: int, subgroup: int, batch: int = 4, seq: int = 16):
    """A tiny layer-stamped training graph at stage-subgroup width."""
    return build_training_graph(
        GPT2MoEConfig.tiny(num_layers=layers),
        batch=batch,
        seq=seq,
        num_gpus=subgroup,
    )


@pytest.fixture(scope="module")
def graph2():
    """Two layers at the subgroup width of (a100x8, 2 stages)."""
    return staged_graph(layers=2, subgroup=4)


@pytest.fixture(scope="module")
def split2(graph2):
    return split_stages(graph2, StagedCluster.even(A100x8, 2, 2))


class TestStageModel:
    def test_from_layer_counts(self):
        staged = StagedCluster.from_layer_counts(A100x8, (3, 1))
        assert staged.num_stages == 2
        assert staged.num_layers == 4
        assert staged.layer_counts == (3, 1)
        assert staged.stages[0].layers == (0, 1, 2)
        assert staged.stages[1].layers == (3,)
        assert list(staged.stages[1].devices) == [4, 5, 6, 7]
        assert staged.stage_of_layer(2) == 0
        assert staged.stage_of_layer(3) == 1
        with pytest.raises(KeyError):
            staged.stage_of_layer(4)

    def test_even_split_gives_remainder_to_early_stages(self):
        assert StagedCluster.even(A100x8, 5, 2).layer_counts == (3, 2)
        assert StagedCluster.even(A100x8, 6, 4).layer_counts == (2, 2, 1, 1)

    def test_subnode_stage_becomes_single_node_group(self):
        staged = StagedCluster.even(A100x8, 2, 2)
        sub = staged.stages[0].cluster
        assert sub.num_gpus == 4
        assert sub.num_nodes == 1
        assert not staged.boundary_inter_node(0)

    def test_whole_node_stage_keeps_topology(self):
        base = ClusterSpec.p3dn(2)
        staged = StagedCluster.even(base, 2, 2)
        sub = staged.stages[0].cluster
        assert sub.num_gpus == base.gpus_per_node
        assert sub.gpus_per_node == base.gpus_per_node
        assert staged.boundary_inter_node(0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            StagedCluster.from_layer_counts(A100x8, (1, 1, 1))  # 3 !| 8
        with pytest.raises(ValueError, match=">=1 layer"):
            StagedCluster.from_layer_counts(A100x8, (2, 0))
        with pytest.raises(ValueError, match="stages <= layers"):
            StagedCluster.even(A100x8, 1, 2)
        base = ClusterSpec.p3dn(2)
        with pytest.raises(ValueError, match="multiple of"):
            _subcluster(base, 0, 12)
        with pytest.raises(ValueError, match="divide"):
            _subcluster(base, 0, 3)

    def test_stage_spec_layers_must_be_contiguous(self):
        sub = _subcluster(A100x8, 0, 4)
        with pytest.raises(ValueError, match="contiguous"):
            StageSpec(index=0, layers=(0, 2), first_device=0, cluster=sub)
        with pytest.raises(ValueError, match="no layers"):
            StageSpec(index=0, layers=(), first_device=0, cluster=sub)

    def test_stages_must_tile_the_cluster(self):
        sub = _subcluster(A100x8, 0, 4)
        s0 = StageSpec(index=0, layers=(0,), first_device=0, cluster=sub)
        s1 = StageSpec(index=1, layers=(1,), first_device=4, cluster=sub)
        with pytest.raises(ValueError, match="at least one stage"):
            StagedCluster(base=A100x8, stages=())
        with pytest.raises(ValueError, match="expected 0"):
            StagedCluster(base=A100x8, stages=(s1,))
        with pytest.raises(ValueError, match="stages cover"):
            StagedCluster(base=A100x8, stages=(s0,))
        bad = StageSpec(index=1, layers=(2,), first_device=4, cluster=sub)
        with pytest.raises(ValueError, match="do not tile"):
            StagedCluster(base=A100x8, stages=(s0, bad))

    def test_stage_map_round_trip_and_describe(self):
        sm = StageMap(
            num_stages=2,
            microbatches=4,
            schedule="gpipe",
            layer_counts=(3, 1),
            predicted_pipeline_ms=12.5,
        )
        assert StageMap.from_dict(sm.to_dict()) == sm
        assert sm.request_dict() == {
            "num_stages": 2,
            "microbatches": 4,
            "schedule": "gpipe",
        }
        assert list(sm.layers_of(1)) == [3]
        assert "2 stages (layers 3+1)" in sm.describe()
        assert "gpipe" in sm.describe()

    def test_stage_map_validates(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            StageMap(2, 4, "interleaved", (1, 1))
        with pytest.raises(ValueError, match="layer counts"):
            StageMap(2, 4, "1f1b", (1, 1, 1))
        with pytest.raises(ValueError, match="microbatches"):
            StageMap(2, 0, "1f1b", (1, 1))


class TestP2PModel:
    def test_zero_bytes_is_free(self):
        assert P2PCostModel(A100x8).time_ms(0.0, inter_node=False) == 0.0

    def test_inter_node_link_is_slower(self):
        model = P2PCostModel(ClusterSpec.p3dn(2))
        nbytes = 16 * 2**20
        assert model.time_ms(nbytes, True) > model.time_ms(nbytes, False)

    def test_boundary_times_use_boundary_link_class(self):
        base = ClusterSpec.p3dn(2)
        staged = StagedCluster.even(base, 2, 2)  # boundary crosses nodes
        model = P2PCostModel(base)
        nbytes = 4 * 2**20
        times = model.boundary_times_ms(staged, [nbytes])
        assert times == (model.time_ms(nbytes, True),)

    def test_boundary_count_validated(self):
        staged = StagedCluster.even(A100x8, 2, 2)
        with pytest.raises(ValueError, match="boundary sizes"):
            P2PCostModel(A100x8).boundary_times_ms(staged, [1.0, 2.0])


class TestSchedules:
    def test_gpipe_all_forwards_then_backwards(self):
        orders = gpipe_order(3, 4)
        assert len(orders) == 3
        for s, order in enumerate(orders):
            kinds = [j.kind for j in order]
            assert kinds == ["F"] * 4 + ["B"] * 4
            assert [j.microbatch for j in order[:4]] == [0, 1, 2, 3]
            assert [j.microbatch for j in order[4:]] == [3, 2, 1, 0]
            assert all(j.stage == s for j in order)

    def test_1f1b_warmup_depth_decreases_downstream(self):
        orders = one_f_one_b_order(4, 8)
        for s, order in enumerate(orders):
            warmup = 0
            for job in order:
                if job.kind != "F":
                    break
                warmup += 1
            assert warmup == min(8, 4 - 1 - s) + 1  # +1: first steady F

    def test_schedules_are_permutations_of_the_same_jobs(self):
        for name in SCHEDULES:
            orders = schedule_order(name, 3, 5)
            jobs = [j.key for order in orders for j in order]
            assert len(jobs) == len(set(jobs)) == 3 * 5 * 2

    def test_peak_in_flight(self):
        assert peak_in_flight(gpipe_order(4, 6)[0]) == 6
        assert peak_in_flight(one_f_one_b_order(4, 6)[0]) == 4

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            schedule_order("dualpipe", 2, 2)
        with pytest.raises(ValueError, match=">= 1 stage"):
            gpipe_order(0, 2)
        with pytest.raises(ValueError, match=">= 1 microbatch"):
            one_f_one_b_order(2, 0)
        with pytest.raises(ValueError, match="kind"):
            Job(0, 0, "X")

    def test_invalid_order_deadlocks_in_both_schedulers(self, split2):
        costs = stage_costs(split2)
        # stage 0 retires its backward before issuing the forward it
        # depends on: no scheduler can make progress
        bad = [
            [Job(0, 0, "B"), Job(0, 0, "F")],
            [Job(1, 0, "F"), Job(1, 0, "B")],
        ]
        from repro.pipeline.simulate import schedule_jobs

        with pytest.raises(RuntimeError, match="deadlock"):
            schedule_jobs(costs, bad)
        with pytest.raises(RuntimeError, match="deadlock"):
            replay_reference(costs, bad)
        with pytest.raises(ValueError, match="job orders"):
            schedule_jobs(costs, bad[:1])
        with pytest.raises(ValueError, match="job orders"):
            replay_reference(costs, bad[:1])


class TestPartition:
    def test_split_produces_valid_segments(self, split2):
        assert len(split2.segments) == 3 * 2
        assert len(split2.execution_order()) == 3 * 2
        for s in range(2):
            fwd = split2.segment(s, "forward").program
            assert fwd.instructions, "every stage owns forward work"
            assert split2.segment(s, "tail").program.instructions

    def test_boundary_bytes_positive(self, split2):
        assert len(split2.fwd_boundary_bytes) == 1
        assert split2.fwd_boundary_bytes[0] > 0
        assert split2.bwd_boundary_bytes[0] > 0

    def test_reassemble_is_lossless(self, graph2, split2):
        out = reassemble(split2)  # validates internally
        src = graph2.program
        assert sorted(i.uid for i in out.instructions) == sorted(
            i.uid for i in src.instructions
        )
        assert out.outputs == src.outputs
        assert out.grads == src.grads

    def test_unstamped_program_rejected(self):
        graph = staged_graph(layers=2, subgroup=4, batch=2, seq=8)
        for instr in graph.program.instructions:
            instr.attrs.pop("layer", None)
        staged = StagedCluster.even(A100x8, 2, 2)
        with pytest.raises(ValueError, match="layer"):
            split_stages(graph, staged)
        with pytest.raises(ValueError, match="layer"):
            layer_costs(graph.program, staged.stages[0].cluster)

    def test_reassemble_rejects_changed_output_arity(self, graph2):
        split = split_stages(graph2, StagedCluster.even(A100x8, 2, 2))
        seg = split.segment(0, "forward")
        seg.program.outputs = seg.program.outputs[:-1]
        with pytest.raises(ValueError, match="arity"):
            reassemble(split)

    def test_split_accepts_bare_program(self, graph2):
        # forward/backward boundary inferred from the first dX/dW instr
        split = split_stages(
            graph2.program, StagedCluster.even(A100x8, 2, 2)
        )
        for s in range(2):
            assert split.segment(s, "forward").program.instructions
            assert split.segment(s, "backward").program.instructions
        reassemble(split)

    @staticmethod
    def _alpha_rename(program, old: int, new: int) -> None:
        """Rename one value id throughout a segment program, the way a
        per-stage optimizer pass renames the values it recreates."""
        from repro.ir import Value

        val = program.values.pop(old)
        program.values[new] = Value(new, val.type, val.name)
        program.instructions = [
            i.with_(
                uid=i.uid,
                inputs=tuple(new if v == old else v for v in i.inputs),
                outputs=tuple(new if v == old else v for v in i.outputs),
            )
            for i in program.instructions
        ]
        program.outputs = [new if v == old else v for v in program.outputs]

    def test_reassemble_renumbers_optimizer_created_values(self, graph2):
        split = split_stages(graph2, StagedCluster.even(A100x8, 2, 2))
        seg = split.segment(0, "forward")
        # a boundary activation stage 1 consumes, recreated under a
        # segment-local id (unique only within the segment)
        consumed = set(split.segment(1, "forward").program.inputs)
        old = next(o for o in seg.program.outputs if o in consumed)
        self._alpha_rename(seg.program, old, max(seg.program.values) + 1)
        out = reassemble(split)  # validates; downstream uses follow
        assert len(out.instructions) == len(graph2.program.instructions)

    def test_reassemble_rejects_unknown_value_reads(self, graph2):
        split = split_stages(graph2, StagedCluster.even(A100x8, 2, 2))
        p = split.segment(1, "forward").program
        instr = p.instructions[0]
        p.instructions[0] = instr.with_(
            uid=instr.uid, inputs=(10**6,) + instr.inputs[1:]
        )
        with pytest.raises(ValueError, match="neither original"):
            reassemble(split)


#: differential grid: (cluster, stages, microbatches, layers) spanning
#: sub-node and whole-node (inter-node boundary) stage shapes
DIFF_GRID = [
    (A100x8, 2, 4, 2),
    (A100x8, 4, 2, 4),
    (ClusterSpec.p3dn(2), 2, 3, 2),
]


class TestDifferentialGrid:
    @pytest.mark.parametrize(
        "cluster,stages,microbatches,layers", DIFF_GRID
    )
    def test_simulator_bit_identical_to_event_replay(
        self, cluster, stages, microbatches, layers
    ):
        graph = staged_graph(layers, cluster.num_gpus // stages)
        staged = StagedCluster.even(cluster, layers, stages)
        split = split_stages(graph, staged)
        for routing in routing_models(include_none=True):
            costs = stage_costs(
                split, routing=routing, padded_a2a=routing is None
            )
            assert all(f > 0 for f in costs.forward_ms)
            assert all(b > 0 for b in costs.backward_ms)
            for schedule in SCHEDULES:
                sim = simulate_staged(
                    split, microbatches, schedule=schedule, costs=costs
                )
                orders = schedule_order(schedule, stages, microbatches)
                assert sim.job_times == replay_reference(costs, orders)

    def test_makespan_covers_jobs_and_tails(self, split2):
        sim = simulate_staged(split2, 4, schedule="1f1b")
        last_job_end = max(end for _, end in sim.job_times.values())
        assert sim.makespan >= last_job_end
        for s, (t_start, t_end) in enumerate(sim.tail_times):
            assert t_end == t_start + sim.costs.tail_ms[s]
            assert sim.makespan >= t_end

    def test_gpipe_never_beats_1f1b_here(self, split2):
        costs = stage_costs(split2)
        ofob = simulate_staged(split2, 4, schedule="1f1b", costs=costs)
        gpipe = simulate_staged(split2, 4, schedule="gpipe", costs=costs)
        # identical per-job costs and both retire all jobs: with 2
        # stages the two schedules pipeline equally well
        assert ofob.makespan <= gpipe.makespan + 1e-9


class TestPlanner:
    def test_enumerate_exhaustive_compositions(self):
        counts = enumerate_layer_counts(5, 3)
        assert len(counts) == 6  # C(4, 2)
        assert all(sum(c) == 5 and min(c) >= 1 for c in counts)
        assert len(set(counts)) == len(counts)

    def test_enumerate_falls_back_to_even_neighborhood(self):
        counts = enumerate_layer_counts(12, 3, limit=4)
        assert all(sum(c) == 12 and min(c) >= 1 for c in counts)
        assert (4, 4, 4) in counts  # the even split survives
        assert len(counts) <= 3 ** 2

    def test_pipeline_bound(self):
        assert pipeline_bound_ms([2.0, 3.0], 1) == 5.0
        assert pipeline_bound_ms([2.0, 3.0], 4) == 5.0 + 3 * 3.0

    def test_search_never_loses_to_even_split(self):
        graph = staged_graph(layers=3, subgroup=4)
        result = plan_stages(graph, A100x8, 2, 3)
        assert sum(result.stage_map.layer_counts) == 3
        assert result.stage_map.predicted_pipeline_ms == result.makespan_ms
        by_counts = {
            tuple(c["layer_counts"]): c["simulated_ms"]
            for c in result.candidates
        }
        even = StagedCluster.even(A100x8, 3, 2).layer_counts
        assert even in by_counts
        assert result.makespan_ms <= by_counts[even]
        assert result.makespan_ms == min(by_counts.values())

    def test_top_k_zero_still_simulates_the_even_split(self):
        graph = staged_graph(layers=2, subgroup=4)
        result = plan_stages(graph, A100x8, 2, 2, top_k=0)
        assert [c["layer_counts"] for c in result.candidates] == [(1, 1)]
        assert result.stage_map.layer_counts == (1, 1)

    def test_forced_layer_counts_skip_search(self):
        graph = staged_graph(layers=3, subgroup=4)
        result = plan_stages(graph, A100x8, 2, 2, layer_counts=(1, 2))
        assert result.candidates == []
        assert result.stage_map.layer_counts == (1, 2)

    def test_per_stage_optimizer_reports(self):
        graph = staged_graph(layers=2, subgroup=4)
        result = plan_stages(
            graph,
            A100x8,
            2,
            2,
            layer_counts=(1, 1),
            optimizer_factory=lambda c: LancetOptimizer(c),
            check=True,
        )
        assert len(result.stage_reports) == 2
        for report in result.stage_reports:
            assert "forward" in report and "backward" in report
        # the reassembled program still validates and simulates
        assert result.program.instructions

    def test_stage_count_validated(self):
        graph = staged_graph(layers=2, subgroup=4)
        with pytest.raises(ValueError, match="stages"):
            plan_stages(graph, A100x8, 4, 2)


class TestStagedAPI:
    @pytest.fixture(scope="class")
    def scenario(self):
        return Scenario(
            model="tiny", cluster="a100", num_gpus=8,
            pipeline_stages=2, microbatches=2,
        )

    @pytest.fixture(scope="class")
    def plan(self, scenario):
        return compile(scenario)

    def test_staged_presets_registered(self):
        presets = available_presets()
        assert "tiny/a100x8-pp2x4" in presets
        assert "gpt2-s-moe/a100x16-pp2x4" in presets
        assert Scenario.preset("tiny/a100x8-pp2x4").staged

    def test_scenario_name_and_validation(self, scenario):
        assert scenario.name == "tiny/a100x8-pp2x2"
        gp = scenario.with_(pipeline_schedule="gpipe")
        assert gp.name.endswith("-gpipe")
        with pytest.raises(ValueError, match="divide"):
            scenario.with_(pipeline_stages=3)
        with pytest.raises(ValueError, match="pipeline_stages"):
            Scenario(model="tiny", microbatches=2)
        with pytest.raises(ValueError, match="schedule"):
            scenario.with_(pipeline_schedule="interleaved")
        with pytest.raises(ValueError, match="microbatches"):
            scenario.with_(batch=6, microbatches=4).build_graph()

    def test_staged_build_graph_is_per_microbatch(self, scenario):
        graph = scenario.build_graph()
        # batch 4 split over 2 microbatches on a 4-GPU subgroup
        assert graph.program.instructions
        assert scenario.resolved_batch() == 4

    def test_plan_carries_stage_map(self, scenario, plan):
        assert plan.stage_map is not None
        assert plan.stage_map.num_stages == 2
        assert plan.stage_map.microbatches == 2
        assert plan.stage_map.schedule == "1f1b"
        assert (
            plan.predicted_iteration_ms
            == plan.stage_map.predicted_pipeline_ms
        )
        assert "pipeline:" in plan.summary()
        assert plan.planner["stage_candidates"]
        assert plan.planner["stage_reports"]

    def test_staged_plan_simulates_on_subgroup(self, plan):
        assert plan.cluster.num_gpus == 8
        assert plan.simulation_cluster().num_gpus == 4
        assert plan.simulate().makespan > 0

    def test_round_trip_is_byte_stable(self, plan):
        doc = plan.to_dict()
        assert doc["pipeline"] == plan.stage_map.to_dict()
        from repro.api import Plan

        clone = Plan.from_dict(json.loads(json.dumps(doc)))
        assert clone.to_dict() == doc
        assert clone.stage_map == plan.stage_map

    def test_store_folds_pipeline_request_into_keys(
        self, scenario, plan, tmp_path
    ):
        from repro.api import PlanStore

        store = PlanStore(tmp_path / "store")
        store.put(plan)
        policy = PlanPolicy()
        warm = store.get(
            plan.fingerprint,
            plan.cluster,
            policy,
            plan.framework,
            plan.signatures,
            pipeline=plan.stage_map.request_dict(),
        )
        assert warm is not None and warm.from_store
        assert warm.stage_map == plan.stage_map
        # same fingerprint/cluster/policy, no pipeline request: miss
        assert (
            store.get(
                plan.fingerprint, plan.cluster, policy,
                plan.framework, plan.signatures,
            )
            is None
        )
        # a different schedule is a different key
        other = dict(plan.stage_map.request_dict(), schedule="gpipe")
        assert (
            store.get(
                plan.fingerprint, plan.cluster, policy,
                plan.framework, plan.signatures, pipeline=other,
            )
            is None
        )

    def test_compile_through_store_warm_hit(self, scenario, tmp_path):
        from repro.api import PlanStore

        store = PlanStore(tmp_path / "store")
        cold = compile(scenario, store=store)
        assert not cold.from_store
        warm = compile(scenario, store=store)
        assert warm.from_store
        assert warm.stage_map == cold.stage_map


class TestCLI:
    def test_plan_run_inspect_staged(self, tmp_path, capsys):
        out = tmp_path / "staged.plan.json"
        assert main(
            [
                "plan", "--preset", "tiny/a100x8",
                "--stages", "2", "--microbatches", "2",
                "--store", str(tmp_path / "store"), "--out", str(out),
            ]
        ) == 0
        assert "pipeline:" in capsys.readouterr().out
        plan = load_plan(out)
        assert plan.stage_map is not None
        assert plan.stage_map.num_stages == 2

        assert main(["inspect", str(out)]) == 0
        assert "pipeline:" in capsys.readouterr().out

        assert main(["run", "--plan", str(out)]) == 0
        run_out = capsys.readouterr().out
        assert "simulated microbatch" in run_out
        assert "microbatch speedup" in run_out
