"""Graceful degradation: breaker, deadlines, retries, fallback tiers."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import PlanError, PlanStore, Scenario
from repro.api.compiler import plan_resolved, resolve_workload
from repro.faults import FlakyPlanner, FlakyStore
from repro.serving import PlanServer

SC = Scenario.preset("tiny/a100x8")


@pytest.fixture()
def store(tmp_path):
    return PlanStore(tmp_path / "plans")


def _wait_for(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.005)


class TestCircuitBreaker:
    def test_opens_after_threshold_failures(self):
        from repro.serving import CircuitBreaker

        breaker = CircuitBreaker(threshold=3, cooldown_s=3600.0)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        from repro.serving import CircuitBreaker

        breaker = CircuitBreaker(threshold=2, cooldown_s=3600.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_trial_closes_or_reopens(self):
        from repro.serving import CircuitBreaker

        breaker = CircuitBreaker(threshold=1, cooldown_s=3600.0)
        breaker.record_failure()
        assert not breaker.allow()  # cooling down
        breaker.cooldown_s = 0.0  # runtime-mutable: heal immediately
        assert breaker.allow()  # the single half-open trial
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one trial at a time
        breaker.cooldown_s = 3600.0  # a failed trial must cool down again
        breaker.record_failure()
        assert breaker.state == "open"
        # trips counts closed -> open transitions only; a failed trial
        # re-opens the already-tripped breaker
        assert breaker.trips == 1
        assert not breaker.allow()
        breaker.cooldown_s = 0.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()


class TestDeadlines:
    def test_blown_deadline_on_cold_store_serves_baseline(self, store):
        with PlanServer(store) as server:
            result = server.serve(SC, deadline_s=0.0)
            assert result.origin == "baseline"
            assert result.reason == "deadline"
            assert result.plan.meta["baseline"] is True
            assert server.counters["deadline_hits"] == 1
            assert server.counters["baseline_plans"] == 1
            # the planner was healthy, so the miss heals in the
            # background and the next request is warm -- with a *real*
            # plan, never the cached baseline
            server.drain()
            healed = server.serve(SC)
            assert healed.origin == "memory"
            assert not healed.plan.meta.get("baseline")

    def test_blown_deadline_with_warm_store_serves_stale(self, store):
        with PlanServer(store) as server:
            server.serve(SC)  # warm the bucket
        # far-drifted request: outside the nearest radius, so only the
        # stale tier (unbounded distance) can answer without a planner
        drifted = SC.with_(concentration=0.05, hot_experts=2, hot_boost=0.9)
        with PlanServer(store, max_distance=1e-9) as server:
            result = server.serve(drifted, deadline_s=0.0)
            assert result.origin == "stale"
            assert result.reason == "deadline"
            assert result.distance > 0
            assert server.counters["stale_hits"] == 1
            server.drain()

    def test_degraded_answers_do_not_poison_the_cache(self, store):
        # fallback=True but hot-swap healing suppressed by an open
        # breaker: a baseline answer must not be served as "memory"
        with PlanServer(store, breaker_threshold=1) as server:
            server.breaker.record_failure()  # force the breaker open
            first = server.serve(SC, deadline_s=0.0)
            second = server.serve(SC, deadline_s=0.0)
        assert first.origin == second.origin == "baseline"

    def test_fallback_disabled_raises_instead(self, store):
        with PlanServer(store, fallback=False) as server:
            with pytest.raises(PlanError, match="deadline"):
                server.serve(SC, deadline_s=0.0)


class TestPlannerTimeouts:
    def test_timeout_falls_back_then_lands_late(self, store):
        planner = FlakyPlanner(plan_resolved, delay_s=0.2)
        with PlanServer(
            store, planner=planner, planner_timeout_s=0.01
        ) as server:
            result = server.serve(SC)
            assert result.origin == "baseline"
            assert result.reason == "planner_timeout"
            assert server.counters["planner_timeouts"] == 1
            # the abandoned run keeps going and heals the cache
            _wait_for(lambda: server.counters["late_plans"] >= 1)
            assert server.serve(SC).origin == "memory"

    def test_timeouts_trip_the_breaker_without_raising(self, store):
        planner = FlakyPlanner(plan_resolved, delay_s=0.2)
        with PlanServer(
            store,
            planner=planner,
            planner_timeout_s=0.01,
            breaker_threshold=2,
            breaker_cooldown_s=3600.0,
            memory_cache_size=0,
        ) as server:
            probes = [SC.with_(routing_seed=s) for s in range(4)]
            results = [server.serve(p, deadline_s=None) for p in probes]
            assert all(r.origin in ("baseline", "stale") for r in results)
            assert server.breaker.state == "open"
            assert server.counters["planner_timeouts"] == 2
            assert server.counters["breaker_short_circuits"] >= 1
            assert server.counters["errors"] == 0
            _wait_for(lambda: server.counters["late_plans"] >= 2)


class TestBreakerServing:
    def test_failures_raise_while_closed_then_degrade_when_open(
        self, store
    ):
        planner = FlakyPlanner(plan_resolved, outage=(0, 10**9))
        with PlanServer(
            store,
            planner=planner,
            breaker_threshold=2,
            breaker_cooldown_s=3600.0,
            memory_cache_size=0,
        ) as server:
            # pre-ISSUE-8 semantics: failures raise while the breaker
            # stays closed...
            with pytest.raises(RuntimeError, match="injected planner"):
                server.serve(SC.with_(routing_seed=0))
            # ...but the failure that trips it degrades instead (the
            # breaker opens before the would-raise check)
            tripping = server.serve(SC.with_(routing_seed=1))
            assert tripping.origin == "baseline"
            assert tripping.reason == "planner_error"
            assert server.breaker.state == "open"
            # the breaker is open: requests short-circuit to the tiers
            result = server.serve(SC.with_(routing_seed=2))
            assert result.origin == "baseline"
            assert result.reason == "breaker_open"
            assert server.counters["breaker_short_circuits"] == 1

            # heal the planner, let the cooldown lapse: the half-open
            # trial runs cold and closes the breaker again
            planner.outage = None
            server.breaker.cooldown_s = 0.0
            healed = server.serve(SC.with_(routing_seed=3))
            assert healed.origin == "planned"
            assert server.breaker.state == "closed"

    def test_stats_expose_breaker_state(self, store):
        with PlanServer(store) as server:
            stats = server.stats()
        breaker = stats["breaker"]
        assert breaker["state"] == "closed"
        assert breaker["trips"] == 0
        assert set(stats["server"]) >= {
            "deadline_hits",
            "planner_timeouts",
            "late_plans",
            "store_retries",
            "breaker_short_circuits",
            "stale_hits",
            "baseline_plans",
        }


class TestStoreFaults:
    def test_transient_store_errors_are_retried_to_success(self, tmp_path):
        inner = PlanStore(tmp_path / "plans")
        flaky = FlakyStore(inner, seed=3, error_rate=0.5, max_consecutive=2)
        with PlanServer(
            flaky, store_retries=3, retry_backoff_s=0.001
        ) as server:
            plans = [
                server.serve(SC.with_(routing_seed=s)).plan for s in range(6)
            ]
        assert all(p is not None for p in plans)
        assert flaky.injected_errors > 0
        assert server.counters["store_retries"] > 0
        assert server.counters["errors"] == 0

    def test_exhausted_retries_degrade_to_a_miss(self, tmp_path):
        inner = PlanStore(tmp_path / "plans")
        # every call fails until max_consecutive, which exceeds the
        # retry budget: lookups degrade to misses, the planner answers
        flaky = FlakyStore(inner, seed=0, error_rate=0.99, max_consecutive=50)
        with PlanServer(
            flaky, store_retries=1, retry_backoff_s=0.001
        ) as server:
            result = server.serve(SC)
        assert result.origin == "planned"
        assert server.counters["store_errors"] > 0
        assert server.counters["errors"] == 0

    def test_flock_failure_degrades_to_lockless_with_one_warning(
        self, tmp_path, monkeypatch
    ):
        import fcntl

        def broken_flock(fd, op):
            raise OSError("flock not supported here")

        monkeypatch.setattr(fcntl, "flock", broken_flock)
        store = PlanStore(tmp_path / "plans")
        plan = plan_resolved(resolve_workload(SC))
        with pytest.warns(RuntimeWarning, match="lockless"):
            store.put(plan)
        # the warning fires once; later writes stay quiet and work
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            store.put(plan)
        assert store.get(
            plan.fingerprint,
            plan.cluster,
            plan.policy,
            plan.framework,
            plan.signatures,
        ) is not None


class TestCorruptEntryHealing:
    def _corrupt_all_entries(self, store: PlanStore) -> int:
        paths = store.entries()
        for path in paths:
            path.write_bytes(b"{ this is not a plan }")
        return len(paths)

    def test_corrupt_entry_degrades_then_heals(self, tmp_path):
        root = tmp_path / "plans"
        with PlanServer(PlanStore(root)) as server:
            server.serve(SC)
        assert self._corrupt_all_entries(PlanStore(root)) >= 1
        # a fresh server (cold caches) over the corrupted store: the
        # PlanError degrades to a miss, the planner re-plans, and the
        # put replaces the corrupted entry
        with PlanServer(PlanStore(root)) as server:
            result = server.serve(SC)
            assert result.origin == "planned"
            assert server.counters["errors"] == 0
        # the heal is durable: yet another cold server reads it warm
        with PlanServer(PlanStore(root)) as server:
            assert server.serve(SC).origin == "store"

    def test_concurrent_readers_on_corrupt_entry_one_replan(self, tmp_path):
        """Satellite (c): two readers hit a corrupted entry while the
        writer heals it -- nobody crashes, and coalescing guarantees
        exactly one re-plan."""
        root = tmp_path / "plans"
        with PlanServer(PlanStore(root)) as server:
            server.serve(SC)
        self._corrupt_all_entries(PlanStore(root))

        with PlanServer(PlanStore(root)) as server:
            barrier = threading.Barrier(2)
            results, failures = [], []

            def read() -> None:
                try:
                    barrier.wait(timeout=5.0)
                    results.append(server.serve(SC))
                except BaseException as err:  # pragma: no cover
                    failures.append(err)

            readers = [threading.Thread(target=read) for _ in range(2)]
            for t in readers:
                t.start()
            for t in readers:
                t.join(timeout=30.0)
            assert not failures
            assert len(results) == 2
            assert all(r.plan is not None for r in results)
            # exactly one re-plan healed the entry for both readers
            assert server.counters["planner_runs"] == 1
            assert server.counters["errors"] == 0
        with PlanServer(PlanStore(root)) as server:
            assert server.serve(SC).origin == "store"


class TestServeStatsCLI:
    def test_missing_store_yields_empty_report(self, tmp_path, capsys):
        from repro.__main__ import main

        missing = tmp_path / "never-created"
        out = tmp_path / "stats.json"
        assert main(
            ["serve", "stats", "--store", str(missing), "--out", str(out)]
        ) == 0
        assert "entries: 0" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["exists"] is False
        assert payload["entries"] == 0
        assert payload["bytes"] == 0
        # read-only: the probe must not create the directory
        assert not missing.exists()

    def test_file_path_is_a_clean_error(self, tmp_path, capsys):
        from repro.__main__ import main

        bogus = tmp_path / "a-file"
        bogus.write_text("not a directory")
        assert main(["serve", "stats", "--store", str(bogus)]) == 1
        err = capsys.readouterr().err
        assert "not a directory" in err
        assert bogus.read_text() == "not a directory"
