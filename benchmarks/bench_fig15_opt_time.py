"""Fig. 15: Lancet's optimization time.

The partition pass dominates (the dW pass is a fast greedy); time grows
with model depth, not GPU count.
"""

from conftest import run_figure
from repro.bench.figures import fig15


def test_fig15_optimization_time(benchmark):
    result = run_figure(benchmark, fig15.run)
    assert result.notes["partition_pass_dominates"]
    assert result.notes["larger_model_slower"]
    for row in result.rows:
        # the whole point of rho/gamma/iota: optimization stays tractable
        assert row["total_s"] < 120.0
