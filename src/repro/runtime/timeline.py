"""Execution timelines and overlap accounting.

The simulator produces an interval per instruction; this module reduces
those to the quantities the paper reports: makespan (iteration time) and
the Fig. 13 decomposition into *non-overlapped communication*, *overlap*,
and *non-overlapped computation*.

Every multi-term reduction here goes through :func:`math.fsum`, which is
exactly rounded and therefore independent of accumulation order.  That
makes the reductions agree bit-for-bit no matter which simulator
produced the intervals (scalar :func:`~repro.runtime.simulate
.simulate_cluster` or the vectorized batch path) or in which order a
caller enumerates them -- naive left-to-right ``+=`` would tie the
result to one enumeration order and force differential tests down to
approximate equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..ir import Stream


@dataclass(frozen=True)
class Interval:
    """One executed instruction on the timeline."""

    uid: int
    op: str
    kind: str
    stream: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def merge_intervals(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly overlapping [start, end) spans."""
    if not spans:
        return []
    spans = sorted(spans)
    out = [list(spans[0])]
    for s, e in spans[1:]:
        if s <= out[-1][1]:
            out[-1][1] = max(out[-1][1], e)
        else:
            out.append([s, e])
    return [(s, e) for s, e in out]


def total_length(spans: list[tuple[float, float]]) -> float:
    """Total covered length of (already merged) spans (exactly rounded)."""
    return math.fsum(e - s for s, e in spans)


def intersect_length(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    """Total length of the intersection of two merged span lists."""
    i = j = 0
    overlaps: list[float] = []
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if e > s:
            overlaps.append(e - s)
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return math.fsum(overlaps)


@dataclass(frozen=True)
class Breakdown:
    """Fig. 13-style decomposition of one iteration (all times ms)."""

    makespan: float
    comm_only: float
    comp_only: float
    overlapped: float
    idle: float

    @property
    def comm_total(self) -> float:
        """Total communication busy time (overlapped + exposed)."""
        return self.comm_only + self.overlapped

    @property
    def comp_total(self) -> float:
        """Total computation busy time (overlapped + exposed)."""
        return self.comp_only + self.overlapped

    def as_dict(self) -> dict[str, float]:
        return {
            "makespan": self.makespan,
            "comm_only": self.comm_only,
            "comp_only": self.comp_only,
            "overlapped": self.overlapped,
            "idle": self.idle,
        }


@dataclass
class Timeline:
    """All intervals of one simulated iteration on one device."""

    intervals: list[Interval] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """End-to-end iteration time."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def stream_spans(self, stream: str) -> list[tuple[float, float]]:
        """Merged busy spans of one stream."""
        return merge_intervals(
            [(iv.start, iv.end) for iv in self.intervals if iv.stream == stream]
        )

    def breakdown(self) -> Breakdown:
        """Decompose the iteration into comm-only / comp-only / overlap."""
        comp = self.stream_spans(Stream.COMPUTE)
        comm = self.stream_spans(Stream.COMM)
        both = intersect_length(comp, comm)
        t_comp = total_length(comp)
        t_comm = total_length(comm)
        mk = self.makespan
        return Breakdown(
            makespan=mk,
            comm_only=t_comm - both,
            comp_only=t_comp - both,
            overlapped=both,
            idle=mk - (t_comp + t_comm - both),
        )

    def per_op_totals(self) -> dict[str, float]:
        """Total busy time per op name (double-counts nothing: durations)."""
        groups: dict[str, list[float]] = {}
        for iv in self.intervals:
            groups.setdefault(iv.op, []).append(iv.duration)
        return {op: math.fsum(durs) for op, durs in groups.items()}

    def total_time_of(self, ops: set[str] | None = None, kind: str | None = None) -> float:
        """Sum of durations, filtered by op names and/or kind."""
        return math.fsum(
            iv.duration
            for iv in self.intervals
            if (ops is None or iv.op in ops)
            and (kind is None or iv.kind == kind)
        )

    def exposed_time_of(self, ops: set[str]) -> float:
        """Time the given ops spend with the *other* stream idle.

        E.g. ``exposed_time_of({'all_to_all'})`` = non-overlapped
        all-to-all time, the headline metric of the paper.
        """
        target = merge_intervals(
            [(iv.start, iv.end) for iv in self.intervals if iv.op in ops]
        )
        if not target:
            return 0.0
        streams = {iv.stream for iv in self.intervals if iv.op in ops}
        if len(streams) != 1:
            raise ValueError(f"ops {ops} span multiple streams {streams}")
        other = Stream.COMPUTE if streams.pop() == Stream.COMM else Stream.COMM
        other_spans = self.stream_spans(other)
        return total_length(target) - intersect_length(target, other_spans)


@dataclass
class ClusterTimeline:
    """Per-device timelines of one simulated iteration on ``G`` devices.

    Produced by :func:`~repro.runtime.simulate.simulate_cluster`.  Every
    device records its own intervals; collectives appear on each
    participant with that device's busy time, but downstream work (and
    the stream) only resumes once the whole collective has completed.
    """

    devices: list[Timeline] = field(default_factory=list)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def device(self, index: int) -> Timeline:
        """Timeline of one device."""
        return self.devices[index]

    @property
    def makespan(self) -> float:
        """Cluster iteration time: the slowest device's makespan."""
        return max((tl.makespan for tl in self.devices), default=0.0)

    def per_device_makespans(self) -> list[float]:
        return [tl.makespan for tl in self.devices]

    @property
    def critical_device(self) -> int:
        """Index of the device that finishes last (the straggler)."""
        spans = self.per_device_makespans()
        return int(np.argmax(spans)) if spans else 0

    def breakdown(self) -> Breakdown:
        """Fig. 13-style decomposition of the critical device."""
        return self.devices[self.critical_device].breakdown()

    def per_device_time_of(
        self, ops: set[str] | None = None, kind: str | None = None
    ) -> list[float]:
        """Per-device total busy time of the given ops (e.g. the spread
        of realized all-to-all durations under skewed routing)."""
        return [tl.total_time_of(ops, kind) for tl in self.devices]

    def per_device_compute_ms(self) -> list[float]:
        """Per-device compute-stream busy time (merged spans).

        The straggler detector's natural input: a device with a
        persistent compute slowdown shows up here regardless of how the
        collectives mask it in the makespan.
        """
        return [
            total_length(tl.stream_spans(Stream.COMPUTE))
            for tl in self.devices
        ]

    def imbalance_ms(self, ops: set[str] | None = None) -> float:
        """Max minus min per-device busy time of ``ops``: 0 for a
        perfectly SPMD-symmetric execution, > 0 under load skew."""
        per = self.per_device_time_of(ops)
        return (max(per) - min(per)) if per else 0.0
