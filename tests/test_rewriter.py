"""Tests for the partition rewriter: the mathematical-equivalence core.

Every rewritten program must produce bit-identical losses and gradients
to the original -- the transformation is a pure performance optimization
(paper Sec. 1: "all transformations maintain mathematical equivalence").
"""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro import GPT2MoEConfig, build_training_graph, validate
from repro.core.partition import RangePlan, apply_plan, infer_axes
from repro.models.init import init_device_values
from repro.runtime import run_program


def partition_first_moe(graph, parts, from_op="layernorm", include_tail=True):
    """Force-partition the first MoE layer's range at the given width."""
    p = graph.program
    pos = p.instr_index()
    ml = graph.moe_layers[0]
    if from_op == "layernorm":
        start = pos[ml.gate_matmul_uid] - 1
    elif from_op == "dispatch":
        start = pos[ml.dispatch_uid]
    elif from_op == "a2a":
        start = pos[ml.a2a_first_uid]
    end = pos[ml.combine_uid] + (2 if include_tail else 1)
    if from_op == "a2a":
        end = pos[ml.a2a_second_uid] + 1
    instrs = p.instructions[start:end]
    axes = infer_axes(instrs, p)
    assert axes is not None
    opt = p.clone()
    plan = RangePlan(
        start=start, end=end, parts=parts, axes=axes,
        predicted_ms=0.0, sequential_ms=0.0,
    )
    apply_plan(opt, plan)
    validate(opt)
    return opt


def assert_equivalent(graph, optimized, seed=0):
    vals = init_device_values(graph, seed=seed)
    base = run_program(graph.program, fresh_values(vals))
    out = run_program(optimized, fresh_values(vals))
    assert np.array_equal(base[0][graph.loss], out[0][graph.loss])
    for pid, gid in graph.program.grads.items():
        a = base[0][gid]
        b = out[0][optimized.grads[pid]]
        assert np.allclose(a, b, rtol=0, atol=1e-12), graph.program.values[pid].name


@pytest.mark.parametrize("gate,parts", [
    ("switch", 2),
    ("switch", 4),
    ("topk", 4),
    ("random", 3),
])
def test_batch_pipeline_bit_exact(gate, parts):
    cfg = GPT2MoEConfig.tiny(gate=gate, top_k=2 if gate == "topk" else 1)
    graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
    optimized = partition_first_moe(graph, parts)
    assert_equivalent(graph, optimized)


def test_bpr_post_gate_pipeline_bit_exact():
    cfg = GPT2MoEConfig.tiny(gate="bpr")
    graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
    optimized = partition_first_moe(graph, 4, from_op="dispatch")
    assert_equivalent(graph, optimized)


def test_capacity_axis_pipeline_bit_exact():
    """Tutel-style capacity-dim partition of [a2a, experts, a2a]."""
    cfg = GPT2MoEConfig.tiny()
    graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
    optimized = partition_first_moe(graph, 2, from_op="a2a")
    assert_equivalent(graph, optimized)


def test_uneven_chunks_bit_exact():
    """Batch 6 split 4 ways -> uneven chunks (2,2,1,1) must still be exact."""
    cfg = GPT2MoEConfig.tiny()
    graph = build_training_graph(cfg, batch=6, seq=8, num_gpus=2)
    optimized = partition_first_moe(graph, 4)
    assert_equivalent(graph, optimized)


def test_scarce_capacity_dropping_preserved():
    """Equivalence must hold even when tokens are actually dropped."""
    cfg = GPT2MoEConfig.tiny(capacity_factor=0.5)
    graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
    optimized = partition_first_moe(graph, 4)
    assert_equivalent(graph, optimized)


def test_multiple_seeds():
    cfg = GPT2MoEConfig.tiny()
    graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
    optimized = partition_first_moe(graph, 4)
    for seed in range(3):
        assert_equivalent(graph, optimized, seed=seed)


def test_four_devices():
    cfg = GPT2MoEConfig.tiny()
    graph = build_training_graph(cfg, batch=4, seq=8, num_gpus=4)
    optimized = partition_first_moe(graph, 2)
    assert_equivalent(graph, optimized)


class TestRewriterStructure:
    def test_chunk_instructions_tagged(self):
        cfg = GPT2MoEConfig.tiny()
        graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
        optimized = partition_first_moe(graph, 4)
        chunks = [i for i in optimized.instructions if i.partition is not None]
        assert chunks
        assert all(i.partition[1] == 4 for i in chunks)
        origins = {i.origin for i in chunks if i.origin is not None}
        orig_uids = {i.uid for i in graph.program.instructions}
        assert origins <= orig_uids

    def test_routing_becomes_routing_partial(self):
        cfg = GPT2MoEConfig.tiny()
        graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
        optimized = partition_first_moe(graph, 4)
        counts = optimized.count_ops()
        assert counts.get("routing_partial", 0) == 4
        assert counts.get("capacity_init", 0) == 1
        # exactly one routing remains (the second, unpartitioned MoE layer)
        assert counts.get("routing", 0) == graph.cfg.num_moe_layers - 1

    def test_reconstruction_ops_emitted(self):
        cfg = GPT2MoEConfig.tiny()
        graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
        optimized = partition_first_moe(graph, 4)
        counts = optimized.count_ops()
        assert counts.get("accumulate", 0) > 0  # irregular buffers
        assert counts.get("concat", 0) > 0  # batch-split activations
        assert counts.get("route_concat", 0) == 1

    def test_chunked_a2a_marked_irregular(self):
        cfg = GPT2MoEConfig.tiny()
        graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
        optimized = partition_first_moe(graph, 4)
        for i in optimized.instructions:
            if i.op == "all_to_all" and i.partition is not None:
                assert i.attrs["irregular"]
                assert i.attrs.get("irr_parts") is None  # comm priced via partition

    def test_capacity_chunked_a2a_regular(self):
        cfg = GPT2MoEConfig.tiny()
        graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)
        optimized = partition_first_moe(graph, 2, from_op="a2a")
        for i in optimized.instructions:
            if i.op == "all_to_all" and i.partition is not None:
                assert not i.attrs["irregular"]
