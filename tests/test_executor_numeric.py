"""Tests for the numeric IR interpreter across simulated devices."""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro.runtime import NumericExecutor, run_program


class TestEndToEnd:
    def test_loss_finite_and_scalar(self, tiny_graph, tiny_values):
        envs = run_program(tiny_graph.program, fresh_values(tiny_values))
        for env in envs:
            loss = env[tiny_graph.loss]
            assert loss.shape == ()
            assert np.isfinite(loss)

    def test_deterministic(self, tiny_graph, tiny_values):
        e1 = run_program(tiny_graph.program, fresh_values(tiny_values))
        e2 = run_program(tiny_graph.program, fresh_values(tiny_values))
        assert np.array_equal(e1[0][tiny_graph.loss], e2[0][tiny_graph.loss])

    def test_replicated_params_stay_replicated(self, tiny_graph, tiny_values):
        """After allreduce(mean) + identical SGD, data-parallel parameters
        must remain identical across devices -- the DP invariant."""
        p = tiny_graph.program
        envs = run_program(p, fresh_values(tiny_values))
        updated = {}
        for instr in p.instructions:
            if instr.op == "sgd_update":
                updated[instr.inputs[0]] = instr.outputs[0]
        shared = set(p.params) - tiny_graph.expert_params
        assert shared
        for pid in shared:
            w0 = envs[0][updated[pid]]
            for env in envs[1:]:
                assert np.allclose(w0, env[updated[pid]], atol=1e-12), (
                    p.values[pid].name
                )

    def test_expert_params_diverge(self, tiny_graph, tiny_values):
        """Expert parameters are device-local and must not be synced."""
        p = tiny_graph.program
        envs = run_program(p, fresh_values(tiny_values))
        updated = {
            i.inputs[0]: i.outputs[0]
            for i in p.instructions
            if i.op == "sgd_update"
        }
        diverged = 0
        for pid in tiny_graph.expert_params:
            if not np.allclose(envs[0][updated[pid]], envs[1][updated[pid]]):
                diverged += 1
        assert diverged > 0

    def test_losses_differ_across_devices(self, tiny_graph, tiny_values):
        """Each device sees its own batch shard (data parallelism)."""
        envs = run_program(tiny_graph.program, fresh_values(tiny_values))
        assert not np.allclose(envs[0][tiny_graph.loss], envs[1][tiny_graph.loss])

    def test_sgd_actually_updates(self, tiny_graph, tiny_values):
        p = tiny_graph.program
        envs = run_program(p, fresh_values(tiny_values))
        moved = 0
        for instr in p.instructions:
            if instr.op == "sgd_update":
                w_old = envs[0][instr.inputs[0]]
                w_new = envs[0][instr.outputs[0]]
                if not np.allclose(w_old, w_new):
                    moved += 1
        assert moved > len(p.params) // 2


class TestExecutorAPI:
    def test_wrong_device_count(self, tiny_graph, tiny_values):
        ex = NumericExecutor(tiny_graph.program, 2)
        with pytest.raises(ValueError):
            ex.run(ex.make_envs(fresh_values(tiny_values)[:1]))

    def test_unknown_op_rejected(self, tiny_graph, tiny_values):
        p = tiny_graph.program.clone()
        bad = p.instructions[0].with_(op="matmul_fused_bogus")
        p.instructions[0] = bad
        with pytest.raises((NotImplementedError, KeyError)):
            run_program(p, fresh_values(tiny_values))
