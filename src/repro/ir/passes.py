"""Pass manager for IR transformations.

Lancet is implemented as two optimization passes registered with the
compiler's pass manager (paper Sec. 6: "users only need to enable them in
RAF's optimization pass manager").  This module provides that harness: a
:class:`Pass` protocol, a :class:`PassManager` that runs passes in order,
validates the IR after each one, and records per-pass wall time (which
feeds the paper's Fig. 15 optimization-time measurement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .program import Program
from .validate import validate


class Pass:
    """Base class for IR passes.  Subclasses override :meth:`run`."""

    #: Human-readable pass name (defaults to class name).
    name: str = ""

    def run(self, program: Program) -> Program:
        """Transform and return the program (may mutate in place)."""
        raise NotImplementedError

    def __init_subclass__(cls, **kw) -> None:
        super().__init_subclass__(**kw)
        if not cls.name:
            cls.name = cls.__name__


@dataclass
class PassTiming:
    """Wall-clock record of one pass execution."""

    name: str
    seconds: float


@dataclass
class PassManager:
    """Runs a list of passes over a program, validating after each.

    Attributes
    ----------
    passes:
        Passes to run, in order.
    validate_each:
        If True (default), run the IR validator after every pass.
    timings:
        Filled by :meth:`run`; one entry per executed pass.
    """

    passes: list[Pass] = field(default_factory=list)
    validate_each: bool = True
    timings: list[PassTiming] = field(default_factory=list)

    def add(self, p: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(p)
        return self

    def run(self, program: Program) -> Program:
        """Run all passes in order and return the final program."""
        self.timings = []
        for p in self.passes:
            t0 = time.perf_counter()
            program = p.run(program)
            self.timings.append(PassTiming(p.name, time.perf_counter() - t0))
            if self.validate_each:
                validate(program)
        return program

    def total_seconds(self) -> float:
        """Total optimization time across all passes (paper Fig. 15)."""
        return sum(t.seconds for t in self.timings)
