"""Pipeline-planner benchmark: differential agreement + staged-split wins.

Not a paper figure -- the quality gate for the ISSUE 10 hybrid
pipeline-parallel x expert-parallel subsystem (:mod:`repro.pipeline`).
Three seeded, fully deterministic drills:

- **differential** -- the fixed-point scan scheduler vs. the naive
  pure-Python event-replay reference on real programs x staged clusters
  x routing realizations x both schedules.  The two implementations
  share the float64 max/add dependency contract, so the gate is
  **bit-identical job times on every run** (zero mismatches).
- **hot grid** -- multi-node clusters under hot-expert traffic with an
  imbalanced layer profile (a trailing vocab head plus an off-center
  MoE block): the planner-chosen stage split must beat the naive even
  split's full pipelined iteration time by :data:`MIN_PIPELINE_IMPROVEMENT`
  on every grid point (the "boundary placement is a planning decision"
  claim).
- **schedule ablation** -- GPipe vs 1F1B on identical per-stage costs:
  1F1B's iteration time never loses, and its peak in-flight microbatch
  count (the activation-memory high-water mark) stays strictly below
  GPipe's ``M`` on every non-terminal stage.

All quantities are modeled milliseconds / counts, deterministic across
machines, so the regression gate runs at tight tolerances.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...models import GPT2MoEConfig, build_training_graph
from ...pipeline import (
    SCHEDULES,
    StagedCluster,
    peak_in_flight,
    plan_stages,
    replay_reference,
    schedule_order,
    simulate_staged,
    split_stages,
    stage_costs,
)
from ...runtime import ClusterSpec, SyntheticRoutingModel
from ...testing import routing_models
from ..formatting import format_table
from .common import FigureResult

#: minimum fractional iteration-time win the stage planner must find
#: over the naive even split on every hot-grid point (the gate's target)
MIN_PIPELINE_IMPROVEMENT = 0.10

#: floor for the improvement-shortfall regression metric: the realized
#: shortfall is 0 (every grid point clears the target with margin), and
#: a 20% relative tolerance on 0 would gate on nothing -- flooring makes
#: the gate fire only once the win drops meaningfully below target
SHORTFALL_FLOOR = 0.01


def _bench_config(num_layers: int = 4) -> GPT2MoEConfig:
    """The imbalanced layer profile the hot grid plans over: a real
    vocab-sized head riding the last block and an off-center MoE block
    (``moe_every=3``), so the even split concentrates cost in one stage."""
    return GPT2MoEConfig(
        name="bench-pipeline",
        num_layers=num_layers,
        hidden=256,
        num_heads=8,
        vocab_size=50_257,
        max_seq=128,
        moe_every=3,
        experts_per_gpu=2,
    )


def _differential_drill(seed: int) -> dict:
    """Scan scheduler vs event replay on real staged simulations."""
    configs = [
        ("a100x8-s2", ClusterSpec.for_gpus("a100", 8), 2, 4, 2),
        ("a100x8-s4", ClusterSpec.for_gpus("a100", 8), 4, 2, 4),
        ("p3dn2-s2", ClusterSpec.p3dn(2), 2, 3, 2),
    ]
    runs = mismatches = jobs = 0
    for _, cluster, stages, microbatches, layers in configs:
        graph = build_training_graph(
            GPT2MoEConfig.tiny(num_layers=layers),
            batch=4,
            seq=16,
            num_gpus=cluster.num_gpus // stages,
        )
        staged = StagedCluster.even(cluster, layers, stages)
        split = split_stages(graph, staged)
        for routing in routing_models(include_none=True):
            costs = stage_costs(
                split, routing=routing, padded_a2a=routing is None
            )
            for schedule in SCHEDULES:
                sim = simulate_staged(
                    split, microbatches, schedule=schedule, costs=costs
                )
                orders = schedule_order(schedule, stages, microbatches)
                oracle = replay_reference(costs, orders)
                runs += 1
                jobs += len(oracle)
                if sim.job_times != oracle:
                    mismatches += 1
    return {
        "configs": [name for name, *_ in configs],
        "runs": runs,
        "jobs_compared": jobs,
        "mismatches": mismatches,
    }


def _grid_clusters() -> list[ClusterSpec]:
    """Multi-node hot-grid shapes: whole-multi-node stages (p3dn x4),
    one-node stages on a fat-NIC box (p4de x2), and many narrow nodes
    (stage subgroups smaller than the even NIC split)."""
    p3dn2 = ClusterSpec.p3dn(2)
    many = dataclasses.replace(
        p3dn2, name="p3dn-4x2", num_nodes=4, gpus_per_node=2
    )
    return [ClusterSpec.p3dn(4), ClusterSpec.p4de(2), many]


#: hot-grid pipeline request: 2 stages, 12 microbatches, 1F1B
GRID_STAGES = 2
GRID_MICROBATCHES = 12


def _hot_grid_drill(seeds_per_point: int, seed: int) -> dict:
    """Planner-chosen split vs naive even split, full staged iteration.

    Both arms get identical treatment (same costs, schedule, microbatch
    count; boundaries are the only difference), so the win isolates the
    planning decision.  The gate quantity is the worst grid point's
    mean-over-seeds improvement."""
    cfg = _bench_config()
    grid = []
    for cluster in _grid_clusters():
        graph = build_training_graph(
            cfg,
            batch=16,
            seq=128,
            num_gpus=cluster.num_gpus // GRID_STAGES,
        )
        even = StagedCluster.even(
            cluster, cfg.num_layers, GRID_STAGES
        ).layer_counts
        wins, chosen = [], None
        for s in range(seeds_per_point):
            routing = SyntheticRoutingModel(
                seed=seed * 100 + 3 + s,
                concentration=0.5,
                hot_experts=2,
                hot_boost=0.7,
            )
            planned = plan_stages(
                graph,
                cluster,
                GRID_STAGES,
                GRID_MICROBATCHES,
                routing=routing,
                padded_a2a=False,
            )
            baseline = plan_stages(
                graph,
                cluster,
                GRID_STAGES,
                GRID_MICROBATCHES,
                layer_counts=even,
                routing=routing,
                padded_a2a=False,
            )
            wins.append(1.0 - planned.makespan_ms / baseline.makespan_ms)
            chosen = planned.stage_map.layer_counts
        grid.append(
            {
                "cluster": cluster.name,
                "gpus": cluster.num_gpus,
                "chosen_split": list(chosen),
                "even_split": list(even),
                "min_improvement": min(wins),
                "mean_improvement": float(np.mean(wins)),
            }
        )
    min_improvement = min(p["mean_improvement"] for p in grid)
    return {
        "points": grid,
        "min_improvement": min_improvement,
        "target": MIN_PIPELINE_IMPROVEMENT,
        "shortfall": max(0.0, MIN_PIPELINE_IMPROVEMENT - min_improvement),
    }


def _schedule_drill(seed: int) -> dict:
    """GPipe vs 1F1B on identical per-stage costs (the ablation switch)."""
    cfg = _bench_config()
    points = []
    for cluster, stages, microbatches in [
        (ClusterSpec.p3dn(4), 2, 12),
        (ClusterSpec.for_gpus("a100", 8), 4, 8),
    ]:
        graph = build_training_graph(
            cfg,
            batch=16,
            seq=128,
            num_gpus=cluster.num_gpus // stages,
        )
        routing = SyntheticRoutingModel(
            seed=seed * 100 + 3,
            concentration=0.5,
            hot_experts=2,
            hot_boost=0.7,
        )
        staged = StagedCluster.even(cluster, cfg.num_layers, stages)
        split = split_stages(graph, staged)
        costs = stage_costs(split, routing=routing, padded_a2a=False)
        sims = {
            name: simulate_staged(
                split, microbatches, schedule=name, costs=costs
            )
            for name in SCHEDULES
        }
        peaks = {
            name: [
                peak_in_flight(order)
                for order in schedule_order(name, stages, microbatches)
            ]
            for name in SCHEDULES
        }
        points.append(
            {
                "cluster": cluster.name,
                "stages": stages,
                "microbatches": microbatches,
                "gpipe_ms": sims["gpipe"].makespan,
                "1f1b_ms": sims["1f1b"].makespan,
                "1f1b_over_gpipe": (
                    sims["1f1b"].makespan / sims["gpipe"].makespan
                ),
                "gpipe_peak_in_flight": max(peaks["gpipe"]),
                "1f1b_peak_in_flight": max(peaks["1f1b"]),
                "peak_violations": sum(
                    1
                    for g, o in zip(peaks["gpipe"], peaks["1f1b"])
                    if o > g
                ),
            }
        )
    return {
        "points": points,
        "worst_1f1b_over_gpipe": max(p["1f1b_over_gpipe"] for p in points),
        "peak_violations": sum(p["peak_violations"] for p in points),
    }


def run(hot_seeds_per_point: int = 2, seed: int = 0) -> FigureResult:
    """Run all three pipeline drills; returns per-drill summary rows."""
    differential = _differential_drill(seed)
    hot = _hot_grid_drill(hot_seeds_per_point, seed)
    schedule = _schedule_drill(seed)

    rows = [
        {
            "drill": "differential",
            "scale": f"{differential['runs']} staged sims / "
            f"{len(differential['configs'])} configs",
            "outcome": f"{differential['mismatches']} mismatches "
            f"(bit-identical gate)",
            "detail": f"{differential['jobs_compared']} job times compared",
        },
        {
            "drill": "hot-grid",
            "scale": f"{len(hot['points'])} multi-node shapes, "
            f"{GRID_STAGES} stages x {GRID_MICROBATCHES} microbatches",
            "outcome": f"min win {hot['min_improvement'] * 100:.1f}% "
            f"(target {MIN_PIPELINE_IMPROVEMENT * 100:.0f}%)",
            "detail": f"mean over grid "
            f"{np.mean([p['mean_improvement'] for p in hot['points']]) * 100:.1f}%",
        },
        {
            "drill": "schedule",
            "scale": f"{len(schedule['points'])} configs, "
            "identical per-stage costs",
            "outcome": f"1F1B/GPipe time "
            f"{schedule['worst_1f1b_over_gpipe']:.3f} (worst)",
            "detail": f"{schedule['peak_violations']} stages where 1F1B "
            "held more microbatches in flight than GPipe",
        },
    ]
    table = format_table(
        ["Drill", "Scale", "Outcome", "Detail"],
        [[r["drill"], r["scale"], r["outcome"], r["detail"]] for r in rows],
        title="Pipeline planner: differential agreement, staged-split "
        "wins, schedule ablation",
    )
    notes = {
        "differential": differential,
        "hot_grid": hot,
        "schedule": schedule,
        # lower-is-better gates for check_regression.py.  Differential
        # disagreements gate at exactly zero; the hot-grid win gates
        # through its floored shortfall (see SHORTFALL_FLOOR); the
        # schedule ablation gates 1F1B never losing to GPipe.
        "regression_metrics": {
            "differential_mismatches": float(differential["mismatches"]),
            "pipeline_improvement_shortfall_floored": max(
                hot["shortfall"], SHORTFALL_FLOOR
            ),
            "worst_1f1b_over_gpipe": schedule["worst_1f1b_over_gpipe"],
            "schedule_peak_violations": float(schedule["peak_violations"]),
        },
    }
    return FigureResult(
        "pipeline",
        "hybrid pipeline x expert parallel planner quality gates",
        rows,
        table,
        notes,
    )
