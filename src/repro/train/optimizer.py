"""Standalone SGD-with-momentum optimizer for numpy parameter pytrees.

The IR path embeds the update as ``sgd_update`` instructions; this class
serves code that trains the standalone :class:`~repro.moe.DistributedMoELayer`
directly (examples, convergence tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SGD:
    """SGD with (heavy-ball) momentum: ``m = mu*m + g; w -= lr*m``."""

    lr: float = 0.01
    momentum: float = 0.9
    _state: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update parameters in place."""
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ValueError(f"shape mismatch {p.shape} vs {g.shape}")
            buf = self._state.get(id(p))
            if buf is None:
                buf = np.zeros_like(p)
                self._state[id(p)] = buf
            buf *= self.momentum
            buf += g
            p -= self.lr * buf

    def reset(self) -> None:
        """Drop all momentum buffers."""
        self._state.clear()
