"""Topology sweep: flat vs hierarchical (2-hop) all-to-all plans.

For each (node count, hot-expert intensity), two skew-aware Lancet plans
are produced for the same program -- one restricted to flat all-to-alls,
one free to choose flat vs hierarchical per a2a chunk -- and both are
simulated per-device under the same realized routing.  The
hierarchical-enabled plan must never lose, must reduce exactly to the
flat plan on a single node, and must win >= 10% on a multi-node
skewed-routing scenario (the headline claim of the hierarchical layer).
"""

from conftest import run_figure
from repro.bench.figures import topology_sweep


def test_topology_sweep(benchmark):
    result = run_figure(benchmark, topology_sweep.run)
    rows = result.rows

    # single-node rows: the flat/hierarchical choice reduces to flat, so
    # both plans (and their simulated times) are identical
    for r in rows:
        if r["num_nodes"] == 1:
            assert r["hierarchical_a2a"] == 0
            assert r["iter_hier_plan_ms"] == r["iter_flat_plan_ms"]

    # the hierarchical-enabled plan never loses, at any scenario
    for r in rows:
        assert r["iter_hier_plan_ms"] <= r["iter_flat_plan_ms"] * 1.001

    # multi-node skewed scenarios exist and actually choose the 2-hop
    # algorithm for some all-to-alls
    multi_skew = [r for r in rows if r["num_nodes"] > 1 and r["hot_boost"] > 0]
    assert multi_skew
    assert any(r["hierarchical_a2a"] > 0 for r in multi_skew)

    # headline: >= 10% simulated iteration-time win over the flat-a2a
    # plan on a >= 2-node skewed-routing scenario
    assert result.notes["max_multi_node_skew_speedup"] >= 1.10

    # ... and the strongest-skew 2-node scenario wins on its own
    two_node = [r for r in multi_skew if r["num_nodes"] == 2]
    assert max(r["speedup"] for r in two_node) >= 1.05
