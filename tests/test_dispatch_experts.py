"""Unit tests for dispatch/combine gradients, buffer exchange, and the
grouped expert FFN."""

import numpy as np
import pytest

from repro.moe import (
    combine,
    combine_dprobs,
    combine_dx,
    dispatch,
    exchange_expert_buffers,
    exchange_expert_buffers_inverse,
    expert_ffn,
    expert_ffn_backward,
    gate_weights,
    gelu,
    gelu_grad,
    route_switch,
)
from repro.moe.layer import softmax


@pytest.fixture()
def routed(rng):
    t, e, c, h = 24, 4, 8, 6
    probs = softmax(rng.standard_normal((t, e)))
    info, _ = route_switch(probs, capacity=c)
    x = rng.standard_normal((t, h))
    return probs, info, x


class TestCombineGradients:
    def test_combine_dx_finite_difference(self, routed, rng):
        probs, info, x = routed
        buf = dispatch(x, info)
        dy = rng.standard_normal(x.shape)
        dbuf = combine_dx(dy, info, probs)
        eps = 1e-6
        idx = (info.expert_idx[0], info.slot_idx[0], 3)
        orig = buf[idx]
        buf[idx] = orig + eps
        yp = combine(buf, info, probs)
        buf[idx] = orig - eps
        ym = combine(buf, info, probs)
        buf[idx] = orig
        num = ((yp - ym) / (2 * eps) * dy).sum()
        assert np.isclose(num, dbuf[idx], atol=1e-8)

    def test_combine_dprobs_finite_difference(self, routed, rng):
        probs, info, x = routed
        buf = dispatch(x, info)
        dy = rng.standard_normal(x.shape)
        dprobs = combine_dprobs(dy, buf, info)
        eps = 1e-6
        tok, exp = int(info.token_idx[0]), int(info.expert_idx[0])
        orig = probs[tok, exp]
        probs[tok, exp] = orig + eps
        yp = combine(buf, info, probs)
        probs[tok, exp] = orig - eps
        ym = combine(buf, info, probs)
        probs[tok, exp] = orig
        num = ((yp - ym) / (2 * eps) * dy).sum()
        assert np.isclose(num, dprobs[tok, exp], atol=1e-8)

    def test_gate_weights_match_probs(self, routed):
        probs, info, _ = routed
        w = gate_weights(info, probs)
        assert np.allclose(w, probs[info.token_idx, info.expert_idx])


class TestBufferExchange:
    def test_roundtrip_identity(self, rng):
        g, el, c, h = 4, 2, 3, 5
        bufs = [rng.standard_normal((g * el, c, h)) for _ in range(g)]
        back = exchange_expert_buffers_inverse(exchange_expert_buffers(bufs))
        for a, b in zip(bufs, back):
            assert np.array_equal(a, b)

    def test_expert_rows_land_on_owner(self, rng):
        """Device d's chunk for expert e must arrive at device e // El."""
        g, el, c, h = 2, 2, 2, 3
        bufs = [np.zeros((g * el, c, h)) for _ in range(g)]
        bufs[0][3, 0, 0] = 42.0  # device 0 sends to expert 3 (owner: dev 1)
        out = exchange_expert_buffers(bufs)
        assert (out[0] == 0).all()
        # expert 3 is local expert 1 on device 1; source 0 -> row 1*G+0 = 2
        assert out[1][2, 0, 0] == 42.0

    def test_single_device_is_identity_layout(self, rng):
        bufs = [rng.standard_normal((3, 2, 4))]
        out = exchange_expert_buffers(bufs)
        assert np.array_equal(out[0], bufs[0])


class TestExpertFFN:
    def test_empty_slots_produce_zero(self, rng):
        el, g, c, h, f = 2, 2, 4, 6, 12
        buf = np.zeros((el * g, c, h))
        buf[0, 0] = rng.standard_normal(h)  # one occupied slot
        w1 = rng.standard_normal((el, h, f))
        b1 = rng.standard_normal((el, f))
        w2 = rng.standard_normal((el, f, h))
        b2 = rng.standard_normal((el, h))
        out = expert_ffn(buf, w1, b1, w2, b2)
        assert not np.allclose(out[0, 0], 0.0)
        mask = np.ones((el * g, c), dtype=bool)
        mask[0, 0] = False
        assert np.allclose(out[mask], 0.0)

    def test_backward_finite_difference(self, rng):
        el, g, c, h, f = 2, 1, 3, 4, 8
        buf = rng.standard_normal((el * g, c, h))
        w1 = rng.standard_normal((el, h, f)) * 0.3
        b1 = rng.standard_normal((el, f)) * 0.1
        w2 = rng.standard_normal((el, f, h)) * 0.3
        b2 = rng.standard_normal((el, h)) * 0.1
        dout = rng.standard_normal(buf.shape)
        dbuf, dw1, db1, dw2, db2 = expert_ffn_backward(dout, buf, w1, b1, w2)
        eps = 1e-6
        for arr, grad, idx in [
            (buf, dbuf, (1, 2, 3)),
            (w1, dw1, (0, 1, 2)),
            (b1, db1, (1, 3)),
            (w2, dw2, (1, 2, 1)),
            (b2, db2, (0, 2)),
        ]:
            orig = arr[idx]
            arr[idx] = orig + eps
            yp = expert_ffn(buf, w1, b1, w2, b2)
            arr[idx] = orig - eps
            ym = expert_ffn(buf, w1, b1, w2, b2)
            arr[idx] = orig
            num = ((yp - ym) / (2 * eps) * dout).sum()
            assert np.isclose(num, grad[idx], atol=1e-6), idx

    def test_wrong_expert_count_rejected(self, rng):
        buf = rng.standard_normal((5, 2, 4))  # 5 not divisible by El=2
        w = rng.standard_normal((2, 4, 8))
        with pytest.raises(ValueError):
            expert_ffn(buf, w, np.zeros((2, 8)), rng.standard_normal((2, 8, 4)), np.zeros((2, 4)))


class TestGelu:
    def test_gelu_grad_matches_finite_difference(self):
        x = np.linspace(-3, 3, 41)
        eps = 1e-6
        num = (gelu(x + eps) - gelu(x - eps)) / (2 * eps)
        assert np.allclose(num, gelu_grad(x), atol=1e-6)
