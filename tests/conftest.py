"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GPT2MoEConfig, build_training_graph
from repro.models import build_forward
from repro.models.init import init_device_values
from repro.runtime import ClusterSpec


@pytest.fixture(scope="session")
def tiny_cfg() -> GPT2MoEConfig:
    return GPT2MoEConfig.tiny()


@pytest.fixture(scope="session")
def tiny_graph(tiny_cfg):
    """A 2-device tiny training graph (forward+backward+sync+sgd)."""
    return build_training_graph(tiny_cfg, batch=4, seq=8, num_gpus=2)


@pytest.fixture(scope="session")
def tiny_forward(tiny_cfg):
    """Forward-only tiny graph."""
    return build_forward(tiny_cfg, batch=4, seq=8, num_gpus=2)


@pytest.fixture(scope="session")
def tiny_values(tiny_graph):
    """Initialized per-device values for the tiny graph (do not mutate:
    copy dicts before executing)."""
    return init_device_values(tiny_graph, seed=0)


@pytest.fixture(scope="session")
def small_cluster() -> ClusterSpec:
    return ClusterSpec.for_gpus("a100", 2)


@pytest.fixture(scope="session")
def a100_16() -> ClusterSpec:
    return ClusterSpec.p4de(2)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def routing_trace() -> dict:
    """The recorded dispatch-count trace with hot-expert drift episodes
    (``fixtures/routing_trace.json``).  Keys: ``num_devices``,
    ``num_experts``, ``bytes_per_token``, and ``steps`` (a list of
    ``[num_devices, num_experts]`` int arrays)."""
    import json
    from pathlib import Path

    doc = json.loads(
        (Path(__file__).parent / "fixtures" / "routing_trace.json").read_text()
    )
    doc["steps"] = [np.asarray(s, dtype=np.int64) for s in doc["steps"]]
    return doc
