"""The plan server: coalescing, nearest-signature serving, hot swaps.

One planner run costs hundreds of milliseconds (`BENCH_opt_time`); a
warm :class:`~repro.api.PlanStore` read costs a fraction of one.  A
serving layer that wants to answer *millions* of compile requests
therefore has exactly one job: make sure the planner runs as rarely --
and as far off the request path -- as possible.  :class:`PlanServer`
does that with three mechanisms layered over
:func:`repro.api.compile`'s resolve/plan split:

request coalescing
    Every request reduces to a canonical identity key (the PR 5
    fingerprint tuple -- scenario/policy/framework, or graph
    fingerprint/cluster/policy/signature bucket).  Concurrent requests
    with the same key share one in-flight planner run: the first
    arrival plans, the rest subscribe to its future.  A burst of N
    identical cold requests triggers exactly one planner run.

nearest-signature serving
    On an exact-bucket miss the server consults the store's signature
    index for the *closest* stored plan of the same base identity
    (:func:`repro.api.store.bucket_distance`, bounded by
    ``max_distance``).  The neighbor is returned immediately -- Lancet
    plans degrade smoothly in signature distance, so a close bucket's
    schedule is near-optimal -- while the exact re-plan runs in the
    background and is **hot-swapped** into the store (and the server's
    memory cache) on completion.  Subsequent identical requests coalesce
    onto the in-flight re-plan or hit the swapped entry.

telemetry
    Every decision increments a counter (`requests`, `coalesced`,
    `memory_hits`, `store_hits`, `nearest_hits`, `planner_runs`,
    `hot_swaps`, ...), in the same observable-counter style as
    ``LancetReport.cache_stats``; hot swaps additionally append a
    :class:`HotSwapEvent` recording the served-vs-exact predicted gap.
    :meth:`PlanServer.stats` merges server, memory-cache and store
    counters into one JSON-friendly snapshot (the ``serve stats`` CLI).

graceful degradation (ISSUE 8; see ``docs/RELIABILITY.md``)
    The request path never takes the service down with it.  Transient
    store I/O errors are retried with bounded exponential backoff and
    then degrade to a miss.  Planner runs are bounded by per-request
    deadlines (``deadline_s``) and a planner timeout
    (``planner_timeout_s``): a timed-out run is *abandoned but not
    killed* -- it lands later as a late publish that warms the caches.
    Repeated planner failures trip a :class:`CircuitBreaker`
    (closed -> open -> half-open), and once it is open -- or a deadline
    is blown -- requests are answered from a tiered fallback chain,
    **exact -> nearest -> stale -> baseline**, instead of erroring:
    the unbounded-radius *stale* tier serves any structurally valid
    plan of the same base identity, and the *baseline* tier wraps the
    unoptimized program in a plan, which is always constructible
    without the planner.  ``ServeResult.origin`` names the tier that
    answered.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass

from ..api.codec import cluster_to_json, framework_to_json
from ..api.compiler import plan_resolved, resolve_workload
from ..api.fingerprint import canonical_digest, graph_fingerprint
from ..api.plan import Plan, PlanError, PlanPolicy
from ..api.scenario import Scenario
from ..api.store import PlanStore, signature_bucket
from ..core.cache import LRUCache
from ..runtime.device import COMPILED, FrameworkProfile

#: default nearest-signature serving radius, in bucket-distance units
#: (see :func:`repro.api.store.bucket_distance`; the scale matches
#: ``RoutingSignature.drift_from``).  The documented staleness bound:
#: a served neighbor differs from the exact re-plan by at most this
#: much routing drift, and on the preset suite its predicted iteration
#: time stays within ~10% of the exact plan's (asserted by
#: ``benchmarks/bench_plan_serving.py``, gated at 25%).
DEFAULT_MAX_DISTANCE = 0.25

#: documented bound on the served-vs-exact predicted-time gap under the
#: default ``max_distance`` (relative; enforced by the serving benchmark)
NEAREST_PREDICTED_GAP_BOUND = 0.25


class _PlannerTimeout(Exception):
    """Internal: a planner run exceeded its time budget."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker for the planner path.

    ``closed`` until ``threshold`` consecutive failures, then ``open``
    for ``cooldown_s``; after the cooldown one *half-open* trial run is
    admitted -- success closes the breaker, failure re-opens it (and
    restarts the cooldown).  Thread-safe; the :class:`PlanServer`
    consults it before every cold planner run and serves the fallback
    chain while it refuses.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._trial_inflight = False
        #: times the breaker transitioned closed -> open
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._trial_inflight:
                return "half_open"
            elapsed = time.monotonic() - self._opened_at
            return "half_open" if elapsed >= self.cooldown_s else "open"

    def allow(self) -> bool:
        """May a planner run proceed right now?

        While open this returns False; once the cooldown elapses it
        admits exactly one concurrent trial until that trial reports
        success or failure.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if self._trial_inflight:
                return False
            if time.monotonic() - self._opened_at >= self.cooldown_s:
                self._trial_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._trial_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            was_open = self._opened_at is not None
            self._trial_inflight = False
            if not was_open and self._failures >= self.threshold:
                self._opened_at = time.monotonic()
                self.trips += 1
            elif was_open:
                # failed half-open trial: re-open, restart the cooldown
                self._opened_at = time.monotonic()

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "trips": self.trips,
        }


@dataclass
class ServeResult:
    """One answered request: the plan plus how it was produced.

    ``origin`` names the tier that answered: ``"memory"`` (server
    memory cache), ``"store"`` (exact store hit), ``"nearest"``
    (neighboring-bucket plan served while the exact re-plan runs in
    the background), ``"planned"`` (cold planner run), ``"stale"``
    (degraded mode: closest same-identity plan at *unbounded* signature
    distance), or ``"baseline"`` (degraded mode: the unoptimized
    program wrapped in a plan -- the tier of last resort, always
    constructible).  Coalesced followers receive the leader's result
    object unchanged.
    """

    plan: Plan
    origin: str
    key: str
    #: bucket distance of a nearest-signature answer (else ``None``)
    distance: float | None = None
    latency_s: float = 0.0
    #: why a degraded tier answered: ``"deadline"``,
    #: ``"planner_timeout"``, ``"planner_error"``, or ``"breaker_open"``
    #: (``None`` on the healthy tiers)
    reason: str | None = None


@dataclass
class HotSwapEvent:
    """Record of one background exact re-plan replacing a nearest hit."""

    key: str
    distance: float
    #: prediction of the neighbor plan that was served immediately
    served_predicted_ms: float
    #: prediction of the exact re-plan that replaced it
    exact_predicted_ms: float
    #: wall time of the background planner run
    seconds: float

    @property
    def predicted_gap(self) -> float:
        """Relative served-vs-exact predicted-time gap (the realized
        staleness of the nearest-signature answer)."""
        ref = max(abs(self.exact_predicted_ms), 1e-9)
        return abs(self.served_predicted_ms - self.exact_predicted_ms) / ref


class PlanServer:
    """Concurrent plan-serving front end over one shared store.

    Parameters
    ----------
    store:
        The shared :class:`~repro.api.PlanStore` (its ``max_entries`` /
        ``max_bytes`` bounds and locking make it safe to point several
        servers -- or a whole fleet -- at one directory).
    policy / framework:
        Defaults applied to requests that don't specify their own.
    max_workers:
        Planner thread-pool width (default: executor default).  Planner
        runs are CPU-bound Python, so this bounds memory pressure more
        than it buys parallel speedup; coalescing is what provides the
        throughput.
    memory_cache_size:
        Entries in the server's in-process plan cache (0 disables it).
        This layer makes the warm path free of disk I/O; it is refreshed
        on every publish/hot-swap through *this* server, so its staleness
        against writes by other processes is bounded by entry turnover.
    nearest:
        Enable nearest-signature serving.
    max_distance:
        Serving radius for nearest-signature answers
        (:data:`DEFAULT_MAX_DISTANCE`).
    check:
        Validate the IR after planner passes (forwarded to the planner).
    planner:
        The planner callable (``plan_resolved``-compatible).  ``None``
        uses :func:`repro.api.compiler.plan_resolved`; the chaos
        harness injects :class:`repro.faults.FlakyPlanner` here.
    deadline_s:
        Default per-request deadline (seconds).  A request that cannot
        reach the planner before its deadline is answered from the
        fallback chain instead of waiting.  ``None`` = no deadline.
    planner_timeout_s:
        Budget for one cold planner run.  A run exceeding it is
        abandoned (the request falls back) but allowed to finish in the
        background, landing as a late publish.  ``None`` = unbounded.
    store_retries / retry_backoff_s:
        Transient ``OSError`` from store I/O is retried up to
        ``store_retries`` times with exponential backoff starting at
        ``retry_backoff_s`` (then degrades to a miss).
    breaker_threshold / breaker_cooldown_s:
        :class:`CircuitBreaker` configuration: consecutive planner
        failures before opening, and the open-state cooldown before a
        half-open trial.
    fallback:
        Enable the degraded serving tiers (stale / baseline).  When
        False, deadline misses, planner timeouts, and breaker-refused
        requests raise instead.
    """

    def __init__(
        self,
        store: PlanStore,
        *,
        policy: PlanPolicy | None = None,
        framework: FrameworkProfile = COMPILED,
        max_workers: int | None = None,
        memory_cache_size: int = 512,
        nearest: bool = True,
        max_distance: float = DEFAULT_MAX_DISTANCE,
        check: bool = True,
        planner=None,
        deadline_s: float | None = None,
        planner_timeout_s: float | None = None,
        store_retries: int = 2,
        retry_backoff_s: float = 0.01,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 30.0,
        fallback: bool = True,
    ) -> None:
        self.store = store
        self.policy = policy or PlanPolicy()
        self.framework = framework
        self.nearest = nearest
        self.max_distance = max_distance
        self.check = check
        self._planner = planner
        self.deadline_s = deadline_s
        self.planner_timeout_s = planner_timeout_s
        self.store_retries = store_retries
        self.retry_backoff_s = retry_backoff_s
        self.fallback = fallback
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="plan-server"
        )
        self._lock = threading.Lock()
        #: request key -> in-flight Future[ServeResult]; also holds
        #: background hot-swap re-plans under "swap:<key>" and abandoned
        #: timed-out planner runs under "late:<key>"
        self._inflight: dict[str, Future] = {}
        self._memory = (
            LRUCache(memory_cache_size, name="server-memory")
            if memory_cache_size
            else None
        )
        self.counters = {
            "requests": 0,
            "coalesced": 0,
            "memory_hits": 0,
            "store_hits": 0,
            "nearest_hits": 0,
            "planner_runs": 0,
            "misses": 0,
            "hot_swaps": 0,
            "published": 0,
            "errors": 0,
            # degraded-mode telemetry (ISSUE 8)
            "deadline_hits": 0,
            "planner_timeouts": 0,
            "planner_failures": 0,
            "late_plans": 0,
            "store_retries": 0,
            "store_errors": 0,
            "put_errors": 0,
            "breaker_short_circuits": 0,
            "stale_hits": 0,
            "baseline_plans": 0,
        }
        #: completed hot swaps, in completion order
        self.events: list[HotSwapEvent] = []
        self._closed = False

    # -- identity ------------------------------------------------------------

    def request_key(
        self,
        workload,
        cluster=None,
        policy: PlanPolicy | None = None,
        signatures: dict | None = None,
        framework: FrameworkProfile | None = None,
    ) -> str:
        """Canonical identity of one request (the coalescing key).

        Scenario requests key on the declarative spec -- no graph build
        needed, so submission stays cheap; graph/program requests key on
        the store's canonical fingerprint tuple.
        """
        policy = policy or self.policy
        framework = framework or self.framework
        if isinstance(workload, Scenario):
            return canonical_digest(
                {
                    "scenario": workload.to_dict(),
                    "cluster": cluster_to_json(cluster) if cluster else None,
                    "policy": policy.to_dict(),
                    "framework": framework_to_json(framework),
                    "signatures": signature_bucket(
                        signatures, self.store.digits
                    ),
                }
            )
        if cluster is None:
            raise TypeError("graph/program requests require an explicit cluster")
        return self.store.key_for(
            graph_fingerprint(workload), cluster, policy, framework, signatures
        )

    # -- the request path ----------------------------------------------------

    def submit(
        self,
        workload,
        cluster=None,
        *,
        policy: PlanPolicy | None = None,
        signatures: dict | None = None,
        framework: FrameworkProfile | None = None,
        deadline_s: float | None = None,
    ) -> Future:
        """Enqueue one request; returns a ``Future[ServeResult]``.

        Identical concurrent requests coalesce: the key is registered
        synchronously here, so every submission after the first --
        regardless of worker scheduling -- subscribes to the in-flight
        run instead of starting its own.

        ``deadline_s`` (default: the server's ``deadline_s``) bounds how
        long this request may wait on a cold planner run before it is
        answered from the fallback chain instead.
        """
        if self._closed:
            raise RuntimeError("PlanServer is closed")
        policy = policy or self.policy
        framework = framework or self.framework
        if deadline_s is None:
            deadline_s = self.deadline_s
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        key = self.request_key(workload, cluster, policy, signatures, framework)
        with self._lock:
            self.counters["requests"] += 1
            inflight = self._inflight.get(key)
            if inflight is not None:
                self.counters["coalesced"] += 1
                return inflight
            if self._memory is not None:
                plan = self._memory.get(key)
                if plan is not None:
                    self.counters["memory_hits"] += 1
                    done: Future = Future()
                    done.set_result(
                        ServeResult(plan=plan, origin="memory", key=key)
                    )
                    return done
            future: Future = Future()
            self._inflight[key] = future
        self._pool.submit(
            self._serve_into,
            future,
            key,
            workload,
            cluster,
            policy,
            signatures,
            framework,
            deadline,
        )
        return future

    def serve(self, workload, cluster=None, **kwargs) -> ServeResult:
        """Synchronous single request (see :meth:`submit`)."""
        return self.submit(workload, cluster, **kwargs).result()

    def compile_many(self, workloads, cluster=None, **kwargs) -> list[Plan]:
        """Compile a batch of workloads concurrently; returns plans in
        input order.  Duplicate (and already-in-flight) workloads share
        one planner run each -- submitting 500 copies of one scenario
        costs one plan.
        """
        futures = [self.submit(w, cluster, **kwargs) for w in workloads]
        return [f.result().plan for f in futures]

    # -- worker side ---------------------------------------------------------

    def _serve_into(
        self, future, key, workload, cluster, policy, signatures, framework,
        deadline=None,
    ) -> None:
        t0 = time.perf_counter()
        try:
            result = self._lookup_or_plan(
                key, workload, cluster, policy, signatures, framework, deadline
            )
            result.latency_s = time.perf_counter() - t0
        except BaseException as err:
            with self._lock:
                self.counters["errors"] += 1
                self._inflight.pop(key, None)
            future.set_exception(err)
            return
        with self._lock:
            # nearest answers were cached before their hot swap was
            # spawned (the swap's exact plan must never be overwritten
            # by the staler neighbor); degraded-tier answers (stale /
            # baseline) must not poison the warm path -- each such
            # request re-walks the ladder until a real plan lands;
            # everything else is cached here
            if self._memory is not None and result.origin not in (
                "nearest", "stale", "baseline"
            ):
                self._memory.put(key, result.plan)
            self._inflight.pop(key, None)
        future.set_result(result)

    def _store_lookup(self, lookup, *args, **kwargs):
        """A store problem must degrade to a miss, not take the serving
        path down.

        Corrupt entries / foreign schemas (:class:`PlanError`) degrade
        immediately -- the planner's ``put`` replaces the bad entry.
        Transient I/O errors (``OSError``) are retried up to
        ``store_retries`` times with exponential backoff starting at
        ``retry_backoff_s``, then degrade to a miss too.
        """
        delay = self.retry_backoff_s
        for attempt in range(self.store_retries + 1):
            try:
                return lookup(*args, **kwargs)
            except PlanError:
                return None
            except OSError:
                if attempt == self.store_retries:
                    with self._lock:
                        self.counters["store_errors"] += 1
                    return None
                with self._lock:
                    self.counters["store_retries"] += 1
                time.sleep(delay)
                delay *= 2.0

    def _store_put(self, plan, index_scenario: bool = False) -> None:
        """Publish with the same bounded retry; a store that cannot be
        written must not fail the request that produced the plan."""
        delay = self.retry_backoff_s
        for attempt in range(self.store_retries + 1):
            try:
                self.store.put(plan, index_scenario=index_scenario)
                return
            except OSError:
                if attempt == self.store_retries:
                    with self._lock:
                        self.counters["put_errors"] += 1
                    return
                with self._lock:
                    self.counters["store_retries"] += 1
                time.sleep(delay)
                delay *= 2.0

    def _lookup_or_plan(
        self, key, workload, cluster, policy, signatures, framework,
        deadline=None,
    ) -> ServeResult:
        # 1. scenario fast path: warm answer without building a graph
        scenario_pure = (
            isinstance(workload, Scenario)
            and cluster is None
            and signatures is None
        )
        if scenario_pure:
            plan = self._store_lookup(
                self.store.lookup_scenario, workload, policy, framework
            )
            if plan is not None:
                with self._lock:
                    self.counters["store_hits"] += 1
                return ServeResult(plan=plan, origin="store", key=key)

        resolved = resolve_workload(
            workload,
            cluster,
            policy=policy,
            signatures=signatures,
            framework=framework,
        )
        # 2. exact signature bucket
        plan = self._store_lookup(
            self.store.get,
            resolved.fingerprint,
            resolved.cluster,
            resolved.policy,
            resolved.framework,
            resolved.signatures,
            pipeline=resolved.pipeline,
        )
        if plan is not None:
            with self._lock:
                self.counters["store_hits"] += 1
            return ServeResult(plan=plan, origin="store", key=key)

        # 3. nearest bucket now + exact re-plan in the background
        if self.nearest:
            near = self._store_lookup(
                self.store.nearest,
                resolved.fingerprint,
                resolved.cluster,
                resolved.policy,
                resolved.framework,
                resolved.signatures,
                self.max_distance,
                pipeline=resolved.pipeline,
            )
            if near is not None:
                neighbor, distance = near
                with self._lock:
                    self.counters["nearest_hits"] += 1
                    # cache the neighbor *before* the swap can land, so
                    # the exact plan always wins the memory-cache race
                    if self._memory is not None:
                        self._memory.put(key, neighbor)
                self._spawn_hot_swap(key, resolved, neighbor, distance)
                return ServeResult(
                    plan=neighbor, origin="nearest", key=key, distance=distance
                )

        # 4. cold: run the planner and publish -- unless the deadline is
        # already blown or the circuit breaker refuses, in which case the
        # degraded tiers (stale -> baseline) answer instead of erroring
        with self._lock:
            self.counters["misses"] += 1
        reason = None
        if deadline is not None and time.monotonic() >= deadline:
            with self._lock:
                self.counters["deadline_hits"] += 1
            reason = "deadline"
        elif not self.breaker.allow():
            with self._lock:
                self.counters["breaker_short_circuits"] += 1
            reason = "breaker_open"
        else:
            try:
                plan = self._plan_with_budget(key, resolved, deadline)
                return ServeResult(plan=plan, origin="planned", key=key)
            except _PlannerTimeout:
                with self._lock:
                    self.counters["planner_timeouts"] += 1
                self.breaker.record_failure()
                reason = "planner_timeout"
            except Exception:
                # planner failures raise (pre-ISSUE-8 semantics) until
                # repeated failures open the breaker; the breaker state
                # was already updated by _plan_and_publish
                with self._lock:
                    self.counters["planner_failures"] += 1
                if not self.fallback:
                    raise
                if self.breaker.state == "closed":
                    raise
                reason = "planner_error"
        if not self.fallback:
            raise PlanError(f"planner unavailable ({reason}) for {key}")
        return self._serve_degraded(key, resolved, reason)

    def _plan_and_publish(self, resolved) -> Plan:
        planner = self._planner if self._planner is not None else plan_resolved
        try:
            plan = planner(resolved, check=self.check)
        except BaseException:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        with self._lock:
            self.counters["planner_runs"] += 1
        self._store_put(plan, index_scenario=resolved.scenario_pure)
        return plan

    def _plan_with_budget(self, key, resolved, deadline) -> Plan:
        """One cold planner run, bounded by the request deadline and the
        server's planner timeout.

        Without a budget this is a plain in-worker run.  With one, the
        run happens on a dedicated thread the worker waits on: on
        timeout the run is *abandoned* (raises :class:`_PlannerTimeout`
        so the request falls back) but keeps going in the background --
        its plan lands in the store and memory cache as a late publish
        (``late_plans``), healing subsequent requests.
        """
        budget = self.planner_timeout_s
        if deadline is not None:
            remaining = deadline - time.monotonic()
            budget = remaining if budget is None else min(budget, remaining)
        if budget is None:
            return self._plan_and_publish(resolved)
        if budget <= 0:
            raise _PlannerTimeout(key)

        done: Future = Future()
        late_key = f"late:{key}"
        with self._lock:
            self._inflight[late_key] = done
        abandoned = threading.Event()

        def run() -> None:
            try:
                plan = self._plan_and_publish(resolved)
            except BaseException as err:
                with self._lock:
                    if abandoned.is_set():
                        self.counters["errors"] += 1
                    self._inflight.pop(late_key, None)
                done.set_exception(err)
                if abandoned.is_set():
                    done.exception()  # consumed: nobody awaits a late run
                return
            with self._lock:
                if abandoned.is_set():
                    self.counters["late_plans"] += 1
                    if self._memory is not None:
                        self._memory.put(key, plan)
                self._inflight.pop(late_key, None)
            done.set_result(plan)

        threading.Thread(
            target=run, name="plan-server-timed", daemon=True
        ).start()
        try:
            return done.result(timeout=budget)
        except FuturesTimeout:
            abandoned.set()
            raise _PlannerTimeout(key) from None

    # -- degraded serving tiers (ISSUE 8) -------------------------------------

    def _serve_degraded(self, key, resolved, reason) -> ServeResult:
        """The stale -> baseline tail of the fallback chain.

        Reached only after the healthy tiers (memory, exact store,
        nearest-within-radius) missed and the planner was unavailable
        (deadline blown, run timed out, repeated failures).  Never
        raises: the baseline tier is always constructible.
        """
        stale = self._store_lookup(
            self.store.nearest,
            resolved.fingerprint,
            resolved.cluster,
            resolved.policy,
            resolved.framework,
            resolved.signatures,
            math.inf,
            pipeline=resolved.pipeline,
        )
        if stale is not None:
            plan, distance = stale
            with self._lock:
                self.counters["stale_hits"] += 1
            if reason == "deadline" and self.breaker.state == "closed":
                # the planner is healthy, only this request ran out of
                # time: heal the bucket in the background
                self._spawn_hot_swap(key, resolved, plan, distance)
            return ServeResult(
                plan=plan,
                origin="stale",
                key=key,
                distance=distance,
                reason=reason,
            )
        with self._lock:
            self.counters["baseline_plans"] += 1
        plan = self._baseline_plan(resolved, reason)
        if reason == "deadline" and self.breaker.state == "closed":
            self._spawn_hot_swap(key, resolved, plan, None)
        return ServeResult(plan=plan, origin="baseline", key=key, reason=reason)

    def _baseline_plan(self, resolved, reason) -> Plan:
        """Tier of last resort: the unoptimized program as a plan.

        No optimizer involved, so this works while the planner is down;
        the prediction comes from the plain simulator (best-effort).
        The result is *never* written to the store or memory cache --
        an unoptimized plan must not be mistaken for a planned one.
        """
        program = resolved.program
        predicted = 0.0
        try:
            from ..runtime.simulate import SimulationConfig, simulate_program

            predicted = simulate_program(
                program,
                config=SimulationConfig(
                    cluster=resolved.cluster, framework=resolved.framework
                ),
            ).makespan
        except Exception:
            pass  # a missing prediction must not fail the last resort
        return Plan(
            program=program,
            cluster=resolved.cluster,
            policy=resolved.policy,
            fingerprint=resolved.fingerprint,
            predicted_iteration_ms=predicted,
            framework=resolved.framework,
            signatures=resolved.signatures,
            scenario=resolved.scenario,
            meta={"baseline": True, "fallback_reason": reason},
        )

    # -- background hot swap -------------------------------------------------

    def _spawn_hot_swap(self, key, resolved, neighbor, distance) -> None:
        """Kick off the exact re-plan behind a nearest-signature answer.

        Registered in ``_inflight`` under a swap key so that a storm of
        requests landing in the same missing bucket spawns exactly one
        background planner run.
        """
        swap_key = f"swap:{key}"
        with self._lock:
            if swap_key in self._inflight or self._closed:
                return
            swap_future: Future = Future()
            self._inflight[swap_key] = swap_future
        self._pool.submit(
            self._hot_swap_into,
            swap_future,
            swap_key,
            key,
            resolved,
            neighbor.predicted_iteration_ms,
            distance,
        )

    def _hot_swap_into(
        self, future, swap_key, key, resolved, served_predicted_ms, distance
    ) -> None:
        t0 = time.perf_counter()
        try:
            plan = self._plan_and_publish(resolved)
        except BaseException as err:
            with self._lock:
                self.counters["errors"] += 1
                self._inflight.pop(swap_key, None)
            future.set_exception(err)
            return
        event = HotSwapEvent(
            key=key,
            distance=distance,
            served_predicted_ms=served_predicted_ms,
            exact_predicted_ms=plan.predicted_iteration_ms,
            seconds=time.perf_counter() - t0,
        )
        with self._lock:
            if self._memory is not None:
                self._memory.put(key, plan)
            self.counters["hot_swaps"] += 1
            self.events.append(event)
            self._inflight.pop(swap_key, None)
        future.set_result(event)

    # -- publishing (trainer integration) ------------------------------------

    def publish(self, plan: Plan, index_scenario: bool = False) -> None:
        """Publish an externally produced plan (e.g. a
        :class:`~repro.train.ReoptimizingTrainer` re-plan) through the
        server: written to the shared store and installed in the memory
        cache, so subsequent requests for its identity are warm."""
        self._store_put(plan, index_scenario=index_scenario)
        from ..api.store import _plan_pipeline

        key = self.store.key_for(
            plan.fingerprint,
            plan.cluster,
            plan.policy,
            plan.framework,
            plan.signatures,
            pipeline=_plan_pipeline(plan),
        )
        with self._lock:
            if self._memory is not None:
                self._memory.put(key, plan)
            self.counters["published"] += 1

    # -- lifecycle / observability -------------------------------------------

    def drain(self, timeout: float | None = None) -> None:
        """Block until every in-flight request and background hot swap
        has completed (makes telemetry deterministic for tests/benches).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                pending = list(self._inflight.values())
            if not pending:
                return
            for f in pending:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                try:
                    f.result(timeout=remaining)
                except Exception:  # surfaced to the original caller too
                    pass

    def close(self, wait: bool = True) -> None:
        """Drain (optionally) and shut the worker pool down."""
        if wait:
            self.drain()
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """One JSON-friendly counter snapshot: server decisions, memory
        cache, and the underlying store (``serve stats`` CLI payload,
        ``LancetReport.cache_stats`` style)."""
        with self._lock:
            snapshot = {
                "server": dict(self.counters),
                "breaker": self.breaker.snapshot(),
                "memory": self._memory.stats() if self._memory else None,
                "store": dict(self.store.stats),
                "store_entries": len(self.store),
                "store_bytes": self.store.total_bytes(),
                "inflight": len(self._inflight),
                "hot_swap_events": [
                    {
                        "distance": e.distance,
                        "served_predicted_ms": e.served_predicted_ms,
                        "exact_predicted_ms": e.exact_predicted_ms,
                        "predicted_gap": e.predicted_gap,
                        "seconds": e.seconds,
                    }
                    for e in self.events
                ],
            }
        return snapshot


def compile_many(
    workloads,
    store: PlanStore | None = None,
    *,
    policy: PlanPolicy | None = None,
    framework: FrameworkProfile = COMPILED,
    max_workers: int | None = None,
    nearest: bool = True,
) -> list[Plan]:
    """One-shot batch compile with coalescing (module-level convenience).

    Spins up a :class:`PlanServer` over ``store`` (an ephemeral
    in-memory-only run needs a store directory all the same -- pass a
    temp dir), serves the batch, drains background work, and shuts the
    server down.  Long-lived callers should hold a :class:`PlanServer`
    instead.
    """
    if store is None:
        raise TypeError(
            "compile_many requires a PlanStore (plans are served, and "
            "published, through it)"
        )
    with PlanServer(
        store,
        policy=policy,
        framework=framework,
        max_workers=max_workers,
        nearest=nearest,
    ) as server:
        return server.compile_many(workloads)
