"""The expert-placement artifact: who hosts which expert, with shadows.

An :class:`ExpertPlacement` maps every expert of one MoE layer to its
replica set -- ``((device, fraction), ...)`` pairs.  A single-replica
expert lives on one device; a replicated ("shadow") expert splits its
traffic across several hosts by the given fractions, which is the
lever that flattens a hot expert's receive stream.  The *identity*
placement reproduces the repo-wide owner convention (expert ``e`` on
device ``e // (E / G)``) and is guaranteed to be a bit-identical no-op
through :meth:`ExpertPlacement.pair_bytes` -- the invariant every
placement-aware seam in the stack leans on.

Numerical contract: :meth:`ExpertPlacement.pair_bytes` accumulates
per-expert contributions in expert order with one scale per replica,
bit-identically to the pure-Python reference
(:func:`repro.placement.reference.remap_pair_bytes_reference`); the
identity placement short-circuits into the exact owner-summed reduction
:meth:`RoutingSignature.from_counts` and the routing models use.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

#: slack for "replica fractions sum to 1" (normalizing random weights
#: leaves ~1 ulp of float error; anything larger is a real bug)
FRACTION_TOL = 1e-9


@dataclass(frozen=True)
class ExpertPlacement:
    """Expert -> device map with replica/"shadow" traffic splits.

    ``assignments[e]`` is expert ``e``'s replica set as ``(device,
    fraction)`` pairs: device ``d`` receives ``fraction`` of every
    source's traffic for expert ``e``.  Fractions are positive and sum
    to 1 per expert; replicas are canonicalized to ascending device
    order, so two placements with the same replica sets compare (and
    fingerprint) equal regardless of construction order.
    """

    num_experts: int
    num_devices: int
    assignments: tuple[tuple[tuple[int, float], ...], ...]

    def __post_init__(self) -> None:
        if self.num_experts < 1 or self.num_devices < 1:
            raise ValueError("need at least one expert and one device")
        if len(self.assignments) != self.num_experts:
            raise ValueError(
                f"placement covers {len(self.assignments)} experts, "
                f"expected {self.num_experts}"
            )
        canon = []
        for e, replicas in enumerate(self.assignments):
            if not replicas:
                raise ValueError(f"expert {e} has no replica (must be placed)")
            seen: set[int] = set()
            row = []
            for device, fraction in replicas:
                d, f = int(device), float(fraction)
                if not 0 <= d < self.num_devices:
                    raise ValueError(
                        f"expert {e} placed on device {d}, outside "
                        f"[0, {self.num_devices})"
                    )
                if d in seen:
                    raise ValueError(f"expert {e} has duplicate replica on {d}")
                if not f > 0.0:
                    raise ValueError(
                        f"expert {e} replica on device {d} has non-positive "
                        f"traffic fraction {f}"
                    )
                seen.add(d)
                row.append((d, f))
            total = sum(f for _, f in row)
            if abs(total - 1.0) > FRACTION_TOL:
                raise ValueError(
                    f"expert {e} traffic fractions sum to {total!r}, not 1"
                )
            row.sort(key=lambda df: df[0])
            canon.append(tuple(row))
        object.__setattr__(self, "assignments", tuple(canon))

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, num_experts: int, num_devices: int) -> "ExpertPlacement":
        """The repo-wide owner convention: expert ``e`` on device
        ``e // (E / G)``, unreplicated."""
        if num_experts % num_devices != 0:
            raise ValueError(
                f"identity placement needs experts ({num_experts}) to divide "
                f"evenly over {num_devices} devices"
            )
        el = num_experts // num_devices
        return cls(
            num_experts,
            num_devices,
            tuple(((e // el, 1.0),) for e in range(num_experts)),
        )

    # -- structure -----------------------------------------------------------

    @property
    def is_identity(self) -> bool:
        """Whether this is exactly the identity placement (every seam
        treats it as a guaranteed bit-identical no-op)."""
        if self.num_experts % self.num_devices != 0:
            return False
        el = self.num_experts // self.num_devices
        return all(
            replicas == ((e // el, 1.0),)
            for e, replicas in enumerate(self.assignments)
        )

    def devices_of(self, expert: int) -> tuple[int, ...]:
        """Devices hosting a replica of ``expert`` (ascending)."""
        return tuple(d for d, _ in self.assignments[expert])

    def owner_of(self, expert: int) -> int:
        """Primary host of ``expert``: its largest-fraction replica
        (lowest device id on ties) -- the source weights migrate from."""
        return max(self.assignments[expert], key=lambda df: (df[1], -df[0]))[0]

    @property
    def replicated_experts(self) -> tuple[int, ...]:
        """Experts with more than one replica ("shadowed" experts)."""
        return tuple(
            e for e, r in enumerate(self.assignments) if len(r) > 1
        )

    def moved_experts(self, other: "ExpertPlacement") -> tuple[int, ...]:
        """Experts whose replica *device sets* differ from ``other``'s."""
        if other.num_experts != self.num_experts:
            raise ValueError("placements cover different expert counts")
        return tuple(
            e
            for e in range(self.num_experts)
            if self.devices_of(e) != other.devices_of(e)
        )

    def fraction_matrix(self) -> np.ndarray:
        """Dense ``[num_experts, num_devices]`` traffic-split matrix
        (rows sum to 1)."""
        mat = np.zeros((self.num_experts, self.num_devices))
        for e, replicas in enumerate(self.assignments):
            for d, f in replicas:
                mat[e, d] = f
        return mat

    # -- the remap -----------------------------------------------------------

    def pair_bytes(self, counts, bytes_per_token: float) -> np.ndarray:
        """Fold dispatch counts ``[sources, num_experts]`` into the
        pair-bytes matrix ``[sources, num_devices]`` this placement
        realizes.

        Accumulates expert by expert, one scaled add per replica --
        bit-identical to the pure-Python reference implementation.  The
        identity placement takes the exact owner-summed reduction of
        :meth:`~repro.runtime.RoutingSignature.from_counts` (sum the
        integer counts first, scale once), so an identity remap is a
        bit-identical no-op against the pre-placement pipeline.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2 or counts.shape[1] != self.num_experts:
            raise ValueError(
                f"counts must be [sources, {self.num_experts}], "
                f"got {counts.shape}"
            )
        sources = counts.shape[0]
        if self.is_identity and sources == self.num_devices:
            el = self.num_experts // self.num_devices
            per_owner = counts.reshape(sources, sources, el).sum(axis=2)
            return per_owner.astype(np.float64) * float(bytes_per_token)
        scaled = counts.astype(np.float64) * float(bytes_per_token)
        pair = np.zeros((sources, self.num_devices))
        for e, replicas in enumerate(self.assignments):
            col = scaled[:, e]
            for d, f in replicas:
                pair[:, d] += col * f
        return pair

    # -- identity / serialization --------------------------------------------

    def to_json(self) -> dict:
        return {
            "num_experts": self.num_experts,
            "num_devices": self.num_devices,
            "assignments": [
                [[d, f] for d, f in replicas] for replicas in self.assignments
            ],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ExpertPlacement":
        return cls(
            num_experts=int(obj["num_experts"]),
            num_devices=int(obj["num_devices"]),
            assignments=tuple(
                tuple((int(d), float(f)) for d, f in replicas)
                for replicas in obj["assignments"]
            ),
        )

    def fingerprint(self) -> str:
        """Stable content digest (qualifies plan-store keys)."""
        payload = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        kind = "identity" if self.is_identity else (
            f"{len(self.replicated_experts)} shadowed"
        )
        return (
            f"ExpertPlacement({self.num_experts}e/{self.num_devices}d, {kind})"
        )


# -- per-layer placement maps ------------------------------------------------
#
# Placements are per MoE layer (each layer has its own experts).  The
# stack passes them around as a mapping ``{layer_key: ExpertPlacement}``
# with ``None`` as the every-layer default -- the same convention the
# cost model uses for routing signatures.  A bare ExpertPlacement means
# "this placement for every layer".


def normalize_placement(placement) -> dict | None:
    """Canonicalize ``None`` / a bare placement / a per-layer mapping to
    ``{layer_key: ExpertPlacement} | None`` (``None`` key = default)."""
    if placement is None:
        return None
    if isinstance(placement, ExpertPlacement):
        return {None: placement}
    out = dict(placement)
    for layer, p in out.items():
        if not isinstance(p, ExpertPlacement):
            raise TypeError(
                f"placement for layer {layer!r} must be an ExpertPlacement, "
                f"got {type(p).__name__}"
            )
    return out or None


def placement_for(placement_map: dict | None, layer) -> ExpertPlacement | None:
    """The placement governing one MoE layer (``None`` key = default)."""
    if placement_map is None:
        return None
    if layer in placement_map:
        return placement_map[layer]
    return placement_map.get(None)


def placement_map_is_identity(placement_map: dict | None) -> bool:
    """Whether a placement map is a guaranteed no-op everywhere."""
    return placement_map is None or all(
        p.is_identity for p in placement_map.values()
    )


def placement_map_to_json(placement_map: dict | None) -> list | None:
    """``[[layer_key, placement], ...]`` pairs (layer keys may be ints
    or ``None``, which JSON objects cannot hold)."""
    if placement_map is None:
        return None
    return [
        [layer, p.to_json()]
        for layer, p in sorted(
            placement_map.items(), key=lambda kv: (kv[0] is None, str(kv[0]))
        )
    ]


def placement_map_from_json(obj: list | None) -> dict | None:
    if not obj:
        return None
    return {layer: ExpertPlacement.from_json(po) for layer, po in obj}


def placement_map_fingerprint(placement_map: dict | None) -> str | None:
    """Stable digest of a whole placement map (``None`` for no
    placement) -- what qualifies plan-store keys."""
    if placement_map is None:
        return None
    payload = json.dumps(
        placement_map_to_json(placement_map),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlacedRoutingModel:
    """Routing-model wrapper that realizes traffic under a placement.

    Wraps any routing model (``counts_for`` / ``pair_bytes_for`` /
    ``clear``) and reroutes its pair bytes through the placement's
    replica splits, so the ground-truth and batch simulators price
    candidate placements against the *same* routing draw as the
    unplaced baseline.  Expert-level dispatch counts are unchanged --
    placement moves experts, not tokens -- and identity (or absent)
    placements fall through to the base model bit-identically.
    """

    def __init__(self, base, placement) -> None:
        self.base = base
        self.placement = normalize_placement(placement)

    def counts_for(self, key, num_devices, num_experts, tokens_per_device,
                   capacity, fraction=1.0):
        return self.base.counts_for(
            key, num_devices, num_experts, tokens_per_device, capacity, fraction
        )

    def pair_bytes_for(self, key, num_devices, num_experts, tokens_per_device,
                       capacity, bytes_per_token, fraction=1.0):
        placement = placement_for(self.placement, key)
        if placement is None or placement.is_identity:
            # bit-identical fall-through: the baseline reduction
            return self.base.pair_bytes_for(
                key, num_devices, num_experts, tokens_per_device, capacity,
                bytes_per_token, fraction,
            )
        counts = self.base.counts_for(
            key, num_devices, num_experts, tokens_per_device, capacity, fraction
        )
        return placement.pair_bytes(counts, bytes_per_token)

    def clear(self) -> None:
        self.base.clear()

    def __repr__(self) -> str:
        n = len(self.placement) if self.placement else 0
        return f"PlacedRoutingModel({self.base!r}, {n} layer placement(s))"
