"""The IR program: an ordered instruction sequence plus a value table.

A :class:`Program` is the unit all Lancet passes operate on.  It is
deliberately close to the paper's model: a flat, ordered list of
instructions over SSA values, with designated *inputs* (per-iteration data),
*params* (trainable weights), and *states* (optimizer state).
"""

from __future__ import annotations

import itertools

from .instruction import Instruction, InstrKind
from .ops import get_op
from .tensor import TensorType, Value


class Program:
    """An ordered sequence of instructions over a table of SSA values."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.values: dict[int, Value] = {}
        self.instructions: list[Instruction] = []
        #: value ids fed per-iteration (token ids, labels, ...)
        self.inputs: list[int] = []
        #: value ids of trainable parameters
        self.params: list[int] = []
        #: value ids of optimizer state (e.g. momentum buffers)
        self.states: list[int] = []
        #: value ids the program returns (loss, updated params, ...)
        self.outputs: list[int] = []
        #: map param value id -> gradient value id (filled by autodiff)
        self.grads: dict[int, int] = {}
        self._next_value_id = itertools.count()

    # -- value management ---------------------------------------------------

    def new_value(self, type: TensorType, name: str = "") -> Value:
        """Create and register a fresh SSA value."""
        vid = next(self._next_value_id)
        val = Value(vid, type, name or f"v{vid}")
        self.values[vid] = val
        return val

    def type_of(self, vid: int) -> TensorType:
        """Type of a value id."""
        return self.values[vid].type

    # -- instruction management ---------------------------------------------

    def add(
        self,
        op: str,
        inputs: list[int] | tuple[int, ...],
        attrs: dict | None = None,
        kind: InstrKind | None = None,
        out_names: list[str] | None = None,
        partition: tuple[int, int] | None = None,
        origin: int | None = None,
    ) -> list[Value]:
        """Append an instruction, inferring output types from the registry.

        Returns the freshly created output values.
        """
        spec = get_op(op)
        attrs = dict(attrs or {})
        in_types = [self.type_of(v) for v in inputs]
        out_types = spec.infer(in_types, attrs)
        if kind is None:
            kind = InstrKind.COMM if spec.is_comm else InstrKind.FORWARD
        outs = []
        for i, t in enumerate(out_types):
            nm = out_names[i] if out_names and i < len(out_names) else ""
            outs.append(self.new_value(t, nm))
        instr = Instruction(
            op=op,
            inputs=tuple(inputs),
            outputs=tuple(v.id for v in outs),
            attrs=attrs,
            kind=kind,
            partition=partition,
            origin=origin,
        )
        self.instructions.append(instr)
        return outs

    def add_input(self, type: TensorType, name: str) -> Value:
        """Register a per-iteration input value."""
        v = self.new_value(type, name)
        self.inputs.append(v.id)
        return v

    def add_param(self, type: TensorType, name: str) -> Value:
        """Register a trainable parameter value."""
        v = self.new_value(type, name)
        self.params.append(v.id)
        return v

    def add_state(self, type: TensorType, name: str) -> Value:
        """Register an optimizer-state value."""
        v = self.new_value(type, name)
        self.states.append(v.id)
        return v

    # -- introspection --------------------------------------------------------

    def producers(self) -> dict[int, Instruction]:
        """Map value id -> instruction that produces it."""
        out: dict[int, Instruction] = {}
        for instr in self.instructions:
            for o in instr.outputs:
                out[o] = instr
        return out

    def consumers(self) -> dict[int, list[Instruction]]:
        """Map value id -> instructions that consume it."""
        out: dict[int, list[Instruction]] = {}
        for instr in self.instructions:
            for i in instr.inputs:
                out.setdefault(i, []).append(instr)
        return out

    def instr_index(self) -> dict[int, int]:
        """Map instruction uid -> position in the current order."""
        return {ins.uid: i for i, ins in enumerate(self.instructions)}

    def by_kind(self, kind: InstrKind) -> list[Instruction]:
        """All instructions of one kind, in program order."""
        return [i for i in self.instructions if i.kind == kind]

    def comm_instructions(self, op: str | None = None) -> list[Instruction]:
        """Communication instructions, optionally filtered by op name."""
        out = [i for i in self.instructions if i.is_comm]
        if op is not None:
            out = [i for i in out if i.op == op]
        return out

    def count_ops(self) -> dict[str, int]:
        """Histogram of op names."""
        hist: dict[str, int] = {}
        for i in self.instructions:
            hist[i.op] = hist.get(i.op, 0) + 1
        return hist

    # -- transformation helpers ------------------------------------------------

    def replace_order(self, new_order: list[Instruction]) -> None:
        """Install a new instruction order (must be a permutation)."""
        if {i.uid for i in new_order} != {i.uid for i in self.instructions}:
            raise ValueError("new order must be a permutation of instructions")
        self.instructions = list(new_order)

    def remap_uses(
        self, substitution: dict[int, int], start: int = 0
    ) -> None:
        """Rewrite instruction inputs ``old value id -> new value id``.

        Only instructions at position >= ``start`` are rewritten (used by the
        partition rewriter to redirect later consumers to reconstructed
        values without touching the pipeline body itself).
        """
        for pos in range(start, len(self.instructions)):
            instr = self.instructions[pos]
            if any(v in substitution for v in instr.inputs):
                new_inputs = tuple(substitution.get(v, v) for v in instr.inputs)
                self.instructions[pos] = instr.with_(uid=instr.uid, inputs=new_inputs)
        self.outputs = [substitution.get(v, v) for v in self.outputs]
        self.grads = {
            k: substitution.get(v, v) for k, v in self.grads.items()
        }

    def clone(self) -> "Program":
        """Deep-enough copy: fresh instruction list and metadata.

        Values and instructions are immutable, so sharing them is safe.
        """
        p = Program(self.name)
        p.values = dict(self.values)
        p.instructions = list(self.instructions)
        p.inputs = list(self.inputs)
        p.params = list(self.params)
        p.states = list(self.states)
        p.outputs = list(self.outputs)
        p.grads = dict(self.grads)
        # keep allocating above any existing id
        top = max(self.values, default=-1) + 1
        p._next_value_id = itertools.count(top)
        return p

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-compatible dict that round-trips bit-identically through
        :meth:`from_json` (see :mod:`repro.ir.serialize`)."""
        from .serialize import program_to_json

        return program_to_json(self)

    @classmethod
    def from_json(cls, obj: dict, check: bool = True) -> "Program":
        """Reconstruct a program serialized by :meth:`to_json`."""
        from .serialize import program_from_json

        return program_from_json(obj, check=check)

    # -- debugging ---------------------------------------------------------------

    def dump(self, max_instrs: int | None = None) -> str:
        """Readable listing of the program."""
        lines = [f"program {self.name}:"]
        lines.append(f"  inputs: {[self.values[v].name for v in self.inputs]}")
        lines.append(f"  params: {len(self.params)} tensors")
        todo = self.instructions if max_instrs is None else self.instructions[:max_instrs]
        for pos, instr in enumerate(todo):
            lines.append(f"  {pos:4d}: {instr!r}")
        if max_instrs is not None and len(self.instructions) > max_instrs:
            lines.append(f"  ... ({len(self.instructions) - max_instrs} more)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.instructions)} instrs, "
            f"{len(self.values)} values)"
        )
