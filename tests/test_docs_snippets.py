"""Doc snippets are executable: the documentation cannot rot.

Every fenced ``python`` block in ``docs/API.md``, ``docs/TUTORIAL.md``
and ``docs/SERVING.md`` is executed top-to-bottom in one namespace per
file (the documents are written as sequential walkthroughs).  A failing
snippet fails this test, which the CI ``docs`` job runs alongside the
markdown link/coverage checker (``tools/check_docs.py``).
"""

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).parent.parent
DOCS = REPO / "docs"

# one fence parser for the whole repo: reuse the checker's, so "which
# blocks exist" can never disagree between the compile and execute checks
_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def python_blocks(path: pathlib.Path) -> list[str]:
    return check_docs.python_blocks(path)


@pytest.mark.parametrize(
    "doc", ["API.md", "TUTORIAL.md", "SERVING.md", "RELIABILITY.md"]
)
def test_doc_snippets_execute(doc):
    path = DOCS / doc
    blocks = python_blocks(path)
    assert blocks, f"{doc} has no python snippets"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{doc}[block {i}]", "exec"), namespace)
        except Exception as err:  # pragma: no cover - diagnostic path
            pytest.fail(
                f"{doc} snippet {i} failed: {err}\n--- snippet ---\n{block}"
            )


def test_docs_exist_and_are_linked():
    """The documentation suite is present and indexed from the README."""
    for name in (
        "API.md",
        "TUTORIAL.md",
        "SERVING.md",
        "ARCHITECTURE.md",
        "RELIABILITY.md",
    ):
        assert (DOCS / name).exists(), f"docs/{name} missing"
    readme = (DOCS.parent / "README.md").read_text()
    for name in (
        "docs/API.md",
        "docs/TUTORIAL.md",
        "docs/SERVING.md",
        "docs/ARCHITECTURE.md",
        "docs/RELIABILITY.md",
    ):
        assert name in readme, f"README does not link {name}"
