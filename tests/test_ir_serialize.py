"""Program JSON serialization round-trips bit-identically.

The plan artifacts of :mod:`repro.api` are only trustworthy if the IR
layer reconstructs programs *exactly*: same values and types, same
instruction sequence with the same uids/attrs/partition annotations,
and -- the property everything else reduces to -- the same simulated
timeline, interval for interval.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    ClusterSpec,
    LancetOptimizer,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_program,
)
from repro.ir import (
    SerializationError,
    ensure_uid_floor,
    program_from_json,
    program_to_json,
    structural_program_dict,
)
from repro.models import GPT2MoEConfig, build_training_graph


def tiny_graph(num_gpus: int = 8):
    return build_training_graph(
        GPT2MoEConfig.tiny(), batch=4, seq=16, num_gpus=num_gpus
    )


def roundtrip(program, check=True):
    blob = json.dumps(program_to_json(program))
    return program_from_json(json.loads(blob), check=check)


def assert_programs_identical(a, b):
    """Field-for-field equality of two programs."""
    assert a.name == b.name
    assert a.values == b.values
    assert a.instructions == b.instructions
    assert [i.uid for i in a.instructions] == [i.uid for i in b.instructions]
    assert [i.attrs for i in a.instructions] == [i.attrs for i in b.instructions]
    assert (a.inputs, a.params, a.states, a.outputs) == (
        b.inputs,
        b.params,
        b.states,
        b.outputs,
    )
    assert a.grads == b.grads


class TestRoundTrip:
    def test_unoptimized_program_bit_identical(self):
        p = tiny_graph().program
        p2 = roundtrip(p)
        assert_programs_identical(p, p2)
        # serializing the reconstruction yields the same document
        assert program_to_json(p2) == program_to_json(p)

    def test_optimized_program_bit_identical(self):
        graph = tiny_graph()
        cluster = ClusterSpec.for_gpus("a100", 8)
        optimized, _ = LancetOptimizer(cluster).optimize(graph)
        p2 = roundtrip(optimized)
        assert_programs_identical(optimized, p2)

    @pytest.mark.parametrize("hierarchical", [False, True])
    def test_simulated_timeline_identical(self, hierarchical):
        """The property that matters: a reloaded optimized program
        simulates to the same timeline, interval for interval."""
        graph = tiny_graph(num_gpus=16)
        cluster = ClusterSpec.for_gpus("a100", 16)
        optimized, _ = LancetOptimizer(
            cluster, enable_hierarchical_a2a=hierarchical
        ).optimize(graph)
        p2 = roundtrip(optimized)

        def sim(p):
            cfg = SimulationConfig(
                cluster=cluster,
                padded_a2a=False,
                routing=SyntheticRoutingModel(seed=3),
            )
            return simulate_program(p, config=cfg)

        t1, t2 = sim(optimized), sim(p2)
        assert t1.makespan == t2.makespan
        assert [
            (iv.uid, iv.start, iv.end, iv.op) for iv in t1.intervals
        ] == [(iv.uid, iv.start, iv.end, iv.op) for iv in t2.intervals]

    def test_attr_tuples_and_floats_survive(self):
        """Tuples must come back as tuples (not lists) and floats must
        round-trip to the same bits."""
        graph = tiny_graph()
        p = graph.program
        ins = p.instructions[0]
        p.instructions[0] = ins.with_(
            attrs={
                **ins.attrs,
                "a_tuple": (1, 2.5, "x"),
                "nested": [(0.1, 0.2)],
                "tricky_float": 0.1 + 0.2,  # not representable exactly
            },
            uid=ins.uid,
        )
        p2 = roundtrip(p, check=False)
        attrs = p2.instructions[0].attrs
        assert attrs["a_tuple"] == (1, 2.5, "x")
        assert isinstance(attrs["a_tuple"], tuple)
        assert isinstance(attrs["nested"][0], tuple)
        assert attrs["tricky_float"].hex() == (0.1 + 0.2).hex()

    def test_uid_floor_advances_after_load(self):
        """Instructions created after a load can never collide with
        deserialized uids."""
        p = tiny_graph().program
        p2 = roundtrip(p)
        existing = {i.uid for i in p2.instructions}
        fresh = p2.instructions[0].with_()  # allocates a new uid
        assert fresh.uid not in existing

    def test_ensure_uid_floor_is_monotonic(self):
        ensure_uid_floor(0)  # never goes backwards
        a = tiny_graph().program.instructions[0].with_()
        ensure_uid_floor(a.uid + 1000)
        b = a.with_()
        assert b.uid >= a.uid + 1000

    def test_new_values_allocate_above_loaded_ids(self):
        p2 = roundtrip(tiny_graph().program)
        v = p2.new_value(p2.values[0].type, "fresh")
        assert v.id == max(i for i in p2.values if i != v.id) + 1


class TestErrors:
    def test_unknown_op_rejected(self):
        obj = program_to_json(tiny_graph().program)
        obj["instructions"][0]["op"] = "definitely_not_an_op"
        with pytest.raises(SerializationError):
            program_from_json(obj)

    def test_wrong_ir_version_rejected(self):
        obj = program_to_json(tiny_graph().program)
        obj["ir_version"] = 999
        with pytest.raises(SerializationError, match="version"):
            program_from_json(obj)

    def test_truncated_document_rejected(self):
        obj = program_to_json(tiny_graph().program)
        del obj["values"]
        with pytest.raises(SerializationError):
            program_from_json(obj)

    def test_non_dict_rejected(self):
        with pytest.raises(SerializationError):
            program_from_json([1, 2, 3])

    def test_unserializable_attr_rejected(self):
        p = tiny_graph().program
        ins = p.instructions[0]
        p.instructions[0] = ins.with_(
            attrs={**ins.attrs, "bad": object()}, uid=ins.uid
        )
        with pytest.raises(SerializationError, match="attr"):
            program_to_json(p)

    def test_validation_catches_inconsistent_program(self):
        obj = program_to_json(tiny_graph().program)
        # point an instruction at a value that does not exist
        obj["instructions"][5]["inputs"] = [10**9]
        with pytest.raises(SerializationError):
            program_from_json(obj, check=True)


class TestStructuralForm:
    def test_same_structure_different_uids_hash_identically(self):
        """Two independent builds of the same model (different global uid
        counters) produce the same structural document."""
        a = structural_program_dict(tiny_graph().program)
        b = structural_program_dict(tiny_graph().program)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_structure_differs(self):
        a = structural_program_dict(tiny_graph().program)
        other = build_training_graph(
            GPT2MoEConfig.tiny(), batch=8, seq=16, num_gpus=8
        )
        b = structural_program_dict(other.program)
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    def test_program_methods_delegate(self):
        p = tiny_graph().program
        from repro.ir import Program

        p2 = Program.from_json(p.to_json())
        assert_programs_identical(p, p2)
