"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations


def format_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.3f}"
    return str(v)


def format_series(
    name: str, xs: list, ys: list, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render one figure series as x/y rows."""
    return format_table(
        [x_label, y_label], [[x, y] for x, y in zip(xs, ys)], title=name
    )
