"""Fast re-planning: incremental DP, warm-start state, bounded caches.

Acceptance coverage of the planner-performance subsystem:

- the fast partition DP (:func:`plan_partitions`) produces *bit-identical*
  plans and predicted times to the retained naive reference
  (:func:`plan_partitions_reference`), across randomized programs and
  routing signatures, cold and warm;
- the warm-start :class:`PlannerState` self-validates: a different
  program falls back to a cold rebuild, never a wrong plan;
- the logical cost-evaluation budget (``DPResult.num_cost_evals``) does
  not regress on the standard GPT2-MoE config;
- the signature-keyed caches (a2a estimates, op profiles, the trainer's
  plan cache) are LRU-bounded with observable counters, surfaced in
  :class:`LancetReport`.
"""

import pytest

from repro import GPT2MoEConfig, build_training_graph
from repro.core import (
    CachingOpProfiler,
    CommCostModel,
    CostEstimator,
    LancetHyperParams,
    LancetOptimizer,
    LRUCache,
    PlannerState,
    plan_partitions,
    plan_partitions_reference,
)
from repro.core.partition import ConsumerIndex, forward_length
from repro.runtime import COMPILED, ClusterSpec
from repro.runtime.routing_model import SyntheticRoutingModel
from repro.testing import PROGRAM_GRID, build_grid_graph, routing_models
from repro.train import ReoptimizingTrainer


def fresh_costs(cluster):
    return CostEstimator(
        CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
        CommCostModel(cluster),
    )


def plan_fields(result):
    return [
        (p.start, p.end, p.parts, p.predicted_ms, p.sequential_ms)
        for p in result.plans
    ]


def assert_identical(fast, ref):
    assert plan_fields(fast) == plan_fields(ref)
    assert fast.optimized_fwd_ms == ref.optimized_fwd_ms
    assert fast.baseline_fwd_ms == ref.baseline_fwd_ms
    assert fast.num_groups == ref.num_groups
    assert fast.num_cost_evals == ref.num_cost_evals


#: routing realizations to re-plan against (None = uniform approximation);
#: shared with the batch-simulation differential harness
ROUTINGS = routing_models(include_none=True)


class TestEquivalence:
    @pytest.mark.parametrize("layers,gpus,batch,seq,gate", PROGRAM_GRID)
    def test_cold_plans_bit_identical(self, layers, gpus, batch, seq, gate):
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_grid_graph(layers, gpus, batch, seq, gate)
        fast = plan_partitions(graph.program, fresh_costs(cluster))
        ref = plan_partitions_reference(graph.program, fresh_costs(cluster))
        assert_identical(fast, ref)

    @pytest.mark.parametrize("routing_idx", range(len(ROUTINGS)))
    def test_signatures_bit_identical(self, routing_idx):
        """Across routing signatures: same program, drifting realizations;
        fast warm re-plans must equal the naive reference exactly."""
        routing = ROUTINGS[routing_idx]
        gpus = 8
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=3),
            batch=8,
            seq=128,
            num_gpus=gpus,
        )
        opt = LancetOptimizer(cluster)
        if routing is not None:
            sigs = opt.observe_routing(graph, routing)
        else:
            sigs = None

        costs_ref = fresh_costs(cluster)
        if sigs:
            costs_ref.set_signatures(sigs)
        fast = plan_partitions(
            graph.program, opt.costs, state=opt.planner_state
        )
        ref = plan_partitions_reference(graph.program, costs_ref)
        assert_identical(fast, ref)

    def test_warm_replans_bit_identical_across_drift(self):
        """The same PlannerState re-used across a drift sequence must
        reproduce what a cold reference computes at every step."""
        gpus = 8
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=3),
            batch=8,
            seq=128,
            num_gpus=gpus,
        )
        opt = LancetOptimizer(cluster)
        state = opt.planner_state
        # cold first
        fast = plan_partitions(graph.program, opt.costs, state=state)
        assert not fast.warm_start
        for routing in ROUTINGS[2:]:
            sigs = opt.observe_routing(graph, routing)
            fast = plan_partitions(graph.program, opt.costs, state=state)
            assert fast.warm_start

            costs_ref = fresh_costs(cluster)
            costs_ref.set_signatures(sigs)
            ref = plan_partitions_reference(graph.program, costs_ref)
            assert_identical(fast, ref)
        assert state.warm_plans >= 3 and state.cold_plans == 1

    def test_optimize_level_warm_equals_cold(self):
        """Full optimizer runs: a warm re-plan must emit the same
        program, instruction for instruction, as a cold optimizer handed
        the same signatures."""
        gpus = 8
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=3),
            batch=8,
            seq=128,
            num_gpus=gpus,
        )
        warm_opt = LancetOptimizer(cluster)
        warm_opt.optimize(graph)  # cold: charges the warm-start state
        routing = SyntheticRoutingModel(
            seed=5, concentration=0.5, hot_experts=1, hot_boost=0.6
        )
        sigs = warm_opt.observe_routing(graph, routing)
        warm_prog, warm_rep = warm_opt.optimize(graph)
        assert warm_rep.warm_planned

        cold_opt = LancetOptimizer(cluster)
        cold_opt.set_routing_signatures(sigs)
        cold_prog, cold_rep = cold_opt.optimize(graph)
        assert not cold_rep.warm_planned

        def key(prog):
            return [
                (i.op, i.partition, tuple(i.inputs))
                for i in prog.instructions
            ]

        assert key(cold_prog) == key(warm_prog)
        assert (
            cold_rep.predicted_iteration_ms == warm_rep.predicted_iteration_ms
        )

    def test_hyperparams_respected_with_state(self):
        gpus = 8
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=3),
            batch=8,
            seq=128,
            num_gpus=gpus,
        )
        state = PlannerState()
        costs = fresh_costs(cluster)
        plan_partitions(graph.program, costs, state=state)
        params = LancetHyperParams(max_partitions=2)
        fast = plan_partitions(graph.program, costs, params, state=state)
        ref = plan_partitions_reference(graph.program, fresh_costs(cluster), params)
        assert_identical(fast, ref)
        assert all(p.parts <= 2 for p in fast.plans)


class TestPlannerState:
    def test_program_change_invalidates(self, small_cluster):
        """A state charged on one program must rebuild (not mis-plan)
        when handed a structurally different one."""
        costs = fresh_costs(small_cluster)
        state = PlannerState()
        g1 = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        g2 = build_training_graph(
            GPT2MoEConfig.tiny(num_layers=4), batch=4, seq=8, num_gpus=2
        )
        r1 = plan_partitions(g1.program, costs, state=state)
        r2 = plan_partitions(g2.program, costs, state=state)
        assert not r1.warm_start and not r2.warm_start
        assert state.cold_plans == 2
        ref2 = plan_partitions_reference(g2.program, fresh_costs(small_cluster))
        assert_identical(r2, ref2)
        # going back is another structure change -> cold again, and right
        r1b = plan_partitions(g1.program, costs, state=state)
        assert not r1b.warm_start
        assert_identical(
            r1b, plan_partitions_reference(g1.program, fresh_costs(small_cluster))
        )

    def test_reset_forces_cold(self, small_cluster):
        costs = fresh_costs(small_cluster)
        state = PlannerState()
        g = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        plan_partitions(g.program, costs, state=state)
        assert plan_partitions(g.program, costs, state=state).warm_start
        state.reset()
        assert not plan_partitions(g.program, costs, state=state).warm_start

    def test_consumer_index_matches_naive_scan(self, small_cluster):
        """The O(1) membership index answers exactly like the reference's
        per-range program rescan."""
        g = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        program = g.program
        index = ConsumerIndex(program)
        fwd = forward_length(program)
        vids = list(program.values)
        for i_pos, n_pos in [(0, 3), (2, fwd // 2), (fwd // 3, fwd), (5, 9)]:
            naive = set(program.outputs) | set(program.grads.values())
            for pos, ins in enumerate(program.instructions):
                if pos < i_pos or pos >= n_pos:
                    naive.update(ins.inputs)
            view = index.view(i_pos, n_pos)
            for vid in vids:
                assert (vid in view) == (vid in naive), (i_pos, n_pos, vid)

    def test_stats_exposed(self, small_cluster):
        costs = fresh_costs(small_cluster)
        state = PlannerState()
        g = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        plan_partitions(g.program, costs, state=state)
        plan_partitions(g.program, costs, state=state)
        stats = state.stats()
        assert stats["cold_plans"] == 1 and stats["warm_plans"] == 1
        for cache in ("range_ctx", "chunk", "overhead", "sim"):
            assert set(stats[cache]) >= {"hits", "misses", "evictions", "size"}
        # the warm plan reuses every range context
        assert stats["range_ctx"]["hits"] > 0


class TestPerfBudget:
    def test_num_cost_evals_does_not_regress_standard_config(self):
        """Standard GPT2-MoE config (paper setting: 12 layers, batch 24,
        seq 512, 16 GPUs): the fast DP must consider exactly the
        reference's candidate set -- caching may skip work, never search
        less -- and stay within the historical budget."""
        gpus = 16
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=24, seq=512, num_gpus=gpus
        )
        fast = plan_partitions(graph.program, fresh_costs(cluster))
        ref = plan_partitions_reference(graph.program, fresh_costs(cluster))
        assert fast.num_cost_evals == ref.num_cost_evals
        # the historical budget of this config (PR 2): do not regress
        assert fast.num_cost_evals <= 1140
        assert fast.num_groups == ref.num_groups == 68
        assert_identical(fast, ref)

    def test_warm_replan_prices_only_the_drift(self):
        """A warm re-plan with unchanged signatures re-simulates nothing;
        after drift it re-simulates only a2a-bearing candidates."""
        gpus = 8
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=3),
            batch=8,
            seq=128,
            num_gpus=gpus,
        )
        opt = LancetOptimizer(cluster)
        state = opt.planner_state
        cold = plan_partitions(graph.program, opt.costs, state=state)
        assert cold.num_pipeline_sims == cold.num_cost_evals
        # same signatures again: every simulation is a cache hit
        again = plan_partitions(graph.program, opt.costs, state=state)
        assert again.warm_start and again.num_pipeline_sims == 0
        assert again.num_cost_evals == cold.num_cost_evals
        # drift: the changed a2a prices invalidate their simulations
        opt.observe_routing(
            graph,
            SyntheticRoutingModel(
                seed=9, concentration=0.5, hot_experts=1, hot_boost=0.6
            ),
        )
        drifted = plan_partitions(graph.program, opt.costs, state=state)
        assert drifted.warm_start
        assert 0 < drifted.num_pipeline_sims <= cold.num_pipeline_sims


class TestLRUCache:
    def test_hit_miss_eviction_counters(self):
        c = LRUCache(2, name="t")
        assert c.get("a") is None
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1
        c.put("c", 3)  # evicts b (a was refreshed)
        assert "b" not in c and "a" in c and "c" in c
        assert c.get("b") is None
        assert c.stats() == {
            "hits": 1,
            "misses": 2,
            "evictions": 1,
            "size": 2,
            "maxsize": 2,
        }
        assert len(c) == 2
        c.clear()
        assert len(c) == 0 and c.stats()["evictions"] == 1

    def test_unbounded_mode(self):
        c = LRUCache(None)
        for i in range(100):
            c.put(i, i)
        assert len(c) == 100 and c.evictions == 0
        assert c.maxsize is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_a2a_cache_bounded(self, small_cluster):
        costs = fresh_costs(small_cluster)
        assert costs._a2a_cache.maxsize is not None
        # overflowable on demand
        costs._a2a_cache = LRUCache(2)
        for nbytes in (1e3, 2e3, 3e3, 4e3):
            costs._a2a_irregular_ms(nbytes, 1, None)
        assert len(costs._a2a_cache) == 2
        assert costs._a2a_cache.evictions == 2
        # evicted entries recompute to the same value
        first = costs.comm.a2a_skewed_ms(1e3, 1, None)
        assert costs._a2a_irregular_ms(1e3, 1, None) == first

    def test_profiler_cache_bounded(self, small_cluster):
        profiler = CachingOpProfiler(
            gpu=small_cluster.gpu, framework=COMPILED
        )
        assert profiler._cache.maxsize is not None

    def test_sim_cache_bounded_across_drifting_signatures(self):
        """The pipeline-simulation cache keys on realized a2a durations,
        an unbounded stream under drift -- it must be LRU-bounded so a
        long re-optimizing run cannot leak planner memory."""
        from repro.core.partition import PlanCaches

        assert PlanCaches().sim.maxsize is not None

        gpus = 4
        cluster = ClusterSpec.for_gpus("a100", gpus)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=2),
            batch=4,
            seq=64,
            num_gpus=gpus,
        )
        opt = LancetOptimizer(cluster)
        state = opt.planner_state
        state.caches.sim = LRUCache(32, name="planner-pipe-sim")
        baseline = None
        for seed in range(6):
            opt.observe_routing(
                graph,
                SyntheticRoutingModel(
                    seed=seed, concentration=0.5, hot_experts=1, hot_boost=0.5
                ),
            )
            plan_partitions(graph.program, opt.costs, state=state)
            assert len(state.caches.sim) <= 32
            if baseline is None:
                baseline = len(state.caches.sim)
        assert state.caches.sim.evictions > 0  # the bound really engaged

    def test_cost_estimator_cache_size_param(self, small_cluster):
        costs = CostEstimator(
            CachingOpProfiler(gpu=small_cluster.gpu, framework=COMPILED),
            CommCostModel(small_cluster),
            a2a_cache_size=2,
        )
        for nbytes in (1e3, 2e3, 3e3):
            costs._a2a_irregular_ms(nbytes, 1, None)
        assert costs._a2a_cache.maxsize == 2
        assert costs._a2a_cache.evictions == 1
        opt = LancetOptimizer(small_cluster, a2a_cache_size=8)
        assert opt.costs._a2a_cache.maxsize == 8

    def test_report_surfaces_cache_stats(self, small_cluster):
        g = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        opt = LancetOptimizer(small_cluster)
        _, report = opt.optimize(g)
        stats = report.cache_stats
        for key in (
            "profiler",
            "a2a_estimates",
            "planner_range_ctx",
            "planner_chunk",
            "planner_sim",
        ):
            assert "hits" in stats[key] and "misses" in stats[key], key
        assert stats["planner_cold_plans"] == 1


class TestTrainerIntegration:
    def test_plan_cache_lru_bound_and_stats(self, tiny_graph, small_cluster):
        tr = ReoptimizingTrainer(
            tiny_graph,
            LancetOptimizer(small_cluster),
            drift_threshold=0.0,
            cache_digits=3,
            plan_cache_size=1,
            seed=0,
        )
        tr.run(4)
        assert len(tr._plan_cache) <= 1
        stats = tr.plan_cache_stats
        assert stats["maxsize"] == 1
        assert stats["misses"] >= 1
        # every optimizer run after the constructor's cold plan is warm
        misses = [e for e in tr.events if not e.cache_hit]
        assert misses and all(e.warm_start for e in misses)
        hits = [e for e in tr.events if e.cache_hit]
        assert all(not e.warm_start for e in hits)

    def test_trajectory_unchanged_by_warm_replanning(
        self, tiny_graph, small_cluster
    ):
        """Warm re-plans swap schedules mid-training without moving a
        single loss bit (they are bit-identical to cold plans, which
        PR 2 already proved safe)."""
        from repro.train import Trainer

        reopt = ReoptimizingTrainer(
            tiny_graph,
            LancetOptimizer(small_cluster),
            drift_threshold=0.0,
            cache_digits=1,
            seed=0,
        )
        results = reopt.run(3)
        assert any(e.warm_start for e in reopt.events)
        static_prog, _ = LancetOptimizer(small_cluster).optimize(tiny_graph)
        baseline = Trainer(tiny_graph, program=static_prog, seed=0).run(3)
        assert [r.losses for r in results] == [r.losses for r in baseline]
