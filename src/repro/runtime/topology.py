"""Cluster topology: node-of-rank mapping and the 2-hop all-to-all.

Lancet's evaluation clusters are bandwidth-asymmetric: NVLink inside a
node, a much slower (shared) NIC across nodes.  A flat all-to-all lets
every GPU push its own cross-node bytes through its 1/L share of the
node NIC, so a single hot device bottlenecks the whole collective on a
sliver of the node's aggregate NIC bandwidth.  The *hierarchical* (2-hop)
all-to-all decomposes the exchange into

1. **intra-node gather** -- each GPU forwards its cross-node traffic over
   NVLink to a per-destination-node relay GPU in its own node (same-node
   traffic is delivered directly in this phase);
2. **inter-node exchange** -- relays move the *node-aggregated* pair
   bytes over the NICs, so the per-node NIC is loaded with the node's
   total cross traffic rather than one GPU's share;
3. **intra-node scatter** -- receiving relays fan the data out to the
   final destination GPUs over NVLink.

Under skewed routing this trades two cheap NVLink hops for NIC load
balancing; under uniform routing the extra hops (and latency terms) make
the flat algorithm the better choice -- which is exactly the per-a2a
decision the planner makes (:meth:`repro.core.CommCostModel.a2a_best_ms`).

:class:`Topology` is the single home of the decomposition: the numeric
collective (:func:`repro.runtime.collectives.hierarchical_all_to_all`),
the ground-truth simulator and the compile-time cost model all derive
their per-phase byte matrices from :meth:`Topology.decompose_pair_bytes`,
so predicted and simulated hierarchical times come from one model.

Unit conventions follow :class:`repro.runtime.cluster.ClusterSpec`:
bandwidths in GB/s (1e9 bytes per second), latencies in microseconds,
buffer sizes in bytes, returned times in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: names of the three phases of the 2-hop algorithm, in execution order
PHASE_NAMES = ("intra_gather", "inter_exchange", "intra_scatter")


@dataclass(frozen=True)
class HierarchicalTraffic:
    """Per-phase byte matrices of one 2-hop all-to-all decomposition.

    Attributes
    ----------
    intra_gather:
        ``[G, G]`` bytes moved GPU-to-GPU inside nodes during phase 1:
        same-node deliveries plus the forwarding legs onto send relays.
    inter_node:
        ``[N, N]`` *node-aggregated* bytes crossing the node boundary in
        phase 2 (entry ``[m, n]`` = total bytes node ``m`` sends node
        ``n``).  This is what the per-node NICs are charged with.
    intra_scatter:
        ``[G, G]`` bytes moved from receive relays to final destination
        GPUs during phase 3.
    """

    intra_gather: np.ndarray
    inter_node: np.ndarray
    intra_scatter: np.ndarray

    @property
    def cross_node_bytes(self) -> float:
        """Total bytes that cross a node boundary."""
        return float(self.inter_node.sum())


@dataclass(frozen=True)
class HierarchicalTiming:
    """Per-phase timing of one 2-hop all-to-all.

    Phases execute with a barrier between them (relays cannot exchange
    before the gather completes); the collective therefore completes at
    ``latency + max(t1) + max(t2) + max(t3)``.

    Attributes
    ----------
    latency_ms:
        Sum of the latency floors: size exchange plus one alpha per
        non-empty phase.
    intra_gather_ms / inter_exchange_ms / intra_scatter_ms:
        Per-device busy time of each phase, shape ``[G]``.  The
        inter-node phase is charged at node granularity (the NIC is a
        node resource), so all GPUs of a node share its value.
    """

    latency_ms: float
    intra_gather_ms: np.ndarray
    inter_exchange_ms: np.ndarray
    intra_scatter_ms: np.ndarray

    @property
    def total_ms(self) -> float:
        """Completion time of the whole collective."""
        return self.latency_ms + float(
            self.intra_gather_ms.max()
            + self.inter_exchange_ms.max()
            + self.intra_scatter_ms.max()
        )

    def device_times_ms(self) -> np.ndarray:
        """Per-device completion offset (max equals :attr:`total_ms`).

        Each device finishes at the end of the last phase in which it
        moves bytes, behind the barriers of the earlier phases; devices
        idle in the tail phases show up as finishing early.
        """
        t1, t2, t3 = (
            self.intra_gather_ms,
            self.inter_exchange_ms,
            self.intra_scatter_ms,
        )
        c1 = float(t1.max())
        c2 = c1 + float(t2.max())
        done = self.latency_ms + np.where(
            t3 > 0, c2 + t3, np.where(t2 > 0, c1 + t2, t1)
        )
        return done


@dataclass(frozen=True)
class Topology:
    """Physical layout of a cluster: nodes, links, and rank mapping.

    Built from a :class:`~repro.runtime.cluster.ClusterSpec` via its
    ``topology`` property.  Ranks are dense: GPU ``r`` lives on node
    ``r // gpus_per_node`` with local rank ``r % gpus_per_node``.

    Attributes
    ----------
    num_nodes / gpus_per_node:
        Shape of the cluster.
    intra_bw_gbps:
        Per-GPU intra-node (NVLink) bandwidth, GB/s.
    node_nic_gbps:
        Aggregate NIC bandwidth per node, GB/s, shared by its GPUs.
    alpha_intra_us / alpha_inter_us:
        Latency floor of one collective step within / across nodes.
    """

    num_nodes: int
    gpus_per_node: int
    intra_bw_gbps: float
    node_nic_gbps: float
    alpha_intra_us: float = 8.0
    alpha_inter_us: float = 20.0

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def multi_node(self) -> bool:
        return self.num_nodes > 1

    @property
    def nic_per_gpu_gbps(self) -> float:
        """A single GPU's even share of its node's NIC bandwidth."""
        return self.node_nic_gbps / self.gpus_per_node

    # -- rank mapping ------------------------------------------------------

    def node_of(self, rank: int) -> int:
        """Node hosting GPU ``rank``."""
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """Position of GPU ``rank`` within its node."""
        return rank % self.gpus_per_node

    def ranks_of_node(self, node: int) -> range:
        """Global ranks of one node's GPUs."""
        lo = node * self.gpus_per_node
        return range(lo, lo + self.gpus_per_node)

    def node_of_ranks(self) -> np.ndarray:
        """``[G]`` array mapping rank -> node."""
        return np.arange(self.num_gpus) // self.gpus_per_node

    def send_relay(self, src_node: int, dst_node: int) -> int:
        """Rank that aggregates ``src_node``'s traffic toward ``dst_node``.

        Destination nodes are spread round-robin over local ranks so the
        inter-node phase loads every GPU's NIC share evenly.
        """
        return src_node * self.gpus_per_node + dst_node % self.gpus_per_node

    def recv_relay(self, src_node: int, dst_node: int) -> int:
        """Rank in ``dst_node`` that receives ``src_node``'s aggregate."""
        return dst_node * self.gpus_per_node + src_node % self.gpus_per_node

    # -- 2-hop decomposition ----------------------------------------------

    def decompose_pair_bytes(self, pair_bytes: np.ndarray) -> HierarchicalTraffic:
        """Split a GPU-pair byte matrix into the three 2-hop phases.

        ``pair_bytes[s, d]`` bytes flow logically from GPU ``s`` to GPU
        ``d``; the diagonal (self-traffic) never moves and is excluded.
        Byte conservation holds per phase: every cross-node byte appears
        once in ``inter_node``, once in ``intra_gather`` unless its
        source *is* the send relay, and once in ``intra_scatter`` unless
        its destination *is* the receive relay.
        """
        pair = np.asarray(pair_bytes, dtype=np.float64)
        g, el = self.num_gpus, self.gpus_per_node
        n = self.num_nodes
        if pair.shape != (g, g):
            raise ValueError(f"pair_bytes must be [{g},{g}], got {pair.shape}")
        node_of = self.node_of_ranks()
        same_node = node_of[:, None] == node_of[None, :]
        off_diag = ~np.eye(g, dtype=bool)

        # phase 1a: same-node traffic is delivered directly
        intra_gather = np.where(same_node & off_diag, pair, 0.0)
        cross = np.where(~same_node, pair, 0.0)

        # phase 2: node-aggregated cross traffic over the NICs
        inter_node = cross.reshape(n, el, n, el).sum(axis=(1, 3))

        # phase 1b: forwarding legs source GPU -> send relay.  bytes from
        # s toward destination node nd ride to relay send_relay(ns, nd);
        # when s already is that relay nothing moves (the diagonal).
        by_dst_node = cross.reshape(g, n, el).sum(axis=2)  # [G, N]
        src = np.repeat(np.arange(g)[:, None], n, axis=1)
        relay1 = node_of[:, None] * el + (np.arange(n)[None, :] % el)
        legs = np.zeros((g, g))
        np.add.at(legs, (src, relay1), by_dst_node)
        np.fill_diagonal(legs, 0.0)
        intra_gather = intra_gather + legs

        # phase 3: receive relay -> final destination GPU
        by_src_node = cross.reshape(n, el, g).sum(axis=1)  # [N, G]
        dst = np.repeat(np.arange(g)[None, :], n, axis=0)
        relay2 = node_of[None, :] * el + (np.arange(n)[:, None] % el)
        intra_scatter = np.zeros((g, g))
        np.add.at(intra_scatter, (relay2, dst), by_src_node)
        np.fill_diagonal(intra_scatter, 0.0)

        return HierarchicalTraffic(intra_gather, inter_node, intra_scatter)

    # -- timing model ------------------------------------------------------

    def latency_ms(self) -> float:
        """Latency floor of one hierarchical all-to-all: a size exchange
        (spanning the slowest level present) plus one alpha per phase.
        Single-node clusters run only the direct intra phase, which makes
        this exactly the flat collective's two intra alphas."""
        size_exchange = (
            self.alpha_inter_us if self.multi_node else self.alpha_intra_us
        )
        phases = self.alpha_intra_us
        if self.multi_node:
            phases += self.alpha_inter_us + self.alpha_intra_us
        return (size_exchange + phases) * 1e-3

    def phase_times_ms(self, pair_bytes: np.ndarray) -> HierarchicalTiming:
        """Per-phase, per-device timing of a 2-hop all-to-all.

        Intra phases charge each device's bottleneck stream (send or
        receive) against the per-GPU NVLink bandwidth; the inter phase
        charges each *node's* bottleneck direction against its aggregate
        NIC, broadcast to the node's GPUs.
        """
        traffic = self.decompose_pair_bytes(pair_bytes)
        node_of = self.node_of_ranks()

        def stream_ms(mat: np.ndarray, bw_gbps: float) -> np.ndarray:
            load = np.maximum(mat.sum(axis=1), mat.sum(axis=0))
            return load / (bw_gbps * 1e9) * 1e3

        t1 = stream_ms(traffic.intra_gather, self.intra_bw_gbps)
        t3 = stream_ms(traffic.intra_scatter, self.intra_bw_gbps)
        t2_node = stream_ms(traffic.inter_node, self.node_nic_gbps)
        t2 = t2_node[node_of]
        return HierarchicalTiming(self.latency_ms(), t1, t2, t3)

    def phase_load_coefficients(
        self, pair_bytes: np.ndarray
    ) -> tuple[float, float, float]:
        """Scale-free per-phase bottleneck loads of a realization.

        Each coefficient is the phase's bottleneck byte load (GPU stream
        for the intra phases, node NIC direction for the inter phase)
        divided by the mean per-GPU send bytes -- the same normalization
        as :class:`~repro.runtime.routing_model.RoutingSignature`, so the
        cost model can reconstruct hierarchical phase times for any
        traffic volume: ``t_phase = coeff * mean_send_bytes / bw``.
        Returns ``(0, 0, 0)`` for an empty realization.
        """
        pair = np.asarray(pair_bytes, dtype=np.float64)
        mean_send = float(pair.sum(axis=1).mean())
        if mean_send <= 0:
            return (0.0, 0.0, 0.0)
        traffic = self.decompose_pair_bytes(pair)

        def bottleneck(mat: np.ndarray) -> float:
            return float(
                np.maximum(mat.sum(axis=1), mat.sum(axis=0)).max(initial=0.0)
            )

        return (
            bottleneck(traffic.intra_gather) / mean_send,
            bottleneck(traffic.inter_node) / mean_send,
            bottleneck(traffic.intra_scatter) / mean_send,
        )
