"""Packed batch simulation cores (vectorized over candidates).

Two vectorized engines live here, both bit-identical to their scalar
references by construction -- every scalar step is a float64 ``max`` or a
single add, and the batched versions perform the *same* operations
elementwise, never reassociating a sum:

- :func:`simulate_scenarios` evaluates one program under ``B`` routing /
  straggler scenarios in a single numpy pass over instructions, carrying
  ``[B, G]`` state arrays instead of ``B`` Python event loops.  It backs
  :func:`~repro.runtime.simulate.simulate_cluster_batch`; per-scenario
  :class:`~repro.runtime.timeline.ClusterTimeline` objects are
  materialized lazily (building ``B * n * G`` ``Interval`` objects is
  most of the scalar loop's cost).
- :func:`simulate_lanes` advances ``L`` independent two-stream pipelined
  schedules (the partition DP's ``P(i, n, k)`` candidates) in lockstep,
  one vectorized step per within-lane event position.  The flat event
  list is grouped by that position (a stable counting sort), so each
  step touches exactly the lanes that still have an event -- no padding,
  and the active width shrinks as short lanes drain.

Lockstep only pays off when steps are wide: each step costs a handful
of numpy calls regardless of width, while CPython runs the scalar
recurrence at ~150 ns/event.  Measured crossover is a *mean* width
(events / longest lane) of roughly 500; the planner's
:func:`~repro.core.partition.pipeline.resolve_pending` picks the engine
per batch accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir import Program, Stream
from .timeline import ClusterTimeline, Interval, Timeline

# -- scenario batching (simulate_cluster over B configs) -------------------


@dataclass
class ScenarioPack:
    """One program's instruction stream packed against ``B`` cost models.

    Per instruction: the dense input/output value-slot indices shared by
    every scenario, plus the duration tensor -- ``[B, G]`` compute times
    (straggler-scaled exactly like
    :meth:`~repro.runtime.simulate.GroundTruthCost.device_duration_ms`)
    or ``[B, G]`` per-participant collective busy times with their
    ``[B]`` maxima.
    """

    program: Program
    num_scenarios: int
    num_devices: int
    num_values: int
    is_comm: list[bool]
    in_slots: list[np.ndarray]
    out_slots: list[np.ndarray]
    #: compute instructions: [B, G] straggler-scaled durations; comm: None
    comp_dur: list[np.ndarray | None]
    #: collectives: [B, G] per-participant busy times; compute: None
    comm_times: list[np.ndarray | None]
    #: collectives: [B] completion offsets (``times.max()`` per scenario)
    comm_tmax: list[np.ndarray | None]


def pack_scenarios(program: Program, costs: list) -> ScenarioPack:
    """Resolve every scenario's instruction durations into dense arrays.

    ``costs`` are :class:`~repro.runtime.simulate.GroundTruthCost`-likes;
    all must describe clusters with the same device count (a batch
    simulates candidates for *one* placement).
    """
    if not costs:
        raise ValueError("need at least one cost model / config")
    g = costs[0].config.cluster.num_gpus
    for c in costs[1:]:
        if c.config.cluster.num_gpus != g:
            raise ValueError(
                "all batched configs must share one device count; got "
                f"{g} and {c.config.cluster.num_gpus}"
            )
    b = len(costs)
    slowdowns = np.stack([c.config.device_slowdowns() for c in costs])

    slot_of: dict[int, int] = {}

    def slots(values) -> np.ndarray:
        out = np.empty(len(values), dtype=np.intp)
        for j, v in enumerate(values):
            s = slot_of.get(v)
            if s is None:
                s = slot_of[v] = len(slot_of)
            out[j] = s
        return out

    is_comm: list[bool] = []
    in_slots: list[np.ndarray] = []
    out_slots: list[np.ndarray] = []
    comp_dur: list[np.ndarray | None] = []
    comm_times: list[np.ndarray | None] = []
    comm_tmax: list[np.ndarray | None] = []

    for instr in program.instructions:
        is_comm.append(instr.is_comm)
        in_slots.append(slots(instr.inputs))
        out_slots.append(slots(instr.outputs))
        if instr.is_comm:
            times = np.stack(
                [c.collective_device_times(instr, program) for c in costs]
            ).astype(np.float64, copy=False)
            comp_dur.append(None)
            comm_times.append(times)
            comm_tmax.append(times.max(axis=1))
        else:
            base = np.asarray(
                [c.device_duration_ms(instr, program, 1.0) for c in costs],
                dtype=np.float64,
            )
            # exactly device_duration_ms: nominal devices keep the cached
            # time bit-for-bit, stragglers multiply once
            dur = np.where(
                slowdowns == 1.0, base[:, None], base[:, None] * slowdowns
            )
            comp_dur.append(dur)
            comm_times.append(None)
            comm_tmax.append(None)

    return ScenarioPack(
        program=program,
        num_scenarios=b,
        num_devices=g,
        num_values=len(slot_of),
        is_comm=is_comm,
        in_slots=in_slots,
        out_slots=out_slots,
        comp_dur=comp_dur,
        comm_times=comm_times,
        comm_tmax=comm_tmax,
    )


@dataclass
class BatchClusterResult:
    """Start/end times of every instruction for ``B`` scenarios.

    ``starts``/``ends`` have shape ``[n_instr, B, G]``; for a collective
    the start is the common synchronization point and the end is each
    participant's own release time, exactly as
    :func:`~repro.runtime.simulate.simulate_cluster` records them.
    Full :class:`~repro.runtime.timeline.ClusterTimeline` objects are
    built on demand -- makespans and most figure metrics never need the
    ``B * n * G`` ``Interval`` objects the scalar path always pays for.
    """

    program: Program
    starts: np.ndarray
    ends: np.ndarray

    @property
    def num_candidates(self) -> int:
        return self.starts.shape[1] if self.starts.ndim == 3 else 0

    @property
    def num_devices(self) -> int:
        return self.starts.shape[2] if self.starts.ndim == 3 else 0

    @property
    def makespans(self) -> np.ndarray:
        """Per-scenario cluster makespan, shape ``[B]``."""
        if self.ends.shape[0] == 0:
            return np.zeros(self.num_candidates)
        return self.ends.max(axis=(0, 2))

    def makespan(self, b: int) -> float:
        """Scenario ``b``'s cluster makespan."""
        return float(self.makespans[b])

    def timeline(self, b: int) -> ClusterTimeline:
        """Materialize scenario ``b`` as a full per-device timeline,
        interval-for-interval identical to the scalar simulator's."""
        instructions = self.program.instructions
        g = self.num_devices
        devices: list[list[Interval]] = [[] for _ in range(g)]
        for i, instr in enumerate(instructions):
            stream = Stream.COMM if instr.is_comm else Stream.COMPUTE
            kind = instr.kind.value
            starts = self.starts[i, b]
            ends = self.ends[i, b]
            for d in range(g):
                devices[d].append(
                    Interval(
                        uid=instr.uid,
                        op=instr.op,
                        kind=kind,
                        stream=stream,
                        start=float(starts[d]),
                        end=float(ends[d]),
                    )
                )
        return ClusterTimeline([Timeline(ivs) for ivs in devices])

    def timelines(self) -> list[ClusterTimeline]:
        """All scenarios as full timelines (the expensive form)."""
        return [self.timeline(b) for b in range(self.num_candidates)]


def simulate_scenarios(pack: ScenarioPack) -> BatchClusterResult:
    """Advance all ``B`` scenarios through the program in one pass.

    State per scenario and device: when each value becomes ready
    (``[B, G, n_values]``) and when each stream frees up (``[B, G]``
    per stream).  Each instruction applies the exact scalar update:

    - compute: ``end = max(stream_free, dep_ready) + dur`` per device;
    - collective: ``start = max over devices of arrival``, every
      device's interval ends at ``start + its own busy time``, and both
      streams' state advances to the common completion
      ``start + times.max()``.
    """
    b, g = pack.num_scenarios, pack.num_devices
    n = len(pack.is_comm)
    value_ready = np.zeros((b, g, pack.num_values))
    comp_free = np.zeros((b, g))
    comm_free = np.zeros((b, g))
    starts = np.empty((n, b, g))
    ends = np.empty((n, b, g))

    for i in range(n):
        in_slots = pack.in_slots[i]
        if in_slots.size:
            dep = value_ready[:, :, in_slots].max(axis=2)
        else:
            dep = np.zeros((b, g))
        if pack.is_comm[i]:
            # arrival per device, then a cluster-wide synchronization
            arrival = np.maximum(comm_free, dep)
            start = arrival.max(axis=1)
            complete = start + pack.comm_tmax[i]
            starts[i] = start[:, None]
            ends[i] = start[:, None] + pack.comm_times[i]
            comm_free = np.broadcast_to(complete[:, None], (b, g)).copy()
            ready = comm_free
        else:
            start = np.maximum(comp_free, dep)
            end = start + pack.comp_dur[i]
            starts[i] = start
            ends[i] = end
            comp_free = end
            ready = end
        out_slots = pack.out_slots[i]
        if out_slots.size:
            # ready is [B, G]; every output slot of the instruction sees it
            value_ready[:, :, out_slots] = ready[:, :, None]

    return BatchClusterResult(program=pack.program, starts=starts, ends=ends)


# -- lane batching (the DP's pipeline recurrence over L candidates) --------


@dataclass
class LanePack:
    """One ``(range, parts)`` candidate's event stream in packed form.

    Events follow the exact scalar interleaving of
    :meth:`~repro.core.partition.pipeline.RangeContext.simulate_ms`:
    stage by stage, partition index ``p`` outer, instruction inner.  Slot
    ``num_slots`` is pinned to zero (the scalar ``dep = 0.0`` initial
    value); dependency rows are padded with it.
    """

    num_events: int
    num_slots: int
    #: [T] index into the candidate's duration vector
    instr_idx: np.ndarray
    #: [T] chunk-end slot each event writes (``i * parts + p``)
    slot: np.ndarray
    #: [T] stream of each event (0 = compute, 1 = comm)
    sid: np.ndarray
    #: [T, dmax] dependency slots, padded with the pinned-zero slot
    deps: np.ndarray


def pack_lane(stages, deps, parts: int, num_instrs: int) -> LanePack:
    """Pack one candidate's two-stream recurrence into event arrays.

    ``stages``/``deps`` come straight from a
    :class:`~repro.core.partition.pipeline.RangeContext`; the pack is
    duration-independent, so contexts cache one per ``parts``.
    """
    num_slots = num_instrs * parts
    zero_slot = num_slots
    order: list[int] = []
    slot: list[int] = []
    sid: list[int] = []
    dep_rows: list[list[int]] = []
    for stage in stages:
        s = 1 if stage.is_comm else 0
        for p in range(parts):
            for i in stage.indices:
                order.append(i)
                slot.append(i * parts + p)
                sid.append(s)
                dep_rows.append([j * parts + p for j in deps[i]])
    dmax = max((len(r) for r in dep_rows), default=0)
    dep_arr = np.full((len(order), dmax), zero_slot, dtype=np.intp)
    for t, row in enumerate(dep_rows):
        dep_arr[t, : len(row)] = row
    return LanePack(
        num_events=len(order),
        num_slots=num_slots,
        instr_idx=np.asarray(order, dtype=np.intp),
        slot=np.asarray(slot, dtype=np.intp),
        sid=np.asarray(sid, dtype=np.intp),
        deps=dep_arr,
    )


def simulate_lanes(packs: list[LanePack], durs: list[np.ndarray]) -> np.ndarray:
    """Run ``L`` independent pipeline recurrences in lockstep.

    ``durs[l]`` is lane ``l``'s per-instruction chunk-duration vector.
    Returns the ``[L]`` pipeline makespans, bit-identical to
    ``RangeContext.simulate_ms`` lane by lane: each lockstep step
    performs the scalar step's exact float64 operations (``max``
    comparisons and one add) for the lanes whose event stream reaches
    that step -- events are grouped by within-lane position with a
    stable sort, so per-lane order is preserved and short lanes simply
    drop out of later steps instead of being padded.

    Lane state lives in one flat ``end_buf`` of ``max_slots + 1``
    entries per lane; the shared extra column (and each pack's
    pinned-zero padding slot, which its own events never write) stays
    0.0 and serves as the ``dep = 0.0`` target for padded dependency
    rows.
    """
    lanes = len(packs)
    if lanes == 0:
        return np.zeros(0)
    counts = np.asarray([p.num_events for p in packs], dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(lanes)
    max_slots = max(p.num_slots for p in packs)
    stride = max_slots + 1  # one always-zero column per lane
    d_max = max(max(p.deps.shape[1] for p in packs), 1)

    # flatten every lane's event stream, tagged with its step index
    lane_of = np.repeat(np.arange(lanes, dtype=np.intp), counts)
    starts_ = np.zeros(lanes, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts_[1:])
    step_of = np.arange(total, dtype=np.intp) - np.repeat(starts_, counts)
    base = lane_of * stride
    slot_flat = np.concatenate([p.slot for p in packs]) + base
    sid_flat = np.concatenate([p.sid for p in packs]) + lane_of * 2
    dur_all = np.concatenate([np.asarray(d, dtype=np.float64) for d in durs])
    dur_sizes = np.asarray([len(d) for d in durs], dtype=np.intp)
    dur_off = np.zeros(lanes, dtype=np.intp)
    np.cumsum(dur_sizes[:-1], out=dur_off[1:])
    idx_flat = np.concatenate([p.instr_idx for p in packs]) + np.repeat(dur_off, counts)
    dur_flat = dur_all[idx_flat]
    # column max_slots of a lane is never written (its slots stop at
    # num_slots - 1 <= max_slots - 1), so it is a valid global zero slot
    deps_flat = np.full((total, d_max), max_slots, dtype=np.intp)
    for idx, p in enumerate(packs):
        w = p.deps.shape[1]
        if p.num_events and w:
            deps_flat[starts_[idx] : starts_[idx] + p.num_events, :w] = p.deps
    deps_flat += base[:, None]

    # group by step index (stable -> per-lane event order preserved)
    order = np.argsort(step_of, kind="stable")
    slot_s = slot_flat[order]
    sid_s = sid_flat[order]
    dur_s = dur_flat[order]
    deps_s = deps_flat[order]
    t_max = int(counts.max())
    ptr = np.searchsorted(step_of[order], np.arange(t_max + 1))

    end_buf = np.zeros(lanes * stride)
    stream_free = np.zeros(lanes * 2)
    for t in range(t_max):
        lo, hi = int(ptr[t]), int(ptr[t + 1])
        dep = end_buf[deps_s[lo:hi]].max(axis=1)
        s = sid_s[lo:hi]
        finish = np.maximum(stream_free[s], dep) + dur_s[lo:hi]
        stream_free[s] = finish
        end_buf[slot_s[lo:hi]] = finish
    return end_buf.reshape(lanes, stride).max(axis=1)
