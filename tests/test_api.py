"""The repro.api facade: Scenario, compile, Plan artifacts, PlanStore.

Covers the ISSUE 5 acceptance criteria:

- ``Plan.save`` / ``Plan.load`` round-trip reconstructs the program
  bit-identically (same simulated timeline);
- a ``PlanStore`` warm load skips the planner entirely (no
  ``LancetOptimizer`` is even constructed -- zero cost evaluations);
- store entries are invalidated by any key component: graph
  fingerprint, cluster spec, policy, signature bucket;
- corrupted or old-schema plan files raise clear errors instead of
  deserializing garbage;
- all pre-existing entry points keep working unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    PLAN_SCHEMA_VERSION,
    PlanError,
    PlanPolicy,
    PlanSchemaError,
    PlanStore,
    Scenario,
    available_presets,
    compile,
    graph_fingerprint,
    load_plan,
)
from repro.runtime import ClusterSpec


@pytest.fixture(scope="module")
def scenario():
    return Scenario(model="tiny", cluster="a100", num_gpus=8)


@pytest.fixture(scope="module")
def compiled(scenario):
    return compile(scenario)


class TestScenario:
    def test_presets_cover_benchmark_workloads(self):
        presets = available_presets()
        assert "gpt2-s-moe/a100x16" in presets
        assert "gpt2-l-moe/v100x64" in presets
        assert "gpt2-s-moe/v100x32-hot" in presets
        assert "tiny/a100x8" in presets

    def test_preset_resolves_paper_settings(self):
        sc = Scenario.preset("gpt2-s-moe/a100x16")
        assert sc.resolved_batch() == 24  # paper Sec. 7 batch
        assert sc.resolved_seq() == 512
        assert sc.build_cluster().num_gpus == 16

    def test_unknown_preset_and_model_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            Scenario.preset("gpt3/tpu")
        with pytest.raises(ValueError, match="unknown model"):
            Scenario(model="not-a-model")

    def test_dict_round_trip(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_model_name_normalized(self):
        assert Scenario(model="gpt2-s-moe").model == "GPT2-S-MoE"

    def test_hot_variant_routing(self):
        sc = Scenario.preset("tiny/a100x8-hot")
        routing = sc.routing_model()
        assert routing.hot_experts > 0 and routing.hot_boost > 0


class TestFingerprint:
    def test_stable_across_builds(self, scenario):
        a = graph_fingerprint(scenario.build_graph())
        b = graph_fingerprint(scenario.build_graph())
        assert a == b and a.startswith("sha256:")

    def test_differs_for_different_workloads(self, scenario):
        a = graph_fingerprint(scenario.build_graph())
        b = graph_fingerprint(scenario.with_(batch=8).build_graph())
        assert a != b

    def test_rejects_non_programs(self):
        with pytest.raises(TypeError):
            graph_fingerprint(42)


class TestCompile:
    def test_scenario_compile_produces_plan(self, compiled, scenario):
        assert compiled.predicted_iteration_ms > 0
        assert compiled.fingerprint == graph_fingerprint(scenario.build_graph())
        assert compiled.planner["num_cost_evals"] > 0
        assert compiled.report is not None  # fresh compiles keep the report
        assert not compiled.from_store

    def test_skew_aware_by_default(self, compiled):
        assert compiled.policy.skew_aware
        assert compiled.signatures  # conditioned on observed routing

    def test_uniform_policy_drops_signatures(self, scenario):
        plan = compile(scenario, policy=PlanPolicy(skew_aware=False))
        assert plan.signatures is None

    def test_graph_workload_requires_cluster(self, scenario):
        graph = scenario.build_graph()
        with pytest.raises(TypeError, match="cluster"):
            compile(graph)
        plan = compile(graph, ClusterSpec.for_gpus("a100", 8))
        assert plan.scenario is None
        assert plan.predicted_iteration_ms > 0

    def test_bad_workload_rejected(self):
        with pytest.raises(TypeError, match="workload"):
            compile("gpt2-s-moe/a100x16")

    def test_legacy_entry_points_unchanged(self, scenario):
        """The facade composes, never replaces, the original surface."""
        from repro import (  # noqa: F401
            LancetOptimizer,
            SimulationConfig,
            Trainer,
            simulate_program,
        )

        graph = scenario.build_graph()
        cluster = scenario.build_cluster()
        optimized, report = LancetOptimizer(cluster).optimize(graph)
        tl = simulate_program(
            optimized,
            config=SimulationConfig(
                cluster=cluster,
                padded_a2a=False,
                routing=scenario.routing_model(),
            ),
        )
        assert tl.makespan > 0 and report.predicted_iteration_ms > 0


class TestPlanRoundTrip:
    def test_save_load_simulates_bit_identically(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "t.plan.json")
        reloaded = load_plan(path)
        t1, t2 = compiled.simulate(), reloaded.simulate()
        assert t1.makespan == t2.makespan
        assert [(iv.uid, iv.start, iv.end) for iv in t1.intervals] == [
            (iv.uid, iv.start, iv.end) for iv in t2.intervals
        ]

    def test_envelope_fields_preserved(self, compiled, tmp_path):
        reloaded = load_plan(compiled.save(tmp_path / "t.plan.json"))
        assert reloaded.fingerprint == compiled.fingerprint
        assert reloaded.predicted_iteration_ms == compiled.predicted_iteration_ms
        assert reloaded.cluster == compiled.cluster
        assert reloaded.policy == compiled.policy
        assert reloaded.framework == compiled.framework
        assert reloaded.scenario == compiled.scenario
        assert reloaded.signatures == compiled.signatures
        assert reloaded.planner == compiled.planner
        assert reloaded.report is None  # live report is not serialized

    def test_serialized_form_is_stable(self, compiled, tmp_path):
        """save(load(save(x))) produces the same document."""
        p1 = compiled.save(tmp_path / "a.plan.json")
        reloaded = load_plan(p1)
        p2 = reloaded.save(tmp_path / "b.plan.json")
        d1 = json.loads(p1.read_text())
        d2 = json.loads(p2.read_text())
        assert d1 == d2

    def test_lazy_load_materializes_on_access(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "t.plan.json")
        lazy = load_plan(path, materialize=False)
        assert not lazy.materialized
        assert lazy.predicted_iteration_ms == compiled.predicted_iteration_ms
        assert len(lazy.program) == len(compiled.program)  # decodes here
        assert lazy.materialized

    def test_annotations_views(self, compiled):
        annotations = compiled.annotations()
        assert annotations, "an optimized plan has schedule annotations"
        algos = compiled.a2a_algorithms()
        assert sum(algos.values()) > 0


class TestPlanErrors:
    def test_not_json_raises_clear_error(self, tmp_path):
        bad = tmp_path / "bad.plan.json"
        bad.write_text("{definitely not json")
        with pytest.raises(PlanError, match="not valid JSON"):
            load_plan(bad)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PlanError, match="cannot read"):
            load_plan(tmp_path / "nope.plan.json")

    def test_wrong_document_type_rejected(self, tmp_path):
        doc = tmp_path / "other.json"
        doc.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(PlanError, match="not a plan document"):
            load_plan(doc)

    def test_old_schema_major_refused(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "t.plan.json")
        obj = json.loads(path.read_text())
        obj["schema_version"] = "0.9"
        path.write_text(json.dumps(obj))
        with pytest.raises(PlanSchemaError, match="0.9"):
            load_plan(path)

    def test_future_schema_major_refused(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "t.plan.json")
        obj = json.loads(path.read_text())
        major = int(PLAN_SCHEMA_VERSION.split(".")[0])
        obj["schema_version"] = f"{major + 1}.0"
        path.write_text(json.dumps(obj))
        with pytest.raises(PlanSchemaError, match="incompatible"):
            load_plan(path)

    def test_corrupted_program_section_rejected(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "t.plan.json")
        obj = json.loads(path.read_text())
        obj["program"]["instructions"][0]["op"] = "no_such_op"
        path.write_text(json.dumps(obj))
        with pytest.raises(PlanError, match="reconstruct"):
            load_plan(path)  # materializes (and validates) eagerly

    def test_truncated_envelope_rejected(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "t.plan.json")
        obj = json.loads(path.read_text())
        del obj["cluster"]
        path.write_text(json.dumps(obj))
        with pytest.raises(PlanError, match="malformed"):
            load_plan(path)


class TestPlanStore:
    def test_put_get_round_trip(self, compiled, tmp_path):
        store = PlanStore(tmp_path)
        store.put(compiled)
        hit = store.get(
            compiled.fingerprint,
            compiled.cluster,
            compiled.policy,
            compiled.framework,
            compiled.signatures,
        )
        assert hit is not None and hit.from_store
        assert hit.predicted_iteration_ms == compiled.predicted_iteration_ms
        assert store.stats["hits"] == 1

    def test_cross_process_hit(self, compiled, tmp_path):
        """A fresh PlanStore instance (stand-in for another process)
        sees entries written by the first."""
        PlanStore(tmp_path).put(compiled)
        other = PlanStore(tmp_path)
        hit = other.get(
            compiled.fingerprint,
            compiled.cluster,
            compiled.policy,
            compiled.framework,
            compiled.signatures,
        )
        assert hit is not None
        # and it simulates identically to the in-process plan
        assert hit.simulate().makespan == compiled.simulate().makespan

    @pytest.mark.parametrize(
        "mutate",
        [
            "fingerprint",
            "cluster",
            "policy",
            "signatures",
            "framework",
        ],
    )
    def test_any_key_component_invalidates(self, compiled, tmp_path, mutate):
        """A hit must become a miss when any part of the identity moves."""
        from repro.runtime import RoutingSignature
        from repro.runtime.device import TUTEL

        store = PlanStore(tmp_path)
        store.put(compiled)
        query = {
            "fingerprint": compiled.fingerprint,
            "cluster": compiled.cluster,
            "policy": compiled.policy,
            "framework": compiled.framework,
            "signatures": compiled.signatures,
        }
        changed = {
            "fingerprint": "sha256:" + "0" * 64,
            "cluster": ClusterSpec.for_gpus("v100", 8),
            "policy": PlanPolicy(enable_hierarchical_a2a=True),
            "signatures": {0: RoutingSignature(load=(9.0,) * 8)},
            "framework": TUTEL,
        }
        query[mutate] = changed[mutate]
        assert (
            store.get(
                query["fingerprint"],
                query["cluster"],
                query["policy"],
                query["framework"],
                query["signatures"],
            )
            is None
        )
        assert store.stats["misses"] == 1

    def test_nearby_signatures_share_a_bucket(self, compiled, tmp_path):
        """Quantization: realizations that round to the same loads reuse
        the entry (same semantics as the trainer's plan cache)."""
        from repro.runtime import RoutingSignature

        store = PlanStore(tmp_path)
        base = {0: RoutingSignature(load=(1.0,) * 7 + (1.5,))}
        near = {0: RoutingSignature(load=(1.0,) * 7 + (1.5004,))}
        far = {0: RoutingSignature(load=(1.0,) * 7 + (1.52,))}
        plan = compile(
            Scenario(model="tiny", cluster="a100", num_gpus=8),
            signatures=base,
            store=store,
        )
        args = (plan.fingerprint, plan.cluster, plan.policy, plan.framework)
        assert store.get(*args, base) is not None
        assert store.get(*args, near) is not None
        assert store.get(*args, far) is None

    def test_compile_degrades_corrupt_entry_to_replan(
        self, compiled, scenario, tmp_path
    ):
        """compile() must stay usable when a fleet member corrupts (or
        schema-bumps) a store entry: warn, re-plan, and overwrite."""
        store = PlanStore(tmp_path)
        cold = compile(scenario, store=store)
        for path in store.entries():
            path.write_text("{broken")
        with pytest.warns(UserWarning, match="re-planning"):
            again = compile(scenario, store=PlanStore(tmp_path))
        assert not again.from_store
        assert again.predicted_iteration_ms == cold.predicted_iteration_ms
        # the bad entry was replaced; the next lookup is warm again
        healed = compile(scenario, store=PlanStore(tmp_path))
        assert healed.from_store

    def test_corrupt_entry_raises_not_garbage(self, compiled, tmp_path):
        store = PlanStore(tmp_path)
        path = store.put(compiled)
        path.write_text('{"schema": "repro.api/plan", "schema_version"')
        fresh = PlanStore(tmp_path)
        with pytest.raises(PlanError, match="corrupt"):
            fresh.get(
                compiled.fingerprint,
                compiled.cluster,
                compiled.policy,
                compiled.framework,
                compiled.signatures,
            )

    def test_clear_and_len(self, compiled, tmp_path):
        store = PlanStore(tmp_path)
        store.put(compiled)
        assert len(store) == 1
        store.clear()
        assert len(store) == 0


class TestWarmCompileSkipsPlanner:
    def test_store_hit_never_constructs_an_optimizer(
        self, scenario, tmp_path, monkeypatch
    ):
        """The acceptance criterion behind `num_cost_evals == 0`: a warm
        compile must not even instantiate LancetOptimizer."""
        store = PlanStore(tmp_path)
        cold = compile(scenario, store=store)
        assert not cold.from_store

        import repro.api.compiler as compile_mod

        def boom(*a, **k):  # pragma: no cover - would mean a planner run
            raise AssertionError("planner ran on a warm store lookup")

        monkeypatch.setattr(compile_mod, "LancetOptimizer", boom)
        warm = compile(scenario, store=PlanStore(tmp_path))
        assert warm.from_store
        assert warm.predicted_iteration_ms == cold.predicted_iteration_ms
        assert warm.simulate().makespan == cold.simulate().makespan

    def test_override_compiles_never_enter_the_scenario_index(
        self, scenario, tmp_path
    ):
        """A plan compiled with a cluster (or signature) override is not
        what a plain scenario compile means: it must not be served from
        the scenario index."""
        store = PlanStore(tmp_path)
        other_cluster = ClusterSpec.for_gpus("v100", 8)
        overridden = compile(scenario, other_cluster, store=store)
        assert overridden.cluster == other_cluster

        plain = compile(scenario, store=store)
        assert not plain.from_store
        assert plain.cluster == scenario.build_cluster()
        # and the pure compile does get indexed for next time
        warm = compile(scenario, store=PlanStore(tmp_path))
        assert warm.from_store
        assert warm.cluster == scenario.build_cluster()

    def test_fingerprint_path_also_warm(self, scenario, tmp_path, monkeypatch):
        """Graph workloads (no scenario index) still hit via the
        canonical (fingerprint, cluster, policy, signatures) key."""
        store = PlanStore(tmp_path)
        graph = scenario.build_graph()
        cluster = scenario.build_cluster()
        cold = compile(graph, cluster, store=store)

        import repro.api.compiler as compile_mod

        monkeypatch.setattr(
            compile_mod,
            "LancetOptimizer",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("planner ran")),
        )
        warm = compile(scenario.build_graph(), cluster, store=PlanStore(tmp_path))
        assert warm.from_store
        assert warm.predicted_iteration_ms == cold.predicted_iteration_ms


class TestTrainerIntegration:
    def test_trainer_accepts_plan(self, compiled):
        from repro import Trainer

        graph = compiled.scenario.build_graph()
        direct = Trainer(graph, program=compiled.program, seed=0)
        via_plan = Trainer(graph, program=compiled, seed=0)
        a = direct.step().losses
        b = via_plan.step().losses
        assert a == b

    def test_mismatched_plan_rejected(self, compiled, scenario):
        """A plan compiled for a different graph (or cluster) must be
        refused up front, not silently installed."""
        from repro import Trainer
        from repro.core import LancetOptimizer
        from repro.train import ReoptimizingTrainer

        other_graph = scenario.with_(batch=8).build_graph()
        with pytest.raises(ValueError, match="different graph"):
            Trainer(other_graph, program=compiled)
        with pytest.raises(ValueError, match="different graph"):
            ReoptimizingTrainer(
                other_graph,
                LancetOptimizer(scenario.build_cluster()),
                plan=compiled,
            )
        with pytest.raises(ValueError, match="cluster"):
            ReoptimizingTrainer(
                scenario.build_graph(),
                LancetOptimizer(ClusterSpec.for_gpus("v100", 8)),
                plan=compiled,
            )

    def test_reoptimizing_trainer_starts_from_plan(self, compiled):
        from repro.core import LancetOptimizer
        from repro.train import ReoptimizingTrainer

        graph = compiled.scenario.build_graph()
        cluster = compiled.scenario.build_cluster()
        tr = ReoptimizingTrainer(
            graph,
            LancetOptimizer(cluster),
            plan=compiled,
            drift_threshold=10.0,  # never re-plan in this test
            seed=0,
        )
        assert tr.program is compiled.program
        assert tr.predicted_ms == compiled.predicted_iteration_ms
        assert tr.plan_signatures == (compiled.signatures or {})
        tr.step()
        assert tr.num_reoptimizations == 0

    def test_corrupt_store_entry_degrades_to_replan(self, tmp_path):
        """A shared-cache read failure must never abort training: the
        trainer treats a corrupt entry as a miss and re-plans (which
        also overwrites the bad entry)."""
        from repro import GPT2MoEConfig, build_training_graph
        from repro.core import LancetOptimizer
        from repro.train import ReoptimizingTrainer

        cluster = ClusterSpec.for_gpus("a100", 2)
        store = PlanStore(tmp_path)
        graph = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        a = ReoptimizingTrainer(
            graph,
            LancetOptimizer(cluster),
            drift_threshold=0.0,
            seed=0,
            store=store,
        )
        a.run(2)
        assert len(store) >= 1
        for path in store.entries():
            path.write_text("garbage, not a plan")

        graph_b = build_training_graph(
            GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
        )
        b = ReoptimizingTrainer(
            graph_b,
            LancetOptimizer(cluster),
            drift_threshold=0.0,
            seed=0,
            store=PlanStore(tmp_path),
        )
        b.run(2)  # must not raise
        assert not any(e.store_hit for e in b.events)
        assert a.loss_curve() == b.loss_curve()

    def test_fleet_shares_plans_through_store(self, tmp_path):
        """Trainer A re-plans and publishes; trainer B re-uses A's plan
        from the store (store_hit) instead of running its own planner."""
        from repro import GPT2MoEConfig, build_training_graph
        from repro.core import LancetOptimizer
        from repro.train import ReoptimizingTrainer

        cluster = ClusterSpec.for_gpus("a100", 2)
        store = PlanStore(tmp_path)

        def make_trainer():
            graph = build_training_graph(
                GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2
            )
            return ReoptimizingTrainer(
                graph,
                LancetOptimizer(cluster),
                drift_threshold=0.0,  # re-plan every step
                seed=0,
                store=store,
            )

        a = make_trainer()
        a.run(2)
        planned = [e for e in a.events if not e.cache_hit and not e.store_hit]
        assert planned, "trainer A must have planned at least once"
        assert len(store) >= 1

        b = make_trainer()
        b.run(2)
        hits = [e for e in b.events if e.store_hit]
        assert hits, "trainer B must reuse trainer A's published plans"
        assert all(e.wall_seconds == 0.0 for e in hits)
        # identical trajectory regardless of where the plan came from
        assert a.loss_curve() == b.loss_curve()
