"""Tests for timeline accounting and the two-stream timed simulator."""

import numpy as np
import pytest

from repro.ir import DType, Program, Stream, TensorType
from repro.runtime import (
    ClusterSpec,
    GroundTruthCost,
    SimulationConfig,
    SyntheticRoutingModel,
    Timeline,
    UniformRoutingModel,
    intersect_length,
    merge_intervals,
    simulate_program,
    total_length,
)
from repro.runtime.timeline import Interval


class TestIntervalMath:
    def test_merge(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_total_length(self):
        assert total_length([(0, 3), (5, 6)]) == 4

    def test_intersect(self):
        a = [(0, 4), (6, 8)]
        b = [(2, 7)]
        assert intersect_length(a, b) == 3  # [2,4) + [6,7)


def iv(uid, op, stream, start, end, kind="forward"):
    return Interval(uid=uid, op=op, kind=kind, stream=stream, start=start, end=end)


class TestTimeline:
    def test_breakdown_accounting(self):
        tl = Timeline(
            [
                iv(0, "matmul", Stream.COMPUTE, 0, 4),
                iv(1, "all_to_all", Stream.COMM, 2, 6),
            ]
        )
        bd = tl.breakdown()
        assert bd.makespan == 6
        assert bd.overlapped == 2
        assert bd.comp_only == 2
        assert bd.comm_only == 2
        assert bd.idle == 0
        assert bd.comm_total == 4 and bd.comp_total == 4

    def test_exposed_time(self):
        tl = Timeline(
            [
                iv(0, "matmul", Stream.COMPUTE, 0, 4),
                iv(1, "all_to_all", Stream.COMM, 2, 6),
            ]
        )
        assert tl.exposed_time_of({"all_to_all"}) == 2

    def test_per_op_totals(self):
        tl = Timeline(
            [
                iv(0, "matmul", Stream.COMPUTE, 0, 4),
                iv(1, "matmul", Stream.COMPUTE, 4, 5),
            ]
        )
        assert tl.per_op_totals() == {"matmul": 5}


def two_stream_program():
    """comm op independent of a following compute op -> they overlap."""
    p = Program("olap")
    a = p.add_input(TensorType((256, 256), DType.F16), "a")
    b = p.add_input(TensorType((256, 256), DType.F16), "b")
    (c,) = p.add("allreduce", [a.id])
    (d,) = p.add("gelu", [b.id])  # independent of the allreduce
    (e,) = p.add("add", [c.id, d.id])  # depends on both
    p.outputs.append(e.id)
    return p


class TestSimulator:
    @pytest.fixture()
    def config(self):
        return SimulationConfig(
            cluster=ClusterSpec.p4de(2), routing=UniformRoutingModel()
        )

    def test_independent_ops_overlap(self, config):
        tl = simulate_program(two_stream_program(), config=config)
        bd = tl.breakdown()
        assert bd.overlapped > 0

    def test_dependent_op_waits(self, config):
        tl = simulate_program(two_stream_program(), config=config)
        by_op = {ivl.op: ivl for ivl in tl.intervals}
        assert by_op["add"].start >= by_op["allreduce"].end
        assert by_op["add"].start >= by_op["gelu"].end

    def test_deterministic(self, config, tiny_graph):
        t1 = simulate_program(tiny_graph.program, config=config).makespan
        t2 = simulate_program(tiny_graph.program, config=config).makespan
        assert t1 == t2

    def test_irregular_beats_padded_at_bandwidth_scale(self):
        """For large buffers the irregular A2A moves fewer bytes than the
        padded one and wins; at tiny (latency-bound) sizes the two-phase
        size exchange makes it lose.  Both regimes are intentional."""
        cluster = ClusterSpec.p4de(2)
        g, e, c, h = cluster.num_gpus, 32, 480, 768
        m = SyntheticRoutingModel(seed=0)
        pair = m.pair_bytes_for("L", g, e, tokens_per_device=12288, capacity=c,
                                bytes_per_token=2 * h)
        padded_bytes = e * c * h * 2
        assert cluster.a2a_time_ms_irregular(pair) < cluster.a2a_time_ms(
            padded_bytes
        )
        # latency-bound regime: two-phase overhead dominates
        tiny_pair = np.full((g, g), 8.0)
        assert cluster.a2a_time_ms_irregular(tiny_pair) > cluster.a2a_time_ms(
            8.0 * g
        )

    def test_every_instruction_simulated(self, config, tiny_graph):
        tl = simulate_program(tiny_graph.program, config=config)
        assert len(tl.intervals) == len(tiny_graph.program.instructions)

    def test_compute_cache_hit(self, config, tiny_graph):
        cost = GroundTruthCost(config)
        simulate_program(tiny_graph.program, cost=cost)
        n = len(cost._compute_cache)
        simulate_program(tiny_graph.program, cost=cost)
        assert len(cost._compute_cache) == n  # second run fully cached


class TestRoutingModels:
    def test_synthetic_counts_capped(self):
        m = SyntheticRoutingModel(seed=0, concentration=0.5)
        counts = m.counts_for("k", 4, 8, tokens_per_device=100, capacity=16)
        assert counts.shape == (4, 8)
        assert counts.max() <= 16

    def test_synthetic_cached_per_key(self):
        m = SyntheticRoutingModel(seed=0)
        a = m.counts_for("layer1", 4, 8, 100, 16)
        b = m.counts_for("layer1", 4, 8, 100, 16)
        assert np.array_equal(a, b)
        m.clear()
        c = m.counts_for("layer1", 4, 8, 100, 16)
        assert np.array_equal(a, c)  # deterministic in seed too

    def test_fraction_scales_bytes(self):
        m = SyntheticRoutingModel(seed=3)
        full = m.pair_bytes_for("x", 4, 8, 1000, 200, 64, fraction=1.0)
        half = m.pair_bytes_for("x", 4, 8, 1000, 200, 64, fraction=0.5)
        assert half.sum() < full.sum()

    def test_uniform_model(self):
        m = UniformRoutingModel()
        counts = m.counts_for("k", 2, 4, 64, 32)
        assert (counts == 16).all()
