"""Dynamic-programming partition-range selection (paper Sec. 5.1).

``T(n) = min_{i<n} ( T(i) + min_k P(i, n, k) )`` over the forward
instruction sequence, where ``P(i, n, k)`` is the pipelined cost of
instructions i..n split into k parts (from the pipeline scheduler) and
``T`` accumulates the optimal prefix time.

Exactly as the paper prescribes for tractability:

* consecutive instructions are grouped by execution time (group size
  gamma) and the DP runs over groups;
* the candidate range length is capped (iota);
* the number of partitions k is capped (rho) -- and only ranges that
  contain an all-to-all are worth pipelining, so everything else falls
  back to the k=1 sequential cost.

This module is the *fast* planner: the online re-optimization loop
re-runs it on every routing-drift event, so its latency sits on the
training critical path (the optimization-time concern of paper Sec. 6 /
Fig. 15).  It computes exactly the same function as the retained naive
implementation (:mod:`.dp_reference`), but

* outside-consumer queries use a precomputed first/last-use index
  (:class:`ConsumerIndex`) instead of rescanning the whole program per
  candidate range;
* the k=1 relaxation is evaluated vectorized over candidate ``i`` with
  numpy (candidates past the window's last all-to-all group reduce to a
  single ``argmin``);
* candidate pricing is hoisted out of the recurrence (``P(i, n, k)`` is
  a pure range property, independent of the DP tables), and every
  pipeline simulation the caches miss runs in one lockstep numpy batch
  (:func:`repro.runtime.batch.simulate_lanes`) instead of one Python
  recurrence per candidate;
* everything that does not depend on the routing signature -- grouping,
  axis inference, feasible-k limits, stage decompositions, compute chunk
  durations, boundary overheads -- persists across re-plans in a
  :class:`PlannerState`, so a warm re-plan only re-prices the
  all-to-alls and re-runs the two-stream recurrences they invalidate.

Bit-identity with the reference is load-bearing (it is what lets the
re-optimizing trainer swap between cold and warm plans freely) and is
enforced by ``tests/test_fast_replan.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...ir import InstrKind, Program
from ..cache import LRUCache
from ..cost_model import CostEstimator
from .axis_inference import InferenceResult, infer_axes
from .pipeline import PendingCost, PlanCaches, RangeContext, resolve_pending


@dataclass(frozen=True)
class LancetHyperParams:
    """The three optimization-speed knobs of paper Sec. 6.

    Attributes
    ----------
    max_partitions:
        rho -- the largest number of partitions k considered.
    group_ms:
        gamma -- target execution time per instruction group.  None picks
        it so that ~5 groups separate consecutive MoE layers (the paper's
        experimental setting).
    max_range_groups:
        iota -- the longest candidate range, in groups.  None derives it
        from the spacing between MoE layers (one pipeline per MoE layer).
    """

    max_partitions: int = 8
    group_ms: float | None = None
    max_range_groups: int | None = None

    @property
    def k_candidates(self) -> list[int]:
        """Partition counts to evaluate (powers of two up to rho)."""
        ks = []
        k = 2
        while k <= self.max_partitions:
            ks.append(k)
            k *= 2
        return ks

    @property
    def key(self) -> tuple:
        """Identity tuple for warm-start validation."""
        return (self.max_partitions, self.group_ms, self.max_range_groups)


#: ops that anchor the MoE pipeline structure; each gets its own group so
#: candidate ranges can start/stop exactly at these boundaries
STRUCTURAL_OPS = frozenset(
    {"routing", "moe_dispatch", "all_to_all", "expert_ffn", "moe_combine"}
)


@dataclass
class Group:
    """A run of consecutive forward instructions treated atomically."""

    start: int  # instruction position (inclusive)
    end: int  # instruction position (exclusive)
    time_ms: float
    has_a2a: bool


@dataclass
class RangePlan:
    """One chosen partition range."""

    start: int  # instruction position (inclusive)
    end: int  # instruction position (exclusive)
    parts: int
    axes: InferenceResult
    predicted_ms: float
    sequential_ms: float


@dataclass
class DPResult:
    """Outcome of partition planning."""

    plans: list[RangePlan] = field(default_factory=list)
    baseline_fwd_ms: float = 0.0
    optimized_fwd_ms: float = 0.0
    num_groups: int = 0
    #: logical candidate evaluations P(i, n, k) the DP considered; the
    #: perf-budget tests pin this, cached or not
    num_cost_evals: int = 0
    #: two-stream pipeline simulations actually executed (cache misses);
    #: on a warm re-plan this is what the planner still pays for
    num_pipeline_sims: int = 0
    #: True when the DP priced all-to-alls against observed routing
    #: signatures rather than the uniform static-shape approximation
    skew_aware: bool = False
    #: True when the plan reused a valid :class:`PlannerState`
    warm_start: bool = False


def forward_length(program: Program) -> int:
    """Length of the forward-pass prefix of the program."""
    for pos, ins in enumerate(program.instructions):
        if ins.kind in (InstrKind.DX, InstrKind.DW, InstrKind.OPTIMIZER):
            return pos
    return len(program.instructions)


def build_groups(
    program: Program,
    fwd_end: int,
    costs: CostEstimator,
    group_ms: float,
) -> list[Group]:
    """Group consecutive forward instructions by execution time.

    MoE-structural ops are isolated in their own groups so that ranges
    can align with the dispatch/all-to-all/expert/combine boundaries.
    """
    groups: list[Group] = []
    cur_start = None
    cur_time = 0.0

    def close(endpos: int) -> None:
        nonlocal cur_start, cur_time
        if cur_start is not None:
            groups.append(Group(cur_start, endpos, cur_time, False))
            cur_start = None
            cur_time = 0.0

    for pos in range(fwd_end):
        ins = program.instructions[pos]
        t = costs.duration_ms(ins, program)
        if ins.op in STRUCTURAL_OPS:
            close(pos)
            groups.append(
                Group(pos, pos + 1, t, has_a2a=(ins.op == "all_to_all"))
            )
            continue
        if cur_start is None:
            cur_start = pos
        cur_time += t
        if cur_time >= group_ms:
            close(pos + 1)
    close(fwd_end)
    return groups


def _auto_group_ms(
    program: Program, fwd_end: int, costs: CostEstimator
) -> float:
    """Pick gamma so ~5 groups separate consecutive MoE layers (Sec. 7)."""
    a2a_pos = [
        p
        for p in range(fwd_end)
        if program.instructions[p].op == "all_to_all"
    ]
    if not a2a_pos:
        total = sum(
            costs.duration_ms(program.instructions[p], program)
            for p in range(fwd_end)
        )
        return max(total / 10.0, 0.05)
    # time of non-MoE instructions between consecutive MoE layers
    first = a2a_pos[0]
    span = sum(
        costs.duration_ms(program.instructions[p], program)
        for p in range(first)
        if program.instructions[p].op not in STRUCTURAL_OPS
    )
    return max(span / 5.0, 0.02)


def max_range_for(groups: list[Group], params: LancetHyperParams) -> int:
    """The iota cap in groups (one pipeline per MoE layer by default)."""
    ng = len(groups)
    if params.max_range_groups is not None:
        max_range = params.max_range_groups
    else:
        # one pipeline per MoE layer: cap ranges at the group distance
        # between consecutive forward all-to-alls
        a2a_groups = [gi for gi, g in enumerate(groups) if g.has_a2a]
        if len(a2a_groups) >= 3:
            max_range = a2a_groups[2] - a2a_groups[0] + 2
        else:
            max_range = ng
    return max(3, min(max_range, ng))


class ConsumerIndex:
    """O(1) "is this value consumed outside [i, n)" queries.

    Replaces the naive planner's per-range O(|program|) rescan: one pass
    records each value's first and last use position (as an input), plus
    the always-outside set (program outputs and gradients).  A value is
    consumed outside ``[i_pos, n_pos)`` iff it is in the base set or has
    a use before ``i_pos`` or at/after ``n_pos``.  Membership is
    invariant under reordering of the instructions outside the range, so
    the index survives the dW-schedule pass's backward shuffling.
    """

    __slots__ = ("base", "first_use", "last_use")

    def __init__(self, program: Program) -> None:
        self.base = set(program.outputs) | set(program.grads.values())
        self.first_use: dict[int, int] = {}
        self.last_use: dict[int, int] = {}
        for pos, ins in enumerate(program.instructions):
            for v in ins.inputs:
                if v not in self.first_use:
                    self.first_use[v] = pos
                self.last_use[v] = pos

    def view(self, i_pos: int, n_pos: int) -> "_ConsumersView":
        return _ConsumersView(self, i_pos, n_pos)


class _ConsumersView:
    """Set-like membership facade for one candidate range."""

    __slots__ = ("index", "i_pos", "n_pos")

    def __init__(self, index: ConsumerIndex, i_pos: int, n_pos: int) -> None:
        self.index = index
        self.i_pos = i_pos
        self.n_pos = n_pos

    def __contains__(self, vid: int) -> bool:
        idx = self.index
        if vid in idx.base:
            return True
        first = idx.first_use.get(vid)
        if first is None:
            return False
        return first < self.i_pos or idx.last_use[vid] >= self.n_pos


#: cached marker for "axis inference proved this range unpartitionable"
_INFEASIBLE = object()
#: cache-miss sentinel
_MISS = object()


@dataclass
class PlannerState:
    """Warm-start state threaded through consecutive ``plan_partitions``
    calls on the same program.

    Everything held here is independent of the routing signature:

    * the instruction grouping (boundaries and non-collective group
      times -- only all-to-all groups are re-priced per plan);
    * per-range :class:`RangeContext` objects (axis inference, stage
      decomposition, dependency lists, feasible-k limits);
    * the :class:`ConsumerIndex`;
    * the :class:`PlanCaches` (compute chunk durations, boundary
      overheads, and pipeline simulations keyed by realized a2a chunk
      durations, which self-invalidate under drift).

    A state validates itself against a structural fingerprint of the
    program (forward prefix order + backward instruction multiset) and
    the hyper-parameter key; any mismatch falls back to a cold rebuild,
    so handing a stale state to the planner can cost time but never
    correctness.
    """

    fingerprint: tuple | None = None
    params_key: tuple | None = None
    group_ms: float = 0.0
    groups: list[Group] = field(default_factory=list)
    max_range: int = 0
    #: group times with all-to-all entries as priced at build time;
    #: refreshed per plan via :meth:`group_times`
    base_group_times: np.ndarray | None = None
    #: (group index, instruction position) of every all-to-all group
    a2a_groups: list[tuple[int, int]] = field(default_factory=list)
    contexts: LRUCache = field(
        default_factory=lambda: LRUCache(name="planner-range-ctx")
    )
    caches: PlanCaches = field(default_factory=PlanCaches)
    consumers: ConsumerIndex | None = None
    cold_plans: int = 0
    warm_plans: int = 0

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Drop all cached structure (program changed)."""
        self.fingerprint = None
        self.params_key = None
        self.group_ms = 0.0
        self.groups = []
        self.max_range = 0
        self.base_group_times = None
        self.a2a_groups = []
        self.contexts.clear()
        self.caches.chunk.clear()
        self.caches.overhead.clear()
        self.caches.sim.clear()
        self.consumers = None

    def prepare(
        self,
        program: Program,
        costs: CostEstimator,
        params: LancetHyperParams,
        fwd_end: int,
    ) -> bool:
        """Validate against ``program``/``params``; (re)build what is
        stale.  Returns True when the grouping and range caches were
        reused (a warm re-plan)."""
        fp = _program_fingerprint(program, fwd_end)
        warm = fp == self.fingerprint
        if not warm:
            self.reset()
            self.fingerprint = fp
            self.consumers = ConsumerIndex(program)
        if not warm or params.key != self.params_key:
            # grouping depends on gamma/iota; range contexts do not
            # (they key on instruction positions), so a pure
            # hyper-parameter change keeps them
            self.params_key = params.key
            self.group_ms = params.group_ms or _auto_group_ms(
                program, fwd_end, costs
            )
            self.groups = build_groups(program, fwd_end, costs, self.group_ms)
            self.max_range = max_range_for(self.groups, params)
            self.base_group_times = np.asarray(
                [g.time_ms for g in self.groups], dtype=np.float64
            )
            self.a2a_groups = [
                (gi, g.start)
                for gi, g in enumerate(self.groups)
                if g.has_a2a
            ]
        if warm:
            self.warm_plans += 1
        else:
            self.cold_plans += 1
        return warm

    # -- per-plan queries --------------------------------------------------

    def group_times(self, program: Program, costs: CostEstimator) -> np.ndarray:
        """Current group durations: cached times with every all-to-all
        group re-priced against the estimator's installed signature (the
        only signature-dependent entries)."""
        times = self.base_group_times.copy()
        for gi, pos in self.a2a_groups:
            times[gi] = costs.duration_ms(program.instructions[pos], program)
        return times

    def context(
        self, program: Program, i_pos: int, n_pos: int
    ) -> RangeContext | None:
        """The (cached) range context, or None when axis inference proved
        the range unpartitionable."""
        key = (i_pos, n_pos)
        hit = self.contexts.get(key, _MISS)
        if hit is not _MISS:
            return None if hit is _INFEASIBLE else hit
        instrs = program.instructions[i_pos:n_pos]
        axes = infer_axes(instrs, program)
        if axes is None:
            self.contexts.put(key, _INFEASIBLE)
            return None
        ctx = RangeContext(program, instrs, axes, start=i_pos, end=n_pos)
        self.contexts.put(key, ctx)
        return ctx

    def stats(self) -> dict:
        """Counter snapshot for reports and benchmarks."""
        out = {"range_ctx": self.contexts.stats()}
        out.update(self.caches.stats())
        out["cold_plans"] = self.cold_plans
        out["warm_plans"] = self.warm_plans
        return out


def _program_fingerprint(program: Program, fwd_end: int) -> tuple:
    """Structural identity of a program for warm-start validation.

    The forward prefix must match position-for-position (the caches key
    on instruction positions); the backward half only as a multiset
    (the dW-schedule pass reorders it between re-plans, which cannot
    change any outside-consumer answer for a forward range).
    """
    ins = program.instructions
    return (
        fwd_end,
        tuple(i.uid for i in ins[:fwd_end]),
        hash(tuple(sorted(i.uid for i in ins[fwd_end:]))),
        hash(
            (
                tuple(program.outputs),
                tuple(sorted(program.grads.items())),
            )
        ),
    )


def plan_partitions(
    program: Program,
    costs: CostEstimator,
    params: LancetHyperParams = LancetHyperParams(),
    state: PlannerState | None = None,
) -> DPResult:
    """Run the DP over the forward pass and return the chosen ranges.

    Pass a :class:`PlannerState` to plan incrementally: consecutive calls
    on the same program (e.g. re-plans after routing drift) reuse every
    signature-independent table and only re-price what the new signature
    invalidates.  Results are bit-identical to
    :func:`~repro.core.partition.dp_reference.plan_partitions_reference`
    either way.
    """
    if state is None:
        state = PlannerState()  # throwaway: cold plan
    fwd_end = forward_length(program)
    warm = state.prepare(program, costs, params, fwd_end)

    groups = state.groups
    ng = len(groups)
    result = DPResult(
        num_groups=ng,
        skew_aware=bool(costs.signatures),
        warm_start=warm,
    )
    if ng == 0:
        return result

    max_range = state.max_range
    caches = state.caches
    consumers = state.consumers
    k_candidates = params.k_candidates

    times = state.group_times(program, costs)
    seq_prefix = np.concatenate([[0.0], np.cumsum(times)])

    # last all-to-all group index strictly before n (-1 when none): the
    # pipeline candidates at n are exactly i in [lo, last_a2a[n]]
    last_a2a = np.empty(ng + 1, dtype=np.int64)
    last_a2a[0] = -1
    cur = -1
    for n in range(1, ng + 1):
        if groups[n - 1].has_a2a:
            cur = n - 1
        last_a2a[n] = cur

    # DP tables
    T = np.full(ng + 1, np.inf)
    T[0] = 0.0
    parent: list[tuple[int, int, RangePlan | None]] = [(0, 0, None)] * (ng + 1)

    sims_before = caches.sim.misses

    # -- phase A: enumerate every pipeline candidate P(i, n, k) in DP
    # order and price it through the caches.  Candidate costs do not
    # depend on the DP tables (P is a pure range property), so pricing
    # can be hoisted out of the recurrence wholesale; sim-cache misses
    # stay unevaluated for the batch.  Every candidate's (i_pos, n_pos,
    # k) is distinct, so deferring the puts cannot turn a would-be hit
    # into a miss within this plan.
    pending: dict[tuple[int, int, int], PendingCost] = {}
    missing: list[PendingCost] = []
    for n in range(1, ng + 1):
        lo = n - max_range
        if lo < 0:
            lo = 0
        gl = int(last_a2a[n])
        pipe_end = gl + 1 if gl >= lo else lo
        if pipe_end <= lo:
            continue
        n_pos = groups[n - 1].end
        for i in range(lo, pipe_end):
            i_pos = groups[i].start
            ctx = state.context(program, i_pos, n_pos)
            if ctx is None:
                continue
            view = consumers.view(i_pos, n_pos)
            for k in k_candidates:
                if k > ctx.k_limit:
                    continue
                result.num_cost_evals += 1
                pend = ctx.begin_cost(k, costs, view, caches)
                pending[(i, n, k)] = pend
                if pend.pipeline_ms is None:
                    missing.append(pend)

    # -- phase B: one lockstep batch over all owed simulations (the
    # scalar loop would have run one Python recurrence per miss)
    resolve_pending(missing, caches)

    # -- phase C: the DP recurrence itself, over precomputed candidate
    # costs; update order -- and therefore every strict-< tie -- is
    # exactly the fused loop's
    for n in range(1, ng + 1):
        lo = n - max_range
        if lo < 0:
            lo = 0
        # k = 1 candidates, vectorized over i: T[i] + (S[n] - S[i]).
        # Elementwise float64 ops, so every entry carries exactly the
        # bits the reference's scalar expression produces.
        cand = T[lo:n] + (seq_prefix[n] - seq_prefix[lo:n])
        gl = int(last_a2a[n])
        # i < pipe_end have an all-to-all inside [i, n) and may pipeline;
        # i >= pipe_end are pure k=1 candidates
        pipe_end = gl + 1 if gl >= lo else lo

        if pipe_end > lo:
            n_pos = groups[n - 1].end
            for i in range(lo, pipe_end):
                c = cand[i - lo]
                if c < T[n]:
                    T[n] = c
                    parent[n] = (i, 1, None)
                i_pos = groups[i].start
                for k in k_candidates:
                    pend = pending.get((i, n, k))
                    if pend is None:
                        continue
                    cost = pend.cost()
                    if T[i] + cost.total_ms < T[n]:
                        plan = RangePlan(
                            start=i_pos,
                            end=n_pos,
                            parts=k,
                            axes=pend.ctx.axes,
                            predicted_ms=cost.total_ms,
                            sequential_ms=float(
                                seq_prefix[n] - seq_prefix[i]
                            ),
                        )
                        T[n] = T[i] + cost.total_ms
                        parent[n] = (i, k, plan)

        if pipe_end < n:
            # pure-sequential tail: the reference's ascending strict-<
            # scan keeps the first minimum, exactly argmin's tie rule
            tail = cand[pipe_end - lo :]
            j = int(np.argmin(tail))
            if tail[j] < T[n]:
                T[n] = tail[j]
                parent[n] = (pipe_end + j, 1, None)

    result.num_pipeline_sims = caches.sim.misses - sims_before

    # reconstruct the chosen ranges
    plans: list[RangePlan] = []
    n = ng
    while n > 0:
        i, _k, plan = parent[n]
        if plan is not None:
            plans.append(plan)
        n = i
    plans.reverse()

    result.plans = plans
    result.baseline_fwd_ms = float(seq_prefix[ng])
    result.optimized_fwd_ms = float(T[ng])
    return result
