"""Figure 2: execution-time breakdown and overlap upper bounds.

Paper: GPT-2 MoE with Tutel and DeepSpeed on p3dn (V100), 16 and 32 GPUs.
Three bars per framework: *Orig.* (unoptimized), *Curr.* (upper bound of
current methods: expert computation completely hidden by all-to-all) and
*Opt.* (ideal: all-to-all fully overlapped by computation).  The headline
observation: all-to-all time far exceeds expert time, so Curr.'s ceiling
is low while Opt.'s is high.
"""

from __future__ import annotations

from ...models import build_training_graph
from ...runtime import DEEPSPEED, TUTEL, ClusterSpec
from ..formatting import format_table
from ..harness import EXPERT_OPS_ALL, model_by_name, paper_batch
from .common import FigureResult, simulate

PROFILES = {"tutel": TUTEL, "deepspeed": DEEPSPEED}


def run(gpu_counts=(16, 32), cluster_kind: str = "v100") -> FigureResult:
    """Reproduce the Fig. 2 breakdown (values in ms)."""
    rows = []
    for gpus in gpu_counts:
        cfg = model_by_name("GPT2-S-MoE")
        batch = paper_batch(cluster_kind, "GPT2-S-MoE")
        graph = build_training_graph(cfg, batch=batch, seq=512, num_gpus=gpus)
        cluster = ClusterSpec.for_gpus(cluster_kind, gpus)
        for fw, profile in PROFILES.items():
            tl = simulate(graph.program, cluster, profile)
            total = tl.makespan
            a2a = tl.total_time_of({"all_to_all"})
            expert = tl.total_time_of(EXPERT_OPS_ALL)
            others = total - a2a - expert
            comp_total = tl.breakdown().comp_total
            # Curr.: expert computation completely hidden by all-to-all
            curr = total - min(expert, a2a)
            # Opt.: all-to-all fully overlapped by computation
            opt = total - min(a2a, comp_total)
            rows.append(
                {
                    "gpus": gpus,
                    "framework": fw,
                    "a2a_ms": a2a,
                    "expert_ms": expert,
                    "others_ms": others,
                    "orig_ms": total,
                    "curr_ms": curr,
                    "opt_ms": opt,
                    "curr_speedup": total / curr,
                    "opt_speedup": total / opt,
                    "a2a_over_expert": a2a / expert,
                }
            )

    table = format_table(
        [
            "GPUs",
            "Framework",
            "A2A",
            "Expert",
            "Others",
            "Orig.",
            "Curr.",
            "Opt.",
            "Curr x",
            "Opt x",
        ],
        [
            [
                r["gpus"],
                r["framework"],
                r["a2a_ms"],
                r["expert_ms"],
                r["others_ms"],
                r["orig_ms"],
                r["curr_ms"],
                r["opt_ms"],
                r["curr_speedup"],
                r["opt_speedup"],
            ]
            for r in rows
        ],
        title="Fig. 2 - breakdown + overlap upper bounds (GPT2-S-MoE, "
        f"{cluster_kind})",
    )
    notes = {
        "paper_curr_speedups": "1.09x-1.16x",
        "paper_opt_speedups": "1.29x-1.48x",
        "paper_a2a_over_expert": "up to 3.36x",
        "max_a2a_over_expert": max(r["a2a_over_expert"] for r in rows),
    }
    return FigureResult("fig02", "breakdown and overlap bounds", rows, table, notes)
