"""Operator registry for the Lancet IR.

Each operator is described by an :class:`OpSpec` bundling:

* output-shape inference (the IR is shape-static),
* an analytic cost model (FLOPs and memory bytes touched) used by the
  caching op profiler (paper Sec. 3),
* the number of GPU kernels the op launches (partitioned ops pay per-kernel
  launch overhead -- paper Challenge 2),
* which execution *stream* it occupies (computation vs communication).

The set of operators covers the full forward + backward + optimizer graph of
a GPT-2 MoE model: dense transformer ops, the MoE block (gate softmax,
routing, dispatch, all-to-all, grouped expert FFN, combine), the special
capacity-passing partitioned gate (paper Fig. 5c), pipeline plumbing
(split/concat) and gradient synchronization (all-reduce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .tensor import Dim, DType, TensorType, route_type


class Stream:
    """Execution stream identifiers (GPU compute stream vs NCCL stream)."""

    COMPUTE = "compute"
    COMM = "comm"


ShapeFn = Callable[[list[TensorType], dict], list[TensorType]]
CostFn = Callable[[list[TensorType], list[TensorType], dict], float]


@dataclass(frozen=True)
class OpSpec:
    """Static description of one operator type."""

    name: str
    infer: ShapeFn
    flops: CostFn
    membytes: CostFn
    kernels: int = 1
    stream: str = Stream.COMPUTE
    #: True for ops whose outputs alias/permute inputs without math
    #: (split/concat); they cost memory traffic but no FLOPs.
    is_data_movement: bool = False

    @property
    def is_comm(self) -> bool:
        """Whether this op runs on the communication stream."""
        return self.stream == Stream.COMM


_REGISTRY: dict[str, OpSpec] = {}


def register(spec: OpSpec) -> OpSpec:
    """Add an op to the global registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"op {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    """Look up an op by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown op {name!r}") from None


def all_ops() -> dict[str, OpSpec]:
    """A copy of the full registry."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Cost helpers
# ---------------------------------------------------------------------------


def _io_bytes(ins: list[TensorType], outs: list[TensorType], attrs: dict) -> float:
    """Total bytes of all inputs and outputs (memory-bound op model)."""
    return float(sum(t.nbytes for t in ins) + sum(t.nbytes for t in outs))


def _zero_flops(ins, outs, attrs) -> float:
    return 0.0


def _elementwise_flops(ins, outs, attrs) -> float:
    """One FLOP per output element (activation functions etc.)."""
    return float(sum(t.numel for t in outs))


# ---------------------------------------------------------------------------
# Dense / transformer ops
# ---------------------------------------------------------------------------


def _infer_matmul(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    x, w = ins
    if x.shape[-1] != w.shape[0]:
        raise ValueError(f"matmul inner dim mismatch: {x} @ {w}")
    out_shape = x.shape[:-1] + (w.shape[1],)
    out_dims = x.dims[:-1] + (w.dims[1],)
    return [TensorType(out_shape, x.dtype, out_dims)]


def _matmul_flops(ins, outs, attrs) -> float:
    x, w = ins
    m = math.prod(x.shape[:-1])
    k = x.shape[-1]
    n = w.shape[1]
    return 2.0 * m * k * n


register(OpSpec("matmul", _infer_matmul, _matmul_flops, _io_bytes, kernels=1))


def _infer_matmul_dx(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    dy, w = ins
    out_shape = dy.shape[:-1] + (w.shape[0],)
    out_dims = dy.dims[:-1] + (w.dims[0],)
    return [TensorType(out_shape, dy.dtype, out_dims)]


def _matmul_dx_flops(ins, outs, attrs) -> float:
    dy, w = ins
    m = math.prod(dy.shape[:-1])
    return 2.0 * m * w.shape[0] * w.shape[1]


register(OpSpec("matmul_dx", _infer_matmul_dx, _matmul_dx_flops, _io_bytes))


def _infer_matmul_dw(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    x, dy = ins
    return [TensorType((x.shape[-1], dy.shape[-1]), x.dtype, (x.dims[-1], dy.dims[-1]))]


def _matmul_dw_flops(ins, outs, attrs) -> float:
    x, dy = ins
    m = math.prod(x.shape[:-1])
    return 2.0 * m * x.shape[-1] * dy.shape[-1]


register(OpSpec("matmul_dw", _infer_matmul_dw, _matmul_dw_flops, _io_bytes))


def _infer_same_as_first(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    return [ins[0]]


register(
    OpSpec("bias_add", _infer_same_as_first, _elementwise_flops, _io_bytes)
)


def _infer_bias_grad(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    dy = ins[0]
    return [TensorType((dy.shape[-1],), dy.dtype, (dy.dims[-1],))]


register(
    OpSpec("bias_grad", _infer_bias_grad, _elementwise_flops, _io_bytes)
)

register(OpSpec("gelu", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("relu", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("gelu_dx", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("relu_dx", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("add", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("scale", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("softmax", _infer_same_as_first, _elementwise_flops, _io_bytes))
register(OpSpec("softmax_dx", _infer_same_as_first, _elementwise_flops, _io_bytes))


def _infer_layernorm(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    return [ins[0]]


register(
    OpSpec("layernorm", _infer_layernorm, _elementwise_flops, _io_bytes, kernels=2)
)
register(
    OpSpec(
        "layernorm_dx", _infer_same_as_first, _elementwise_flops, _io_bytes, kernels=2
    )
)


def _infer_layernorm_dw(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    dy, _x = ins
    h = dy.shape[-1]
    t = TensorType((h,), dy.dtype, (dy.dims[-1],))
    return [t, t]


register(
    OpSpec("layernorm_dw", _infer_layernorm_dw, _elementwise_flops, _io_bytes)
)


def _infer_attention(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    q, k, v = ins
    if not (q.shape == k.shape == v.shape):
        raise ValueError(f"attention expects equal q/k/v shapes, got {q},{k},{v}")
    return [q]


def _attention_flops(ins, outs, attrs) -> float:
    q = ins[0]
    b, s, h = q.shape
    # scores (B,S,S) and context (B,S,H): 2 batched matmuls.
    return 2.0 * b * s * s * h * 2.0


def _attention_bytes(ins, outs, attrs) -> float:
    q = ins[0]
    b, s, _h = q.shape
    heads = attrs.get("num_heads", 1)
    score_bytes = b * heads * s * s * q.dtype.nbytes
    return _io_bytes(ins, outs, attrs) + 2.0 * score_bytes


register(
    OpSpec("attention", _infer_attention, _attention_flops, _attention_bytes, kernels=4)
)


def _infer_attention_dx(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    _dy, q, k, v = ins
    return [q, k, v]


def _attention_dx_flops(ins, outs, attrs) -> float:
    return 2.0 * _attention_flops(ins[1:], outs, attrs)


register(
    OpSpec(
        "attention_dx",
        _infer_attention_dx,
        _attention_dx_flops,
        _attention_bytes,
        kernels=6,
    )
)


def _infer_embedding(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    table, ids = ins
    h = table.shape[1]
    return [TensorType(ids.shape + (h,), table.dtype, ids.dims + (Dim.HIDDEN,))]


register(
    OpSpec("embedding", _infer_embedding, _zero_flops, _io_bytes)
)


def _infer_embedding_dw(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    dy, _ids = ins
    vocab = attrs["vocab_size"]
    return [TensorType((vocab, dy.shape[-1]), dy.dtype, (Dim.VOCAB, Dim.HIDDEN))]


register(
    OpSpec("embedding_dw", _infer_embedding_dw, _elementwise_flops, _io_bytes)
)


def _infer_cross_entropy(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    logits, _labels = ins
    return [TensorType((), DType.F32, ())]


def _ce_flops(ins, outs, attrs) -> float:
    return 5.0 * ins[0].numel


register(
    OpSpec("cross_entropy", _infer_cross_entropy, _ce_flops, _io_bytes, kernels=2)
)


def _infer_cross_entropy_dx(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    logits, _labels = ins
    return [logits]


register(
    OpSpec(
        "cross_entropy_dx", _infer_cross_entropy_dx, _ce_flops, _io_bytes, kernels=2
    )
)


def _infer_split3(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    x = ins[0]
    if x.shape[-1] % 3 != 0:
        raise ValueError(f"split3 needs last dim divisible by 3, got {x}")
    h = x.shape[-1] // 3
    t = TensorType(x.shape[:-1] + (h,), x.dtype, x.dims)
    return [t, t, t]


register(
    OpSpec("split3", _infer_split3, _zero_flops, _io_bytes, is_data_movement=True)
)


def _infer_pos_embedding(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    x, pe = ins
    if x.shape[1:] != pe.shape:
        raise ValueError(f"pos_embedding shape mismatch: {x} vs {pe}")
    return [x]


register(
    OpSpec("pos_embedding", _infer_pos_embedding, _elementwise_flops, _io_bytes)
)


def _infer_pos_embedding_dw(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    gy = ins[0]
    return [TensorType(gy.shape[1:], gy.dtype, gy.dims[1:])]


register(
    OpSpec("pos_embedding_dw", _infer_pos_embedding_dw, _elementwise_flops, _io_bytes)
)


# ---------------------------------------------------------------------------
# MoE ops
# ---------------------------------------------------------------------------


def _moe_buf_type(e: int, c: int, h: int, dtype: DType) -> TensorType:
    return TensorType((e, c, h), dtype, (Dim.EXPERT, Dim.CAPACITY, Dim.HIDDEN))


def _infer_routing(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    probs = ins[0]
    tokens = math.prod(probs.shape[:-1])
    return [route_type(tokens)]


register(
    OpSpec("routing", _infer_routing, _elementwise_flops, _io_bytes, kernels=3)
)


def _infer_capacity_init(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    e = attrs["num_experts"]
    return [TensorType((e,), DType.I32, (Dim.EXPERT,))]


register(
    OpSpec("capacity_init", _infer_capacity_init, _zero_flops, _io_bytes)
)


def _infer_routing_partial(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    probs, cap_state = ins
    tokens = math.prod(probs.shape[:-1])
    return [route_type(tokens), cap_state]


register(
    OpSpec(
        "routing_partial", _infer_routing_partial, _elementwise_flops, _io_bytes,
        kernels=3,
    )
)


def _infer_route_slice(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    start, stop = attrs["start"], attrs["stop"]
    if not 0 <= start < stop:
        raise ValueError(f"bad route slice [{start}, {stop})")
    return [route_type(stop - start)]


register(
    OpSpec(
        "route_slice", _infer_route_slice, _zero_flops, _io_bytes,
        is_data_movement=True,
    )
)


def _infer_route_concat(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    total = sum(t.shape[0] for t in ins)
    return [route_type(total)]


register(
    OpSpec(
        "route_concat", _infer_route_concat, _zero_flops, _io_bytes,
        is_data_movement=True,
    )
)


def _infer_moe_dispatch(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    x, _route = ins
    e = attrs["num_experts"]
    c = attrs["capacity"]
    return [_moe_buf_type(e, c, x.shape[-1], x.dtype)]


def _dispatch_bytes(ins, outs, attrs) -> float:
    return _io_bytes(ins, outs, attrs)


register(
    OpSpec("moe_dispatch", _infer_moe_dispatch, _zero_flops, _dispatch_bytes, kernels=2)
)


def _infer_moe_dispatch_dx(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    _dbuf, _route = ins
    b = attrs["batch"]
    s = attrs["seq"]
    h = attrs["hidden"]
    return [TensorType((b, s, h), ins[0].dtype, (Dim.BATCH, Dim.SEQ, Dim.HIDDEN))]


register(
    OpSpec(
        "moe_dispatch_dx", _infer_moe_dispatch_dx, _zero_flops, _dispatch_bytes,
        kernels=2,
    )
)


def _infer_moe_combine(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    _buf, _route, probs = ins
    h = ins[0].shape[-1]
    out_shape = probs.shape[:-1] + (h,)
    out_dims = probs.dims[:-1] + (Dim.HIDDEN,)
    return [TensorType(out_shape, ins[0].dtype, out_dims)]


register(
    OpSpec(
        "moe_combine", _infer_moe_combine, _elementwise_flops, _dispatch_bytes,
        kernels=2,
    )
)


def _infer_moe_combine_dx(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    _dy, _route, _probs = ins
    e = attrs["num_experts"]
    c = attrs["capacity"]
    h = ins[0].shape[-1]
    return [_moe_buf_type(e, c, h, ins[0].dtype)]


register(
    OpSpec(
        "moe_combine_dx", _infer_moe_combine_dx, _elementwise_flops, _dispatch_bytes,
        kernels=2,
    )
)


def _infer_moe_combine_dprobs(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    _dy, _buf, _route = ins
    b = attrs["batch"]
    s = attrs["seq"]
    e = attrs["num_experts"]
    return [TensorType((b, s, e), ins[0].dtype, (Dim.BATCH, Dim.SEQ, Dim.EXPERT))]


register(
    OpSpec(
        "moe_combine_dprobs",
        _infer_moe_combine_dprobs,
        _elementwise_flops,
        _dispatch_bytes,
        kernels=2,
    )
)


def _infer_expert_ffn(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    buf = ins[0]
    return [buf]


def _expert_ffn_flops(ins, outs, attrs) -> float:
    buf, w1 = ins[0], ins[1]
    tokens = buf.shape[0] * buf.shape[1]
    h, f = w1.shape[-2], w1.shape[-1]
    return 2.0 * tokens * h * f * 2.0


register(
    OpSpec("expert_ffn", _infer_expert_ffn, _expert_ffn_flops, _io_bytes, kernels=4)
)


def _infer_expert_ffn_dx(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    # (dout, x, w1, b1, w2) -> dx
    return [ins[1]]


def _expert_ffn_dx_flops(ins, outs, attrs) -> float:
    dout, _x, w1 = ins[0], ins[1], ins[2]
    tokens = dout.shape[0] * dout.shape[1]
    h, f = w1.shape[-2], w1.shape[-1]
    return 2.0 * tokens * h * f * 2.0


register(
    OpSpec(
        "expert_ffn_dx", _infer_expert_ffn_dx, _expert_ffn_dx_flops, _io_bytes,
        kernels=5,
    )
)


def _infer_expert_ffn_dw(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    # (dout, x, w1, b1, w2) -> (dw1, db1, dw2, db2)
    _dout, _x, w1, b1, w2 = ins
    b2 = TensorType((w2.shape[0], w2.shape[2]), w2.dtype, (w2.dims[0], w2.dims[2]))
    return [w1, b1, w2, b2]


def _expert_ffn_dw_flops(ins, outs, attrs) -> float:
    dout, _x, w1 = ins[0], ins[1], ins[2]
    tokens = dout.shape[0] * dout.shape[1]
    h, f = w1.shape[-2], w1.shape[-1]
    return 2.0 * tokens * h * f * 2.0


register(
    OpSpec(
        "expert_ffn_dw", _infer_expert_ffn_dw, _expert_ffn_dw_flops, _io_bytes,
        kernels=6,
    )
)


# ---------------------------------------------------------------------------
# Communication ops
# ---------------------------------------------------------------------------


def _infer_all_to_all(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    return [ins[0]]


def _a2a_bytes(ins, outs, attrs) -> float:
    return float(ins[0].nbytes)


register(
    OpSpec(
        "all_to_all", _infer_all_to_all, _zero_flops, _a2a_bytes,
        kernels=1, stream=Stream.COMM,
    )
)


register(
    OpSpec(
        "allreduce", _infer_same_as_first, _zero_flops, _a2a_bytes,
        kernels=1, stream=Stream.COMM,
    )
)


# ---------------------------------------------------------------------------
# Pipeline plumbing (emitted by the partition rewriter)
# ---------------------------------------------------------------------------


def _infer_split_chunk(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    x = ins[0]
    return [x.split(attrs["axis"], attrs["parts"], attrs["index"])]


register(
    OpSpec(
        "split_chunk", _infer_split_chunk, _zero_flops, _io_bytes,
        is_data_movement=True,
    )
)


def _infer_concat(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    axis = attrs["axis"]
    first = ins[0]
    total = sum(t.shape[axis] for t in ins)
    for t in ins:
        if (
            t.rank != first.rank
            or t.shape[:axis] != first.shape[:axis]
            or t.shape[axis + 1 :] != first.shape[axis + 1 :]
        ):
            raise ValueError("concat chunks must agree on non-concat dims")
    shape = first.shape[:axis] + (total,) + first.shape[axis + 1 :]
    return [first.with_shape(shape)]


register(
    OpSpec("concat", _infer_concat, _zero_flops, _io_bytes, is_data_movement=True)
)


def _infer_accumulate(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    return [ins[0]]


register(
    OpSpec("accumulate", _infer_accumulate, _elementwise_flops, _io_bytes)
)


# ---------------------------------------------------------------------------
# Optimizer
# ---------------------------------------------------------------------------


def _infer_sgd_update(ins: list[TensorType], attrs: dict) -> list[TensorType]:
    w, _g, m = ins
    return [w, m]


register(
    OpSpec("sgd_update", _infer_sgd_update, _elementwise_flops, _io_bytes, kernels=1)
)
