"""Per-figure experiment runners (one module per paper figure)."""

from . import fig02, fig06, fig11, fig13, fig14, fig15, fig16, headline, imbalance
from .common import FigureResult

#: figure id -> callable returning a FigureResult (fig12 is fig11 with
#: the Batch Prioritized gate, as in the paper; "imbalance" is an
#: extension: the per-device load-skew scenario family)
ALL_FIGURES = {
    "fig02": fig02.run,
    "fig06": fig06.run,
    "fig11": lambda **kw: fig11.run(gate="switch", **kw),
    "fig12": lambda **kw: fig11.run(gate="bpr", **kw),
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "headline": headline.run,
    "imbalance": imbalance.run,
}

__all__ = ["ALL_FIGURES", "FigureResult"]
