"""Shared experiment harness for all paper figures.

One entry point, :func:`run_setting`, prepares a framework's schedule for a
(model, cluster, GPU count, gate) setting and simulates one training
iteration, returning every quantity the paper's figures report.
Measurements are memoized so figures sharing grid points (e.g. Fig. 11 and
Fig. 14) don't recompute them.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

from ..baselines import make_framework
from ..models import GPT2MoEConfig, build_training_graph
from ..runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_program,
)

#: per-GPU batch sizes used in the paper (Sec. 7): the largest that fits.
PAPER_BATCH = {
    ("a100", "GPT2-S-MoE"): 24,
    ("a100", "GPT2-L-MoE"): 48,
    ("v100", "GPT2-S-MoE"): 16,
    ("v100", "GPT2-L-MoE"): 8,
}

PAPER_SEQ = 512

#: GPU counts evaluated in the paper's scaling experiments
PAPER_GPU_COUNTS = (16, 32, 64)

EXPERT_OPS_FWD = frozenset({"expert_ffn"})
EXPERT_OPS_ALL = frozenset({"expert_ffn", "expert_ffn_dx", "expert_ffn_dw"})


def model_by_name(name: str, gate: str = "switch") -> GPT2MoEConfig:
    """Paper model preset by name."""
    if name in ("GPT2-S-MoE", "s", "S"):
        return GPT2MoEConfig.gpt2_s_moe(gate=gate)
    if name in ("GPT2-L-MoE", "l", "L"):
        return GPT2MoEConfig.gpt2_l_moe(gate=gate)
    raise ValueError(f"unknown model {name!r}")


def paper_batch(cluster_kind: str, model_name: str) -> int:
    return PAPER_BATCH[(cluster_kind.lower(), model_name)]


@dataclass(frozen=True)
class Setting:
    """One grid point of the evaluation."""

    model: str  # GPT2-S-MoE / GPT2-L-MoE
    cluster_kind: str  # a100 / v100
    num_gpus: int
    framework: str  # deepspeed / raf / tutel / lancet
    gate: str = "switch"
    batch: int | None = None
    seq: int = PAPER_SEQ

    def resolved_batch(self) -> int:
        return self.batch or paper_batch(self.cluster_kind, self.model)


@dataclass
class Measurement:
    """Everything one simulated iteration yields."""

    setting: Setting
    iteration_ms: float
    comm_only_ms: float
    comp_only_ms: float
    overlap_ms: float
    exposed_a2a_ms: float
    a2a_total_ms: float
    expert_fwd_ms: float
    expert_total_ms: float
    allreduce_ms: float
    memory_gb: float
    info: dict = field(default_factory=dict)

    @property
    def others_ms(self) -> float:
        """Everything that is neither all-to-all nor expert computation
        (the paper Fig. 2 'Others' bucket)."""
        return self.iteration_ms - self.exposed_a2a_ms - self.expert_total_ms


def estimate_memory_gb(graph, framework: str) -> float:
    """Rough per-GPU memory estimate: params + grads + fp32 momentum +
    retained forward activations, with a small framework overhead factor.

    Note: at the paper's batch sizes real frameworks run near the memory
    limit (they chose the largest fitting batch); an analytic model
    underestimates allocator overheads, so this is reported for relative
    comparison (DeepSpeed > others), not absolute OOM prediction.
    """
    p = graph.program
    param_bytes = sum(p.values[v].type.nbytes for v in p.params)
    act_bytes = 0
    for ins in p.instructions[: graph.forward_len]:
        for o in ins.outputs:
            act_bytes += p.values[o].type.nbytes
    overhead = {"deepspeed": 1.30, "tutel": 1.12}.get(framework, 1.0)
    total = (param_bytes * 2 + param_bytes * 2 + act_bytes) * overhead
    return total / 2**30


#: routing seed used when callers do not pass one; ``python -m repro
#: figures --seed N`` retargets it for the whole figure run
_DEFAULT_SEED = 1


def set_default_seed(seed: int) -> None:
    """Set the routing seed used by :func:`run_setting` when the caller
    does not pass one explicitly (the CLI's ``--seed``)."""
    global _DEFAULT_SEED
    _DEFAULT_SEED = int(seed)


def run_setting(setting: Setting, seed: int | None = None) -> Measurement:
    """Prepare the framework schedule and simulate one iteration.

    ``seed`` controls the synthetic routing realization; ``None`` uses
    the session default (see :func:`set_default_seed`).
    """
    return _run_setting(setting, _DEFAULT_SEED if seed is None else seed)


@functools.lru_cache(maxsize=None)
def _run_setting(setting: Setting, seed: int) -> Measurement:
    cfg = model_by_name(setting.model, setting.gate)
    batch = setting.resolved_batch()
    graph = build_training_graph(
        cfg, batch=batch, seq=setting.seq, num_gpus=setting.num_gpus
    )
    cluster = ClusterSpec.for_gpus(setting.cluster_kind, setting.num_gpus)

    t0 = time.perf_counter()
    fw = make_framework(setting.framework)
    result = fw.prepare(graph, cluster)
    prepare_seconds = time.perf_counter() - t0

    sim = SimulationConfig(
        cluster=cluster,
        framework=result.profile,
        padded_a2a=result.padded_a2a,
        routing=SyntheticRoutingModel(seed=seed),
    )
    tl = simulate_program(result.program, config=sim)
    bd = tl.breakdown()
    info = dict(result.info)
    info["prepare_seconds"] = prepare_seconds
    report = info.pop("report", None)
    if report is not None:
        info["pass_seconds"] = {
            t.name: t.seconds for t in report.pass_timings
        }
        info["predicted_ms"] = report.predicted_iteration_ms
        info["plans"] = [
            (pl.start, pl.end, pl.parts) for pl in report.partition.plans
        ]
    return Measurement(
        setting=setting,
        iteration_ms=bd.makespan,
        comm_only_ms=bd.comm_only,
        comp_only_ms=bd.comp_only,
        overlap_ms=bd.overlapped,
        exposed_a2a_ms=tl.exposed_time_of({"all_to_all"}),
        a2a_total_ms=tl.total_time_of({"all_to_all"}),
        expert_fwd_ms=tl.total_time_of(EXPERT_OPS_FWD),
        expert_total_ms=tl.total_time_of(EXPERT_OPS_ALL),
        allreduce_ms=tl.total_time_of({"allreduce"}),
        memory_gb=estimate_memory_gb(graph, setting.framework),
        info=info,
    )


def clear_cache() -> None:
    """Drop memoized measurements (for tests)."""
    _run_setting.cache_clear()
