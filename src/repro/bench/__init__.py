"""Benchmark harness reproducing every table and figure of the paper."""

from .figures import ALL_FIGURES, FigureResult
from .formatting import format_series, format_table
from .harness import (
    PAPER_BATCH,
    PAPER_GPU_COUNTS,
    Measurement,
    Setting,
    clear_cache,
    estimate_memory_gb,
    model_by_name,
    paper_batch,
    run_setting,
    set_default_seed,
)

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "Measurement",
    "PAPER_BATCH",
    "PAPER_GPU_COUNTS",
    "Setting",
    "clear_cache",
    "estimate_memory_gb",
    "format_series",
    "format_table",
    "model_by_name",
    "paper_batch",
    "run_setting",
    "set_default_seed",
]
