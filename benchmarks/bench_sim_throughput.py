"""Simulator throughput: vectorized batch vs the scalar reference loop.

The batch simulation core exists to make scenario sweeps (warm re-plans,
figure grids) cheap; this gate holds it to that claim.  The batch path
must be bit-identical to per-scenario ``simulate_cluster`` calls --
interval for interval -- *and* at least 5x faster on the warm-cache
workload it was built for.  The ``batch_over_scalar_time_ratio`` metric
is additionally tracked against the checked-in baseline by
``check_regression.py``.
"""

from conftest import run_figure
from repro.bench.figures import sim_throughput


def test_sim_throughput(benchmark):
    result = run_figure(benchmark, sim_throughput.run)
    (row,) = result.rows

    # correctness first: the batch engine is only admissible if it
    # reproduces the scalar reference exactly
    assert result.notes["bit_identical"]
    assert result.notes["makespans_equal"]

    # the headline target: >= 5x sims/sec over the scalar loop
    assert row["speedup"] >= 5.0, (
        f"batch speedup {row['speedup']:.1f}x below the 5x target "
        f"(scalar {row['scalar_sims_per_s']:.1f} sims/s, "
        f"batch {row['batch_sims_per_s']:.1f} sims/s)"
    )
    assert row["scenarios"] >= 8
