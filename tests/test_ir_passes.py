"""Tests for the pass manager and visualization utilities."""

import pytest

from repro.ir import DType, Pass, PassManager, Program, Stream, TensorType
from repro.ir.validate import ValidationError
from repro.runtime import Timeline
from repro.runtime.timeline import Interval
from repro.runtime.visualize import overlap_summary, render_timeline


def small_program():
    p = Program("pm")
    x = p.add_input(TensorType((4, 4), DType.F16), "x")
    (y,) = p.add("gelu", [x.id])
    p.outputs.append(y.id)
    return p


class AppendRelu(Pass):
    name = "append-relu"

    def run(self, program):
        program.add("relu", [program.outputs[0]])
        return program


class BreakSSA(Pass):
    name = "break-ssa"

    def run(self, program):
        program.instructions.append(program.instructions[0])
        return program


class TestPassManager:
    def test_runs_passes_in_order(self):
        pm = PassManager().add(AppendRelu()).add(AppendRelu())
        p = pm.run(small_program())
        assert [i.op for i in p.instructions] == ["gelu", "relu", "relu"]

    def test_records_timings(self):
        pm = PassManager().add(AppendRelu())
        pm.run(small_program())
        assert len(pm.timings) == 1
        assert pm.timings[0].name == "append-relu"
        assert pm.total_seconds() >= 0

    def test_validates_after_each_pass(self):
        pm = PassManager().add(BreakSSA())
        with pytest.raises(ValidationError):
            pm.run(small_program())

    def test_validation_can_be_disabled(self):
        pm = PassManager(validate_each=False).add(BreakSSA())
        pm.run(small_program())  # no exception

    def test_pass_name_defaults_to_class(self):
        class Anonymous(Pass):
            def run(self, program):
                return program

        assert Anonymous().name == "Anonymous"

    def test_base_pass_abstract(self):
        with pytest.raises(NotImplementedError):
            Pass().run(small_program())


def iv(op, stream, start, end):
    return Interval(uid=0, op=op, kind="forward", stream=stream,
                    start=start, end=end)


class TestVisualization:
    def test_render_shows_both_lanes(self):
        tl = Timeline(
            [
                iv("matmul", Stream.COMPUTE, 0, 5),
                iv("all_to_all", Stream.COMM, 2, 8),
            ]
        )
        out = render_timeline(tl, width=40)
        lines = out.split("\n")
        assert lines[1].startswith("comp |")
        assert lines[2].startswith("comm |")
        assert "#" in lines[1]
        assert "A" in lines[2]

    def test_glyph_classes(self):
        tl = Timeline(
            [
                iv("expert_ffn", Stream.COMPUTE, 0, 10),
                iv("matmul_dw", Stream.COMPUTE, 10, 20),
                iv("allreduce", Stream.COMM, 0, 20),
            ]
        )
        out = render_timeline(tl, width=20)
        comp = out.split("\n")[1]
        assert "E" in comp and "d" in comp
        assert "R" in out.split("\n")[2]

    def test_empty_timeline(self):
        assert "empty" in render_timeline(Timeline([]))

    def test_bad_window(self):
        tl = Timeline([iv("gelu", Stream.COMPUTE, 0, 1)])
        with pytest.raises(ValueError):
            render_timeline(tl, start_ms=5, end_ms=5)

    def test_overlap_summary(self):
        tl = Timeline(
            [
                iv("matmul", Stream.COMPUTE, 0, 4),
                iv("all_to_all", Stream.COMM, 2, 6),
            ]
        )
        s = overlap_summary(tl)
        assert "makespan 6.0 ms" in s
        assert "overlap 2.0" in s

    def test_render_on_real_model(self, tiny_graph, small_cluster):
        from repro.runtime import SimulationConfig, UniformRoutingModel, simulate_program

        tl = simulate_program(
            tiny_graph.program,
            config=SimulationConfig(
                cluster=small_cluster, routing=UniformRoutingModel()
            ),
        )
        out = render_timeline(tl, width=80)
        assert "A" in out  # the all-to-alls are visible


class TestDWStrategies:
    def test_unknown_strategy_rejected(self, a100_16):
        from repro.core import (
            CachingOpProfiler,
            CommCostModel,
            CostEstimator,
            WeightGradSchedulePass,
        )
        from repro.runtime import COMPILED

        costs = CostEstimator(
            CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
            CommCostModel(a100_16),
        )
        with pytest.raises(ValueError):
            WeightGradSchedulePass(costs, strategy="random")

    @pytest.mark.parametrize("strategy", ["best_fit", "first_fit", "largest_first"])
    def test_all_strategies_produce_valid_schedules(
        self, strategy, tiny_graph, a100_16
    ):
        from repro.core import (
            CachingOpProfiler,
            CommCostModel,
            CostEstimator,
            WeightGradSchedulePass,
        )
        from repro.ir import validate
        from repro.runtime import COMPILED

        costs = CostEstimator(
            CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
            CommCostModel(a100_16),
        )
        p = tiny_graph.program.clone()
        pas = WeightGradSchedulePass(costs, strategy=strategy)
        p = pas.run(p)
        validate(p)
        assert pas.report.num_dw_moved > 0
