"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures [ids...] [--fast]``
    Reproduce paper figures (default: all) and print the tables.
``optimize [--model S|L] [--cluster a100|v100] [--gpus N]``
    Optimize one training graph and report the schedule + simulated gain.
``list``
    List available figure ids.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figures(args: argparse.Namespace) -> int:
    from .bench import ALL_FIGURES

    wanted = args.ids or list(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {list(ALL_FIGURES)}")
        return 2
    fast_overrides = {
        "fig06": dict(range_points=(0.0, 1.0, 3.0, 8.0)),
        "fig11": dict(gpu_counts=(16, 32)),
        "fig12": dict(gpu_counts=(16, 32)),
        "fig14": dict(gpu_counts=(16, 32)),
        "fig15": dict(gpu_counts=(16, 32)),
        "fig16": dict(models=("GPT2-S-MoE",)),
        "headline": dict(gpu_counts=(16,)),
        "topology": dict(node_counts=(1, 2), hot_boosts=(0.0, 0.7)),
    }
    for fig in wanted:
        kwargs = fast_overrides.get(fig, {}) if args.fast else {}
        result = ALL_FIGURES[fig](**kwargs)
        print("=" * 72)
        print(result.table)
        for k, v in result.notes.items():
            if k != "reductions":
                print(f"  {k}: {v}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from . import (
        GPT2MoEConfig,
        LancetOptimizer,
        SimulationConfig,
        build_training_graph,
        simulate_program,
    )
    from .bench import paper_batch
    from .runtime import ClusterSpec, SyntheticRoutingModel

    model = "GPT2-S-MoE" if args.model.upper().startswith("S") else "GPT2-L-MoE"
    cfg = (
        GPT2MoEConfig.gpt2_s_moe()
        if model == "GPT2-S-MoE"
        else GPT2MoEConfig.gpt2_l_moe()
    )
    batch = args.batch or paper_batch(args.cluster, model)
    graph = build_training_graph(
        cfg, batch=batch, seq=args.seq, num_gpus=args.gpus
    )
    cluster = ClusterSpec.for_gpus(args.cluster, args.gpus)
    optimized, report = LancetOptimizer(
        cluster, defer_allreduce=args.defer_allreduce
    ).optimize(graph)

    before = simulate_program(
        graph.program,
        config=SimulationConfig(
            cluster=cluster, padded_a2a=True, routing=SyntheticRoutingModel(seed=1)
        ),
    )
    after = simulate_program(
        optimized,
        config=SimulationConfig(
            cluster=cluster, padded_a2a=False, routing=SyntheticRoutingModel(seed=1)
        ),
    )
    print(f"{model} batch={batch} seq={args.seq} on {args.gpus}x{cluster.gpu.name}")
    print(f"  optimization: {report.optimization_seconds:.2f}s "
          f"({report.dw_schedule.num_dw_moved} dW moved, "
          f"{len(report.partition.plans)} pipelines "
          f"k={[p.parts for p in report.partition.plans]})")
    print(f"  iteration: {before.makespan:.1f} ms -> {after.makespan:.1f} ms "
          f"({before.makespan / after.makespan:.2f}x)")
    e0 = before.exposed_time_of({"all_to_all"})
    e1 = after.exposed_time_of({"all_to_all"})
    print(f"  exposed all-to-all: {e0:.1f} ms -> {e1:.1f} ms "
          f"(-{100 * (1 - e1 / max(e0, 1e-9)):.0f}%)")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .bench import ALL_FIGURES

    for fig in ALL_FIGURES:
        print(fig)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Lancet (MLSys 2024) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="reproduce paper figures")
    p_fig.add_argument("ids", nargs="*", help="figure ids (default: all)")
    p_fig.add_argument("--fast", action="store_true", help="reduced grids")
    p_fig.set_defaults(fn=_cmd_figures)

    p_opt = sub.add_parser("optimize", help="optimize one training graph")
    p_opt.add_argument("--model", default="S", help="S or L (default S)")
    p_opt.add_argument("--cluster", default="a100", choices=["a100", "v100"])
    p_opt.add_argument("--gpus", type=int, default=16)
    p_opt.add_argument("--batch", type=int, default=None)
    p_opt.add_argument("--seq", type=int, default=512)
    p_opt.add_argument(
        "--defer-allreduce", action="store_true",
        help="enable the Lina-style a2a-priority extension",
    )
    p_opt.set_defaults(fn=_cmd_optimize)

    p_list = sub.add_parser("list", help="list figure ids")
    p_list.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
