"""Analytic GPU performance model.

Substitute for real A100/V100 hardware (see DESIGN.md Sec. 2): op
durations are derived from peak FLOP rate / memory bandwidth with
size-dependent efficiency curves, plus a per-kernel launch overhead.

The efficiency curves capture the two effects the paper's Challenge 2
hinges on: small (partitioned) kernels under-utilize streaming
multiprocessors, and every extra kernel pays a launch cost -- so
over-partitioning hurts, creating the U-shaped partition-range curve of
paper Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Peak rates and efficiency parameters of one accelerator.

    Attributes
    ----------
    peak_tflops:
        Peak half-precision (tensor core) throughput in TFLOP/s.
    mem_bw_gbps:
        Peak HBM bandwidth in GB/s.
    matmul_eff_max / matmul_flops_half:
        Matmul efficiency saturates at ``matmul_eff_max`` following
        ``eff(f) = eff_max * f / (f + flops_half)`` -- half the peak
        efficiency is reached at ``flops_half`` FLOPs per call.
    mem_eff_max / mem_bytes_half:
        Same saturation model for memory-bound kernels.
    """

    name: str
    peak_tflops: float
    mem_bw_gbps: float
    matmul_eff_max: float = 0.60
    matmul_flops_half: float = 2.0e9
    mem_eff_max: float = 0.85
    mem_bytes_half: float = 2.0e6

    def matmul_efficiency(self, flops: float) -> float:
        """Fraction of peak FLOP rate achieved by a call of given size."""
        if flops <= 0:
            return self.matmul_eff_max
        return self.matmul_eff_max * flops / (flops + self.matmul_flops_half)

    def mem_efficiency(self, nbytes: float) -> float:
        """Fraction of peak bandwidth achieved by a call touching nbytes."""
        if nbytes <= 0:
            return self.mem_eff_max
        return self.mem_eff_max * nbytes / (nbytes + self.mem_bytes_half)

    def flop_time_ms(self, flops: float) -> float:
        """Execution time of the arithmetic portion of an op."""
        if flops <= 0:
            return 0.0
        rate = self.peak_tflops * 1e12 * self.matmul_efficiency(flops)
        return flops / rate * 1e3

    def mem_time_ms(self, nbytes: float) -> float:
        """Execution time of the memory-traffic portion of an op."""
        if nbytes <= 0:
            return 0.0
        rate = self.mem_bw_gbps * 1e9 * self.mem_efficiency(nbytes)
        return nbytes / rate * 1e3

    def op_time_ms(self, flops: float, nbytes: float) -> float:
        """Roofline estimate: max of compute-bound and memory-bound time
        (launch overhead is added by the framework profile, not here)."""
        return max(self.flop_time_ms(flops), self.mem_time_ms(nbytes))


#: NVIDIA A100-80GB (p4de instances): 312 TFLOP/s FP16, ~2 TB/s HBM2e.
A100 = GPUSpec(name="A100", peak_tflops=312.0, mem_bw_gbps=2039.0)

#: NVIDIA V100-32GB (p3dn instances): 125 TFLOP/s FP16, 900 GB/s HBM2.
V100 = GPUSpec(
    name="V100",
    peak_tflops=125.0,
    mem_bw_gbps=900.0,
    matmul_eff_max=0.52,
    matmul_flops_half=1.2e9,
)


@dataclass(frozen=True)
class FrameworkProfile:
    """Execution-stack characteristics that differ between frameworks.

    The paper compares a compiler stack (RAF, which Lancet extends) with
    eager PyTorch stacks (Tutel, DeepSpeed); they differ in kernel-launch
    overhead, fusion quality, and MoE dispatch kernels (DeepSpeed runs
    without Tutel's fast dispatch -- paper Sec. 7).
    """

    name: str
    #: per-kernel launch overhead in microseconds
    launch_us: float = 4.0
    #: multiplier on compute op durations (fusion / codegen quality)
    compute_mult: float = 1.0
    #: multiplier on moe_dispatch / moe_combine / routing kernel time
    dispatch_mult: float = 1.0

    def launch_ms(self, kernels: int) -> float:
        """Launch overhead of an op issuing ``kernels`` kernels."""
        return self.launch_us * 1e-3 * kernels


#: Compiled stack (RAF / Lancet): fused kernels, CUDA-graph-like low launch cost.
COMPILED = FrameworkProfile(name="compiled", launch_us=4.0, compute_mult=1.0)

#: Eager PyTorch with Tutel's fast dispatch kernels.  The ~1.2x compute
#: multiplier vs the compiled stack matches the paper's Fig. 13, where
#: Tutel's total computation time sits visibly above RAF's.
TUTEL = FrameworkProfile(
    name="tutel", launch_us=9.0, compute_mult=1.22, dispatch_mult=1.0
)

#: Eager PyTorch, DeepSpeed MoE without Tutel kernels (slower dispatch).
DEEPSPEED = FrameworkProfile(
    name="deepspeed", launch_us=9.0, compute_mult=1.22, dispatch_mult=2.2
)

FRAMEWORK_PROFILES = {
    "lancet": COMPILED,
    "raf": COMPILED,
    "tutel": TUTEL,
    "deepspeed": DEEPSPEED,
}
