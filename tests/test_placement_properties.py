"""Property-based tests (hypothesis) for placement invariants.

Quantified over the full placement artifact space
(:func:`repro.testing.st_expert_placement`) and the skewed traffic
regime placement targets (:func:`repro.testing.st_dispatch_counts`):

- the vectorized remap is **bit-identical** to the pure-Python
  reference, for any placement and any counts;
- structural invariants hold by construction (every expert placed,
  fractions normalized) and survive serialization;
- the remap conserves traffic: total bytes and per-source send loads
  are placement-invariant (placement moves experts, not tokens);
- the identity placement is a bit-identical no-op against the
  owner-summed reduction the rest of the stack uses;
- the optimizer never returns a placement worse than the identity, and
  on exhaustively enumerable configs it stays within
  :data:`~repro.placement.GREEDY_BOUND` of the brute-force optimum.
"""

import numpy as np
from hypothesis import given, settings

from repro.placement import (
    GREEDY_BOUND,
    ExpertPlacement,
    PlacementOptimizer,
    brute_force_placement,
    remap_pair_bytes_reference,
)
from repro.runtime import ClusterSpec, RoutingSignature
from repro.testing import st_dispatch_counts, st_expert_placement

G, E = 4, 8
BPT = 640.0


@given(st_expert_placement(E, G), st_dispatch_counts(G, E))
@settings(max_examples=60, deadline=None)
def test_remap_bit_identical_to_reference(placement, counts):
    assert np.array_equal(
        placement.pair_bytes(counts, BPT),
        remap_pair_bytes_reference(placement, counts, BPT),
    )


@given(st_expert_placement(E, G))
@settings(max_examples=60, deadline=None)
def test_structural_invariants(placement):
    assert placement.num_experts == E
    covered = set()
    for e in range(E):
        replicas = placement.assignments[e]
        devices = placement.devices_of(e)
        assert devices, "every expert is placed"
        assert len(set(devices)) == len(devices)
        assert all(0 <= d < G for d in devices)
        assert all(f > 0 for _, f in replicas)
        assert abs(sum(f for _, f in replicas) - 1.0) <= 1e-9
        assert devices == tuple(sorted(devices))  # canonical order
        assert placement.owner_of(e) in devices
        covered.update(devices)
    row_sums = placement.fraction_matrix().sum(axis=1)
    assert np.allclose(row_sums, 1.0, atol=1e-9)


@given(st_expert_placement(E, G))
@settings(max_examples=60, deadline=None)
def test_serialization_roundtrip(placement):
    loaded = ExpertPlacement.from_json(placement.to_json())
    assert loaded == placement
    assert loaded.fingerprint() == placement.fingerprint()


@given(st_expert_placement(E, G), st_dispatch_counts(G, E))
@settings(max_examples=60, deadline=None)
def test_remap_conserves_traffic(placement, counts):
    pair = placement.pair_bytes(counts, BPT)
    assert pair.shape == (G, G)
    assert (pair >= 0).all()
    np.testing.assert_allclose(pair.sum(), counts.sum() * BPT, rtol=1e-12)
    # send loads are placement-invariant: every token still leaves its
    # source; placement only redistributes the *receive* side
    np.testing.assert_allclose(
        pair.sum(axis=1), counts.sum(axis=1) * BPT, rtol=1e-12
    )


@given(st_dispatch_counts(G, E))
@settings(max_examples=60, deadline=None)
def test_identity_is_bit_identical_noop(counts):
    identity = ExpertPlacement.identity(E, G)
    assert identity.is_identity
    expected = counts.reshape(G, G, E // G).sum(axis=2).astype(np.float64) * BPT
    assert np.array_equal(identity.pair_bytes(counts, BPT), expected)
    # ... end to end: a counts-carrying signature remaps to itself
    sig = RoutingSignature.from_counts(counts, bytes_per_token=BPT)
    assert sig.remap(identity) is sig


@given(st_dispatch_counts(G, E))
@settings(max_examples=30, deadline=None)
def test_optimizer_never_worse_than_identity(counts):
    cluster = ClusterSpec.for_gpus("a100", G)
    result = PlacementOptimizer(cluster).optimize(counts, BPT)
    assert result.bottleneck_ms <= result.identity_ms + 1e-9
    # the result is a valid placement by construction; re-pricing it
    # reproduces the reported bottleneck
    opt = PlacementOptimizer(cluster)
    assert opt.cost_ms(result.placement, counts, BPT) == result.bottleneck_ms


@given(st_dispatch_counts(2, 4))
@settings(max_examples=25, deadline=None)
def test_optimizer_within_bound_of_brute_force(counts):
    cluster = ClusterSpec.for_gpus("a100", 2)
    result = PlacementOptimizer(cluster).optimize(counts, BPT)
    _, best_ms = brute_force_placement(counts, BPT, cluster)
    assert result.bottleneck_ms <= best_ms * GREEDY_BOUND + 1e-9


@given(st_expert_placement(E, G), st_dispatch_counts(G, E))
@settings(max_examples=40, deadline=None)
def test_signature_remap_matches_direct_summary(placement, counts):
    sig = RoutingSignature.from_counts(counts, bytes_per_token=BPT)
    remapped = sig.remap(placement)
    if placement.is_identity:
        assert remapped is sig
        return
    expected = RoutingSignature.from_pair_bytes(
        placement.pair_bytes(counts, BPT)
    )
    assert remapped.load == expected.load
    assert remapped.mean_send_bytes == expected.mean_send_bytes
    assert remapped.expert_counts == sig.expert_counts
