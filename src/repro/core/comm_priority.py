"""Gradient-sync deferral: all-to-all-over-all-reduce priority.

An extension beyond the paper implementing the scheduling idea of Lina
(Li et al., ATC'23), which the paper's Sec. 8 cites as complementary:
*prioritize all-to-all traffic over all-reduce traffic*.

On a single in-order communication stream, an all-reduce issued right
after its gradient is produced can land *in front of* the next backward
all-to-all; the all-to-all then starts late, stalling the dependent
activation-gradient chain.  This matters even more after the dW schedule
pass, whose rescheduled dWs emit their all-reduces near all-to-alls (the
interference quantified in EXPERIMENTS.md Fig. 16).

Deferring gradient sync all the way to the optimizer would strand the
all-reduces in the iteration's tail with no computation left to hide
them; the right granularity is *yielding*: each all-reduce steps past the
next all-to-all in issue order (so the all-to-all never queues behind
it), but no further (so it still overlaps the remaining backward
computation).  With one all-reduce instruction per parameter tensor this
emulates Lina's micro-op prioritization at tensor granularity.
"""

from __future__ import annotations

from ..ir import Instruction, Pass, Program


class GradSyncDeferPass(Pass):
    """Let each all-reduce yield to the next all-to-all in issue order."""

    name = "grad-sync-defer"

    def run(self, program: Program) -> Program:
        instrs = program.instructions
        n = len(instrs)
        # position of the next all-to-all at or after each position
        next_a2a = [None] * n
        nxt = None
        for pos in range(n - 1, -1, -1):
            if instrs[pos].op == "all_to_all":
                nxt = pos
            next_a2a[pos] = nxt

        # first consumer position per value (moving past it is illegal)
        consumers_of: dict[int, int] = {}
        for pos, ins in enumerate(instrs):
            for v in ins.inputs:
                consumers_of.setdefault(v, pos)

        by_target: dict[int, list[Instruction]] = {}
        moved: set[int] = set()
        for pos, ins in enumerate(instrs):
            if ins.op != "allreduce":
                continue
            a2a = next_a2a[pos]
            if a2a is None:
                continue  # no later all-to-all to yield to
            target = a2a + 1  # re-issue right after that all-to-all
            limit = consumers_of.get(ins.outputs[0], n)
            if target >= limit or target <= pos:
                continue
            by_target.setdefault(target, []).append(ins)
            moved.add(ins.uid)

        if not moved:
            return program

        out: list[Instruction] = []
        for pos, ins in enumerate(instrs):
            if pos in by_target:
                out.extend(by_target.pop(pos))
            if ins.uid not in moved:
                out.append(ins)
        for leftovers in by_target.values():
            out.extend(leftovers)

        program.replace_order(out)
        return program
