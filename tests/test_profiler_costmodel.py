"""Tests for the caching op profiler and communication cost model."""

import pytest

from repro.core import CachingOpProfiler, CommCostModel, CostEstimator
from repro.ir import Dim, DType, TensorType
from repro.runtime import COMPILED, TUTEL, ClusterSpec


@pytest.fixture()
def profiler(a100_16):
    return CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED)


class TestCachingProfiler:
    def test_profiles_once_per_shape(self, profiler):
        t = [TensorType((64, 128), DType.F16), TensorType((128, 64), DType.F16)]
        profiler.op_time_ms("matmul", t)
        n = profiler.profile_count
        profiler.op_time_ms("matmul", t)
        assert profiler.profile_count == n

    def test_distinct_shapes_profiled_separately(self, profiler):
        a = [TensorType((64, 128), DType.F16), TensorType((128, 64), DType.F16)]
        b = [TensorType((32, 128), DType.F16), TensorType((128, 64), DType.F16)]
        profiler.op_time_ms("matmul", a)
        n = profiler.profile_count
        profiler.op_time_ms("matmul", b)
        assert profiler.profile_count == n + 1
        assert profiler.cache_size() >= 2

    def test_attrs_in_cache_key(self, profiler):
        t = [TensorType((2, 16, 32), DType.F16)] * 3
        profiler.op_time_ms("attention", t, {"num_heads": 2})
        n = profiler.profile_count
        profiler.op_time_ms("attention", t, {"num_heads": 4})
        assert profiler.profile_count == n + 1

    def test_bigger_op_costs_more(self, profiler):
        small = [TensorType((64, 64), DType.F16), TensorType((64, 64), DType.F16)]
        big = [TensorType((512, 512), DType.F16), TensorType((512, 512), DType.F16)]
        assert profiler.op_time_ms("matmul", big) > profiler.op_time_ms(
            "matmul", small
        )

    def test_framework_overheads_applied(self, a100_16):
        compiled = CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED)
        eager = CachingOpProfiler(gpu=a100_16.gpu, framework=TUTEL)
        t = [TensorType((256, 256), DType.F16), TensorType((256, 256), DType.F16)]
        assert eager.op_time_ms("matmul", t) > compiled.op_time_ms("matmul", t)

    def test_partitioned_op_relatively_slower(self, profiler):
        """k chunks of a matmul cost more in total than the whole matmul
        (efficiency loss + extra launches) -- paper Challenge 2."""
        whole = [
            TensorType((4096, 768), DType.F16),
            TensorType((768, 768), DType.F16),
        ]
        quarter = [
            TensorType((1024, 768), DType.F16),
            TensorType((768, 768), DType.F16),
        ]
        t_whole = profiler.op_time_ms("matmul", whole)
        t_quarter = profiler.op_time_ms("matmul", quarter)
        assert 4 * t_quarter > t_whole


class TestCommCostModel:
    @pytest.fixture()
    def comm(self, a100_16):
        return CommCostModel(a100_16)

    def test_monotone_in_size(self, comm):
        assert comm.a2a_ms(2**24) > comm.a2a_ms(2**20)
        assert comm.allreduce_ms(2**24) > comm.allreduce_ms(2**20)

    def test_interpolation_matches_model_at_sample_points(self, comm, a100_16):
        for nbytes in (2**12, 2**20, 2**26):
            assert comm.a2a_ms(nbytes) == pytest.approx(
                a100_16.a2a_time_ms(nbytes), rel=1e-9
            )

    def test_interpolation_between_points(self, comm, a100_16):
        nbytes = 3 * 2**19  # halfway between 2^19 and 2^20
        exact = a100_16.a2a_time_ms(nbytes)
        assert comm.a2a_ms(nbytes) == pytest.approx(exact, rel=0.05)

    def test_static_shape_approximation(self, comm):
        """Partitioned cost = uniform cost at capacity C/n (paper Sec. 3)."""
        full = 2**24
        assert comm.a2a_partitioned_ms(full, 4) == pytest.approx(
            comm.a2a_ms(full / 4)
        )
        with pytest.raises(ValueError):
            comm.a2a_partitioned_ms(full, 0)


class TestCostEstimator:
    def test_prediction_tracks_ground_truth(self, a100_16):
        """Predicted iteration time within a tight band of the simulated
        ground truth for an unoptimized padded schedule."""
        from repro import GPT2MoEConfig, build_training_graph
        from repro.runtime import (
            SimulationConfig,
            UniformRoutingModel,
            simulate_program,
        )

        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=4), batch=8, seq=256, num_gpus=16
        )
        costs = CostEstimator(
            CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
            CommCostModel(a100_16),
        )
        predicted = costs.predict_iteration_ms(graph.program)
        actual = simulate_program(
            graph.program,
            config=SimulationConfig(
                cluster=a100_16, padded_a2a=True, routing=UniformRoutingModel()
            ),
        ).makespan
        # prediction assumes irregular fill for irregular-capable a2a, so
        # it slightly undershoots a padded execution
        assert 0.8 * actual < predicted <= actual * 1.05

    def test_irr_parts_scaling(self, a100_16, tiny_graph):
        """An irregular chunk is priced at ~1/k of the full op."""
        costs = CostEstimator(
            CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
            CommCostModel(a100_16),
        )
        p = tiny_graph.program
        expert = next(i for i in p.instructions if i.op == "expert_ffn")
        full = costs.duration_ms(expert, p)
        chunk = expert.with_(attrs={**expert.attrs, "irr_parts": 4})
        quarter = costs.duration_ms(chunk, p)
        assert quarter < full
