"""IR rewriting for chosen partition ranges (paper Fig. 8b).

Turns a :class:`RangePlan` into actual instructions:

* **prologue**: ``split_chunk`` for tensors entering the range (or
  ``route_slice`` for routing metadata entering a post-gate range, the
  BPR case), plus one ``capacity_init`` per partitioned gate;
* **body**: one instruction instance per (original instruction, chunk),
  interleaved stage-major / partition-minor exactly as the pipeline
  scheduler assumed; ``routing`` becomes the capacity-passing
  ``routing_partial`` chained through the capacity-state value;
* **epilogue**: reconstruction of every value later consumers (the
  backward pass, mainly) still need -- ``concat`` along the split axis
  for regular chunks, ``accumulate`` (disjoint-slot sum) for irregular
  buffers, ``route_concat`` for routing metadata.

All of this is mathematically exact thanks to the capacity-passing gate:
chunk buffers occupy disjoint slots of the full-capacity buffer, so their
sum *is* the unpartitioned buffer, and token-level dropping matches the
unpartitioned gate bit for bit (tested).
"""

from __future__ import annotations

import numpy as np

from ...ir import AXIS_IRREGULAR as IRR
from ...ir import NOT_PARTITIONED as NP
from ...ir import Instruction, InstrKind, Program
from ...ir.tensor import is_route_type
from .dp import RangePlan
from .pipeline import build_stages


def _chunk_sizes(total: int, parts: int) -> list[int]:
    """Chunk sizes following numpy's array_split convention."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def apply_plan(program: Program, plan: RangePlan) -> None:
    """Rewrite ``program`` in place, partitioning one range."""
    start, end, k, axes = plan.start, plan.end, plan.parts, plan.axes
    instrs = program.instructions[start:end]
    pre = program.instructions[:start]
    post = program.instructions[end:]

    produced: set[int] = set()
    for ins in instrs:
        produced.update(ins.outputs)
    consumed: set[int] = set()
    for ins in instrs:
        consumed.update(ins.inputs)

    # values needed after the range (by backward, optimizer, or outputs)
    later_needs: set[int] = set(program.outputs) | set(program.grads.values())
    for ins in post:
        later_needs.update(ins.inputs)

    # token chunk boundaries, for route slicing and stochastic gates: the
    # batch axis is split array_split-style, tokens are batch-major
    def token_offsets(total_tokens: int, batch: int) -> list[int]:
        sizes = _chunk_sizes(batch, k)
        per_row = total_tokens // batch
        offs = [0]
        for s in sizes:
            offs.append(offs[-1] + s * per_row)
        return offs

    new_seq: list[Instruction] = []

    def emit(op, inputs, attrs=None, kind=None, partition=None, origin=None):
        outs = program.add(
            op, inputs, attrs=attrs, kind=kind, partition=partition, origin=origin
        )
        new_seq.append(program.instructions.pop())
        return outs

    # -- prologue: split entry values ---------------------------------------------
    entry_chunks: dict[tuple[int, int], int] = {}
    for vid in sorted(consumed - produced):
        axis = axes.axis_of(vid)
        if axis == NP:
            continue
        t = program.type_of(vid)
        if axis == IRR:
            if not is_route_type(t):
                raise ValueError(
                    f"cannot split tensor %{vid} irregularly from outside"
                )
            total = t.shape[0]
            # find the batch size from a dispatch consumer to align chunks
            batch = None
            for ins in instrs:
                if ins.op in ("moe_dispatch", "moe_combine") and vid in ins.inputs:
                    ref = program.type_of(ins.inputs[0])
                    batch = ref.shape[0]
                    break
            if batch is None:
                batch = total
            offs = token_offsets(total, batch)
            for p in range(k):
                (chunk,) = emit(
                    "route_slice",
                    [vid],
                    attrs={"start": offs[p], "stop": offs[p + 1]},
                    kind=InstrKind.FORWARD,
                    partition=(p, k),
                )
                entry_chunks[(vid, p)] = chunk.id
        else:
            for p in range(k):
                (chunk,) = emit(
                    "split_chunk",
                    [vid],
                    attrs={"axis": axis, "parts": k, "index": p},
                    kind=InstrKind.FORWARD,
                    partition=(p, k),
                )
                entry_chunks[(vid, p)] = chunk.id

    # one capacity-state chain per partitioned gate
    cap_state: dict[int, int] = {}
    for i, ins in enumerate(instrs):
        if ins.op == "routing":
            (st,) = emit(
                "capacity_init",
                [],
                attrs={"num_experts": ins.attrs["num_experts"]},
                kind=InstrKind.FORWARD,
            )
            cap_state[i] = st.id

    # -- body: stage-major, partition-minor ----------------------------------------
    chunk_val: dict[tuple[int, int], int] = {}

    def input_of(vid: int, p: int) -> int:
        if axes.axis_of(vid) == NP:
            return vid
        if vid in produced:
            return chunk_val[(vid, p)]
        return entry_chunks[(vid, p)]

    stages = build_stages(instrs)
    for stage in stages:
        for p in range(k):
            for i in stage.indices:
                ins = instrs[i]
                inputs = [input_of(v, p) for v in ins.inputs]
                attrs = dict(ins.attrs)
                if ins.op == "routing":
                    probs_t = program.type_of(ins.inputs[0])
                    offs = token_offsets(
                        int(np.prod(probs_t.shape[:-1])), probs_t.shape[0]
                    )
                    attrs["token_offset"] = offs[p]
                    outs = emit(
                        "routing_partial",
                        inputs + [cap_state[i]],
                        attrs=attrs,
                        kind=InstrKind.FORWARD,
                        partition=(p, k),
                        origin=ins.uid,
                    )
                    chunk_val[(ins.outputs[0], p)] = outs[0].id
                    cap_state[i] = outs[1].id
                    continue
                if ins.op == "all_to_all":
                    attrs["irregular"] = axes.axis_of(ins.outputs[0]) == IRR
                elif any(
                    axes.axis_of(v) == IRR
                    for v in list(ins.inputs) + list(ins.outputs)
                ):
                    # irregular chunk: static shape stays [E, C, H] but only
                    # ~1/k of the capacity slots are occupied; the runtime
                    # prices the op at its realized occupancy
                    attrs["irr_parts"] = k
                outs = emit(
                    ins.op,
                    inputs,
                    attrs=attrs,
                    kind=ins.kind,
                    partition=(p, k),
                    origin=ins.uid,
                )
                for ov, nv in zip(ins.outputs, outs):
                    chunk_val[(ov, p)] = nv.id

    # -- epilogue: reconstruct exported values --------------------------------------
    substitution: dict[int, int] = {}
    for vid in sorted(produced & later_needs):
        axis = axes.axis_of(vid)
        chunks = [chunk_val[(vid, p)] for p in range(k)]
        t = program.type_of(vid)
        if axis == IRR and is_route_type(t):
            (full,) = emit("route_concat", chunks, kind=InstrKind.FORWARD)
        elif axis == IRR:
            (full,) = emit("accumulate", chunks, kind=InstrKind.FORWARD)
        elif axis == NP:
            raise AssertionError("partitioned instruction with NP output")
        else:
            (full,) = emit("concat", chunks, attrs={"axis": axis}, kind=InstrKind.FORWARD)
        substitution[vid] = full.id

    # -- splice & remap later uses ---------------------------------------------------
    program.instructions = pre + new_seq + post
    program.remap_uses(substitution, start=len(pre) + len(new_seq))


def apply_plans(program: Program, plans: list[RangePlan]) -> None:
    """Apply multiple non-overlapping plans (descending start order keeps
    positions valid)."""
    for plan in sorted(plans, key=lambda pl: pl.start, reverse=True):
        apply_plan(program, plan)
