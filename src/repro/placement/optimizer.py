"""Greedy placement search against the hierarchical a2a cost model.

:class:`PlacementOptimizer` walks the move/swap/replicate/drop neighborhood
of a placement by steepest descent, pricing every candidate through the
same :class:`~repro.runtime.ClusterSpec` pricing the simulator uses, so
a predicted win here is a win in the modeled iteration time.  Search is
deliberately local and deterministic:

- candidates are generated *narrow first* -- only experts hosted on the
  current bottleneck device (the one whose send/recv stream bounds the
  all-to-all) are considered; the full neighborhood is tried only when
  the narrow set has no improving move;
- ties between equal-cost improving moves break toward **intra-node**
  moves (per the hierarchical phase model, NVLink moves are nearly
  free while the NIC is the bottleneck), then toward plain moves over
  replications, then lexicographically -- so results are reproducible;
- every accept requires a strict cost decrease beyond ``tolerance_ms``,
  which makes termination trivial and keeps the identity placement a
  fixed point on balanced traffic.

The differential harness checks this search against
:func:`~repro.placement.reference.brute_force_placement` on exhaustive
small configs: descent runs from both the identity and an LPT-style
greedy seed (heaviest expert onto the least-loaded device) and keeps
the better result, which lands on the exhaustive optimum for most
configurations and within :data:`GREEDY_BOUND` (10%) of it in the
worst observed case -- the bound the benchmark gate enforces.
:func:`migration_cost_ms` prices the weight transfer a placement
change implies (the one-off cost a migration must amortize against
its steady-state win).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import ExpertPlacement

#: documented worst-case ratio of the greedy optimizer's bottleneck time
#: to the brute-force optimum on the differential grid (observed worst:
#: 1.06x; most configs match exactly).  The benchmark gate counts a
#: "mismatch" only when greedy exceeds this bound.
GREEDY_BOUND = 1.1


@dataclass(frozen=True)
class PlacementMove:
    """One accepted search step.

    ``kind`` is ``"move"`` (relocate a replica), ``"swap"`` (exchange
    the hosts of two single-replica experts), ``"replicate"`` (add a
    shadow replica with an even traffic re-split), or ``"drop"`` (retire
    a replica, renormalizing the survivors).  ``source``/``target`` are
    the devices involved (``target`` is ``None`` for drops);
    ``inter_node`` records whether the step crossed a node boundary.
    """

    kind: str
    expert: int
    source: int
    target: int | None
    cost_before_ms: float
    cost_after_ms: float
    inter_node: bool

    @property
    def win_ms(self) -> float:
        return self.cost_before_ms - self.cost_after_ms


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of one :meth:`PlacementOptimizer.optimize` run."""

    placement: ExpertPlacement
    identity_ms: float
    bottleneck_ms: float
    moves: tuple[PlacementMove, ...] = ()
    evaluations: int = 0

    @property
    def improvement_ms(self) -> float:
        """Absolute bottleneck-a2a win over the identity placement."""
        return self.identity_ms - self.bottleneck_ms

    @property
    def improvement(self) -> float:
        """Fractional bottleneck-a2a win over the identity placement."""
        if self.identity_ms <= 0.0:
            return 0.0
        return self.improvement_ms / self.identity_ms


class PlacementOptimizer:
    """Search expert placements that minimize the bottleneck a2a phase.

    Parameters
    ----------
    cluster:
        Pricing model; candidate pair-bytes matrices are costed with its
        irregular all-to-all (and, on multi-node clusters, the 2-hop
        hierarchical variant -- the scheduler picks the cheaper
        algorithm, so the optimizer prices against that same choice).
    max_replicas:
        Cap on replicas ("shadows") per expert.
    max_moves:
        Cap on accepted search steps.
    prefer_hierarchical:
        Include the hierarchical a2a in the objective (defaults to
        ``cluster.multi_node``, where the 2-hop algorithm can win).
    tolerance_ms:
        Minimum strict improvement for a move to be accepted.
    """

    def __init__(
        self,
        cluster,
        *,
        max_replicas: int = 2,
        max_moves: int = 32,
        prefer_hierarchical: bool | None = None,
        tolerance_ms: float = 1e-9,
    ) -> None:
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        self.cluster = cluster
        self.max_replicas = max_replicas
        self.max_moves = max_moves
        self.prefer_hierarchical = (
            cluster.multi_node if prefer_hierarchical is None else prefer_hierarchical
        )
        self.tolerance_ms = tolerance_ms

    # -- objective -----------------------------------------------------------

    def pair_cost_ms(self, pair_bytes: np.ndarray) -> float:
        """Bottleneck a2a time of one pair-bytes matrix: the cheaper of
        the direct and (on multi-node) hierarchical algorithms."""
        cost = self.cluster.a2a_time_ms_irregular(pair_bytes)
        if self.prefer_hierarchical:
            cost = min(
                cost, self.cluster.hierarchical_a2a_time_ms_irregular(pair_bytes)
            )
        return float(cost)

    def cost_ms(self, placement: ExpertPlacement, counts, bytes_per_token) -> float:
        """Bottleneck a2a time of ``counts`` realized under ``placement``."""
        return self.pair_cost_ms(placement.pair_bytes(counts, bytes_per_token))

    # -- search --------------------------------------------------------------

    def optimize(
        self,
        counts,
        bytes_per_token: float | None = None,
        *,
        start: ExpertPlacement | None = None,
    ) -> PlacementResult:
        """Steepest-descent search from the identity (or ``start``).

        ``counts`` is a ``[num_gpus, num_experts]`` dispatch-count matrix
        or a :class:`~repro.runtime.RoutingSignature` carrying count
        provenance (``expert_counts``/``bytes_per_token`` attached by
        ``RoutingSignature.from_counts``).

        Without an explicit ``start``, descent runs twice -- from the
        identity and from an LPT-style greedy seed -- and the cheaper
        endpoint wins (local search alone stalls on some traffic
        patterns; the two basins together stay within
        :data:`GREEDY_BOUND` of the exhaustive optimum).
        """
        counts, bytes_per_token = self._coerce_counts(counts, bytes_per_token)
        result = self._descend(counts, bytes_per_token, start)
        if start is None:
            seeded = self._descend(
                counts, bytes_per_token, self._lpt_start(counts, bytes_per_token)
            )
            if seeded.bottleneck_ms < result.bottleneck_ms - self.tolerance_ms:
                result = PlacementResult(
                    placement=seeded.placement,
                    identity_ms=result.identity_ms,
                    bottleneck_ms=seeded.bottleneck_ms,
                    moves=seeded.moves,
                    evaluations=result.evaluations + seeded.evaluations,
                )
            else:
                result = PlacementResult(
                    placement=result.placement,
                    identity_ms=result.identity_ms,
                    bottleneck_ms=result.bottleneck_ms,
                    moves=result.moves,
                    evaluations=result.evaluations + seeded.evaluations,
                )
        return result

    def _descend(self, counts, bytes_per_token, start) -> PlacementResult:
        g = self.cluster.num_gpus
        sources, e = counts.shape
        if sources != g:
            raise ValueError(
                f"counts have {sources} source devices, cluster has {g}"
            )
        identity = ExpertPlacement.identity(e, g)
        current = start if start is not None else identity
        if current.num_experts != e or current.num_devices != g:
            raise ValueError("start placement does not match counts/cluster shape")

        evals = 0
        identity_ms = self.cost_ms(identity, counts, bytes_per_token)
        evals += 1
        if current is identity:
            current_ms = identity_ms
        else:
            current_ms = self.cost_ms(current, counts, bytes_per_token)
            evals += 1

        moves: list[PlacementMove] = []
        while len(moves) < self.max_moves:
            best = None
            for scope in ("narrow", "wide"):
                experts = (
                    self._bottleneck_experts(current, counts, bytes_per_token)
                    if scope == "narrow"
                    else range(e)
                )
                for cand in self._neighbors(current, experts):
                    kind, expert, source, target, assignments = cand
                    candidate = ExpertPlacement(e, g, assignments)
                    cand_ms = self.cost_ms(candidate, counts, bytes_per_token)
                    evals += 1
                    if cand_ms >= current_ms - self.tolerance_ms:
                        continue
                    rank = (
                        cand_ms,
                        self._inter_node(source, target),
                        {"move": 0, "swap": 1, "replicate": 2, "drop": 3}[kind],
                        expert,
                        source,
                        -1 if target is None else target,
                    )
                    if best is None or rank < best[0]:
                        best = (rank, cand, candidate, cand_ms)
                if best is not None:
                    break  # narrow scope found an improvement
            if best is None:
                break
            _, (kind, expert, source, target, _), candidate, cand_ms = best
            moves.append(
                PlacementMove(
                    kind=kind,
                    expert=expert,
                    source=source,
                    target=target,
                    cost_before_ms=current_ms,
                    cost_after_ms=cand_ms,
                    inter_node=self._inter_node(source, target),
                )
            )
            current, current_ms = candidate, cand_ms

        return PlacementResult(
            placement=current,
            identity_ms=identity_ms,
            bottleneck_ms=current_ms,
            moves=tuple(moves),
            evaluations=evals,
        )

    def evaluate_with_simulation(self, program, config, placements):
        """Price candidate placements through the vectorized batch
        simulator: one full-program makespan (ms) per placement.

        Builds one :class:`~repro.runtime.SimulationConfig` variant per
        candidate -- routing wrapped in a
        :class:`~repro.placement.PlacedRoutingModel`, padded-a2a off so
        irregular traffic is priced -- and runs them as a single
        vectorized batch.
        """
        import dataclasses

        from ..runtime.simulate import simulate_cluster_batch
        from .model import PlacedRoutingModel

        configs = [
            dataclasses.replace(
                config,
                padded_a2a=False,
                routing=PlacedRoutingModel(config.routing, pm),
            )
            for pm in placements
        ]
        return simulate_cluster_batch(program, configs).makespans

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _coerce_counts(counts, bytes_per_token):
        attached = getattr(counts, "expert_counts", None)
        if attached is not None:
            if bytes_per_token is None:
                bpt = getattr(counts, "bytes_per_token", 0.0)
                bytes_per_token = bpt if bpt else 1.0
            counts = attached
        elif hasattr(counts, "load") and attached is None:
            raise ValueError(
                "RoutingSignature has no expert_counts provenance; build it "
                "with RoutingSignature.from_counts or pass raw counts"
            )
        if bytes_per_token is None:
            bytes_per_token = 1.0
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise ValueError(f"counts must be 2-D [devices, experts], got {counts.shape}")
        return counts, float(bytes_per_token)

    def _lpt_start(self, counts, bytes_per_token) -> ExpertPlacement:
        """LPT-style seed: heaviest expert onto the least-loaded device,
        keeping per-device expert counts balanced (identity-shaped)."""
        g = self.cluster.num_gpus
        e = counts.shape[1]
        col = counts.astype(np.float64).sum(axis=0) * float(bytes_per_token)
        cap = e // g if e % g == 0 else None
        load = [0.0] * g
        hosted = [0] * g
        assign = [0] * e
        for expert in sorted(range(e), key=lambda i: (-col[i], i)):
            if cap is not None:
                open_devices = [d for d in range(g) if hosted[d] < cap]
            else:
                open_devices = list(range(g))
            device = min(open_devices, key=lambda d: (load[d], d))
            assign[expert] = device
            load[device] += col[expert]
            hosted[device] += 1
        return ExpertPlacement(e, g, tuple(((d, 1.0),) for d in assign))

    def _inter_node(self, source: int, target: int | None) -> bool:
        if target is None:
            return False
        per = self.cluster.gpus_per_node
        return (source // per) != (target // per)

    def _bottleneck_experts(self, placement, counts, bytes_per_token):
        """Experts hosted on the device bounding the current a2a."""
        pair = placement.pair_bytes(counts, bytes_per_token)
        device = int(np.argmax(self.cluster.a2a_device_times_ms(pair)))
        return tuple(
            e
            for e in range(placement.num_experts)
            if device in placement.devices_of(e)
        )

    def _neighbors(self, placement: ExpertPlacement, experts):
        """Yield ``(kind, expert, source, target, assignments)`` candidates."""
        g = placement.num_devices
        for expert in experts:
            replicas = placement.assignments[expert]
            hosting = {d for d, _ in replicas}
            for i, (source, fraction) in enumerate(replicas):
                # relocate this replica to any non-hosting device
                for target in range(g):
                    if target in hosting:
                        continue
                    row = list(replicas)
                    row[i] = (target, fraction)
                    yield (
                        "move", expert, source, target,
                        self._with_row(placement, expert, row),
                    )
                # retire this replica, renormalizing the survivors
                if len(replicas) > 1:
                    rest = [r for j, r in enumerate(replicas) if j != i]
                    remaining = sum(f for _, f in rest)
                    row = [(d, f / remaining) for d, f in rest]
                    yield (
                        "drop", expert, source, None,
                        self._with_row(placement, expert, row),
                    )
            # exchange hosts with another single-replica expert (moves
            # can stall when every device is recv-loaded; a swap changes
            # the composition without unbalancing expert counts)
            if len(replicas) == 1:
                source, fraction = replicas[0]
                for other in range(placement.num_experts):
                    if other == expert:
                        continue
                    peers = placement.assignments[other]
                    if len(peers) != 1 or peers[0][0] == source:
                        continue
                    target = peers[0][0]
                    assignments = list(placement.assignments)
                    assignments[expert] = ((target, fraction),)
                    assignments[other] = ((source, peers[0][1]),)
                    yield ("swap", expert, source, target, tuple(assignments))
            # shadow the expert on a new device with an even re-split
            if len(replicas) < self.max_replicas:
                owner = placement.owner_of(expert)
                split = 1.0 / (len(replicas) + 1)
                for target in range(g):
                    if target in hosting:
                        continue
                    row = [(d, split) for d, _ in replicas] + [(target, split)]
                    yield (
                        "replicate", expert, owner, target,
                        self._with_row(placement, expert, row),
                    )

    @staticmethod
    def _with_row(placement: ExpertPlacement, expert: int, row):
        assignments = list(placement.assignments)
        assignments[expert] = tuple(row)
        return tuple(assignments)


def migration_cost_ms(
    previous: ExpertPlacement,
    new: ExpertPlacement,
    cluster,
    bytes_per_expert: float,
) -> float:
    """One-off weight-transfer cost of switching placements.

    Every device newly hosting an expert pulls that expert's weights
    (``bytes_per_expert``) from the expert's previous primary owner.
    Transfers proceed concurrently; the cost is the slowest device's
    send-or-receive stream on each network level (NVLink intra-node,
    shared NIC inter-node) plus one latency floor -- the same
    alpha-beta shape as the collectives in
    :class:`~repro.runtime.ClusterSpec`.  Returns 0.0 when no device
    gains an expert.
    """
    if previous.num_experts != new.num_experts:
        raise ValueError("placements cover different expert counts")
    g = cluster.num_gpus
    per = cluster.gpus_per_node
    send_intra = np.zeros(g)
    recv_intra = np.zeros(g)
    send_inter = np.zeros(g)
    recv_inter = np.zeros(g)
    nbytes = float(bytes_per_expert)
    moved = False
    for expert in range(new.num_experts):
        old_devices = set(previous.devices_of(expert))
        source = previous.owner_of(expert)
        for target in new.devices_of(expert):
            if target in old_devices or target == source:
                continue
            moved = True
            if (source // per) == (target // per):
                send_intra[source] += nbytes
                recv_intra[target] += nbytes
            else:
                send_inter[source] += nbytes
                recv_inter[target] += nbytes
    if not moved:
        return 0.0
    t_intra = np.maximum(send_intra, recv_intra).max() / (cluster.intra_bw_gbps * 1e9)
    t_inter = np.maximum(send_inter, recv_inter).max() / (
        cluster.nic_per_gpu_gbps * 1e9
    )
    return float(cluster.alpha_ms() + max(t_intra, t_inter) * 1e3)
