"""Bounded LRU caches with observable hit/miss/eviction counters.

Lancet's optimization loop leans on several memoization layers (the op
profiler, the signature-keyed all-to-all estimates, the trainer's plan
cache, the planner's warm-start state).  Long training runs see an
unbounded stream of distinct routing signatures, so every signature-keyed
cache must be bounded or it grows without limit.  :class:`LRUCache` is
the one implementation they all share: a mapping with least-recently-used
eviction and counters cheap enough to keep always-on, surfaced through
:class:`~repro.core.lancet.LancetReport` for observability.
"""

from __future__ import annotations

from collections import OrderedDict

#: sentinel distinguishing "key absent" from a stored ``None``
_MISSING = object()


class LRUCache:
    """A bounded mapping with LRU eviction and hit/miss/eviction counters.

    Parameters
    ----------
    maxsize:
        Entry cap; ``None`` means unbounded (counters still work, which
        is how the planner-state caches report their effectiveness).
    name:
        Label used when the cache's stats are surfaced in reports.
    """

    __slots__ = ("maxsize", "name", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int | None = None, name: str = "") -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        """Look up ``key``, counting a hit or a miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        if self.maxsize is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if full."""
        data = self._data
        if key in data:
            if self.maxsize is not None:
                data.move_to_end(key)
            data[key] = value
            return
        data[key] = value
        if self.maxsize is not None and len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key) -> bool:  # does not touch the counters
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot, JSON-friendly (for ``LancetReport`` /
        ``BENCH_*.json`` records)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = self.maxsize if self.maxsize is not None else "inf"
        return (
            f"LRUCache({self.name or 'anon'}, {len(self._data)}/{cap}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
