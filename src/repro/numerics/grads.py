"""Backward numpy kernels for the IR gradient ops.

Registered in the same table as the forward kernels so the interpreter
treats forward and backward uniformly.  Every kernel is the exact
mathematical adjoint of its forward counterpart in
:mod:`repro.numerics.kernels` (verified against finite differences and the
standalone MoE layer in the test suite).
"""

from __future__ import annotations

import numpy as np

from ..moe.dispatch import combine_dprobs as moe_combine_dprobs_fn
from ..moe.dispatch import combine_dx as moe_combine_dx_fn
from ..moe.dispatch import dispatch_dx as moe_dispatch_dx_fn
from ..moe.experts import expert_ffn_dw as moe_expert_ffn_dw
from ..moe.experts import expert_ffn_dx as moe_expert_ffn_dx
from ..moe.experts import gelu_grad
from ..moe.layer import softmax as softmax_fn
from .kernels import LN_EPS, _attention_heads, _attention_merge, kernel


@kernel("matmul_dx")
def _k_matmul_dx(ins, attrs):
    dy, w = ins
    return [dy @ w.T]


@kernel("matmul_dw")
def _k_matmul_dw(ins, attrs):
    x, dy = ins
    x2 = x.reshape(-1, x.shape[-1])
    dy2 = dy.reshape(-1, dy.shape[-1])
    return [x2.T @ dy2]


@kernel("bias_grad")
def _k_bias_grad(ins, attrs):
    dy = ins[0]
    return [dy.reshape(-1, dy.shape[-1]).sum(axis=0)]


@kernel("gelu_dx")
def _k_gelu_dx(ins, attrs):
    dy, x = ins
    return [dy * gelu_grad(x)]


@kernel("relu_dx")
def _k_relu_dx(ins, attrs):
    dy, x = ins
    return [dy * (x > 0)]


@kernel("softmax_dx")
def _k_softmax_dx(ins, attrs):
    dy, y = ins
    return [y * (dy - (dy * y).sum(axis=-1, keepdims=True))]


@kernel("layernorm_dx")
def _k_layernorm_dx(ins, attrs):
    dy, x, gamma = ins
    h = x.shape[-1]
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    rstd = 1.0 / np.sqrt(var + LN_EPS)
    xhat = (x - mu) * rstd
    dxhat = dy * gamma
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * rstd
    return [dx]


@kernel("layernorm_dw")
def _k_layernorm_dw(ins, attrs):
    dy, x = ins
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    xhat = (x - mu) / np.sqrt(var + LN_EPS)
    lead = (-1, x.shape[-1])
    dgamma = (dy * xhat).reshape(lead).sum(axis=0)
    dbeta = dy.reshape(lead).sum(axis=0)
    return [dgamma, dbeta]


@kernel("attention_dx")
def _k_attention_dx(ins, attrs):
    dy, q, k, v = ins
    heads = attrs["num_heads"]
    causal = attrs.get("causal", True)
    qh = _attention_heads(q, heads)
    kh = _attention_heads(k, heads)
    vh = _attention_heads(v, heads)
    d = qh.shape[-1]
    scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(d)
    if causal:
        s = scores.shape[-1]
        mask = np.triu(np.ones((s, s), dtype=bool), k=1)
        scores = np.where(mask, -1e30, scores)
    probs = softmax_fn(scores, axis=-1)

    dyh = _attention_heads(dy, heads)
    dvh = probs.transpose(0, 1, 3, 2) @ dyh
    dprobs = dyh @ vh.transpose(0, 1, 3, 2)
    dscores = probs * (dprobs - (dprobs * probs).sum(axis=-1, keepdims=True))
    dscores = dscores / np.sqrt(d)
    dqh = dscores @ kh
    dkh = dscores.transpose(0, 1, 3, 2) @ qh
    return [_attention_merge(dqh), _attention_merge(dkh), _attention_merge(dvh)]


@kernel("embedding_dw")
def _k_embedding_dw(ins, attrs):
    dy, ids = ins
    vocab = attrs["vocab_size"]
    h = dy.shape[-1]
    dtable = np.zeros((vocab, h), dtype=dy.dtype)
    np.add.at(dtable, ids.reshape(-1).astype(np.int64), dy.reshape(-1, h))
    return [dtable]


@kernel("pos_embedding_dw")
def _k_pos_embedding_dw(ins, attrs):
    dy = ins[0]
    return [dy.sum(axis=0)]


@kernel("cross_entropy_dx")
def _k_cross_entropy_dx(ins, attrs):
    logits, labels = ins
    t = labels.size
    flat = logits.reshape(t, -1)
    lab = labels.reshape(-1).astype(np.int64)
    p = softmax_fn(flat, axis=-1)
    p[np.arange(t), lab] -= 1.0
    return [(p / t).reshape(logits.shape)]


@kernel("moe_dispatch_dx")
def _k_moe_dispatch_dx(ins, attrs):
    dbuf, info = ins
    dx = moe_dispatch_dx_fn(dbuf, info)
    return [dx.reshape(attrs["batch"], attrs["seq"], attrs["hidden"])]


@kernel("moe_combine_dx")
def _k_moe_combine_dx(ins, attrs):
    dy, info, probs = ins
    flat_dy = dy.reshape(-1, dy.shape[-1])
    flat_probs = probs.reshape(-1, probs.shape[-1])
    return [moe_combine_dx_fn(flat_dy, info, flat_probs)]


@kernel("moe_combine_dprobs")
def _k_moe_combine_dprobs(ins, attrs):
    dy, buf, info = ins
    flat_dy = dy.reshape(-1, dy.shape[-1])
    dprobs = moe_combine_dprobs_fn(flat_dy, buf, info)
    return [dprobs.reshape(attrs["batch"], attrs["seq"], attrs["num_experts"])]


@kernel("expert_ffn_dx")
def _k_expert_ffn_dx(ins, attrs):
    dout, buf, w1, b1, w2 = ins
    return [moe_expert_ffn_dx(dout, buf, w1, b1, w2)]


@kernel("expert_ffn_dw")
def _k_expert_ffn_dw(ins, attrs):
    dout, buf, w1, b1, w2 = ins
    return list(moe_expert_ffn_dw(dout, buf, w1, b1, w2))
