"""EWMA straggler detection over observed per-device times.

The trainer already reacts to *routing* drift (signature distance); this
module gives it the second signal ISSUE 8 asks for: *persistent
hardware degradation*, separated from transient noise.

The detector keeps an exponentially-weighted moving average of each
device's observed compute time and compares it to the median over the
currently *unflagged* fleet (the healthy reference).  A device whose
smoothed ratio stays above ``threshold`` for ``patience`` consecutive
observations is flagged -- one slow step is routing noise, ``patience``
slow steps is a sick device.  Flagged devices are excluded from the
reference, so their estimated slowdown converges to the true multiplier
instead of being diluted by their own contribution to the median.  A
flagged device whose smoothed ratio falls back under
``recovery_threshold`` is unflagged (fault cleared / node replaced).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FaultEvent:
    """A device crossed the persistent-degradation threshold."""

    step: int
    device: int
    #: estimated compute slowdown vs the healthy fleet (>= 1)
    ratio: float
    kind: str = "straggler"

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "device": self.device,
            "ratio": self.ratio,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class RecoveryEvent:
    """A previously flagged device returned to the healthy band."""

    step: int
    device: int
    ratio: float

    def to_dict(self) -> dict:
        return {"step": self.step, "device": self.device, "ratio": self.ratio}


class StragglerDetector:
    """Flags persistent per-device compute degradation.

    Parameters
    ----------
    num_devices:
        Fleet size.
    alpha:
        EWMA weight of the newest observation (higher = faster reaction,
        noisier).
    threshold:
        Smoothed time ratio vs the healthy median above which a device
        counts as degraded (1.2 = 20% slower).
    patience:
        Consecutive above-threshold observations required to flag --
        the transient-vs-persistent discriminator.
    recovery_threshold:
        Smoothed ratio below which a flagged device is considered
        recovered (must be < ``threshold``: hysteresis).
    """

    def __init__(
        self,
        num_devices: int,
        *,
        alpha: float = 0.5,
        threshold: float = 1.2,
        patience: int = 3,
        recovery_threshold: float = 1.05,
    ) -> None:
        if num_devices < 2:
            raise ValueError("straggler detection needs >= 2 devices")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if recovery_threshold >= threshold:
            raise ValueError("recovery_threshold must sit below threshold")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.num_devices = num_devices
        self.alpha = alpha
        self.threshold = threshold
        self.patience = patience
        self.recovery_threshold = recovery_threshold
        self._ewma: np.ndarray | None = None
        self._last: np.ndarray | None = None
        self._above = np.zeros(num_devices, dtype=np.int64)
        self._flagged: set[int] = set()
        self.observations = 0

    @property
    def flagged(self) -> tuple[int, ...]:
        """Currently flagged devices, sorted."""
        return tuple(sorted(self._flagged))

    def _reference(self, values: np.ndarray) -> float:
        healthy = [
            d for d in range(self.num_devices) if d not in self._flagged
        ]
        ref = float(np.median(values[healthy])) if healthy else float(
            np.median(values)
        )
        return ref

    def observe(
        self, step: int, device_times_ms
    ) -> tuple[list[FaultEvent], list[RecoveryEvent]]:
        """Feed one step's per-device observed compute times.

        Returns the fault/recovery events this observation triggered
        (usually both empty).
        """
        times = np.asarray(device_times_ms, dtype=np.float64)
        if times.shape != (self.num_devices,):
            raise ValueError(
                f"expected {self.num_devices} device times, got {times.shape}"
            )
        if not (times > 0).all():
            raise ValueError("device times must be positive")
        self.observations += 1
        self._last = times
        if self._ewma is None:
            self._ewma = times.copy()
        else:
            self._ewma = self.alpha * times + (1.0 - self.alpha) * self._ewma

        ref = self._reference(self._ewma)
        if ref <= 0:
            return [], []
        ratios = self._ewma / ref

        faults: list[FaultEvent] = []
        recoveries: list[RecoveryEvent] = []
        for d in range(self.num_devices):
            if d in self._flagged:
                if ratios[d] <= self.recovery_threshold:
                    self._flagged.discard(d)
                    self._above[d] = 0
                    recoveries.append(
                        RecoveryEvent(step=step, device=d, ratio=float(ratios[d]))
                    )
                continue
            if ratios[d] >= self.threshold:
                self._above[d] += 1
                if self._above[d] >= self.patience:
                    self._flagged.add(d)
                    faults.append(
                        FaultEvent(
                            step=step,
                            device=d,
                            ratio=self._estimate(d),
                        )
                    )
            else:
                self._above[d] = 0
        return faults, recoveries

    def _estimate(self, device: int) -> float:
        """Slowdown estimate from the *latest* observation vs the healthy
        reference -- unbiased by the EWMA's warm-up lag (with a constant
        injected slowdown this recovers the true multiplier exactly)."""
        assert self._last is not None
        ref = self._reference(self._last)
        if ref <= 0:
            return 1.0
        return max(1.0, float(self._last[device] / ref))

    def slowdowns(self) -> dict[int, float]:
        """Estimated slowdown multiplier of each flagged device."""
        if self._last is None:
            return {}
        return {d: self._estimate(d) for d in sorted(self._flagged)}

    def reset(self) -> None:
        """Forget all state (new fleet / after a plan migration)."""
        self._ewma = None
        self._last = None
        self._above[:] = 0
        self._flagged.clear()
        self.observations = 0
