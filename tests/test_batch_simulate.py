"""Differential testing of the vectorized batch simulation core.

The contract under test (ISSUE 6): for any program, cluster and scenario
set, :func:`simulate_cluster_batch` is **bit-identical** to running the
scalar :func:`simulate_cluster` once per scenario -- interval for
interval, including ``a2a_algo`` annotations, straggler and hot-expert
knobs -- and the DP's lockstep lane engine is bit-identical to
``RangeContext.simulate_ms`` candidate for candidate.  Bit-identity (not
approx-equality) is what lets the planner and the figure suite swap
freely between the scalar reference and the batch path.

Scenario generators and hypothesis strategies live in
:mod:`repro.testing`, shared with ``test_fast_replan`` and
``test_hierarchical_a2a``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LancetOptimizer, PlannerState, plan_partitions
from repro.core.partition.dp import _INFEASIBLE
from repro.runtime import (
    ClusterSpec,
    GroundTruthCost,
    SimulationConfig,
    SyntheticRoutingModel,
    UniformRoutingModel,
    simulate_cluster,
    simulate_cluster_batch,
    simulate_lanes,
    simulate_program,
)
from repro.testing import (
    PROGRAM_GRID,
    build_grid_graph,
    cluster_grid,
    routing_models,
    st_simulation_scenario,
    straggler_scenarios,
)


def assert_bit_identical(batch_tl, scalar_tl):
    """Interval-for-interval equality of two cluster timelines."""
    assert batch_tl.num_devices == scalar_tl.num_devices
    for d, (a, b) in enumerate(zip(batch_tl.devices, scalar_tl.devices)):
        assert a.intervals == b.intervals, f"device {d} diverged"


def run_both(program, configs):
    """(batch result, scalar timelines) for one scenario set."""
    costs = [GroundTruthCost(c) for c in configs]
    scalar = [simulate_cluster(program, cost=GroundTruthCost(c)) for c in configs]
    return simulate_cluster_batch(program, costs=costs), scalar


class TestScenarioBatchDifferential:
    def test_small_grid_row_all_knobs(self):
        """Tier-1 smoke: smallest grid program, every scenario knob."""
        layers, gpus, batch, seq, gate = PROGRAM_GRID[0]
        program = build_grid_graph(layers, gpus, batch, seq, gate).program
        cluster = ClusterSpec.for_gpus("a100", gpus)
        configs = []
        for i, routing in enumerate(routing_models()):
            for straggler in straggler_scenarios(gpus):
                configs.append(
                    SimulationConfig(
                        cluster,
                        padded_a2a=(i % 2 == 0),
                        block_sparse_experts=(i % 2 == 1),
                        routing=routing,
                        straggler_slowdown=straggler,
                    )
                )
        result, scalar = run_both(program, configs)
        assert result.num_candidates == len(configs)
        for b, ref in enumerate(scalar):
            assert result.makespan(b) == ref.makespan
            assert_bit_identical(result.timeline(b), ref)

    @pytest.mark.slow
    @pytest.mark.parametrize("layers,gpus,batch,seq,gate", PROGRAM_GRID[1:])
    def test_remaining_grid_rows(self, layers, gpus, batch, seq, gate):
        """Full grid x clusters x drift sequence (the heavy sweep)."""
        program = build_grid_graph(layers, gpus, batch, seq, gate).program
        for cluster in cluster_grid(gpus):
            configs = [
                SimulationConfig(
                    cluster,
                    padded_a2a=False,
                    routing=routing,
                    straggler_slowdown=straggler,
                )
                for routing in routing_models()
                for straggler in straggler_scenarios(gpus)
            ]
            result, scalar = run_both(program, configs)
            for b, ref in enumerate(scalar):
                assert_bit_identical(result.timeline(b), ref)

    def test_optimized_program_with_a2a_algo_annotations(self):
        """A hierarchical-enabled plan pins ``a2a_algo`` attrs; the batch
        path must price them exactly like the scalar simulator."""
        cluster = ClusterSpec.p3dn(2)
        graph = build_grid_graph(2, 16, 8, 256)
        opt = LancetOptimizer(cluster, enable_hierarchical_a2a=True)
        routing = SyntheticRoutingModel(
            seed=1, concentration=0.3, hot_experts=1, hot_boost=0.7
        )
        opt.observe_routing(graph, routing)
        program, report = opt.optimize(graph)
        assert report.hierarchical_a2a_count > 0  # annotations present
        configs = [
            SimulationConfig(cluster, padded_a2a=False, routing=r)
            for r in routing_models()
        ]
        result, scalar = run_both(program, configs)
        for b, ref in enumerate(scalar):
            assert_bit_identical(result.timeline(b), ref)

    def test_batch_of_one_equals_simulate_program_uniform(self):
        """Extends the PR 1 invariant to the batch path: under uniform
        routing and no stragglers, every device of the batch-of-1 result
        is bit-for-bit the representative-device timeline."""
        layers, gpus, batch, seq, gate = PROGRAM_GRID[0]
        program = build_grid_graph(layers, gpus, batch, seq, gate).program
        cluster = ClusterSpec.for_gpus("a100", gpus)
        for padded in (True, False):
            cfg = SimulationConfig(
                cluster, padded_a2a=padded, routing=UniformRoutingModel()
            )
            rep = simulate_program(program, config=cfg)
            result = simulate_cluster_batch(program, configs=[cfg])
            assert result.num_candidates == 1
            assert result.makespan(0) == rep.makespan
            for device_tl in result.timeline(0).devices:
                assert device_tl.intervals == rep.intervals

    def test_order_invariant_under_candidate_permutation(self):
        """Scenario b's result depends only on scenario b: permuting the
        batch permutes the outputs bit-for-bit."""
        layers, gpus, batch, seq, gate = PROGRAM_GRID[0]
        program = build_grid_graph(layers, gpus, batch, seq, gate).program
        cluster = ClusterSpec.for_gpus("a100", gpus)
        configs = [
            SimulationConfig(
                cluster,
                padded_a2a=False,
                routing=SyntheticRoutingModel(
                    seed=s, concentration=0.5, hot_experts=1, hot_boost=0.6
                ),
                straggler_slowdown=({0: 1.5} if s % 2 else None),
            )
            for s in range(6)
        ]
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(configs))
        fwd = simulate_cluster_batch(program, configs=configs)
        shuf = simulate_cluster_batch(
            program, configs=[configs[p] for p in perm]
        )
        assert np.array_equal(fwd.makespans[perm], shuf.makespans)
        assert np.array_equal(fwd.starts[:, perm, :], shuf.starts)
        assert np.array_equal(fwd.ends[:, perm, :], shuf.ends)

    def test_mixed_device_counts_rejected(self):
        program = build_grid_graph(*PROGRAM_GRID[0]).program
        configs = [
            SimulationConfig(ClusterSpec.for_gpus("a100", 4)),
            SimulationConfig(ClusterSpec.for_gpus("a100", 8)),
        ]
        with pytest.raises(ValueError, match="device count"):
            simulate_cluster_batch(program, configs=configs)

    def test_empty_batch_rejected(self):
        program = build_grid_graph(*PROGRAM_GRID[0]).program
        with pytest.raises(ValueError):
            simulate_cluster_batch(program, configs=[])

    @pytest.mark.slow
    @given(
        scenarios=st.lists(st_simulation_scenario(4), min_size=1, max_size=4)
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_scenarios_bit_identical(self, scenarios):
        """Hypothesis sweep: ANY mix of routing models, stragglers and
        protocol flags must agree with the scalar reference exactly."""
        program = build_grid_graph(*PROGRAM_GRID[0]).program
        cluster = ClusterSpec.for_gpus("a100", 4)
        configs = [SimulationConfig(cluster, **kw) for kw in scenarios]
        result, scalar = run_both(program, configs)
        for b, ref in enumerate(scalar):
            assert result.makespan(b) == ref.makespan
            assert_bit_identical(result.timeline(b), ref)


class TestTimelineReductionStability:
    def test_reductions_are_enumeration_order_invariant(self):
        """fsum-based reductions must not depend on interval order, so
        scalar- and batch-materialized timelines always reduce alike."""
        program = build_grid_graph(*PROGRAM_GRID[0]).program
        cfg = SimulationConfig(
            ClusterSpec.for_gpus("a100", 4),
            padded_a2a=False,
            routing=SyntheticRoutingModel(
                seed=3, concentration=0.5, hot_experts=1, hot_boost=0.7
            ),
        )
        tl = simulate_cluster(program, config=cfg).devices[0]
        rng = np.random.default_rng(1)
        perm = list(rng.permutation(len(tl.intervals)))
        shuffled = type(tl)([tl.intervals[p] for p in perm])
        assert shuffled.total_time_of() == tl.total_time_of()
        assert shuffled.per_op_totals() == tl.per_op_totals()
        assert (
            shuffled.total_time_of({"all_to_all"})
            == tl.total_time_of({"all_to_all"})
        )


class TestLaneEngineDifferential:
    def test_lanes_match_scalar_recurrence_on_real_contexts(self):
        """Harvest every RangeContext a real plan builds and replay each
        (context, parts) candidate with randomized duration vectors: the
        lockstep batch must reproduce ``simulate_ms`` bit-for-bit."""
        cluster = ClusterSpec.for_gpus("a100", 8)
        graph = build_grid_graph(3, 8, 8, 128)
        opt = LancetOptimizer(cluster)
        state = opt.planner_state
        plan_partitions(graph.program, opt.costs, state=state)
        contexts = [
            ctx
            for ctx in state.contexts._data.values()
            if ctx is not _INFEASIBLE and ctx is not None
        ]
        assert contexts, "plan built no feasible range contexts"
        rng = np.random.default_rng(5)
        lanes, durs, expect = [], [], []
        for ctx in contexts:
            for parts in (2, 4, 8):
                if parts > ctx.k_limit:
                    continue
                d = rng.uniform(0.01, 2.0, size=len(ctx.instrs))
                lanes.append(ctx.lane_pack(parts))
                durs.append(d)
                expect.append(ctx.simulate_ms(list(d), parts))
        got = simulate_lanes(lanes, durs)
        assert got.shape == (len(expect),)
        assert [float(x) for x in got] == expect

    def test_planner_reports_batch_counters(self):
        """LancetReport.cache_stats carries the batch-hit counters, and a
        plan actually routes its sim misses through the batch."""
        graph = build_grid_graph(2, 4, 4, 64)
        cluster = ClusterSpec.for_gpus("a100", 4)
        opt = LancetOptimizer(cluster)
        _, report = opt.optimize(graph)
        stats = report.cache_stats
        assert stats["planner_batch"]["calls"] >= 1
        assert (
            stats["planner_batch"]["lanes"]
            == stats["planner_sim"]["misses"]
        )

    def test_warm_drift_replan_still_batches(self):
        """After routing drift, the re-priced candidates go through the
        lane batch too (the warm path the throughput target cares about)."""
        graph = build_grid_graph(2, 4, 4, 64)
        cluster = ClusterSpec.for_gpus("a100", 4)
        opt = LancetOptimizer(cluster)
        opt.optimize(graph)
        state = opt.planner_state
        calls_before = state.caches.batch_calls
        lanes_before = state.caches.batch_lanes
        opt.observe_routing(
            graph,
            SyntheticRoutingModel(
                seed=11, concentration=0.5, hot_experts=1, hot_boost=0.6
            ),
        )
        result = plan_partitions(graph.program, opt.costs, state=state)
        assert result.warm_start and result.num_pipeline_sims > 0
        assert state.caches.batch_calls == calls_before + 1
        assert (
            state.caches.batch_lanes - lanes_before
            == result.num_pipeline_sims
        )
