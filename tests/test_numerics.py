"""Finite-difference checks for the dense numpy kernels."""

import numpy as np

from repro.numerics import FORWARD_KERNELS


def run(op, ins, attrs=None):
    return FORWARD_KERNELS[op](ins, attrs or {})


def fd_check(op, dx_op, ins, attrs, grad_pos, dx_inputs, idx, atol=1e-6):
    """Compare the registered backward kernel against finite differences.

    ``dx_inputs`` builds the backward kernel's inputs from (dy, ins, y).
    ``grad_pos`` selects which forward input is differentiated.
    """
    rng = np.random.default_rng(0)
    y = run(op, ins, attrs)[0]
    dy = rng.standard_normal(y.shape)
    grads = run(dx_op, dx_inputs(dy, ins, y), attrs)
    g = grads[0] if not isinstance(grad_pos, tuple) else grads[grad_pos[1]]
    pos = grad_pos if not isinstance(grad_pos, tuple) else grad_pos[0]
    eps = 1e-6
    arr = ins[pos]
    orig = arr[idx]
    arr[idx] = orig + eps
    yp = run(op, ins, attrs)[0]
    arr[idx] = orig - eps
    ym = run(op, ins, attrs)[0]
    arr[idx] = orig
    num = ((yp - ym) / (2 * eps) * dy).sum()
    assert np.isclose(num, g[idx], atol=atol), f"{op}: {num} vs {g[idx]}"


class TestDenseKernels:
    def test_matmul_grads(self, rng):
        x, w = rng.standard_normal((2, 4, 8)), rng.standard_normal((8, 6))
        fd_check(
            "matmul", "matmul_dx", [x, w], {}, 0,
            lambda dy, ins, y: [dy, ins[1]], (1, 2, 3),
        )
        y = run("matmul", [x, w])[0]
        dy = rng.standard_normal(y.shape)
        dw = run("matmul_dw", [x, dy])[0]
        eps = 1e-6
        orig = w[3, 2]
        w[3, 2] = orig + eps
        yp = run("matmul", [x, w])[0]
        w[3, 2] = orig - eps
        ym = run("matmul", [x, w])[0]
        w[3, 2] = orig
        assert np.isclose(((yp - ym) / (2 * eps) * dy).sum(), dw[3, 2], atol=1e-7)

    def test_gelu_grad(self, rng):
        x = rng.standard_normal((3, 5))
        fd_check("gelu", "gelu_dx", [x], {}, 0, lambda dy, ins, y: [dy, ins[0]], (1, 2))

    def test_relu_grad(self, rng):
        x = rng.standard_normal((3, 5)) + 0.1
        fd_check("relu", "relu_dx", [x], {}, 0, lambda dy, ins, y: [dy, ins[0]], (2, 4))

    def test_softmax_grad(self, rng):
        x = rng.standard_normal((3, 6))
        fd_check("softmax", "softmax_dx", [x], {}, 0, lambda dy, ins, y: [dy, y], (1, 3))

    def test_layernorm_dx(self, rng):
        x = rng.standard_normal((2, 3, 8))
        gamma, beta = rng.standard_normal(8), rng.standard_normal(8)
        fd_check(
            "layernorm", "layernorm_dx", [x, gamma, beta], {}, 0,
            lambda dy, ins, y: [dy, ins[0], ins[1]], (1, 2, 5), atol=1e-5,
        )

    def test_layernorm_dw(self, rng):
        x = rng.standard_normal((2, 3, 8))
        gamma, beta = rng.standard_normal(8), rng.standard_normal(8)
        y = run("layernorm", [x, gamma, beta])[0]
        dy = rng.standard_normal(y.shape)
        dgamma, dbeta = run("layernorm_dw", [dy, x])
        eps = 1e-6
        for arr, grad, idx in [(gamma, dgamma, (3,)), (beta, dbeta, (5,))]:
            orig = arr[idx]
            arr[idx] = orig + eps
            yp = run("layernorm", [x, gamma, beta])[0]
            arr[idx] = orig - eps
            ym = run("layernorm", [x, gamma, beta])[0]
            arr[idx] = orig
            assert np.isclose(((yp - ym) / (2 * eps) * dy).sum(), grad[idx], atol=1e-6)

    def test_attention_grads(self, rng):
        q = rng.standard_normal((2, 4, 8))
        k = rng.standard_normal((2, 4, 8))
        v = rng.standard_normal((2, 4, 8))
        attrs = {"num_heads": 2, "causal": True}
        y = run("attention", [q, k, v], attrs)[0]
        dy = rng.standard_normal(y.shape)
        dq, dk, dv = run("attention_dx", [dy, q, k, v], attrs)
        eps = 1e-6
        for arr, grad, idx in [(q, dq, (1, 2, 3)), (k, dk, (0, 1, 4)), (v, dv, (1, 3, 7))]:
            orig = arr[idx]
            arr[idx] = orig + eps
            yp = run("attention", [q, k, v], attrs)[0]
            arr[idx] = orig - eps
            ym = run("attention", [q, k, v], attrs)[0]
            arr[idx] = orig
            assert np.isclose(((yp - ym) / (2 * eps) * dy).sum(), grad[idx], atol=1e-6)

    def test_attention_causality(self, rng):
        """Output at position t must not depend on inputs at positions > t."""
        q = rng.standard_normal((1, 6, 8))
        k = rng.standard_normal((1, 6, 8))
        v = rng.standard_normal((1, 6, 8))
        attrs = {"num_heads": 2, "causal": True}
        y1 = run("attention", [q, k, v], attrs)[0]
        k2, v2 = k.copy(), v.copy()
        k2[0, 5] += 10.0
        v2[0, 5] -= 3.0
        y2 = run("attention", [q, k2, v2], attrs)[0]
        assert np.allclose(y1[0, :5], y2[0, :5])
        assert not np.allclose(y1[0, 5], y2[0, 5])

    def test_cross_entropy_grad(self, rng):
        logits = rng.standard_normal((2, 3, 10))
        labels = rng.integers(0, 10, size=(2, 3))
        loss = run("cross_entropy", [logits, labels])[0]
        assert loss.shape == ()
        dx = run("cross_entropy_dx", [logits, labels])[0]
        eps = 1e-6
        idx = (1, 2, 4)
        orig = logits[idx]
        logits[idx] = orig + eps
        lp = run("cross_entropy", [logits, labels])[0]
        logits[idx] = orig - eps
        lm = run("cross_entropy", [logits, labels])[0]
        logits[idx] = orig
        assert np.isclose((lp - lm) / (2 * eps), dx[idx], atol=1e-7)

    def test_embedding_and_grad(self, rng):
        table = rng.standard_normal((10, 4))
        ids = np.array([[1, 3], [3, 9]])
        y = run("embedding", [table, ids])[0]
        assert y.shape == (2, 2, 4)
        assert np.allclose(y[0, 1], table[3])
        dy = rng.standard_normal(y.shape)
        dtable = run("embedding_dw", [dy, ids], {"vocab_size": 10})[0]
        # id 3 appears twice: grads accumulate
        assert np.allclose(dtable[3], dy[0, 1] + dy[1, 0])
        assert np.allclose(dtable[0], 0.0)

    def test_split_concat_roundtrip(self, rng):
        x = rng.standard_normal((7, 4))
        chunks = [
            run("split_chunk", [x], {"axis": 0, "parts": 3, "index": i})[0]
            for i in range(3)
        ]
        back = run("concat", chunks, {"axis": 0})[0]
        assert np.array_equal(back, x)

    def test_split3_concat_roundtrip(self, rng):
        x = rng.standard_normal((2, 3, 12))
        q, k, v = run("split3", [x])
        back = run("concat", [q, k, v], {"axis": 2})[0]
        assert np.array_equal(back, x)

    def test_sgd_update(self):
        w = np.ones(4)
        g = np.full(4, 2.0)
        m = np.full(4, 1.0)
        w2, m2 = run("sgd_update", [w, g, m], {"lr": 0.1, "momentum": 0.5})
        assert np.allclose(m2, 0.5 * 1.0 + 2.0)
        assert np.allclose(w2, 1.0 - 0.1 * m2)

    def test_accumulate(self, rng):
        xs = [rng.standard_normal((3, 3)) for _ in range(4)]
        out = run("accumulate", xs)[0]
        assert np.allclose(out, sum(xs))


class TestRouteKernels:
    def test_route_slice_concat_roundtrip(self, rng):
        from repro.moe import route_switch
        from repro.moe.layer import softmax

        probs = softmax(rng.standard_normal((20, 4)))
        info, _ = route_switch(probs, capacity=6)
        a = run("route_slice", [info], {"start": 0, "stop": 8})[0]
        b = run("route_slice", [info], {"start": 8, "stop": 20})[0]
        back = run("route_concat", [a, b])[0]
        assert back == info
