"""Pipeline scheduling and cost estimation (paper Sec. 5.3, Fig. 9).

Given a partitioned range, instructions are divided into *stages*
(maximal runs of consecutive computation or communication); within each
stage the chunks execute in partition order (chunk 1 of the stage first,
then chunk 2, ...).  The resulting interleaved order is simulated on the
two-stream model to obtain ``P(i, n, k)`` -- each pseudo-instruction
starts at the later of (i) the end of its dependencies and (ii) the end
of the previous instruction on its stream, exactly the paper's rule.

Chunk costs come from the caching profiler queried at *chunked shapes*;
irregular (A_irr) operands use the static-shape approximation: the
uniform shape at capacity ``C / k`` (paper Sec. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...ir import AXIS_IRREGULAR as IRR
from ...ir import NOT_PARTITIONED as NP
from ...ir import Dim, Instruction, Program, TensorType
from ..cost_model import CostEstimator
from .axis_inference import InferenceResult


def chunk_type(t: TensorType, axis: int, parts: int, index: int = 0) -> TensorType:
    """Static type of one chunk of a value partitioned at ``axis``.

    Real axes shrink the dimension (array_split convention); the
    irregular axis keeps the buffer shape but, for *cost* purposes, scales
    the capacity (or token) dimension -- the static-shape approximation.
    """
    if axis == NP:
        return t
    if axis == IRR:
        if t.has_dim(Dim.CAPACITY):
            i = t.dim_index(Dim.CAPACITY)
        elif t.has_dim(Dim.TOKENS):
            i = t.dim_index(Dim.TOKENS)
        else:
            return t
        new_shape = list(t.shape)
        new_shape[i] = max(1, math.ceil(t.shape[i] / parts))
        return t.with_shape(tuple(new_shape))
    return t.split(axis, parts, index)


def chunk_duration_ms(
    instr: Instruction,
    program: Program,
    axes: InferenceResult,
    parts: int,
    costs: CostEstimator,
) -> float:
    """Predicted duration of one chunk of ``instr`` when split ``parts`` ways."""
    if instr.op == "all_to_all":
        out_axis = axes.axis_of(instr.outputs[0])
        # irregular chunks route through the estimator so the static-shape
        # approximation is conditioned on the layer's routing signature
        return costs.a2a_chunk_ms(
            instr, program, parts, irregular=(out_axis == IRR)
        )

    in_types = [
        chunk_type(program.type_of(v), axes.axis_of(v), parts)
        for v in instr.inputs
    ]
    attrs = instr.attrs
    if "capacity" in attrs and any(
        axes.axis_of(v) == IRR for v in list(instr.inputs) + list(instr.outputs)
    ):
        attrs = {
            **attrs,
            "capacity": max(1, math.ceil(attrs["capacity"] / parts)),
        }
    return costs.profiler.op_time_ms(instr.op, in_types, attrs)


def max_feasible_parts(
    instrs: list[Instruction],
    program: Program,
    axes: InferenceResult,
) -> int:
    """Largest k the partitioned dimensions allow (paper Sec. 5.1: "the
    number of partitions k is limited by the size of the partitioned
    dimension")."""
    limit = 1 << 30
    seen: set[int] = set()
    for ins in instrs:
        for v in list(ins.inputs) + list(ins.outputs):
            if v in seen:
                continue
            seen.add(v)
            axis = axes.axis_of(v)
            if axis >= 0:
                limit = min(limit, program.type_of(v).shape[axis])
    return max(limit, 1)


@dataclass
class Stage:
    """A maximal run of same-stream instructions within the range."""

    is_comm: bool
    indices: list[int] = field(default_factory=list)


def build_stages(instrs: list[Instruction]) -> list[Stage]:
    """Split the range into alternating computation/communication stages."""
    stages: list[Stage] = []
    for i, ins in enumerate(instrs):
        if not stages or stages[-1].is_comm != ins.is_comm:
            stages.append(Stage(is_comm=ins.is_comm))
        stages[-1].indices.append(i)
    return stages


@dataclass
class PipelineCost:
    """Cost estimate of one pipelined range."""

    total_ms: float
    pipeline_ms: float
    overhead_ms: float
    num_stages: int


def _boundary_overhead_ms(
    program: Program,
    instrs: list[Instruction],
    axes: InferenceResult,
    parts: int,
    costs: CostEstimator,
    consumers_after: set[int],
) -> float:
    """Cost of the split / reconstruct instructions at the range borders.

    Splitting along a leading axis is a strided copy of the chunk;
    reconstruction (concat or irregular accumulate) copies the full
    tensor.  This is the partition overhead that makes over-partitioning
    unprofitable (paper Challenge 2 / Fig. 13).
    """
    produced: set[int] = set()
    for ins in instrs:
        produced.update(ins.outputs)
    consumed: set[int] = set()
    for ins in instrs:
        consumed.update(ins.inputs)

    gpu = costs.profiler.gpu
    fw = costs.profiler.framework
    overhead = 0.0
    # entry splits: one split_chunk (or route_slice) per chunk per value
    for vid in consumed - produced:
        axis = axes.axis_of(vid)
        if axis == NP:
            continue
        nbytes = program.type_of(vid).nbytes
        overhead += parts * fw.launch_ms(1) + gpu.mem_time_ms(2.0 * nbytes / parts) * parts
    # exit reconstruction: one concat/accumulate per exported value
    for vid in produced & consumers_after:
        axis = axes.axis_of(vid)
        if axis == NP:
            continue
        nbytes = program.type_of(vid).nbytes
        overhead += fw.launch_ms(1) + gpu.mem_time_ms(2.0 * nbytes)
    return overhead


def pipeline_cost_ms(
    program: Program,
    instrs: list[Instruction],
    axes: InferenceResult,
    parts: int,
    costs: CostEstimator,
    consumers_after: set[int] | None = None,
) -> PipelineCost:
    """The paper's ``P(i, n, k)``: end-to-end time of the pipelined range."""
    n = len(instrs)
    durs = [
        [chunk_duration_ms(ins, program, axes, parts, costs) for ins in instrs]
        for _p in range(1)
    ][0]

    # producer index within the range, per value id
    producer: dict[int, int] = {}
    for i, ins in enumerate(instrs):
        for o in ins.outputs:
            producer[o] = i

    stages = build_stages(instrs)

    comp_free = 0.0
    comm_free = 0.0
    end: dict[tuple[int, int], float] = {}
    for stage in stages:
        for p in range(parts):
            for i in stage.indices:
                ins = instrs[i]
                dep = 0.0
                for v in ins.inputs:
                    j = producer.get(v)
                    if j is not None:
                        dep = max(dep, end.get((j, p), 0.0))
                if ins.op == "routing" and p > 0:
                    # capacity-passing gate: chunk p waits for chunk p-1
                    dep = max(dep, end.get((i, p - 1), 0.0))
                if stage.is_comm:
                    start = max(comm_free, dep)
                    comm_free = start + durs[i]
                    end[(i, p)] = comm_free
                else:
                    start = max(comp_free, dep)
                    comp_free = start + durs[i]
                    end[(i, p)] = comp_free

    pipeline_ms = max(end.values(), default=0.0)
    overhead = 0.0
    if consumers_after is not None:
        overhead = _boundary_overhead_ms(
            program, instrs, axes, parts, costs, consumers_after
        )
    return PipelineCost(
        total_ms=pipeline_ms + overhead,
        pipeline_ms=pipeline_ms,
        overhead_ms=overhead,
        num_stages=len(stages),
    )


def sequential_cost_ms(
    program: Program, instrs: list[Instruction], costs: CostEstimator
) -> float:
    """Unpartitioned execution time of a range (the k=1 / no-pipeline case)."""
    return sum(costs.duration_ms(ins, program) for ins in instrs)
