"""Property-based tests (hypothesis) for the staged pipeline scheduler.

Quantified over the staged topology space
(:func:`repro.testing.st_staged_cluster`), microbatch counts
(:func:`repro.testing.st_microbatch_count`), both schedules, and seeded
synthetic stage costs priced through the real
:class:`~repro.pipeline.P2PCostModel`:

- the scan scheduler is **bit-identical** to the naive event-replay
  reference on every config;
- no stage's subgroup ever runs two microbatch jobs concurrently
  (jobs execute back-to-back in program order, no overlap);
- every microbatch's forward completes before its backward starts on
  the same stage, and cross-stage p2p dependencies are respected;
- 1F1B's peak in-flight microbatch count never exceeds GPipe's on the
  identical config (GPipe's is exactly ``M``), matching the closed
  forms in :mod:`repro.pipeline.schedule`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import (
    SCHEDULES,
    P2PCostModel,
    StageCosts,
    peak_in_flight,
    replay_reference,
    schedule_order,
)
from repro.pipeline.simulate import schedule_jobs
from repro.testing import st_microbatch_count, st_staged_cluster

def synthetic_costs(staged, seed: int) -> StageCosts:
    """Seeded per-stage durations + real p2p pricing for one topology."""
    rng = np.random.default_rng(seed)
    s = staged.num_stages
    p2p = P2PCostModel(staged.base)
    fwd_bytes = [float(b) for b in rng.uniform(1e5, 5e7, size=max(s - 1, 0))]
    bwd_bytes = [float(b) for b in rng.uniform(1e5, 5e7, size=max(s - 1, 0))]
    return StageCosts(
        forward_ms=tuple(float(x) for x in rng.uniform(0.05, 4.0, size=s)),
        backward_ms=tuple(float(x) for x in rng.uniform(0.05, 8.0, size=s)),
        tail_ms=tuple(float(x) for x in rng.uniform(0.0, 2.0, size=s)),
        fwd_p2p_ms=p2p.boundary_times_ms(staged, fwd_bytes),
        bwd_p2p_ms=p2p.boundary_times_ms(staged, bwd_bytes),
    )


CONFIG = st.tuples(
    st_staged_cluster(),
    st_microbatch_count(),
    st.integers(0, 2**16),
    st.sampled_from(SCHEDULES),
)


@given(CONFIG)
@settings(max_examples=80, deadline=None)
def test_scan_bit_identical_to_replay(config):
    staged, microbatches, seed, schedule = config
    costs = synthetic_costs(staged, seed)
    orders = schedule_order(schedule, staged.num_stages, microbatches)
    assert schedule_jobs(costs, orders) == replay_reference(costs, orders)


@given(CONFIG)
@settings(max_examples=80, deadline=None)
def test_no_stage_runs_two_jobs_concurrently(config):
    staged, microbatches, seed, schedule = config
    costs = synthetic_costs(staged, seed)
    orders = schedule_order(schedule, staged.num_stages, microbatches)
    times = schedule_jobs(costs, orders)
    for order in orders:
        prev_end = 0.0
        for job in order:
            start, end = times[job.key]
            assert start >= prev_end, (
                f"{job} starts at {start} before the previous job on its "
                f"stage ended at {prev_end}"
            )
            assert end >= start
            prev_end = end


@given(CONFIG)
@settings(max_examples=80, deadline=None)
def test_forward_precedes_backward_and_p2p_deps_hold(config):
    staged, microbatches, seed, schedule = config
    costs = synthetic_costs(staged, seed)
    num = staged.num_stages
    orders = schedule_order(schedule, num, microbatches)
    times = schedule_jobs(costs, orders)
    for m in range(microbatches):
        for s in range(num):
            f_end = times[("F", s, m)][1]
            b_start = times[("B", s, m)][0]
            assert f_end <= b_start, (
                f"microbatch {m} backward on stage {s} started before "
                "its forward completed"
            )
            if s > 0:
                assert (
                    times[("F", s, m)][0]
                    >= times[("F", s - 1, m)][1] + costs.fwd_p2p_ms[s - 1]
                )
            if s < num - 1:
                assert (
                    times[("B", s, m)][0]
                    >= times[("B", s + 1, m)][1] + costs.bwd_p2p_ms[s]
                )


@given(st_staged_cluster(), st_microbatch_count())
@settings(max_examples=80, deadline=None)
def test_1f1b_peak_in_flight_never_exceeds_gpipe(staged, microbatches):
    num = staged.num_stages
    gpipe = schedule_order("gpipe", num, microbatches)
    ofob = schedule_order("1f1b", num, microbatches)
    for s in range(num):
        g, o = peak_in_flight(gpipe[s]), peak_in_flight(ofob[s])
        assert o <= g
        assert g == microbatches
        assert o == min(microbatches, num - s)


@given(CONFIG)
@settings(max_examples=40, deadline=None)
def test_both_schedules_run_the_same_job_set(config):
    staged, microbatches, seed, _ = config
    costs = synthetic_costs(staged, seed)
    keysets = []
    for schedule in SCHEDULES:
        orders = schedule_order(schedule, staged.num_stages, microbatches)
        keysets.append(set(schedule_jobs(costs, orders)))
    assert keysets[0] == keysets[1]
