"""Differential placement-testing harness (ISSUE 9).

The placement package's contracts, pinned deterministically:

- **Bit-identity**: :meth:`ExpertPlacement.pair_bytes` matches the
  pure-Python reference remap bit for bit, and the identity placement is
  a bit-identical no-op against the pre-placement owner-summed pipeline
  (``RoutingSignature.from_counts``, the routing models, the simulator).
- **Differential optimality**: on exhaustively enumerable configs the
  greedy :class:`PlacementOptimizer` matches
  :func:`brute_force_placement` or stays within the documented
  :data:`GREEDY_BOUND`; it is *never* worse than the identity placement.
- **Priced migration**: :func:`migration_cost_ms` follows the
  hierarchical network model (intra-node pulls are cheaper), and both
  the trace-replay drill and the live
  :class:`~repro.train.ReoptimizingTrainer` only migrate when
  ``win x horizon > cost`` -- replayed over the recorded drift trace in
  ``tests/fixtures/routing_trace.json``.
- **Stack threading**: signatures remap, plans serialize their
  placement, and the batch simulator prices placements through
  :class:`PlacedRoutingModel` with an identity fall-through.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import Plan, Scenario, compile
from repro.api.codec import signature_from_json, signature_to_json
from repro.core import LancetOptimizer
from repro.placement import (
    GREEDY_BOUND,
    ExpertPlacement,
    PlacedRoutingModel,
    PlacementOptimizer,
    brute_force_placement,
    migration_cost_ms,
    normalize_placement,
    placement_for,
    placement_map_fingerprint,
    placement_map_from_json,
    placement_map_is_identity,
    placement_map_to_json,
    remap_pair_bytes_reference,
    replay_trace,
)
from repro.runtime import (
    ClusterSpec,
    RoutingSignature,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_cluster,
    simulate_cluster_batch,
)
from repro.train import ReoptimizingTrainer
from repro.testing import build_grid_graph, make_drift_trace


def tiny_multi_node() -> ClusterSpec:
    """A 2x2 multi-node cluster small enough to brute-force against."""
    return ClusterSpec(
        name="tiny-2x2",
        gpu=ClusterSpec.p3dn(2).gpu,
        num_nodes=2,
        gpus_per_node=2,
        intra_bw_gbps=110.0,
        node_nic_gbps=12.5,
        alpha_intra_us=10.0,
        alpha_inter_us=28.0,
    )


def skewed_counts(rng, g: int, e: int, hot: int = 1, boost: int = 400):
    """A skewed dispatch-count matrix with ``hot`` hot expert columns."""
    counts = rng.integers(1, 120, size=(g, e))
    for h in rng.choice(e, size=hot, replace=False):
        counts[:, h] += boost
    return counts


def random_placement(rng, e: int, g: int, max_replicas: int = 3):
    assignments = []
    for _ in range(e):
        r = int(rng.integers(1, min(max_replicas, g) + 1))
        devices = rng.choice(g, size=r, replace=False)
        weights = rng.random(r) + 0.05
        fractions = weights / weights.sum()
        assignments.append(
            tuple((int(d), float(f)) for d, f in zip(devices, fractions))
        )
    return ExpertPlacement(e, g, tuple(assignments))


# -- artifact validation -----------------------------------------------------


class TestExpertPlacement:
    def test_validation_rejects_bad_placements(self):
        with pytest.raises(ValueError, match="no replica"):
            ExpertPlacement(2, 2, (((0, 1.0),), ()))
        with pytest.raises(ValueError, match="duplicate replica"):
            ExpertPlacement(1, 2, (((0, 0.5), (0, 0.5)),))
        with pytest.raises(ValueError, match="outside"):
            ExpertPlacement(1, 2, (((3, 1.0),),))
        with pytest.raises(ValueError, match="non-positive"):
            ExpertPlacement(1, 2, (((0, 0.0), (1, 1.0)),))
        with pytest.raises(ValueError, match="sum to"):
            ExpertPlacement(1, 2, (((0, 0.3), (1, 0.3)),))
        with pytest.raises(ValueError, match="covers 1 experts"):
            ExpertPlacement(2, 2, (((0, 1.0),),))

    def test_identity_layout_and_predicates(self):
        p = ExpertPlacement.identity(8, 4)
        assert p.is_identity
        assert p.devices_of(5) == (2,)  # expert e on device e // (E/G)
        assert p.owner_of(5) == 2
        assert p.replicated_experts == ()
        with pytest.raises(ValueError, match="divide evenly"):
            ExpertPlacement.identity(6, 4)

    def test_replicas_canonicalized_and_owner_by_fraction(self):
        a = ExpertPlacement(1, 4, (((3, 0.25), (1, 0.75)),))
        b = ExpertPlacement(1, 4, (((1, 0.75), (3, 0.25)),))
        assert a == b  # ascending-device canonical form
        assert a.fingerprint() == b.fingerprint()
        assert a.owner_of(0) == 1  # largest fraction wins
        assert a.replicated_experts == (0,)
        assert not a.is_identity

    def test_moved_experts_is_device_set_diff(self):
        identity = ExpertPlacement.identity(4, 2)
        moved = ExpertPlacement(
            4, 2, (((1, 1.0),), ((1, 1.0),), ((0, 1.0),), ((1, 1.0),))
        )
        assert moved.moved_experts(identity) == (0, 1, 2)
        assert identity.moved_experts(identity) == ()

    def test_fraction_matrix_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        p = random_placement(rng, 6, 3)
        mat = p.fraction_matrix()
        assert mat.shape == (6, 3)
        assert np.allclose(mat.sum(axis=1), 1.0)

    def test_json_roundtrip_and_fingerprint(self):
        rng = np.random.default_rng(5)
        p = random_placement(rng, 8, 4)
        assert ExpertPlacement.from_json(p.to_json()) == p
        assert ExpertPlacement.from_json(p.to_json()).fingerprint() == (
            p.fingerprint()
        )
        q = ExpertPlacement.identity(8, 4)
        assert p.fingerprint() != q.fingerprint()

    def test_placement_map_helpers(self):
        p = ExpertPlacement.identity(8, 4)
        q = random_placement(np.random.default_rng(0), 8, 4)
        assert normalize_placement(None) is None
        assert normalize_placement(q) == {None: q}
        assert normalize_placement({}) is None
        pm = {1: q, None: p}
        assert placement_for(pm, 1) is q
        assert placement_for(pm, 3) is p  # None key = default
        assert placement_for(None, 3) is None
        assert placement_map_is_identity(None)
        assert placement_map_is_identity({None: p})
        assert not placement_map_is_identity(pm)
        assert placement_map_from_json(placement_map_to_json(pm)) == pm
        assert placement_map_fingerprint(None) is None
        assert placement_map_fingerprint(pm) != placement_map_fingerprint(
            {None: p}
        )


# -- bit-identity of the remap ----------------------------------------------


class TestRemapBitIdentity:
    def test_identity_matches_owner_summed_reduction(self):
        rng = np.random.default_rng(11)
        counts = rng.integers(0, 300, size=(4, 8))
        bpt = 192.0
        pair = ExpertPlacement.identity(8, 4).pair_bytes(counts, bpt)
        expected = counts.reshape(4, 4, 2).sum(axis=2).astype(np.float64) * bpt
        assert np.array_equal(pair, expected)
        assert np.array_equal(
            pair,
            remap_pair_bytes_reference(
                ExpertPlacement.identity(8, 4), counts, bpt
            ),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_generic_remap_matches_reference_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        g, e = 4, 8
        placement = random_placement(rng, e, g)
        counts = rng.integers(0, 500, size=(g, e))
        bpt = float(rng.integers(1, 4096))
        assert np.array_equal(
            placement.pair_bytes(counts, bpt),
            remap_pair_bytes_reference(placement, counts, bpt),
        )

    def test_totals_conserved(self):
        rng = np.random.default_rng(13)
        counts = rng.integers(0, 200, size=(4, 8))
        placement = random_placement(rng, 8, 4)
        pair = placement.pair_bytes(counts, 64.0)
        assert pair.sum() == pytest.approx(counts.sum() * 64.0, rel=1e-12)
        # send loads are placement-invariant: every token goes somewhere
        assert np.allclose(pair.sum(axis=1), counts.sum(axis=1) * 64.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="must be"):
            ExpertPlacement.identity(8, 4).pair_bytes(np.zeros((4, 6)), 1.0)


# -- differential vs brute force ---------------------------------------------

DIFFERENTIAL_CONFIGS = [
    # (cluster factory, experts, seeds) -- all exhaustively enumerable
    (lambda: ClusterSpec.for_gpus("a100", 2), 4, range(6)),
    (lambda: ClusterSpec.for_gpus("a100", 2), 8, range(4)),
    (lambda: ClusterSpec.for_gpus("a100", 4), 4, range(6)),
    (tiny_multi_node, 4, range(6)),
    (tiny_multi_node, 8, range(3)),
]


class TestOptimizerDifferential:
    @pytest.mark.parametrize(
        "factory,e,seeds",
        DIFFERENTIAL_CONFIGS,
        ids=["a100x2-e4", "a100x2-e8", "a100x4-e4", "2x2-e4", "2x2-e8"],
    )
    def test_greedy_within_bound_of_brute_force(self, factory, e, seeds):
        cluster = factory()
        opt = PlacementOptimizer(cluster)
        for seed in seeds:
            rng = np.random.default_rng(seed)
            counts = skewed_counts(rng, cluster.num_gpus, e)
            result = opt.optimize(counts, 64.0)
            _, best_ms = brute_force_placement(counts, 64.0, cluster)
            # greedy may also replicate, so it can even beat the
            # single-replica brute-force optimum
            assert result.bottleneck_ms <= best_ms * GREEDY_BOUND + 1e-9, (
                f"seed {seed}: greedy {result.bottleneck_ms} vs "
                f"brute force {best_ms}"
            )
            assert best_ms <= result.identity_ms + 1e-9

    def test_exact_agreement_on_single_node_pairs(self):
        """On the smallest config (2 devices, 4 experts) the two-basin
        descent lands on the exhaustive optimum exactly."""
        cluster = ClusterSpec.for_gpus("a100", 2)
        opt = PlacementOptimizer(cluster)
        for seed in range(10):
            rng = np.random.default_rng(seed)
            counts = skewed_counts(rng, 2, 4)
            result = opt.optimize(counts, 64.0)
            _, best_ms = brute_force_placement(counts, 64.0, cluster)
            assert result.bottleneck_ms <= best_ms + 1e-9, f"seed {seed}"

    def test_never_worse_than_identity(self):
        for factory, e, seeds in DIFFERENTIAL_CONFIGS:
            cluster = factory()
            opt = PlacementOptimizer(cluster)
            for seed in seeds:
                rng = np.random.default_rng(100 + seed)
                counts = skewed_counts(rng, cluster.num_gpus, e, hot=2)
                result = opt.optimize(counts, 128.0)
                assert result.bottleneck_ms <= result.identity_ms + 1e-9
                assert result.improvement >= -1e-12

    def test_balanced_traffic_is_a_fixed_point(self):
        """Perfectly balanced counts leave the identity placement alone."""
        cluster = ClusterSpec.for_gpus("a100", 4)
        counts = np.full((4, 8), 37, dtype=np.int64)
        result = PlacementOptimizer(cluster).optimize(counts, 64.0)
        assert result.placement.is_identity
        assert result.moves == ()
        assert result.improvement_ms == 0.0

    def test_hot_expert_triggers_replication_or_move(self):
        """A single hot expert's receive stream gets flattened: the
        optimizer moves or shadows it for a strict bottleneck win."""
        cluster = ClusterSpec.for_gpus("a100", 4)
        rng = np.random.default_rng(2)
        counts = rng.integers(1, 40, size=(4, 8))
        counts[:, 1] += 900  # expert 1 is hot, device 0 overloaded
        result = PlacementOptimizer(cluster).optimize(counts, 256.0)
        assert result.improvement > 0.05
        assert result.moves
        touched = {m.expert for m in result.moves}
        assert 1 in touched
        assert result.placement.moved_experts(
            ExpertPlacement.identity(8, 4)
        ) or result.placement.replicated_experts

    def test_search_telemetry_is_consistent(self):
        cluster = tiny_multi_node()
        rng = np.random.default_rng(4)
        counts = skewed_counts(rng, 4, 8)
        result = PlacementOptimizer(cluster).optimize(counts, 64.0)
        assert result.evaluations > 0
        for move in result.moves:
            assert move.win_ms > 0  # every accepted step strictly improved
        if result.moves:
            assert result.moves[0].cost_before_ms == pytest.approx(
                result.identity_ms
            )

    def test_brute_force_refuses_large_configs(self):
        cluster = ClusterSpec.for_gpus("a100", 4)
        with pytest.raises(ValueError, match="enumerate"):
            brute_force_placement(
                np.ones((4, 16)), 1.0, cluster, max_assignments=1000
            )

    def test_counts_free_signature_rejected(self):
        cluster = ClusterSpec.for_gpus("a100", 2)
        sig = RoutingSignature.uniform(2)
        with pytest.raises(ValueError, match="provenance"):
            PlacementOptimizer(cluster).optimize(sig)

    def test_signature_counts_are_accepted(self):
        """Optimizing a counts-carrying signature equals optimizing the
        raw counts it was summarized from."""
        cluster = ClusterSpec.for_gpus("a100", 4)
        rng = np.random.default_rng(8)
        counts = skewed_counts(rng, 4, 8)
        sig = RoutingSignature.from_counts(counts, bytes_per_token=64.0)
        opt = PlacementOptimizer(cluster)
        from_sig = opt.optimize(sig)
        from_raw = opt.optimize(counts, 64.0)
        assert from_sig.placement == from_raw.placement
        assert from_sig.bottleneck_ms == from_raw.bottleneck_ms


# -- migration pricing -------------------------------------------------------


class TestMigrationPricing:
    def test_no_move_costs_nothing(self):
        cluster = tiny_multi_node()
        p = ExpertPlacement.identity(8, 4)
        assert migration_cost_ms(p, p, cluster, 1e9) == 0.0
        # dropping a replica frees a device: nothing to transfer either
        split = ExpertPlacement(
            8,
            4,
            (((0, 0.5), (1, 0.5)),) + p.assignments[1:],
        )
        assert migration_cost_ms(split, p, cluster, 1e9) == 0.0

    def test_intra_node_pull_cheaper_than_inter_node(self):
        cluster = tiny_multi_node()  # devices 0,1 node 0; 2,3 node 1
        identity = ExpertPlacement.identity(4, 4)

        def moved_to(target):
            rows = list(identity.assignments)
            rows[0] = ((target, 1.0),)
            return ExpertPlacement(4, 4, tuple(rows))

        nbytes = 64 * 2**20
        intra = migration_cost_ms(identity, moved_to(1), cluster, nbytes)
        inter = migration_cost_ms(identity, moved_to(2), cluster, nbytes)
        assert 0.0 < intra < inter

    def test_cost_scales_with_weight_bytes(self):
        cluster = ClusterSpec.for_gpus("a100", 4)
        identity = ExpertPlacement.identity(4, 4)
        rows = list(identity.assignments)
        rows[0] = ((3, 1.0),)
        moved = ExpertPlacement(4, 4, tuple(rows))
        small = migration_cost_ms(identity, moved, cluster, 2**20)
        large = migration_cost_ms(identity, moved, cluster, 2**30)
        assert small < large

    def test_mismatched_placements_rejected(self):
        cluster = ClusterSpec.for_gpus("a100", 4)
        with pytest.raises(ValueError, match="different expert counts"):
            migration_cost_ms(
                ExpertPlacement.identity(4, 4),
                ExpertPlacement.identity(8, 4),
                cluster,
                1.0,
            )


# -- RoutingSignature.remap --------------------------------------------------


class TestSignatureRemap:
    def _sig(self, seed=21, g=4, e=8, bpt=128.0):
        rng = np.random.default_rng(seed)
        counts = skewed_counts(rng, g, e)
        return counts, RoutingSignature.from_counts(counts, bytes_per_token=bpt)

    def test_identity_and_none_are_noops(self):
        _, sig = self._sig()
        assert sig.remap(None) is sig
        assert sig.remap(ExpertPlacement.identity(8, 4)) is sig

    def test_counts_free_signature_cannot_remap(self):
        rng = np.random.default_rng(0)
        sig = RoutingSignature.from_pair_bytes(
            np.abs(rng.standard_normal((4, 4))) * 1e6
        )
        with pytest.raises(ValueError, match="provenance"):
            sig.remap(random_placement(rng, 8, 4))

    def test_remap_matches_from_pair_bytes_of_the_remap(self):
        counts, sig = self._sig()
        placement = random_placement(np.random.default_rng(3), 8, 4)
        remapped = sig.remap(placement)
        expected = RoutingSignature.from_pair_bytes(
            placement.pair_bytes(counts, 128.0)
        )
        assert remapped.load == expected.load
        assert remapped.mean_send_bytes == expected.mean_send_bytes
        # provenance carries over: the remapped signature stays remappable
        assert remapped.expert_counts == sig.expert_counts
        assert remapped.bytes_per_token == sig.bytes_per_token

    def test_optimized_placement_reduces_signature_bottleneck(self):
        counts, sig = self._sig(seed=7)
        cluster = ClusterSpec.for_gpus("a100", 4)
        result = PlacementOptimizer(cluster).optimize(counts, 128.0)
        remapped = sig.remap(result.placement)
        before = sig.bottleneck * sig.mean_send_bytes
        after = remapped.bottleneck * (remapped.mean_send_bytes or before)
        assert after <= before + 1e-9

    def test_expert_count_mismatch_rejected(self):
        _, sig = self._sig()
        swapped = ExpertPlacement(
            4, 4, (((1, 1.0),), ((0, 1.0),), ((2, 1.0),), ((3, 1.0),))
        )
        with pytest.raises(ValueError, match="experts"):
            sig.remap(swapped)

    def test_codec_roundtrips_count_provenance(self):
        _, sig = self._sig()
        assert signature_from_json(signature_to_json(sig)) == sig
        remapped = sig.remap(random_placement(np.random.default_rng(9), 8, 4))
        assert signature_from_json(signature_to_json(remapped)) == remapped


# -- simulator threading -----------------------------------------------------


class TestPlacedRoutingModel:
    def test_identity_fall_through_is_bit_identical(self):
        base = SyntheticRoutingModel(seed=5, concentration=0.5)
        placed = PlacedRoutingModel(
            SyntheticRoutingModel(seed=5, concentration=0.5),
            ExpertPlacement.identity(8, 4),
        )
        args = ("layer0", 4, 8, 64, 16, 2.0)
        assert np.array_equal(
            placed.pair_bytes_for(*args), base.pair_bytes_for(*args)
        )
        assert np.array_equal(
            placed.counts_for("layer0", 4, 8, 64, 16),
            base.counts_for("layer0", 4, 8, 64, 16),
        )

    def test_placement_reroutes_bytes_but_not_tokens(self):
        placement = random_placement(np.random.default_rng(1), 8, 4)
        base = SyntheticRoutingModel(seed=5, concentration=0.5)
        placed = PlacedRoutingModel(
            SyntheticRoutingModel(seed=5, concentration=0.5), placement
        )
        counts = placed.counts_for("layer0", 4, 8, 64, 16)
        assert np.array_equal(counts, base.counts_for("layer0", 4, 8, 64, 16))
        pair = placed.pair_bytes_for("layer0", 4, 8, 64, 16, 2.0)
        assert np.array_equal(pair, placement.pair_bytes(counts, 2.0))
        placed.clear()  # clears the shared base cache
        assert not placed.base._cache

    def test_identity_placement_simulates_bit_identically(self):
        """Pricing a candidate placement through the batch simulator:
        the identity candidate reproduces the unplaced makespan exactly,
        and simulate_cluster agrees with the batch path."""
        graph = build_grid_graph(2, 4, 4, 64)
        cluster = ClusterSpec.for_gpus("a100", 4)
        program, _ = LancetOptimizer(cluster).optimize(graph)
        config = SimulationConfig(
            cluster,
            padded_a2a=False,
            routing=SyntheticRoutingModel(seed=3, concentration=0.5),
        )
        e = graph.cfg.num_experts(4)
        opt = PlacementOptimizer(cluster)
        identity = ExpertPlacement.identity(e, 4)
        shadow = random_placement(np.random.default_rng(2), e, 4)
        makespans = opt.evaluate_with_simulation(
            program, config, [identity, shadow]
        )
        baseline = simulate_cluster(
            program,
            cost=None,
            config=dataclasses.replace(
                config, routing=SyntheticRoutingModel(seed=3, concentration=0.5)
            ),
        ).makespan
        assert makespans[0] == baseline
        assert makespans[1] != makespans[0]


# -- plan / store serialization ---------------------------------------------


class TestPlanSerialization:
    @pytest.fixture(scope="class")
    def base_plan(self):
        return compile(Scenario.preset("tiny/a100x8"))

    def test_placement_free_documents_unchanged(self, base_plan):
        doc = base_plan.to_dict()
        assert "placement" not in doc
        assert Plan.from_dict(doc).placement is None

    def test_plan_roundtrips_placement(self, base_plan):
        placement = {
            1: random_placement(np.random.default_rng(4), 16, 8),
            None: ExpertPlacement.identity(16, 8),
        }
        plan = Plan(
            cluster=base_plan.cluster,
            policy=base_plan.policy,
            fingerprint=base_plan.fingerprint,
            predicted_iteration_ms=base_plan.predicted_iteration_ms,
            program=base_plan.program,
            signatures=base_plan.signatures,
            placement=placement,
        )
        doc = plan.to_dict()
        assert "placement" in doc
        loaded = Plan.from_dict(doc)
        assert loaded.placement == plan.placement
        assert placement_map_fingerprint(loaded.placement) == (
            placement_map_fingerprint(plan.placement)
        )
        assert "placement" in plan.summary()

    def test_save_load_roundtrip(self, base_plan, tmp_path):
        placement = random_placement(np.random.default_rng(6), 16, 8)
        plan = Plan(
            cluster=base_plan.cluster,
            policy=base_plan.policy,
            fingerprint=base_plan.fingerprint,
            predicted_iteration_ms=base_plan.predicted_iteration_ms,
            program=base_plan.program,
            placement=placement,
        )
        path = tmp_path / "placed.plan.json"
        plan.save(path)
        loaded = Plan.load(path)
        assert loaded.placement == {None: placement}
        assert loaded.program.instructions == plan.program.instructions


# -- trace replay drill ------------------------------------------------------


class TestReplayDrill:
    def test_replay_migrates_and_improves_on_recorded_trace(
        self, routing_trace
    ):
        cluster = ClusterSpec.for_gpus("a100", routing_trace["num_devices"])
        report = replay_trace(
            routing_trace["steps"],
            cluster,
            bytes_per_token=routing_trace["bytes_per_token"],
            expert_weight_bytes=8 * 2**20,
            horizon_steps=20,
        )
        assert len(report.identity_ms) == len(routing_trace["steps"])
        assert len(report.adaptive_ms) == len(routing_trace["steps"])
        assert report.migrations  # the hot episodes price in
        assert report.improvement_ms > 0
        assert 0 < report.improvement < 1
        assert report.final_placement is not None
        for ev in report.events:
            # pricing rule is the recorded one, bit for bit
            assert ev.migrated == (
                ev.win_ms * ev.horizon_steps > ev.migration_cost_ms
            )
            assert ev.to_dict()["migrated"] == ev.migrated

    def test_unpayable_migrations_are_rejected(self):
        """With absurdly expensive expert weights no switch prices in:
        the adaptive trajectory equals the identity trajectory."""
        trace = make_drift_trace(4, 8, steps=6, seed=3)
        cluster = ClusterSpec.for_gpus("a100", 4)
        report = replay_trace(
            trace,
            cluster,
            bytes_per_token=64.0,
            expert_weight_bytes=1e15,
            horizon_steps=2,
        )
        assert not report.migrations
        assert report.adaptive_ms == report.identity_ms
        assert report.final_placement.is_identity

    def test_replay_validates_knobs(self):
        cluster = ClusterSpec.for_gpus("a100", 4)
        with pytest.raises(ValueError, match="horizon_steps"):
            replay_trace([], cluster, expert_weight_bytes=1.0, horizon_steps=0)
        with pytest.raises(ValueError, match="replan_every"):
            replay_trace(
                [], cluster, expert_weight_bytes=1.0, replan_every=0
            )


# -- the live trainer --------------------------------------------------------


class TestTrainerMigration:
    @pytest.fixture(scope="class")
    def placed_setup(self, routing_trace):
        g = routing_trace["num_devices"]
        graph = build_training_graph_for(g)
        cluster = ClusterSpec.for_gpus("a100", g)
        return graph, cluster

    def _trainer(self, graph, cluster, with_placement: bool):
        popt = PlacementOptimizer(cluster) if with_placement else None
        return ReoptimizingTrainer(
            graph,
            LancetOptimizer(cluster),
            drift_threshold=0.01,
            seed=0,
            placement_optimizer=popt,
            migration_horizon_steps=200,
        )

    def test_replayed_drift_triggers_priced_migration(
        self, placed_setup, routing_trace
    ):
        graph, cluster = placed_setup
        layer = graph.moe_layers[0].layer
        trainer = self._trainer(graph, cluster, with_placement=True)
        plain = self._trainer(graph, cluster, with_placement=False)
        for counts in routing_trace["steps"]:
            obs = {layer: counts}
            trainer.replay_observation(
                obs, bytes_per_token=routing_trace["bytes_per_token"]
            )
            plain.replay_observation(
                obs, bytes_per_token=routing_trace["bytes_per_token"]
            )
        assert trainer.migration_events
        migrated = [ev for ev in trainer.migration_events if ev.migrated]
        assert migrated
        ev = migrated[0]
        assert ev.layer is None  # aggregate decision across layers
        assert ev.win_ms * ev.horizon_steps > ev.migration_cost_ms
        assert all(lay == layer for lay, _ in ev.moved_experts)
        # the accepted placement is installed end to end
        assert trainer._placements is not None
        assert trainer.optimizer.placement == trainer._placements
        assert not placement_map_is_identity(trainer._placements)
        # migration improves the modeled iteration time vs. the same
        # trace replayed without a placement optimizer
        assert trainer.predicted_ms <= plain.predicted_ms + 1e-9
        assert plain.migration_events == []

    def test_numeric_step_still_runs_after_migration(
        self, placed_setup, routing_trace
    ):
        graph, cluster = placed_setup
        layer = graph.moe_layers[0].layer
        trainer = self._trainer(graph, cluster, with_placement=True)
        hot = routing_trace["steps"][10]  # inside the first hot episode
        for counts in (routing_trace["steps"][0], hot, hot):
            trainer.replay_observation(
                {layer: counts},
                bytes_per_token=routing_trace["bytes_per_token"],
            )
        result = trainer.step()
        assert np.isfinite(result.mean_loss)

    def test_placement_qualifies_plan_cache_keys(self, placed_setup):
        """A placement switch must not alias the pre-switch plan cache
        entries: the cache key embeds the placement fingerprint."""
        graph, cluster = placed_setup
        trainer = self._trainer(graph, cluster, with_placement=True)
        layer = graph.moe_layers[0].layer
        rng = np.random.default_rng(0)
        counts = skewed_counts(rng, cluster.num_gpus, 8, boost=800)
        trainer.replay_observation({layer: counts}, bytes_per_token=1024.0)
        keys = list(trainer._plan_cache._data.keys())
        if trainer._placements is not None:
            fp = placement_map_fingerprint(trainer._placements)
            assert any(fp in key for key in keys)


def build_training_graph_for(num_gpus: int):
    """The tiny training graph at the fixture's device count."""
    from repro import GPT2MoEConfig, build_training_graph

    return build_training_graph(
        GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=num_gpus
    )
