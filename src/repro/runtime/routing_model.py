"""Synthetic routing-load realization for timed simulation.

The duration of an *irregular* all-to-all depends on how many tokens each
device actually routed to each expert -- known only at runtime (paper
Sec. 3 / Fig. 10).  On real hardware this comes from the gate; in the
timed simulator we draw it from a controllable load model: expert
popularity follows a Dirichlet distribution whose concentration sets the
imbalance (large = balanced experts, small = hot experts).

Draws are cached per (layer) key so the forward and backward all-to-alls
of the same MoE layer -- and all chunks of a partitioned all-to-all -- see
a consistent realization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np


@dataclass(frozen=True)
class RoutingSignature:
    """Compact, hashable summary of one routing realization.

    ``load[i]`` is device ``i``'s relative all-to-all load: its busiest
    byte stream (send or receive) divided by the mean per-device send
    bytes.  Under perfectly balanced routing every entry is exactly
    ``1.0``; a hot-expert owner shows up as an entry > 1.  The cost
    model prices an irregular all-to-all at the bottleneck device's
    *realized* bytes, ``mean_send_bytes * max(load)`` -- capacity
    clipping means realized traffic can sit well below the padded
    buffer, so the absolute scale matters as much as the shape.

    Signatures are the currency of the re-optimization loop: the
    optimizer plans against one, the trainer measures drift between
    them, and plan caches are keyed by their quantized form.
    """

    load: tuple[float, ...]
    #: realized mean per-device send bytes of the full (unpartitioned)
    #: collective; 0.0 = unknown, pricing falls back to the static size
    mean_send_bytes: float = 0.0
    #: optional per-phase bottleneck coefficients of the 2-hop
    #: hierarchical all-to-all (intra gather, node-aggregated inter
    #: exchange, intra scatter), each relative to the mean per-device
    #: send bytes (:meth:`Topology.phase_load_coefficients`).  ``None``
    #: when the realization was summarized without a topology; the cost
    #: model then falls back to uniform-traffic coefficients.
    hier_load: tuple[float, float, float] | None = None
    #: optional provenance: the raw ``[devices, experts]`` dispatch
    #: counts this signature was summarized from (as nested tuples).
    #: Attached by :meth:`from_counts`; required by :meth:`remap` --
    #: expert-level placement cannot be recovered from the collapsed
    #: pair-bytes view.  Excluded from :meth:`key` (plan caches key on
    #: the realized traffic shape, not its expert decomposition).
    expert_counts: tuple | None = None
    #: bytes each routed token moves; only meaningful alongside
    #: ``expert_counts`` (0.0 = no provenance attached)
    bytes_per_token: float = 0.0

    def __post_init__(self) -> None:
        if not self.load:
            raise ValueError("signature needs at least one device load")
        # zero is legal: extreme clipping can leave a device with no
        # accepted traffic at all, and a zero load never bottlenecks
        if any(v < 0 for v in self.load):
            raise ValueError("device loads must be non-negative")
        # memo for :meth:`key`: the planner asks for the quantized form
        # thousands of times per re-plan (every cached a2a estimate keys
        # on it), so recomputing the rounding each time is pure waste.
        # object.__setattr__ because the dataclass is frozen; the memo is
        # not a field, so equality/hash are untouched.
        object.__setattr__(self, "_key_memo", {})

    @classmethod
    def uniform(cls, num_devices: int) -> "RoutingSignature":
        """The balanced signature the legacy cost model assumes."""
        return cls(load=(1.0,) * num_devices)

    @classmethod
    def from_pair_bytes(
        cls, pair_bytes: np.ndarray, topology=None
    ) -> "RoutingSignature":
        """Signature of a realized pair-bytes matrix (``[s, d]`` bytes
        from device s to device d, as in
        :meth:`ClusterSpec.a2a_device_times_ms`).

        Pass the cluster's :class:`~repro.runtime.topology.Topology` to
        also record the hierarchical phase-load coefficients, which lets
        the cost model price the 2-hop algorithm for this realization
        (ignored for single-node or mismatched topologies).
        """
        pair = np.asarray(pair_bytes, dtype=np.float64)
        send = pair.sum(axis=1)
        recv = pair.sum(axis=0)
        per_device = np.maximum(send, recv)
        ref = send.mean()
        if ref <= 0 or np.allclose(per_device, per_device[0], rtol=1e-12):
            # balanced (or empty) realization: collapse to the exact
            # uniform signature so skew-aware pricing reduces to the
            # legacy estimate bit-for-bit
            return cls.uniform(pair.shape[0])
        hier = None
        if (
            topology is not None
            and topology.multi_node
            and topology.num_gpus == pair.shape[0]
        ):
            hier = topology.phase_load_coefficients(pair)
        return cls(
            load=tuple(float(v) for v in per_device / ref),
            mean_send_bytes=float(ref),
            hier_load=hier,
        )

    @classmethod
    def from_counts(
        cls,
        counts: np.ndarray,
        bytes_per_token: float = 1.0,
        topology=None,
    ) -> "RoutingSignature":
        """Signature from observed dispatch counts ``[devices, experts]``
        (expert ``e`` owned by device ``e // (E / G)``).

        The raw counts are attached as :attr:`expert_counts` provenance,
        which is what makes the signature :meth:`remap`-able under an
        expert placement later.
        """
        raw = np.asarray(counts)
        counts = np.asarray(counts, dtype=np.float64)
        g, e = counts.shape
        if e % g != 0:
            raise ValueError(f"experts ({e}) must divide evenly over {g} devices")
        per_owner = counts.reshape(g, g, e // g).sum(axis=2)
        sig = cls.from_pair_bytes(
            per_owner * float(bytes_per_token), topology=topology
        )
        return replace(
            sig,
            expert_counts=tuple(tuple(float(v) for v in row) for row in raw),
            bytes_per_token=float(bytes_per_token),
        )

    @property
    def num_devices(self) -> int:
        return len(self.load)

    @property
    def bottleneck(self) -> float:
        """Relative load of the busiest device (1.0 = balanced)."""
        return max(self.load)

    @property
    def is_uniform(self) -> bool:
        return all(v == 1.0 for v in self.load)

    def drift_from(self, other: "RoutingSignature") -> float:
        """Routing drift vs another signature.

        The larger of (i) the mean absolute per-device load change (a
        hot expert moving 2x traffic to one of G devices contributes
        ~1/G) and (ii) the relative change in realized traffic volume.
        0 for identical realizations; this is the quantity the
        re-optimization loop thresholds on.
        """
        if other.num_devices != self.num_devices:
            raise ValueError("signatures cover different device counts")
        a = np.asarray(self.load)
        b = np.asarray(other.load)
        drift = float(np.abs(a - b).mean())
        if self.mean_send_bytes > 0 and other.mean_send_bytes > 0:
            hi = max(self.mean_send_bytes, other.mean_send_bytes)
            drift = max(
                drift,
                abs(self.mean_send_bytes - other.mean_send_bytes) / hi,
            )
        return drift

    def key(self, digits: int = 2) -> tuple:
        """Quantized form for plan-cache keys: nearby realizations that
        would yield the same plan share a key."""
        hit = self._key_memo.get(digits)
        if hit is None:
            scale = round(self.mean_send_bytes / 2.0**20, digits)
            hit = (scale,) + tuple(round(v, digits) for v in self.load)
            if self.hier_load is not None:
                # hierarchy-aware signatures must never collide with the
                # flat form of the same loads in plan/estimate caches
                hit += tuple(round(v, digits) for v in self.hier_load)
            self._key_memo[digits] = hit
        return hit

    def remap(self, placement, topology=None) -> "RoutingSignature":
        """The signature this routing realization produces under an
        expert placement.

        Folds the placement's replica/"shadow" traffic splits into the
        pair-bytes matrix (via
        :meth:`~repro.placement.ExpertPlacement.pair_bytes`, which is
        bit-identical to the pure-Python reference) and re-summarizes.
        ``None`` or an identity placement returns ``self`` unchanged --
        the strongest possible no-op guarantee.  Requires
        :attr:`expert_counts` provenance (:meth:`from_counts`): the
        collapsed pair-bytes view cannot say which *expert* each byte
        was for, so a counts-free signature cannot be remapped.
        """
        if placement is None:
            return self
        if getattr(placement, "is_identity", False):
            return self
        if self.expert_counts is None:
            raise ValueError(
                "signature has no expert_counts provenance; build it with "
                "RoutingSignature.from_counts to make it remappable"
            )
        counts = np.asarray(self.expert_counts)
        if placement.num_experts != counts.shape[1]:
            raise ValueError(
                f"placement covers {placement.num_experts} experts, "
                f"signature observed {counts.shape[1]}"
            )
        bpt = self.bytes_per_token
        pair = placement.pair_bytes(counts, bpt)
        sig = RoutingSignature.from_pair_bytes(pair, topology=topology)
        # tokens don't move under a placement -- provenance carries over
        return replace(
            sig, expert_counts=self.expert_counts, bytes_per_token=bpt
        )


@dataclass
class SyntheticRoutingModel:
    """Samples realized per-(device, expert) token counts.

    Attributes
    ----------
    seed:
        Base RNG seed (each key derives an independent stream).
    concentration:
        Dirichlet concentration of expert popularity.  ~16 gives the mild
        imbalance typical of gates trained with a load-balancing loss;
        1 gives heavy skew (hot experts).
    hot_experts:
        Number of experts per layer that receive a deterministic extra
        share of the traffic (drawn once per layer key).  0 disables the
        mechanism and reproduces the plain Dirichlet draws exactly.
    hot_boost:
        Fraction of total popularity mass concentrated on the hot
        experts (0 <= hot_boost < 1).  The remaining ``1 - hot_boost`` is
        distributed by the Dirichlet draw, so the realization stays a
        valid distribution per device.
    """

    seed: int = 0
    concentration: float = 16.0
    hot_experts: int = 0
    hot_boost: float = 0.0
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.hot_experts < 0:
            raise ValueError(f"hot_experts must be >= 0, got {self.hot_experts}")
        if not 0.0 <= self.hot_boost < 1.0:
            raise ValueError(
                f"hot_boost must be in [0, 1), got {self.hot_boost}"
            )

    def counts_for(
        self,
        key: object,
        num_devices: int,
        num_experts: int,
        tokens_per_device: int,
        capacity: int,
        fraction: float = 1.0,
    ) -> np.ndarray:
        """Realized token counts [num_devices, num_experts], capped at C.

        ``fraction`` scales the token pool (a pipeline chunk carrying
        ``1/k`` of the batch asks with ``fraction = 1/k``); all chunks of
        the same ``key`` share one popularity draw, so their counts are
        consistent fractions of the same routing outcome.
        """
        cache_key = (key, num_devices, num_experts)
        pop = self._cache.get(cache_key)
        if pop is None:
            rng = np.random.default_rng(
                (hash(cache_key) & 0x7FFFFFFF) ^ self.seed
            )
            alpha = np.full(num_experts, self.concentration)
            # each device draws its own popularity (token mixes differ)
            pop = rng.dirichlet(alpha, size=num_devices)
            if self.hot_experts > 0 and self.hot_boost > 0.0:
                # per-layer hot experts: every device concentrates an
                # extra hot_boost of its mass on the same few experts
                # (drawn after the Dirichlet so hot_experts=0 reproduces
                # the plain draws bit-for-bit)
                k = min(self.hot_experts, num_experts)
                hot = rng.choice(num_experts, size=k, replace=False)
                pop = pop * (1.0 - self.hot_boost)
                pop[:, hot] += self.hot_boost / k
            self._cache[cache_key] = pop
        tokens = tokens_per_device * fraction
        counts = np.minimum(np.round(pop * tokens), capacity * fraction)
        return np.ceil(counts).astype(np.int64)

    def pair_bytes_for(
        self,
        key: object,
        num_devices: int,
        num_experts: int,
        tokens_per_device: int,
        capacity: int,
        bytes_per_token: int,
        fraction: float = 1.0,
    ) -> np.ndarray:
        """Bytes flowing between each device pair in an irregular A2A.

        Expert ``e`` lives on device ``e // (E / G)``; the (s, d) entry
        sums the realized counts of all of d's experts as seen by s.
        """
        counts = self.counts_for(
            key, num_devices, num_experts, tokens_per_device, capacity, fraction
        )
        el = num_experts // num_devices
        # sum expert columns by owner device
        per_owner = counts.reshape(num_devices, num_devices, el).sum(axis=2)
        return per_owner.astype(np.float64) * float(bytes_per_token)

    def clear(self) -> None:
        """Drop all cached draws (new iteration / new experiment)."""
        self._cache.clear()


@dataclass
class UniformRoutingModel:
    """Perfectly balanced routing: every expert receives the same load.

    Useful as the 'expected' realization the cost model assumes, and for
    tests that need deterministic collective sizes.
    """

    fill: float = 1.0  # fraction of capacity actually used

    def counts_for(
        self,
        key: object,
        num_devices: int,
        num_experts: int,
        tokens_per_device: int,
        capacity: int,
        fraction: float = 1.0,
    ) -> np.ndarray:
        per = min(tokens_per_device * fraction / num_experts, capacity * fraction)
        per = int(np.ceil(per * self.fill))
        return np.full((num_devices, num_experts), per, dtype=np.int64)

    def pair_bytes_for(
        self,
        key: object,
        num_devices: int,
        num_experts: int,
        tokens_per_device: int,
        capacity: int,
        bytes_per_token: int,
        fraction: float = 1.0,
    ) -> np.ndarray:
        counts = self.counts_for(
            key, num_devices, num_experts, tokens_per_device, capacity, fraction
        )
        el = num_experts // num_devices
        per_owner = counts.reshape(num_devices, num_devices, el).sum(axis=2)
        return per_owner.astype(np.float64) * float(bytes_per_token)

    def clear(self) -> None:
        """No cache to clear (stateless)."""
