"""repro: a reproduction of Lancet (MLSys 2024).

Lancet accelerates Mixture-of-Experts training by overlapping all-to-all
communication with computation across the *whole* training graph: weight-
gradient computations are rescheduled to hide backward-pass all-to-alls,
and non-MoE forward computation is partitioned into a computation/
communication pipeline around each MoE layer.

Typical usage::

    from repro import (
        GPT2MoEConfig, build_training_graph, ClusterSpec, LancetOptimizer,
        SimulationConfig, simulate_program,
    )

    graph = build_training_graph(GPT2MoEConfig.gpt2_s_moe(),
                                 batch=24, seq=512, num_gpus=16)
    cluster = ClusterSpec.p4de(2)
    optimized, report = LancetOptimizer(cluster).optimize(graph)
"""

from .core import (
    LancetHyperParams,
    LancetOptimizer,
    LancetReport,
    OperatorPartitionPass,
    WeightGradSchedulePass,
)
from .ir import InstrKind, PassManager, Program, validate
from .models import GPT2MoEConfig, ModelGraph, RunConfig, build_training_graph
from .runtime import (
    ClusterSpec,
    ClusterTimeline,
    RoutingSignature,
    SimulationConfig,
    SyntheticRoutingModel,
    Timeline,
    Topology,
    UniformRoutingModel,
    simulate_cluster,
    simulate_program,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "ClusterTimeline",
    "GPT2MoEConfig",
    "InstrKind",
    "LancetHyperParams",
    "LancetOptimizer",
    "LancetReport",
    "ModelGraph",
    "OperatorPartitionPass",
    "PassManager",
    "Program",
    "RoutingSignature",
    "RunConfig",
    "SimulationConfig",
    "SyntheticRoutingModel",
    "Timeline",
    "Topology",
    "UniformRoutingModel",
    "WeightGradSchedulePass",
    "build_training_graph",
    "simulate_cluster",
    "simulate_program",
    "validate",
    "__version__",
]
