"""Caching op profiler (paper Sec. 3, Fig. 7).

Lancet profiles every (partitioned) operator once per shape and caches
the result; the cached time is reused across the many cost queries the
DP partition search makes.  On real hardware profiling means running the
kernel; here it means querying the analytic device model -- the caching
structure and query surface are the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Instruction, Program, TensorType, get_op
from ..runtime.device import FrameworkProfile, GPUSpec
from ..runtime.simulate import DISPATCH_OPS
from .cache import LRUCache

#: default bound of the (op, shapes, attrs) -> time cache.  Generous --
#: a model profiles a few thousand distinct shapes -- but finite, so a
#: long-lived profiler shared across many programs cannot leak.
DEFAULT_PROFILE_CACHE_SIZE = 65536


@dataclass
class CachingOpProfiler:
    """Measures (simulates) and caches per-op execution times.

    Attributes
    ----------
    gpu / framework:
        The device and execution stack being profiled.
    profile_count:
        Number of *actual* profiling runs performed (cache misses); tests
        use this to assert the cache works and the optimization loop to
        report profiling cost.
    """

    gpu: GPUSpec
    framework: FrameworkProfile
    profile_count: int = 0
    _cache: LRUCache = field(
        default_factory=lambda: LRUCache(
            DEFAULT_PROFILE_CACHE_SIZE, name="op-profiles"
        ),
        repr=False,
    )

    def op_time_ms(
        self,
        op: str,
        in_types: list[TensorType],
        attrs: dict | None = None,
    ) -> float:
        """Execution time of one op with the given input types."""
        attrs = attrs or {}
        key = self._key(op, in_types, attrs)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        t = self._profile(op, in_types, attrs)
        self._cache.put(key, t)
        return t

    def instr_time_ms(self, instr: Instruction, program: Program) -> float:
        """Execution time of a (non-communication) instruction."""
        in_types = [program.type_of(v) for v in instr.inputs]
        return self.op_time_ms(instr.op, in_types, instr.attrs)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _key(op: str, in_types: list[TensorType], attrs: dict):
        attr_sig = tuple(
            sorted(
                (k, v)
                for k, v in attrs.items()
                if isinstance(v, (int, float, str, bool))
            )
        )
        return (op, tuple(t.shape for t in in_types), attr_sig)

    def _profile(self, op: str, in_types: list[TensorType], attrs: dict) -> float:
        """One profiling run (a device-model query in this reproduction)."""
        self.profile_count += 1
        spec = get_op(op)
        out_types = spec.infer(in_types, attrs)
        flops = spec.flops(in_types, out_types, attrs)
        nbytes = spec.membytes(in_types, out_types, attrs)
        t = self.gpu.op_time_ms(flops, nbytes) * self.framework.compute_mult
        if op in DISPATCH_OPS:
            t *= self.framework.dispatch_mult
        return t + self.framework.launch_ms(spec.kernels)

    def cache_size(self) -> int:
        """Number of distinct (op, shape) entries profiled so far."""
        return len(self._cache)
