"""Tests for the paper-Sec.-8 extensions: shared experts, block-sparse
expert kernels, and all-to-all-over-all-reduce priority."""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro import GPT2MoEConfig, LancetOptimizer, build_training_graph, validate
from repro.core import GradSyncDeferPass
from repro.models.init import init_device_values
from repro.runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    UniformRoutingModel,
    run_program,
    simulate_program,
)


class TestSharedExpert:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_training_graph(
            GPT2MoEConfig.tiny(shared_expert=True), batch=8, seq=8, num_gpus=2
        )

    def test_valid_and_runs(self, graph):
        validate(graph.program)
        envs = run_program(graph.program, init_device_values(graph, seed=0))
        assert np.isfinite(envs[0][graph.loss])

    def test_shared_params_are_data_parallel(self, graph):
        p = graph.program
        shared = [
            v for v in p.params if ".shared." in p.values[v].name
        ]
        assert shared
        assert not (set(shared) & graph.expert_params)

    def test_shared_ffn_sits_between_dispatch_and_a2a(self, graph):
        """The shared expert must be issued before the all-to-all so the
        compute stream runs it while the A2A is in flight."""
        p = graph.program
        pos = p.instr_index()
        ml = graph.moe_layers[0]
        shared_pos = [
            i
            for i, ins in enumerate(p.instructions)
            if any(".shared." in p.values[o].name for o in ins.outputs)
        ]
        assert shared_pos
        assert min(shared_pos) > pos[ml.dispatch_uid]
        assert max(shared_pos) < pos[ml.a2a_first_uid]

    def test_shared_expert_overlaps_a2a(self):
        """At realistic scale, the shared expert's compute hides under the
        all-to-all: exposed a2a shrinks vs the plain model."""
        plain = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=24, seq=512, num_gpus=16
        )
        shared = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(shared_expert=True),
            batch=24,
            seq=512,
            num_gpus=16,
        )
        cluster = ClusterSpec.p4de(2)
        cfg = SimulationConfig(cluster=cluster, routing=UniformRoutingModel())
        t_plain = simulate_program(plain.program, config=cfg)
        t_shared = simulate_program(shared.program, config=cfg)
        # the shared model does MORE work but exposes LESS all-to-all
        assert t_shared.exposed_time_of({"all_to_all"}) < t_plain.exposed_time_of(
            {"all_to_all"}
        )

    def test_lancet_still_optimizes_shared_model(self):
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=4, shared_expert=True),
            batch=16,
            seq=512,
            num_gpus=16,
        )
        cluster = ClusterSpec.p4de(2)
        optimized, report = LancetOptimizer(cluster).optimize(graph)
        validate(optimized)
        assert report.partition.plans

    def test_numeric_equivalence_under_optimization(self, graph, small_cluster):
        optimized, _ = LancetOptimizer(small_cluster).optimize(graph)
        vals = init_device_values(graph, seed=0)
        base = run_program(graph.program, fresh_values(vals))
        out = run_program(optimized, fresh_values(vals))
        assert np.array_equal(base[0][graph.loss], out[0][graph.loss])


class TestBlockSparseExperts:
    def test_cheaper_expert_computation(self):
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=24, seq=512, num_gpus=16
        )
        cluster = ClusterSpec.p4de(2)
        dense = SimulationConfig(cluster=cluster, routing=UniformRoutingModel())
        sparse = SimulationConfig(
            cluster=cluster,
            block_sparse_experts=True,
            routing=UniformRoutingModel(),
        )
        t_dense = simulate_program(graph.program, config=dense)
        t_sparse = simulate_program(graph.program, config=sparse)
        expert_ops = {"expert_ffn", "expert_ffn_dx", "expert_ffn_dw"}
        assert t_sparse.total_time_of(expert_ops) < t_dense.total_time_of(
            expert_ops
        )
        # only expert ops changed
        assert t_sparse.total_time_of({"attention"}) == t_dense.total_time_of(
            {"attention"}
        )

    def test_savings_match_capacity_factor(self):
        """With cf=1.25, padding is ~20% of slots; block-sparse kernels
        should save roughly that fraction of expert time."""
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=24, seq=512, num_gpus=16
        )
        cluster = ClusterSpec.p4de(2)
        expert_ops = {"expert_ffn"}
        t_dense = simulate_program(
            graph.program,
            config=SimulationConfig(cluster=cluster, routing=UniformRoutingModel()),
        ).total_time_of(expert_ops)
        t_sparse = simulate_program(
            graph.program,
            config=SimulationConfig(
                cluster=cluster,
                block_sparse_experts=True,
                routing=UniformRoutingModel(),
            ),
        ).total_time_of(expert_ops)
        ratio = t_sparse / t_dense
        assert 0.7 < ratio < 0.95


class TestGradSyncDefer:
    def test_valid_permutation(self, tiny_graph):
        p = tiny_graph.program.clone()
        out = GradSyncDeferPass().run(p)
        validate(out)
        assert {i.uid for i in out.instructions} == {
            i.uid for i in tiny_graph.program.instructions
        }

    def test_numeric_equivalence(self, tiny_graph, tiny_values):
        p = tiny_graph.program.clone()
        out = GradSyncDeferPass().run(p)
        base = run_program(tiny_graph.program, fresh_values(tiny_values))
        moved = run_program(out, fresh_values(tiny_values))
        assert np.array_equal(base[0][tiny_graph.loss], moved[0][tiny_graph.loss])

    def test_allreduces_yield_to_next_a2a(self, tiny_graph):
        """After the pass, no all-reduce sits between a gradient producer
        and the next all-to-all that used to follow it."""
        p = tiny_graph.program.clone()
        orig = list(p.instructions)
        out = GradSyncDeferPass().run(p)
        pos = {ins.uid: i for i, ins in enumerate(out.instructions)}
        n = len(orig)
        next_a2a = [None] * n
        nxt = None
        for i in range(n - 1, -1, -1):
            if orig[i].op == "all_to_all":
                nxt = orig[i].uid
            next_a2a[i] = nxt
        for i, ins in enumerate(orig):
            if ins.op == "allreduce" and next_a2a[i] is not None:
                consumer = next(
                    (
                        c
                        for c in orig
                        if ins.outputs[0] in c.inputs
                    ),
                    None,
                )
                target_ok = pos[ins.uid] > pos[next_a2a[i]]
                legal_block = (
                    consumer is not None
                    and pos[consumer.uid] <= pos[next_a2a[i]]
                )
                assert target_ok or legal_block

    def test_improves_interference_case(self):
        """On the V100/GPT2-L setting where the passes interfere, the
        yield pass recovers (and exceeds) the lost speedup."""
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_l_moe(num_layers=8), batch=8, seq=512, num_gpus=32
        )
        cluster = ClusterSpec.for_gpus("v100", 32)

        def measure(**flags):
            opt, _ = LancetOptimizer(cluster, **flags).optimize(graph)
            sim = SimulationConfig(
                cluster=cluster,
                padded_a2a=False,
                routing=SyntheticRoutingModel(seed=1),
            )
            return simulate_program(opt, config=sim).makespan

        full = measure()
        yielded = measure(defer_allreduce=True)
        assert yielded < full

    def test_noop_without_allreduce(self, tiny_cfg):
        g = build_training_graph(tiny_cfg, batch=4, seq=8, num_gpus=1)
        p = g.program.clone()
        before = [i.uid for i in p.instructions]
        out = GradSyncDeferPass().run(p)
        assert [i.uid for i in out.instructions] == before
