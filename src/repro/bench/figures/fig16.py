"""Figure 16: ablation study on 4 nodes.

Paper: relative speedup over RAF of (i) full Lancet, (ii) Lancet without
the dW schedule pass (-dW), (iii) Lancet without partitioning
(-Pipeline), for both models.  Full > either alone; GPT2-L-MoE suffers
more from removing the dW schedule (more parameters/layers with a
smaller batch means higher partition overheads).
"""

from __future__ import annotations

from ...baselines import LancetFramework, RAFBaseline
from ...models import build_training_graph
from ...runtime import ClusterSpec
from ..formatting import format_table
from ..harness import model_by_name, paper_batch
from .common import FigureResult, simulate

#: the paper's bars: Baseline is RAF itself (speedup 1.0); "-X" removes
#: pass X from Lancet while keeping the other (and the irregular A2A)
ABLATIONS = {
    "-dW Schedule": dict(enable_dw_schedule=False, enable_partition=True),
    "-Pipeline": dict(enable_dw_schedule=True, enable_partition=False),
    "full": dict(enable_dw_schedule=True, enable_partition=True),
}


def run(
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    num_gpus: int = 32,
) -> FigureResult:
    rows = []
    for cluster_kind in clusters:
        cluster = ClusterSpec.for_gpus(cluster_kind, num_gpus)
        for model in models:
            cfg = model_by_name(model)
            batch = paper_batch(cluster_kind, model)
            graph = build_training_graph(
                cfg, batch=batch, seq=512, num_gpus=num_gpus
            )
            raf = RAFBaseline().prepare(graph, cluster)
            base_ms = simulate(
                raf.program, cluster, raf.profile, padded_a2a=True
            ).makespan
            rows.append(
                {
                    "cluster": cluster_kind,
                    "model": model,
                    "ablation": "baseline",
                    "iteration_ms": base_ms,
                    "speedup_vs_raf": 1.0,
                }
            )
            for name, flags in ABLATIONS.items():
                fw = LancetFramework(**flags)
                res = fw.prepare(graph, cluster)
                ms = simulate(
                    res.program, cluster, res.profile, padded_a2a=res.padded_a2a
                ).makespan
                rows.append(
                    {
                        "cluster": cluster_kind,
                        "model": model,
                        "ablation": name,
                        "iteration_ms": ms,
                        "speedup_vs_raf": base_ms / ms,
                    }
                )

    table = format_table(
        ["Cluster", "Model", "Ablation", "Iter (ms)", "Speedup vs RAF"],
        [
            [
                r["cluster"],
                r["model"],
                r["ablation"],
                r["iteration_ms"],
                r["speedup_vs_raf"],
            ]
            for r in rows
        ],
        title=f"Fig. 16 - ablation study ({num_gpus} GPUs)",
    )

    def sp(cluster, model, ablation):
        return next(
            r["speedup_vs_raf"]
            for r in rows
            if r["cluster"] == cluster
            and r["model"] == model
            and r["ablation"] == ablation
        )

    # Composing the passes can interfere slightly: rescheduled dWs delay
    # their gradient all-reduces, which contend with all-to-alls on the
    # shared communication stream (the effect Lina [Li et al. 2023a],
    # cited in the paper's Sec. 8, optimizes away).  We therefore check
    # dominance with a small tolerance and record strict wins separately.
    strict_wins = sum(
        sp(c, m, "full")
        >= max(sp(c, m, "-dW Schedule"), sp(c, m, "-Pipeline"))
        for c in clusters
        for m in models
    )
    full_ge_each = all(
        sp(c, m, "full")
        >= max(sp(c, m, "-dW Schedule"), sp(c, m, "-Pipeline")) * 0.98
        for c in clusters
        for m in models
    )
    notes = {
        "full_beats_each_alone": full_ge_each,
        "strict_wins": f"{strict_wins}/{len(clusters) * len(models)}",
        "paper": "full > each alone; GPT2-L hurt more by removing dW schedule",
        "interference": "moved dWs delay their all-reduces behind all-to-alls "
        "on the shared comm stream (see Lina, paper Sec. 8)",
    }
    return FigureResult("fig16", "ablation study", rows, table, notes)
