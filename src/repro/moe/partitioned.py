"""Micro-batched (partitioned) MoE execution -- paper Fig. 5.

Two variants of splitting an MoE layer's input along the batch dimension:

* :func:`forward_microbatched_naive` (Fig. 5b): each micro-batch gets a
  proportionally scaled capacity ``C/p``.  This changes which tokens are
  dropped, breaking mathematical equivalence with unpartitioned execution.
* :func:`forward_microbatched_capacity_passing` (Fig. 5c): Lancet's
  scheme.  Micro-batches share the *original* capacity ``C`` and thread
  per-expert used-capacity counts between chunks, so token-to-expert
  mapping and dropping are bit-identical to the unpartitioned layer, at
  the cost of irregular per-chunk buffer occupancy (handled by the
  irregular all-to-all).

These functions simulate the forward pass only (what the partition pass
pipelines); tests assert the equivalence / non-equivalence claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .capacity import CapacityState
from .dispatch import (
    combine,
    dispatch,
    exchange_expert_buffers,
    exchange_expert_buffers_inverse,
)
from .experts import expert_ffn
from .layer import DistributedMoELayer
from .routing import RoutingInfo


@dataclass
class MicrobatchTrace:
    """Per-chunk routing outcomes, for inspecting (non-)equivalence."""

    infos: list[list[RoutingInfo]]  # [chunk][device]
    chunk_counts: list[list[np.ndarray]]  # accepted per expert, per chunk
    outputs: list[np.ndarray]  # per-device combined outputs


def _split_batch(x: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split tokens into ``parts`` contiguous chunks (batch-prefix blocks)."""
    return [c for c in np.array_split(x, parts, axis=0)]


def forward_microbatched_capacity_passing(
    layer: DistributedMoELayer,
    xs: list[np.ndarray],
    parts: int,
    seed: int = 0,
) -> MicrobatchTrace:
    """Partitioned forward with Lancet's capacity-passing gate (Fig. 5c).

    Each chunk is gated with the running per-expert counts of the previous
    chunks, routed into a *full-capacity* buffer at its globally correct
    slots, then dispatched through per-chunk (irregular) all-to-alls and
    expert computation.  The summed combine outputs equal the
    unpartitioned layer exactly.
    """
    g = layer.g
    t = xs[0].shape[0]
    capacity = layer.capacity_for(t)
    if not (1 <= parts <= t):
        raise ValueError(f"parts={parts} invalid for {t} tokens")

    chunks = [_split_batch(x, parts) for x in xs]  # [device][chunk]
    offsets = np.cumsum([0] + [chunks[0][p].shape[0] for p in range(parts)])

    states = [CapacityState(layer.e, capacity) for _ in range(g)]
    outputs = [np.zeros_like(x) for x in xs]
    infos_per_chunk: list[list[RoutingInfo]] = []
    counts_per_chunk: list[list[np.ndarray]] = []

    for p in range(parts):
        chunk_infos, chunk_counts, bufs, probs_list = [], [], [], []
        for d in range(g):
            xc = chunks[d][p]
            probs, info, new_counts = layer.gate(
                xc,
                capacity,
                capacity_counts=states[d].counts,
                seed=seed + d,
                token_offset=int(offsets[p]),
            )
            used = np.asarray(new_counts) - states[d].counts
            states[d] = states[d].advanced(new_counts)
            chunk_infos.append(info)
            chunk_counts.append(used)
            probs_list.append(probs)
            # full-capacity buffer, occupied only at this chunk's slots
            bufs.append(dispatch(xc, info))

        received = exchange_expert_buffers(bufs)  # irregular a2a #1
        expert_out = [
            expert_ffn(
                received[d],
                layer.params.w1[d],
                layer.params.b1[d],
                layer.params.w2[d],
                layer.params.b2[d],
            )
            for d in range(g)
        ]
        returned = exchange_expert_buffers_inverse(expert_out)  # a2a #2

        for d in range(g):
            yc = combine(returned[d], chunk_infos[d], probs_list[d])
            outputs[d][offsets[p] : offsets[p + 1]] = yc

        infos_per_chunk.append(chunk_infos)
        counts_per_chunk.append(chunk_counts)

    return MicrobatchTrace(infos_per_chunk, counts_per_chunk, outputs)


def forward_microbatched_naive(
    layer: DistributedMoELayer,
    xs: list[np.ndarray],
    parts: int,
    seed: int = 0,
) -> MicrobatchTrace:
    """Direct micro-batching (Fig. 5b): capacity scales down with the chunk.

    Each chunk gets an independent capacity ``ceil(C / parts)``.  A chunk
    with more than its share of tokens for some expert drops the excess,
    even if other chunks leave that expert underfull -- the extra token
    dropping the paper warns about.
    """
    g = layer.g
    t = xs[0].shape[0]
    capacity = layer.capacity_for(t)
    chunk_capacity = max(1, -(-capacity // parts))

    chunks = [_split_batch(x, parts) for x in xs]
    offsets = np.cumsum([0] + [chunks[0][p].shape[0] for p in range(parts)])

    outputs = [np.zeros_like(x) for x in xs]
    infos_per_chunk: list[list[RoutingInfo]] = []
    counts_per_chunk: list[list[np.ndarray]] = []

    for p in range(parts):
        chunk_infos, chunk_counts, bufs, probs_list = [], [], [], []
        for d in range(g):
            xc = chunks[d][p]
            probs = None
            probs, info, counts = layer.gate(
                xc, chunk_capacity, seed=seed + d, token_offset=int(offsets[p])
            )
            chunk_infos.append(info)
            chunk_counts.append(np.asarray(counts))
            probs_list.append(probs)
            bufs.append(dispatch(xc, info))

        received = exchange_expert_buffers(bufs)
        expert_out = [
            expert_ffn(
                received[d],
                layer.params.w1[d],
                layer.params.b1[d],
                layer.params.w2[d],
                layer.params.b2[d],
            )
            for d in range(g)
        ]
        returned = exchange_expert_buffers_inverse(expert_out)

        for d in range(g):
            yc = combine(returned[d], chunk_infos[d], probs_list[d])
            outputs[d][offsets[p] : offsets[p + 1]] = yc

        infos_per_chunk.append(chunk_infos)
        counts_per_chunk.append(chunk_counts)

    return MicrobatchTrace(infos_per_chunk, counts_per_chunk, outputs)
