"""Plan-serving stress gate: the serving layer's three contracts.

Drives ~2000 mixed warm/cold requests (derived from every scenario
preset) through one shared store and asserts the documented serving
contracts directly, on top of the baseline-diffed regression metrics:

1. **Coalescing** -- a burst of identical concurrent cold requests
   triggers exactly one planner run.
2. **Warm path** -- steady-state p50 at least 50x below the cold
   (planner) p50.
3. **Nearest-signature serving** -- every one-bucket-away probe is
   answered immediately from the closest stored plan, every probe's
   exact re-plan is hot-swapped in (observable telemetry), and the
   served-vs-exact predicted gap stays within the documented bound.
"""

from conftest import run_figure
from repro.bench.figures import plan_serving


def test_plan_serving(benchmark):
    result = run_figure(benchmark, plan_serving.run)
    notes = result.notes

    # scale: this is a stress gate, not a smoke test
    assert notes["total_requests"] >= 1000
    assert notes["suite_size"] >= 26

    # contract 1: coalescing (identical burst => exactly 1 planner run)
    assert notes["burst_planner_runs"] == 1, notes["server_counters"]
    assert notes["burst_coalesced"] >= notes["suite_size"]

    # contract 2: warm p50 >= 50x below cold p50
    assert notes["warm_p50_ms"] * 50 <= notes["cold_p50_ms"], (
        f"warm p50 {notes['warm_p50_ms']:.3f} ms not 50x below "
        f"cold p50 {notes['cold_p50_ms']:.3f} ms "
        f"(speedup {notes['warm_speedup']:.0f}x)"
    )

    # contract 3: nearest serving with observable hot swaps and a
    # bounded served-vs-exact predicted gap
    assert notes["nearest_hits"] == notes["hot_swaps"] > 0
    assert notes["max_nearest_distance"] <= 0.25
    assert notes["max_predicted_gap"] <= notes["predicted_gap_bound"], (
        f"served-vs-exact predicted gap {notes['max_predicted_gap']:.3f} "
        f"exceeds the documented {notes['predicted_gap_bound']:.2f} bound"
    )

    # the stream leaves the store populated: one entry per distinct
    # bucket (suite + burst + one hot-swapped exact plan per probe)
    assert notes["store_entries"] == notes["suite_size"] + 1 + notes["hot_swaps"]
