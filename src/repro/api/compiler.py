"""``compile()``: the single front door to Lancet planning.

Turns a workload -- a declarative :class:`~repro.api.scenario.Scenario`,
a built :class:`~repro.models.ModelGraph`, or a raw
:class:`~repro.ir.Program` -- into a :class:`~repro.api.plan.Plan`
artifact.  With a :class:`~repro.api.store.PlanStore` attached, compile
is a cache: a warm lookup returns a stored plan without constructing an
optimizer at all (zero cost-model evaluations), which is what makes
plans computed once reusable by every later process.
"""

from __future__ import annotations

import time
import warnings

from ..core.lancet import LancetOptimizer
from ..ir import Program
from ..models import ModelGraph
from ..runtime.cluster import ClusterSpec
from ..runtime.device import COMPILED, FrameworkProfile
from .fingerprint import graph_fingerprint
from .plan import Plan, PlanError, PlanPolicy
from .scenario import Scenario
from .store import PlanStore


def _store_lookup(lookup, *args):
    """Run a store lookup, degrading store problems to a cache miss.

    A corrupt entry or one written under a newer schema (by another
    fleet member) must not make compilation impossible -- the planner
    can always recompute, and the subsequent ``put`` replaces the bad
    entry.  The problem is surfaced as a warning rather than swallowed;
    direct ``PlanStore.get`` / ``Plan.load`` callers still get the
    exception.
    """
    try:
        return lookup(*args)
    except PlanError as err:
        warnings.warn(
            f"plan store lookup failed ({err}); re-planning", stacklevel=3
        )
        return None


def _observed_signatures(program: Program, scenario: Scenario, cluster) -> dict | None:
    """The routing signatures a scenario's realization induces on a
    program (what the skew-aware planner conditions on)."""
    from ..runtime.simulate import SimulationConfig, observed_routing_signatures

    config = SimulationConfig(
        cluster=cluster,
        padded_a2a=False,
        routing=scenario.routing_model(),
    )
    return observed_routing_signatures(program, config) or None


def compile(
    workload: Scenario | ModelGraph | Program,
    cluster: ClusterSpec | None = None,
    *,
    policy: PlanPolicy | None = None,
    store: PlanStore | None = None,
    signatures: dict | None = None,
    framework: FrameworkProfile = COMPILED,
    check: bool = True,
) -> Plan:
    """Compile a workload into a :class:`~repro.api.plan.Plan`.

    Parameters
    ----------
    workload:
        A :class:`Scenario` (cluster and routing are derived from it),
        or a :class:`ModelGraph` / :class:`Program` with an explicit
        ``cluster``.
    cluster:
        Target cluster; required for graph/program workloads, optional
        override for scenarios.
    policy:
        Optimizer knobs (defaults to :class:`PlanPolicy`'s defaults:
        both passes on, skew-aware, flat collectives).
    store:
        Plan cache consulted before planning and updated after; a warm
        hit skips the planner entirely (``plan.from_store`` is True and
        no :class:`~repro.core.LancetOptimizer` is constructed).
    signatures:
        Explicit per-layer routing signatures to plan against
        (overrides the scenario-derived observation).
    framework:
        Execution-stack profile to price compute against.
    check:
        Validate the IR after each pass.
    """
    policy = policy or PlanPolicy()
    scenario = workload if isinstance(workload, Scenario) else None
    # overrides make the result unreproducible from the scenario alone,
    # so such plans must never enter (or be served from) the scenario
    # index -- only the canonical fingerprint-keyed path applies
    scenario_pure = (
        scenario is not None and cluster is None and signatures is None
    )

    if scenario is not None:
        # fast path: a pure scenario's store key is memoized, so a warm
        # lookup needs no graph build, no fingerprint, no observation
        if store is not None and scenario_pure:
            plan = _store_lookup(
                store.lookup_scenario, scenario, policy, framework
            )
            if plan is not None:
                return plan
        graph = scenario.build_graph()
        cluster = cluster or scenario.build_cluster()
        source = graph
        if signatures is None and policy.skew_aware:
            signatures = _observed_signatures(graph.program, scenario, cluster)
    elif isinstance(workload, (ModelGraph, Program)):
        if cluster is None:
            raise TypeError(
                "compile(graph_or_program) requires an explicit cluster"
            )
        source = workload
    else:
        raise TypeError(
            f"workload must be a Scenario, ModelGraph, or Program; "
            f"got {type(workload).__name__}"
        )

    program = source.program if isinstance(source, ModelGraph) else source
    fingerprint = graph_fingerprint(program)

    if store is not None:
        plan = _store_lookup(
            store.get, fingerprint, cluster, policy, framework, signatures
        )
        if plan is not None:
            return plan

    t0 = time.perf_counter()
    optimizer = LancetOptimizer(
        cluster,
        framework=framework,
        hyper_params=policy.hyper_params(),
        enable_dw_schedule=policy.enable_dw_schedule,
        enable_partition=policy.enable_partition,
        defer_allreduce=policy.defer_allreduce,
        routing_signatures=signatures,
        enable_hierarchical_a2a=policy.enable_hierarchical_a2a,
    )
    optimized, report = optimizer.optimize(source, check=check)
    compile_seconds = time.perf_counter() - t0

    planner = report.summary_dict()
    planner["compile_seconds"] = compile_seconds
    plan = Plan(
        program=optimized,
        cluster=cluster,
        policy=policy,
        fingerprint=fingerprint,
        predicted_iteration_ms=report.predicted_iteration_ms,
        framework=framework,
        signatures=report.routing_signatures,
        scenario=scenario,
        planner=planner,
        report=report,
    )
    if store is not None:
        store.put(plan, index_scenario=scenario_pure)
    return plan


def load_plan(path, materialize: bool = True) -> Plan:
    """Read a plan artifact from disk (alias of :meth:`Plan.load`)."""
    return Plan.load(path, materialize=materialize)
