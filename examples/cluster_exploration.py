#!/usr/bin/env python
"""Explore where Lancet helps: sweep cluster bandwidth and expert load.

The benefit of whole-graph overlap depends on how exposed the all-to-all
is: slow interconnects and hot experts make communication dominate, fast
fabrics shrink the opportunity.  This example sweeps (i) the per-node
NIC bandwidth and (ii) the routing imbalance, reporting Lancet's speedup
over RAF at each point -- the kind of sensitivity study a systems reader
does before adopting a technique.

Run:  python examples/cluster_exploration.py

See docs/TUTORIAL.md for the guided end-to-end walkthrough this
sensitivity study builds on.
"""

import dataclasses

from repro import (
    ClusterSpec,
    GPT2MoEConfig,
    LancetOptimizer,
    SimulationConfig,
    SyntheticRoutingModel,
    build_training_graph,
    simulate_program,
)


def measure(cluster, graph, concentration=8.0):
    opt, report = LancetOptimizer(cluster).optimize(graph)
    base_sim = SimulationConfig(
        cluster=cluster, padded_a2a=True,
        routing=SyntheticRoutingModel(seed=1, concentration=concentration),
    )
    lan_sim = SimulationConfig(
        cluster=cluster, padded_a2a=False,
        routing=SyntheticRoutingModel(seed=1, concentration=concentration),
    )
    t0 = simulate_program(graph.program, config=base_sim)
    t1 = simulate_program(opt, config=lan_sim)
    return t0.makespan, t1.makespan, t0.exposed_time_of({"all_to_all"})


def main() -> None:
    cfg = GPT2MoEConfig.gpt2_s_moe()
    graph = build_training_graph(cfg, batch=24, seq=512, num_gpus=16)

    print("=== NIC bandwidth sweep (16x A100, 2 nodes) ===")
    print(f"{'NIC GB/s/node':>14s} {'RAF ms':>8s} {'Lancet ms':>10s} "
          f"{'speedup':>8s} {'exposed a2a ms':>15s}")
    base = ClusterSpec.p4de(2)
    for nic in (12.5, 25.0, 50.0, 100.0, 200.0):
        cluster = dataclasses.replace(base, node_nic_gbps=nic,
                                      name=f"p4de-nic{nic:.0f}")
        t_raf, t_lan, exposed = measure(cluster, graph)
        print(f"{nic:14.1f} {t_raf:8.1f} {t_lan:10.1f} "
              f"{t_raf / t_lan:8.2f} {exposed:15.1f}")
    print("-> slower fabrics expose more all-to-all; Lancet's advantage "
          "grows as communication dominates.")

    print("\n=== expert load imbalance sweep (Dirichlet concentration) ===")
    print(f"{'concentration':>14s} {'RAF ms':>8s} {'Lancet ms':>10s} {'speedup':>8s}")
    for conc in (0.5, 2.0, 8.0, 64.0):
        t_raf, t_lan, _ = measure(base, graph, concentration=conc)
        print(f"{conc:14.1f} {t_raf:8.1f} {t_lan:10.1f} {t_raf / t_lan:8.2f}")
    print("-> baselines always pay the full padded buffer, while Lancet's "
          "irregular all-to-all moves only realized (capacity-capped) "
          "tokens, so its edge even grows slightly under heavy skew.")


if __name__ == "__main__":
    main()
