"""Communication cost model (paper Sec. 3).

Built by profiling collectives at geometrically spaced sizes (1 KB, 2 KB,
4 KB, ... up to the largest buffer the model communicates) and linearly
interpolating between the sampled points.

Irregular all-to-alls have runtime-dependent sizes unknown at compile
time; the paper uses a *static-shape approximation*: the cost of an
n-way-partitioned all-to-all with original capacity ``C`` is the profiled
(uniform) cost at capacity ``C / n``.  :meth:`CommCostModel.a2a_partitioned_ms`
implements exactly that, which is where the (small) prediction error of
Fig. 14 comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import Instruction, Program
from ..runtime.cluster import ClusterSpec
from .profiler import CachingOpProfiler


@dataclass
class CommCostModel:
    """Piecewise-linear interpolated collective cost model."""

    cluster: ClusterSpec
    min_bytes: float = 1024.0
    max_bytes: float = 2.0**31  # 2 GB upper anchor
    _a2a_pts: tuple = field(default=None, repr=False)  # type: ignore[assignment]
    _ar_pts: tuple = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        sizes = [self.min_bytes]
        while sizes[-1] < self.max_bytes:
            sizes.append(sizes[-1] * 2)
        sizes = np.asarray(sizes)
        a2a = np.asarray([self.cluster.a2a_time_ms(s) for s in sizes])
        ar = np.asarray([self.cluster.allreduce_time_ms(s) for s in sizes])
        self._a2a_pts = (sizes, a2a)
        self._ar_pts = (sizes, ar)

    @staticmethod
    def _interp(pts: tuple, nbytes: float) -> float:
        sizes, times = pts
        return float(np.interp(nbytes, sizes, times))

    def a2a_ms(self, nbytes: float) -> float:
        """Predicted uniform all-to-all time for a per-device buffer size."""
        return self._interp(self._a2a_pts, nbytes)

    def a2a_partitioned_ms(self, full_nbytes: float, parts: int) -> float:
        """Static-shape approximation for one chunk of an n-way partitioned
        (irregular) all-to-all: the uniform cost at capacity ``C / n``."""
        if parts < 1:
            raise ValueError("parts must be >= 1")
        return self.a2a_ms(full_nbytes / parts)

    def allreduce_ms(self, nbytes: float) -> float:
        """Predicted all-reduce time for a gradient bucket."""
        return self._interp(self._ar_pts, nbytes)


@dataclass
class CostEstimator:
    """Lancet's internal per-instruction cost oracle.

    Combines the caching op profiler (compute ops) and the communication
    cost model (collectives).  This is the cost the optimization passes
    *plan* with; the ground-truth simulator may disagree (irregular
    realized sizes, load imbalance), which is what the Fig. 14 accuracy
    experiment quantifies.
    """

    profiler: CachingOpProfiler
    comm: CommCostModel

    def duration_ms(self, instr: Instruction, program: Program) -> float:
        """Predicted duration of one instruction."""
        if instr.op == "all_to_all":
            buf_t = program.type_of(instr.inputs[0])
            nbytes = float(buf_t.nbytes)
            if instr.attrs.get("irregular"):
                # irregular A2As move only realized tokens, not padding:
                # scale the static buffer size by the expected fill
                # fraction (tokens / total capacity slots)
                tokens = instr.attrs.get("tokens")
                if tokens is not None and buf_t.rank == 3:
                    slots = buf_t.shape[0] * buf_t.shape[1]
                    nbytes *= min(1.0, tokens / slots)
                if instr.partition is not None:
                    # chunk of an irregular A2A: static-shape approximation
                    return self.comm.a2a_partitioned_ms(
                        nbytes, instr.partition[1]
                    )
            return self.comm.a2a_ms(nbytes)
        if instr.op == "allreduce":
            nbytes = float(program.type_of(instr.inputs[0]).nbytes)
            return self.comm.allreduce_ms(nbytes)
        irr_parts = int(instr.attrs.get("irr_parts", 1))
        if irr_parts > 1:
            # irregular chunk: price at its realized occupancy (~C/k),
            # mirroring the runtime's grouped-kernel behaviour
            from ..runtime.simulate import _scale_capacity

            in_types = [
                _scale_capacity(program.type_of(v), irr_parts)
                for v in instr.inputs
            ]
            attrs = dict(instr.attrs)
            if "capacity" in attrs:
                attrs["capacity"] = max(
                    1, -(-int(attrs["capacity"]) // irr_parts)
                )
            return self.profiler.op_time_ms(instr.op, in_types, attrs)
        return self.profiler.instr_time_ms(instr, program)

    def predict_iteration_ms(self, program: Program) -> float:
        """Predicted end-to-end iteration time of a program.

        Runs the same two-stream schedule simulation as the ground truth,
        but with predicted per-op costs (the paper's cost-model output
        compared against measurement in Fig. 14).
        """
        from ..runtime.simulate import simulate_program

        return simulate_program(program, duration_fn=self.duration_ms).makespan
