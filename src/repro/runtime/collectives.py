"""Functional collectives over simulated devices.

The numeric stand-in for NCCL: dense and irregular (two-phase, paper
Fig. 10) all-to-all over per-device expert buffers, and ring all-reduce.
The irregular variant moves only the realized token rows and reports the
per-pair byte matrix (what the network model charges for); with
zero-padded buffers its result is bit-identical to the dense exchange --
asserted by the test suite.
"""

from __future__ import annotations

import numpy as np

from ..moe.dispatch import (
    exchange_expert_buffers,
    exchange_expert_buffers_inverse,
)


def all_to_all_dense(bufs: list[np.ndarray], direction: str) -> list[np.ndarray]:
    """Dense all-to-all moving full [E, C, H] buffers.

    ``direction='scatter'`` routes dispatch buffers to expert owners
    (first all-to-all); ``'gather'`` is its inverse (second all-to-all).
    """
    if direction == "scatter":
        return exchange_expert_buffers(bufs)
    if direction == "gather":
        return exchange_expert_buffers_inverse(bufs)
    raise ValueError(f"unknown direction {direction!r}")


def _pair_bytes(counts: np.ndarray, el: int, row_bytes: int, direction: str) -> np.ndarray:
    """Bytes moved between device pairs given per-(src, expert) counts."""
    g = counts.shape[0]
    per_owner = counts.reshape(g, g, el).sum(axis=2).astype(np.float64)
    pair = per_owner * row_bytes
    if direction == "gather":
        pair = pair.T.copy()
    return pair


def all_to_all_irregular(
    bufs: list[np.ndarray],
    counts: np.ndarray,
    direction: str,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Two-phase irregular all-to-all (all-to-allv).

    Phase 1 exchanges the chunk sizes (``counts[src, e]`` = tokens device
    ``src`` routed to expert ``e``); phase 2 moves only those rows.
    Unused capacity slots of the output are zero, so with zero-padded
    inputs the result equals :func:`all_to_all_dense`.

    Returns (received buffers, pair-bytes matrix for the network model).
    """
    g = len(bufs)
    e, c, h = bufs[0].shape
    el = e // g
    counts = np.asarray(counts)
    if counts.shape != (g, e):
        raise ValueError(f"counts must be [{g},{e}], got {counts.shape}")
    if counts.max(initial=0) > c:
        raise ValueError("counts exceed capacity")
    row_bytes = h * bufs[0].dtype.itemsize

    out: list[np.ndarray] = []
    if direction == "scatter":
        # recv[d][le*g + s, :n] = bufs[s][d*el + le, :n],  n = counts[s, d*el+le]
        for d in range(g):
            recv = np.zeros((el * g, c, h), dtype=bufs[0].dtype)
            for s in range(g):
                for le in range(el):
                    n = int(counts[s, d * el + le])
                    recv[le * g + s, :n] = bufs[s][d * el + le, :n]
            out.append(recv)
    elif direction == "gather":
        # inverse: out[d][s*el + le, :n] = bufs[s][le*g + d, :n]
        for d in range(g):
            send = np.zeros((el * g, c, h), dtype=bufs[0].dtype)
            for s in range(g):
                for le in range(el):
                    n = int(counts[d, s * el + le])
                    send[s * el + le, :n] = bufs[s][le * g + d, :n]
            out.append(send)
    else:
        raise ValueError(f"unknown direction {direction!r}")

    return out, _pair_bytes(counts, el, row_bytes, direction)


def device_byte_loads(pair_bytes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-device (send, recv) byte totals of an all-to-all.

    Self-traffic (the diagonal) stays on-device and is excluded.  The
    spread of these loads across devices is what makes skewed routing
    slow: the collective completes with the busiest device.
    """
    pair = np.asarray(pair_bytes, dtype=np.float64)
    g = pair.shape[0]
    if pair.shape != (g, g):
        raise ValueError(f"pair_bytes must be square, got {pair.shape}")
    off = np.where(np.eye(g, dtype=bool), 0.0, pair)
    return off.sum(axis=1), off.sum(axis=0)


def allreduce_sum(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """All-reduce (sum): every device receives the elementwise sum."""
    total = arrays[0].copy()
    for a in arrays[1:]:
        total += a
    return [total.copy() for _ in arrays]


def allreduce_mean(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """All-reduce (mean): data-parallel gradient averaging."""
    out = allreduce_sum(arrays)
    g = len(arrays)
    return [a / g for a in out]
