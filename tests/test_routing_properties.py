"""Property-based tests (hypothesis) for routing invariants.

These encode the paper's correctness-critical properties: capacity is a
hard bound, slots are unique, and prefix-stable gates really are prefix
stable for *any* split point -- the foundation of the capacity-passing
partitioned gate (Fig. 5c).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe import (
    combine,
    dispatch,
    dispatch_dx,
    route_random,
    route_switch,
    route_tokens,
)
from repro.moe.layer import softmax
from repro.runtime import RoutingSignature
from repro.testing import st_dispatch_counts


@st.composite
def probs_and_capacity(draw):
    t = draw(st.integers(2, 48))
    e = draw(st.integers(2, 8))
    c = draw(st.integers(1, 16))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return softmax(rng.standard_normal((t, e))), c


@given(probs_and_capacity(), st.sampled_from(["switch", "bpr", "random"]))
@settings(max_examples=60, deadline=None)
def test_capacity_is_hard_bound(pc, gate):
    probs, c = pc
    info, counts = route_tokens(probs, gate, c)
    assert (info.expert_counts() <= c).all()
    assert (np.asarray(counts) <= c).all()


@given(probs_and_capacity(), st.sampled_from(["switch", "bpr", "random"]))
@settings(max_examples=60, deadline=None)
def test_slots_unique_per_expert(pc, gate):
    probs, c = pc
    info, _ = route_tokens(probs, gate, c)
    pairs = np.stack([info.expert_idx, info.slot_idx], axis=1)
    assert len(np.unique(pairs, axis=0)) == len(pairs)


@given(probs_and_capacity(), st.data())
@settings(max_examples=60, deadline=None)
def test_switch_prefix_stable_any_split(pc, data):
    probs, c = pc
    t = probs.shape[0]
    cut = data.draw(st.integers(1, t - 1))
    full, _ = route_switch(probs, capacity=c)
    a, counts = route_switch(probs[:cut], capacity=c)
    b, _ = route_switch(probs[cut:], capacity=c, capacity_counts=counts)
    merged = np.concatenate(
        [a.sorted_tuples(), b.sorted_tuples() + np.array([cut, 0, 0])]
    )
    order = np.lexsort((merged[:, 2], merged[:, 1], merged[:, 0]))
    assert np.array_equal(merged[order], full.sorted_tuples())


@given(probs_and_capacity(), st.data(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_random_prefix_stable_any_split(pc, data, seed):
    probs, c = pc
    t = probs.shape[0]
    cut = data.draw(st.integers(1, t - 1))
    full, _ = route_random(probs, capacity=c, seed=seed)
    a, counts = route_random(probs[:cut], capacity=c, seed=seed, token_offset=0)
    b, _ = route_random(
        probs[cut:], capacity=c, seed=seed, token_offset=cut,
        capacity_counts=counts,
    )
    merged = np.concatenate(
        [a.sorted_tuples(), b.sorted_tuples() + np.array([cut, 0, 0])]
    )
    order = np.lexsort((merged[:, 2], merged[:, 1], merged[:, 0]))
    assert np.array_equal(merged[order], full.sorted_tuples())


@given(probs_and_capacity(), st.integers(2, 16))
@settings(max_examples=40, deadline=None)
def test_dispatch_combine_roundtrip(pc, h):
    """combine(dispatch(x)) with unit weights returns x for kept tokens
    and zero for dropped ones."""
    probs, c = pc
    t, e = probs.shape
    info, _ = route_switch(probs, capacity=c)
    rng = np.random.default_rng(7)
    x = rng.standard_normal((t, h))
    buf = dispatch(x, info)
    ones = np.ones_like(probs)
    y = combine(buf, info, ones)
    kept = np.zeros(t, dtype=bool)
    kept[info.token_idx] = True
    assert np.allclose(y[kept], x[kept])
    assert np.allclose(y[~kept], 0.0)


@given(probs_and_capacity(), st.integers(2, 16))
@settings(max_examples=40, deadline=None)
def test_dispatch_adjoint_property(pc, h):
    """<dispatch(x), B> == <x, dispatch_dx(B)>: scatter/gather are adjoint."""
    probs, c = pc
    t, e = probs.shape
    info, _ = route_switch(probs, capacity=c)
    rng = np.random.default_rng(11)
    x = rng.standard_normal((t, h))
    bbuf = rng.standard_normal((e, c, h))
    lhs = float((dispatch(x, info) * bbuf).sum())
    rhs = float((x * dispatch_dx(bbuf, info)).sum())
    assert np.isclose(lhs, rhs)


@given(st_dispatch_counts(4, 8))
@settings(max_examples=40, deadline=None)
def test_signature_from_counts_invariants(counts):
    """Signatures summarized from any (skewed) dispatch counts are
    well-formed: the bottleneck device is at least mean-loaded, the
    count provenance survives verbatim, and re-summarizing the same
    counts is deterministic."""
    sig = RoutingSignature.from_counts(counts, bytes_per_token=64.0)
    assert sig.num_devices == 4
    assert all(v >= 0 for v in sig.load)
    assert sig.bottleneck >= 1.0 or sig.is_uniform
    assert np.array_equal(np.asarray(sig.expert_counts), counts)
    assert sig == RoutingSignature.from_counts(counts, bytes_per_token=64.0)


@given(probs_and_capacity())
@settings(max_examples=40, deadline=None)
def test_dropped_plus_kept_is_everything(pc):
    probs, c = pc
    info, _ = route_switch(probs, capacity=c)
    kept = set(info.token_idx.tolist())
    dropped = set(info.dropped_tokens().tolist())
    assert kept | dropped == set(range(info.num_tokens))
    assert not (kept & dropped)
