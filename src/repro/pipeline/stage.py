"""Stage model for hybrid pipeline-parallel x expert-parallel topologies.

A :class:`StagedCluster` partitions a base :class:`~repro.runtime.ClusterSpec`
into ``S`` contiguous device subgroups, one per pipeline stage, and assigns
each stage a contiguous run of transformer blocks.  Expert parallelism (and
its all-to-alls) stays *within* a stage's subgroup; only point-to-point
activation transfers cross stage boundaries -- the composed topology the
ROADMAP names as the biggest scenario-diversity unlock (MixGCN's
mixture-of-parallelism framing; MoNTA's traffic-aware parallelism split).

:class:`StageMap` is the serializable summary of a staged plan (stage
boundaries + microbatch schedule) that rides inside a
:class:`~repro.api.Plan` and is folded into :class:`~repro.api.PlanStore`
request keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..runtime.cluster import ClusterSpec

#: microbatch schedules the staged simulator understands
SCHEDULES = ("gpipe", "1f1b")


def _subcluster(base: ClusterSpec, index: int, per_stage: int) -> ClusterSpec:
    """The stage's own cluster spec: a contiguous slice of the base.

    A stage owning whole nodes keeps the base intra/inter split; a stage
    smaller than one node becomes a single-node group of its size.
    """
    if per_stage >= base.gpus_per_node:
        if per_stage % base.gpus_per_node:
            raise ValueError(
                f"stage size {per_stage} must be a multiple of "
                f"gpus_per_node {base.gpus_per_node}"
            )
        return dataclasses.replace(
            base,
            name=f"{base.name}/stage{index}",
            num_nodes=per_stage // base.gpus_per_node,
        )
    if base.gpus_per_node % per_stage:
        raise ValueError(
            f"stage size {per_stage} must divide gpus_per_node "
            f"{base.gpus_per_node}"
        )
    return dataclasses.replace(
        base,
        name=f"{base.name}/stage{index}",
        num_nodes=1,
        gpus_per_node=per_stage,
    )


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: contiguous blocks on a contiguous device slice."""

    index: int
    #: contiguous, ascending transformer-block indices this stage runs
    layers: tuple[int, ...]
    #: base-cluster rank of the first device in the stage's subgroup
    first_device: int
    #: the stage's own cluster spec (expert parallelism lives here)
    cluster: ClusterSpec

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"stage {self.index} owns no layers")
        if list(self.layers) != list(
            range(self.layers[0], self.layers[-1] + 1)
        ):
            raise ValueError(
                f"stage {self.index} layers {self.layers} are not contiguous"
            )

    @property
    def num_devices(self) -> int:
        return self.cluster.num_gpus

    @property
    def devices(self) -> range:
        """Base-cluster ranks of this stage's subgroup."""
        return range(self.first_device, self.first_device + self.num_devices)


@dataclass(frozen=True)
class StagedCluster:
    """A base cluster partitioned into equal contiguous stage subgroups."""

    base: ClusterSpec
    stages: tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("need at least one stage")
        expect = 0
        for s in self.stages:
            if s.first_device != expect:
                raise ValueError(
                    f"stage {s.index} starts at device {s.first_device}, "
                    f"expected {expect} (stages must tile the cluster)"
                )
            expect += s.num_devices
        if expect != self.base.num_gpus:
            raise ValueError(
                f"stages cover {expect} devices, cluster has "
                f"{self.base.num_gpus}"
            )
        covered = [layer for s in self.stages for layer in s.layers]
        if covered != list(range(len(covered))):
            raise ValueError(
                f"stage layers {covered} do not tile 0..{len(covered) - 1}"
            )

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_layers(self) -> int:
        return sum(len(s.layers) for s in self.stages)

    @property
    def layer_counts(self) -> tuple[int, ...]:
        return tuple(len(s.layers) for s in self.stages)

    def stage_of_layer(self, layer: int) -> int:
        for s in self.stages:
            if layer in s.layers:
                return s.index
        raise KeyError(f"layer {layer} not owned by any stage")

    def boundary_inter_node(self, boundary: int) -> bool:
        """Whether boundary ``b`` (between stage b and b+1) crosses nodes.

        Node membership is judged on the *base* cluster: the last device
        of stage ``b`` vs the first device of stage ``b+1``.
        """
        sender = self.stages[boundary].devices[-1]
        receiver = self.stages[boundary + 1].first_device
        per_node = self.base.gpus_per_node
        return sender // per_node != receiver // per_node

    @classmethod
    def from_layer_counts(
        cls, base: ClusterSpec, layer_counts: tuple[int, ...] | list[int]
    ) -> "StagedCluster":
        """Build stages from explicit per-stage layer counts."""
        counts = tuple(int(c) for c in layer_counts)
        if any(c < 1 for c in counts):
            raise ValueError(f"every stage needs >=1 layer, got {counts}")
        num_stages = len(counts)
        if base.num_gpus % num_stages:
            raise ValueError(
                f"{num_stages} stages must divide {base.num_gpus} devices"
            )
        per_stage = base.num_gpus // num_stages
        stages = []
        first_layer = 0
        for i, c in enumerate(counts):
            stages.append(
                StageSpec(
                    index=i,
                    layers=tuple(range(first_layer, first_layer + c)),
                    first_device=i * per_stage,
                    cluster=_subcluster(base, i, per_stage),
                )
            )
            first_layer += c
        return cls(base=base, stages=tuple(stages))

    @classmethod
    def even(
        cls, base: ClusterSpec, num_layers: int, num_stages: int
    ) -> "StagedCluster":
        """The naive even split: layers divided as equally as possible
        (earlier stages take the remainder)."""
        if num_stages < 1 or num_stages > num_layers:
            raise ValueError(
                f"need 1 <= stages <= layers, got {num_stages} stages "
                f"for {num_layers} layers"
            )
        q, r = divmod(num_layers, num_stages)
        return cls.from_layer_counts(
            base, [q + (1 if i < r else 0) for i in range(num_stages)]
        )


@dataclass(frozen=True)
class StageMap:
    """Serializable summary of a staged plan: boundaries + schedule.

    The *request* part (stage count, microbatches, schedule) identifies
    what was asked for and folds into :class:`~repro.api.PlanStore` keys;
    the *chosen* part (per-stage layer counts, predicted pipeline time)
    is planner output carried for auditability.
    """

    num_stages: int
    microbatches: int
    schedule: str
    layer_counts: tuple[int, ...]
    predicted_pipeline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; pick from {SCHEDULES}"
            )
        if len(self.layer_counts) != self.num_stages:
            raise ValueError(
                f"{len(self.layer_counts)} layer counts for "
                f"{self.num_stages} stages"
            )
        if self.microbatches < 1:
            raise ValueError("microbatches must be >= 1")

    def layers_of(self, stage: int) -> range:
        start = sum(self.layer_counts[:stage])
        return range(start, start + self.layer_counts[stage])

    def request_dict(self) -> dict:
        """The store-key fold: what a staged compile *requests* (the
        chosen boundaries are planner output, unknown at lookup time)."""
        return {
            "num_stages": self.num_stages,
            "microbatches": self.microbatches,
            "schedule": self.schedule,
        }

    def to_dict(self) -> dict:
        return {
            "num_stages": self.num_stages,
            "microbatches": self.microbatches,
            "schedule": self.schedule,
            "layer_counts": list(self.layer_counts),
            "predicted_pipeline_ms": self.predicted_pipeline_ms,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "StageMap":
        return cls(
            num_stages=int(obj["num_stages"]),
            microbatches=int(obj["microbatches"]),
            schedule=str(obj["schedule"]),
            layer_counts=tuple(int(c) for c in obj["layer_counts"]),
            predicted_pipeline_ms=obj.get("predicted_pipeline_ms"),
        )

    def describe(self) -> str:
        counts = "+".join(str(c) for c in self.layer_counts)
        pred = (
            f", predicted {self.predicted_pipeline_ms:.3f} ms"
            if self.predicted_pipeline_ms is not None
            else ""
        )
        return (
            f"{self.num_stages} stages (layers {counts}), "
            f"{self.microbatches} microbatches, {self.schedule}{pred}"
        )
