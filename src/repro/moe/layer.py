"""A numerically exact, multi-device (simulated SPMD) MoE layer.

This is the standalone MoE substrate: it runs the full gate -> dispatch ->
all-to-all -> experts -> all-to-all -> combine data path of paper Fig. 1
with real numpy tensors across ``G`` simulated devices, including exact
backward.  It is the reference implementation against which the IR
executor and the partitioned (pipelined) execution are tested for
mathematical equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .capacity import expert_capacity
from .dispatch import (
    combine,
    combine_dprobs,
    combine_dx,
    dispatch,
    dispatch_dx,
    exchange_expert_buffers,
    exchange_expert_buffers_inverse,
)
from .experts import expert_ffn, expert_ffn_backward
from .routing import RoutingInfo, route_tokens


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    m = x.max(axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass
class MoELayerParams:
    """Per-device parameters of a distributed MoE layer."""

    wg: np.ndarray  # [H, E] gate weight, replicated
    w1: list[np.ndarray]  # per device [El, H, F]
    b1: list[np.ndarray]
    w2: list[np.ndarray]
    b2: list[np.ndarray]

    @classmethod
    def init(
        cls,
        num_devices: int,
        experts_per_device: int,
        hidden: int,
        ffn_hidden: int,
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> "MoELayerParams":
        scale = 1.0 / np.sqrt(hidden)
        e = num_devices * experts_per_device
        wg = (rng.standard_normal((hidden, e)) * scale).astype(dtype)
        w1, b1, w2, b2 = [], [], [], []
        for _ in range(num_devices):
            w1.append(
                (rng.standard_normal((experts_per_device, hidden, ffn_hidden)) * scale).astype(dtype)
            )
            b1.append(np.zeros((experts_per_device, ffn_hidden), dtype=dtype))
            w2.append(
                (rng.standard_normal((experts_per_device, ffn_hidden, hidden))
                 * (1.0 / np.sqrt(ffn_hidden))).astype(dtype)
            )
            b2.append(np.zeros((experts_per_device, hidden), dtype=dtype))
        return cls(wg, w1, b1, w2, b2)


@dataclass
class MoEForwardCache:
    """Saved activations needed for the backward pass."""

    xs_flat: list[np.ndarray]
    probs: list[np.ndarray]
    infos: list[RoutingInfo]
    dispatched: list[np.ndarray]  # post first a2a (expert input)
    expert_out_returned: list[np.ndarray]  # post second a2a (combine input)


class DistributedMoELayer:
    """MoE layer over ``G`` simulated devices with exact forward/backward.

    Parameters
    ----------
    num_devices:
        Simulated device count ``G``.
    experts_per_device:
        ``El``; total experts ``E = G * El``.
    gate_type:
        One of the routing algorithms in :mod:`repro.moe.routing`.
    capacity_factor, top_k:
        Capacity and top-k routing configuration.
    """

    def __init__(
        self,
        num_devices: int,
        experts_per_device: int,
        hidden: int,
        ffn_hidden: int,
        gate_type: str = "switch",
        capacity_factor: float = 1.25,
        top_k: int = 1,
        seed: int = 0,
        dtype=np.float64,
    ) -> None:
        self.g = num_devices
        self.el = experts_per_device
        self.e = num_devices * experts_per_device
        self.hidden = hidden
        self.ffn_hidden = ffn_hidden
        self.gate_type = gate_type
        self.capacity_factor = capacity_factor
        self.top_k = top_k
        self.dtype = dtype
        rng = np.random.default_rng(seed)
        self.params = MoELayerParams.init(
            num_devices, experts_per_device, hidden, ffn_hidden, rng, dtype
        )

    # -- forward ----------------------------------------------------------------

    def capacity_for(self, tokens_per_device: int) -> int:
        return expert_capacity(
            tokens_per_device, self.e, self.capacity_factor, self.top_k
        )

    def gate(
        self,
        x_flat: np.ndarray,
        capacity: int,
        token_ids: np.ndarray | None = None,
        capacity_counts: np.ndarray | None = None,
        seed: int = 0,
        token_offset: int = 0,
    ) -> tuple[np.ndarray, RoutingInfo, np.ndarray]:
        """Gate scores + routing for one device's (chunk of) tokens.

        Returns (probs, routing info, updated capacity counts).
        """
        probs = softmax(x_flat @ self.params.wg)
        info, counts = route_tokens(
            probs,
            self.gate_type,
            capacity,
            k=self.top_k,
            token_ids=token_ids,
            seed=seed,
            token_offset=token_offset,
            capacity_counts=capacity_counts,
        )
        return probs, info, counts

    def forward(
        self,
        xs: list[np.ndarray],
        token_ids: list[np.ndarray] | None = None,
        seed: int = 0,
    ) -> tuple[list[np.ndarray], MoEForwardCache]:
        """Run the full MoE layer; ``xs[d]`` is device ``d``'s [T, H] input.

        Returns per-device outputs (same shapes) and the backward cache.
        """
        if len(xs) != self.g:
            raise ValueError(f"expected {self.g} device inputs, got {len(xs)}")
        t = xs[0].shape[0]
        capacity = self.capacity_for(t)

        probs, infos, bufs = [], [], []
        for d, x in enumerate(xs):
            ids = token_ids[d] if token_ids is not None else None
            pr, info, _ = self.gate(x, capacity, token_ids=ids, seed=seed + d)
            probs.append(pr)
            infos.append(info)
            bufs.append(dispatch(x, info))

        received = exchange_expert_buffers(bufs)  # first all-to-all
        expert_out = [
            expert_ffn(
                received[d],
                self.params.w1[d],
                self.params.b1[d],
                self.params.w2[d],
                self.params.b2[d],
            )
            for d in range(self.g)
        ]
        returned = exchange_expert_buffers_inverse(expert_out)  # second a2a

        ys = [
            combine(returned[d], infos[d], probs[d]) for d in range(self.g)
        ]
        cache = MoEForwardCache(
            xs_flat=list(xs),
            probs=probs,
            infos=infos,
            dispatched=received,
            expert_out_returned=returned,
        )
        return ys, cache

    # -- backward -----------------------------------------------------------------

    def backward(
        self, dys: list[np.ndarray], cache: MoEForwardCache
    ) -> tuple[list[np.ndarray], dict]:
        """Exact backward pass.

        Returns per-device input gradients and a dict of parameter grads:
        ``{"wg": [G arrays], "w1": [...], "b1": ..., "w2": ..., "b2": ...}``
        (gate grads are per-device; data parallelism would all-reduce them).
        """
        g = self.g
        dbufs, dprobs_list = [], []
        for d in range(g):
            dy = dys[d]
            dbufs.append(combine_dx(dy, cache.infos[d], cache.probs[d]))
            dprobs_list.append(
                combine_dprobs(dy, cache.expert_out_returned[d], cache.infos[d])
            )

        # backward of the second a2a = forward exchange
        dexpert_out = exchange_expert_buffers(dbufs)

        dreceived, dw1, db1, dw2, db2 = [], [], [], [], []
        for d in range(g):
            dx_e, g1, gb1, g2, gb2 = expert_ffn_backward(
                dexpert_out[d],
                cache.dispatched[d],
                self.params.w1[d],
                self.params.b1[d],
                self.params.w2[d],
            )
            dreceived.append(dx_e)
            dw1.append(g1)
            db1.append(gb1)
            dw2.append(g2)
            db2.append(gb2)

        # backward of the first a2a = inverse exchange
        ddispatch = exchange_expert_buffers_inverse(dreceived)

        dxs, dwg = [], []
        for d in range(g):
            dx = dispatch_dx(ddispatch[d], cache.infos[d])
            # gate gradient: dprobs -> softmax backward -> matmul dW
            pr = cache.probs[d]
            dp = dprobs_list[d]
            dscores = pr * (dp - (dp * pr).sum(axis=-1, keepdims=True))
            dwg.append(cache.xs_flat[d].T @ dscores)
            dx = dx + dscores @ self.params.wg.T
            dxs.append(dx)

        grads = {"wg": dwg, "w1": dw1, "b1": db1, "w2": dw2, "b2": db2}
        return dxs, grads
