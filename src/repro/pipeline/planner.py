"""Stage-split planner: choose pipeline boundaries, then let Lancet plan
each stage's partition/dW/a2a choices within its subgroup.

The search is two-phase, like the flat planner's candidate pruning:

1. **Heuristic ranking** -- per-layer costs (ground-truth op durations on
   the stage-subgroup cluster, with realized routing so hot-expert
   all-to-alls price high) are aggregated per candidate contiguous split
   and scored with the classic pipeline bound
   ``sum(t_s) + (M - 1) * max(t_s)``.
2. **Exact simulation** -- the top candidates (the even split always
   included) run through the full staged simulator; the winner's
   segments are then optimized per stage by :class:`~repro.core
   .LancetOptimizer` against the stage's own cluster and signatures, and
   the final pipeline makespan is re-simulated on optimized costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..runtime.cluster import ClusterSpec
from ..runtime.device import COMPILED
from ..runtime.simulate import GroundTruthCost, SimulationConfig
from .partition import SplitProgram, split_stages
from .simulate import StagedSimulation, simulate_staged
from .stage import StagedCluster, StageMap

#: max contiguous splits enumerated exhaustively before falling back to
#: the even split's boundary neighborhood
MAX_EXHAUSTIVE_SPLITS = 256

#: candidates fully simulated after heuristic ranking
DEFAULT_TOP_K = 4


def layer_costs(program, cluster: ClusterSpec, framework=COMPILED,
                routing=None, padded_a2a: bool = True) -> dict[int, float]:
    """Total ground-truth duration of each layer's instructions, ms.

    Priced on the *stage subgroup* cluster (where the layer would run),
    with realized routing when given -- so a hot MoE layer's all-to-alls
    weigh as much as they will in the staged simulation."""
    kwargs = dict(cluster=cluster, framework=framework, padded_a2a=padded_a2a)
    if routing is not None:
        kwargs["routing"] = routing
    cost = GroundTruthCost(SimulationConfig(**kwargs))
    totals: dict[int, float] = {}
    for instr in program.instructions:
        layer = instr.attrs.get("layer")
        if layer is None:
            raise ValueError(
                f"instruction {instr.op!r} carries no 'layer' attr; the "
                "stage planner needs layer-stamped programs"
            )
        totals[int(layer)] = totals.get(int(layer), 0.0) + cost.duration_ms(
            instr, program
        )
    return totals


def enumerate_layer_counts(
    num_layers: int, num_stages: int, limit: int = MAX_EXHAUSTIVE_SPLITS
) -> list[tuple[int, ...]]:
    """Candidate contiguous splits: all compositions of ``L`` into ``S``
    positive parts when that is small, else the even split's boundary
    neighborhood (every boundary independently shifted by -1/0/+1)."""
    import math

    total = math.comb(num_layers - 1, num_stages - 1)
    if total <= limit:
        out = []
        for cuts in itertools.combinations(
            range(1, num_layers), num_stages - 1
        ):
            edges = (0,) + cuts + (num_layers,)
            out.append(
                tuple(edges[i + 1] - edges[i] for i in range(num_stages))
            )
        return out

    q, r = divmod(num_layers, num_stages)
    even_edges = [0]
    for i in range(num_stages):
        even_edges.append(even_edges[-1] + q + (1 if i < r else 0))
    candidates = set()
    for deltas in itertools.product((-1, 0, 1), repeat=num_stages - 1):
        edges = list(even_edges)
        for i, d in enumerate(deltas):
            edges[i + 1] += d
        if all(edges[i + 1] > edges[i] for i in range(num_stages)):
            candidates.add(
                tuple(edges[i + 1] - edges[i] for i in range(num_stages))
            )
    return sorted(candidates)


def pipeline_bound_ms(
    stage_ms: list[float], microbatches: int
) -> float:
    """The classic pipeline makespan bound: one microbatch traverses
    every stage, then the bottleneck stage serializes the rest."""
    return sum(stage_ms) + (microbatches - 1) * max(stage_ms)


@dataclass
class StagedPlanResult:
    """Everything a staged planning run produced."""

    stage_map: StageMap
    staged: StagedCluster
    #: the chosen split with per-stage-optimized segments installed
    split: SplitProgram
    #: flat reassembled program (per-microbatch; serialized into Plans)
    program: object
    simulation: StagedSimulation
    #: heuristic ranking rows: {"layer_counts", "bound_ms", "simulated_ms"}
    candidates: list[dict] = field(default_factory=list)
    #: per-stage (forward_report, backward_report) Lancet summaries
    stage_reports: list[dict] = field(default_factory=list)

    @property
    def makespan_ms(self) -> float:
        return self.simulation.makespan


def _optimize_split(split, optimizer_factory, check: bool = False):
    """Run the per-stage optimizer over forward + backward segments."""
    reports = []
    for stage in split.staged.stages:
        summary = {"stage": stage.index}
        opt = optimizer_factory(stage.cluster)
        for phase in ("forward", "backward"):
            seg = split.segment(stage.index, phase)
            if not seg.program.instructions:
                continue
            optimized, report = opt.optimize(seg.program, check=check)
            seg.program = optimized
            summary[phase] = report.summary_dict()
        reports.append(summary)
    return reports


def plan_stages(
    graph_or_program,
    cluster: ClusterSpec,
    num_stages: int,
    microbatches: int,
    schedule: str = "1f1b",
    layer_counts: tuple[int, ...] | None = None,
    optimizer_factory=None,
    framework=COMPILED,
    routing=None,
    padded_a2a: bool = True,
    top_k: int = DEFAULT_TOP_K,
    forward_len: int | None = None,
    check: bool = False,
) -> StagedPlanResult:
    """Plan a staged iteration: pick boundaries, optimize each stage.

    Parameters
    ----------
    graph_or_program:
        Layer-stamped training graph built for *one microbatch* at the
        stage-subgroup device count (``cluster.num_gpus / num_stages``).
    layer_counts:
        Skip the search and force these boundaries (used by the naive
        even-split baseline, which still gets per-stage optimization).
    optimizer_factory:
        ``f(stage_cluster) -> LancetOptimizer`` for per-stage
        optimization; ``None`` plans boundaries only (unoptimized
        segments), which is also what the candidate search simulates.
    check:
        Validate the IR after each per-stage optimizer pass.
    """
    program = getattr(graph_or_program, "program", graph_or_program)
    num_layers = 1 + max(
        int(i.attrs.get("layer", 0)) for i in program.instructions
    )
    if num_stages < 1 or num_stages > num_layers:
        raise ValueError(
            f"need 1 <= stages <= {num_layers} layers, got {num_stages}"
        )

    candidates: list[dict] = []
    if layer_counts is None:
        per_layer = layer_costs(
            program,
            StagedCluster.even(cluster, num_layers, num_stages)
            .stages[0]
            .cluster,
            framework=framework,
            routing=routing,
            padded_a2a=padded_a2a,
        )
        scored = []
        for counts in enumerate_layer_counts(num_layers, num_stages):
            edges = [0]
            for c in counts:
                edges.append(edges[-1] + c)
            stage_ms = [
                sum(per_layer.get(layer, 0.0) for layer in range(a, b))
                for a, b in zip(edges, edges[1:])
            ]
            scored.append(
                (pipeline_bound_ms(stage_ms, microbatches), counts)
            )
        scored.sort(key=lambda t: (t[0], t[1]))
        even = StagedCluster.even(cluster, num_layers, num_stages)
        shortlist = [counts for _, counts in scored[:top_k]]
        if even.layer_counts not in shortlist:
            shortlist.append(even.layer_counts)

        best = None
        for counts in shortlist:
            staged = StagedCluster.from_layer_counts(cluster, counts)
            split = split_stages(
                graph_or_program, staged, forward_len=forward_len
            )
            sim = simulate_staged(
                split,
                microbatches,
                schedule=schedule,
                framework=framework,
                routing=routing,
                padded_a2a=padded_a2a,
            )
            bound = next(b for b, c in scored if c == counts)
            candidates.append(
                {
                    "layer_counts": counts,
                    "bound_ms": bound,
                    "simulated_ms": sim.makespan,
                }
            )
            if best is None or sim.makespan < best[0]:
                best = (sim.makespan, counts)
        layer_counts = best[1]

    staged = StagedCluster.from_layer_counts(cluster, layer_counts)
    split = split_stages(graph_or_program, staged, forward_len=forward_len)
    stage_reports = []
    if optimizer_factory is not None:
        stage_reports = _optimize_split(split, optimizer_factory, check=check)
    simulation = simulate_staged(
        split,
        microbatches,
        schedule=schedule,
        framework=framework,
        routing=routing,
        padded_a2a=padded_a2a,
    )
    from .partition import reassemble

    stage_map = StageMap(
        num_stages=num_stages,
        microbatches=microbatches,
        schedule=schedule,
        layer_counts=tuple(layer_counts),
        predicted_pipeline_ms=simulation.makespan,
    )
    return StagedPlanResult(
        stage_map=stage_map,
        staged=staged,
        split=split,
        program=reassemble(split),
        simulation=simulation,
        candidates=candidates,
        stage_reports=stage_reports,
    )
