"""Unit tests for IR tensor types."""

import pytest

from repro.ir import (
    AXIS_IRREGULAR,
    NOT_PARTITIONED,
    Dim,
    DType,
    TensorType,
    axis_name,
    route_type,
)
from repro.ir.tensor import is_route_type


class TestDType:
    def test_sizes(self):
        assert DType.F32.nbytes == 4
        assert DType.F16.nbytes == 2
        assert DType.I32.nbytes == 4
        assert DType.I64.nbytes == 8
        assert DType.BOOL.nbytes == 1


class TestTensorType:
    def test_basic_properties(self):
        t = TensorType((2, 3, 4), DType.F16, (Dim.BATCH, Dim.SEQ, Dim.HIDDEN))
        assert t.rank == 3
        assert t.numel == 24
        assert t.nbytes == 48

    def test_default_dims(self):
        t = TensorType((5, 6))
        assert t.dims == (Dim.GENERIC, Dim.GENERIC)

    def test_dims_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TensorType((2, 3), DType.F16, (Dim.BATCH,))

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            TensorType((2, -1))

    def test_dim_index(self):
        t = TensorType((2, 3, 4), DType.F16, (Dim.BATCH, Dim.SEQ, Dim.HIDDEN))
        assert t.dim_index(Dim.SEQ) == 1
        assert t.has_dim(Dim.HIDDEN)
        assert not t.has_dim(Dim.EXPERT)
        with pytest.raises(ValueError):
            t.dim_index(Dim.EXPERT)

    def test_with_shape(self):
        t = TensorType((2, 3), DType.F32)
        t2 = t.with_shape((4, 5))
        assert t2.shape == (4, 5)
        assert t2.dtype == DType.F32
        with pytest.raises(ValueError):
            t.with_shape((1, 2, 3))

    def test_split_even(self):
        t = TensorType((8, 3), DType.F16)
        chunks = [t.split(0, 4, i) for i in range(4)]
        assert all(c.shape == (2, 3) for c in chunks)

    def test_split_uneven_follows_array_split(self):
        t = TensorType((7, 3), DType.F16)
        sizes = [t.split(0, 3, i).shape[0] for i in range(3)]
        assert sizes == [3, 2, 2]
        assert sum(sizes) == 7

    def test_split_invalid(self):
        t = TensorType((4, 3), DType.F16)
        with pytest.raises(ValueError):
            t.split(2, 2, 0)
        with pytest.raises(ValueError):
            t.split(0, 8, 0)

    def test_scalar(self):
        t = TensorType((), DType.F32)
        assert t.rank == 0
        assert t.numel == 1


class TestRouteType:
    def test_route_type_detected(self):
        t = route_type(100)
        assert t.shape == (100, 3)
        assert is_route_type(t)

    def test_non_route_types_rejected(self):
        assert not is_route_type(TensorType((100, 3), DType.F16))
        assert not is_route_type(TensorType((100, 4), DType.I32))
        assert not is_route_type(
            TensorType((100, 3), DType.I32, (Dim.BATCH, Dim.GENERIC))
        )


class TestAxisName:
    def test_names(self):
        assert axis_name(NOT_PARTITIONED) == "NP"
        assert axis_name(AXIS_IRREGULAR) == "A_irr"
        assert axis_name(0) == "0"
        assert axis_name(2) == "2"
