"""Placement-optimizer benchmark: differential agreement + hot-expert wins.

Not a paper figure -- the quality gate for the ISSUE 9 expert placement
& replication optimizer (:mod:`repro.placement`).  Three seeded,
fully deterministic drills:

- **differential** -- the greedy optimizer vs. exhaustive brute force on
  every enumerable small config (single- and multi-node).  A *mismatch*
  is a run whose bottleneck exceeds ``brute_force *``
  :data:`~repro.placement.GREEDY_BOUND`; the gate is **exactly zero**
  mismatches (the documented bound is a contract, not a target).
- **hot grid** -- multi-node p3dn clusters under hot-expert traffic: the
  placement's bottleneck-a2a improvement over the identity layout must
  clear :data:`MIN_HOT_IMPROVEMENT` on every grid point (the headline
  "placement flattens the NIC bottleneck" claim).
- **replay** -- the priced-migration drill over a recorded drift trace:
  the adaptive trajectory (weight-transfer costs included) must beat
  staying on the identity layout.

All quantities are modeled milliseconds / counts, deterministic across
machines, so the regression gate runs at tight tolerances.
"""

from __future__ import annotations

import numpy as np

from ...placement import (
    GREEDY_BOUND,
    PlacementOptimizer,
    brute_force_placement,
    replay_trace,
)
from ...runtime import ClusterSpec
from ...testing import make_drift_trace
from ..formatting import format_table
from .common import FigureResult

#: minimum fractional bottleneck-a2a improvement the optimizer must find
#: on every multi-node hot-expert grid point (the gate's target)
MIN_HOT_IMPROVEMENT = 0.10

#: floor for the improvement-shortfall regression metric: the realized
#: shortfall is 0 (every grid point clears the target with margin), and
#: a 20% relative tolerance on 0 would gate on nothing -- flooring makes
#: the gate fire only once improvement drops meaningfully below target
SHORTFALL_FLOOR = 0.01


def _tiny_multi_node() -> ClusterSpec:
    return ClusterSpec(
        name="tiny-2x2",
        gpu=ClusterSpec.p3dn(2).gpu,
        num_nodes=2,
        gpus_per_node=2,
        intra_bw_gbps=110.0,
        node_nic_gbps=12.5,
        alpha_intra_us=10.0,
        alpha_inter_us=28.0,
    )


def _skewed_counts(rng, g: int, e: int, hot: int, boost: int):
    counts = rng.integers(1, 120, size=(g, e))
    for h in rng.choice(e, size=hot, replace=False):
        counts[:, h] += boost
    return counts


def _differential_drill(seeds_per_config: int, seed: int) -> dict:
    """Greedy vs brute force on every enumerable config."""
    configs = [
        ("a100x2-e4", ClusterSpec.for_gpus("a100", 2), 4),
        ("a100x2-e8", ClusterSpec.for_gpus("a100", 2), 8),
        ("a100x4-e4", ClusterSpec.for_gpus("a100", 4), 4),
        ("2x2-e4", _tiny_multi_node(), 4),
        ("2x2-e8", _tiny_multi_node(), 8),
    ]
    runs = exact = mismatches = 0
    worst_ratio = 1.0
    for _, cluster, e in configs:
        opt = PlacementOptimizer(cluster)
        for s in range(seeds_per_config):
            rng = np.random.default_rng(seed * 1000 + s)
            counts = _skewed_counts(rng, cluster.num_gpus, e, hot=1, boost=400)
            result = opt.optimize(counts, 64.0)
            _, best_ms = brute_force_placement(counts, 64.0, cluster)
            ratio = result.bottleneck_ms / best_ms if best_ms > 0 else 1.0
            runs += 1
            if ratio <= 1.0 + 1e-9:
                exact += 1
            if ratio > GREEDY_BOUND + 1e-9:
                mismatches += 1
            worst_ratio = max(worst_ratio, ratio)
    return {
        "configs": [name for name, _, _ in configs],
        "runs": runs,
        "exact_matches": exact,
        "mismatches_beyond_bound": mismatches,
        "worst_ratio": worst_ratio,
        "greedy_bound": GREEDY_BOUND,
    }


def _grid_clusters() -> list[tuple[ClusterSpec, int]]:
    """(cluster, num_experts) hot-grid points: three multi-node shapes
    (wide nodes, narrow nodes, many small nodes), sized so one optimize
    stays ~1 s."""
    import dataclasses

    p3dn2 = ClusterSpec.p3dn(2)  # 2 nodes x 8 GPUs
    narrow = dataclasses.replace(p3dn2, name="p3dn-2x4", gpus_per_node=4)
    many = dataclasses.replace(
        p3dn2, name="p3dn-4x2", num_nodes=4, gpus_per_node=2
    )
    return [(p3dn2, 16), (narrow, 16), (many, 16)]


def _hot_grid_drill(seeds_per_point: int, seed: int) -> dict:
    """Multi-node hot-expert traffic: improvement over identity.

    The gate quantity is the worst grid point's *mean-over-seeds*
    improvement (per-seed minima stay informational: a single draw can
    land nearly balanced, where no placement has much to win)."""
    grid = []
    for cluster, e in _grid_clusters():
        g = cluster.num_gpus
        opt = PlacementOptimizer(cluster)
        for boost in (600, 1500):
            improvements = []
            for s in range(seeds_per_point):
                rng = np.random.default_rng(seed * 100 + s)
                counts = _skewed_counts(rng, g, e, hot=2, boost=boost)
                result = opt.optimize(counts, 2048.0)
                improvements.append(result.improvement)
            grid.append(
                {
                    "cluster": cluster.name,
                    "gpus": g,
                    "experts": e,
                    "boost": boost,
                    "min_improvement": min(improvements),
                    "mean_improvement": float(np.mean(improvements)),
                }
            )
    min_improvement = min(p["mean_improvement"] for p in grid)
    return {
        "points": grid,
        "min_improvement": min_improvement,
        "target": MIN_HOT_IMPROVEMENT,
        "shortfall": max(0.0, MIN_HOT_IMPROVEMENT - min_improvement),
    }


def _replay_drill(steps: int, seed: int) -> dict:
    """Priced migrations over a recorded hot-expert drift trace."""
    cluster = ClusterSpec.for_gpus("a100", 4)
    trace = make_drift_trace(4, 8, steps=steps, seed=seed, hot_tokens=1500)
    report = replay_trace(
        trace,
        cluster,
        bytes_per_token=8192.0,
        expert_weight_bytes=8 * 2**20,
        horizon_steps=20,
    )
    return {
        "steps": steps,
        "migrations": len(report.migrations),
        "decisions": len(report.events),
        "total_identity_ms": report.total_identity_ms,
        "total_adaptive_ms": report.total_adaptive_ms,
        "improvement_ms": report.improvement_ms,
        "improvement": report.improvement,
        # lower-is-better form of the same win
        "adaptive_over_identity": (
            report.total_adaptive_ms / report.total_identity_ms
            if report.total_identity_ms > 0
            else 1.0
        ),
    }


def run(
    seeds_per_config: int = 4,
    hot_seeds_per_point: int = 3,
    replay_steps: int = 40,
    seed: int = 0,
) -> FigureResult:
    """Run all three placement drills; returns per-drill summary rows."""
    differential = _differential_drill(seeds_per_config, seed)
    hot = _hot_grid_drill(hot_seeds_per_point, seed)
    replay = _replay_drill(replay_steps, seed)

    rows = [
        {
            "drill": "differential",
            "scale": f"{differential['runs']} runs / "
            f"{len(differential['configs'])} configs",
            "outcome": f"{differential['mismatches_beyond_bound']} beyond "
            f"{GREEDY_BOUND:.2f}x bound",
            "detail": f"{differential['exact_matches']} exact, worst ratio "
            f"{differential['worst_ratio']:.4f}",
        },
        {
            "drill": "hot-grid",
            "scale": f"{len(hot['points'])} grid points "
            f"(3 multi-node shapes, 2 boosts)",
            "outcome": f"min improvement "
            f"{hot['min_improvement'] * 100:.1f}% "
            f"(target {MIN_HOT_IMPROVEMENT * 100:.0f}%)",
            "detail": f"mean over grid "
            f"{np.mean([p['mean_improvement'] for p in hot['points']]) * 100:.1f}%",
        },
        {
            "drill": "replay",
            "scale": f"{replay['steps']} steps",
            "outcome": f"{replay['migrations']} migrations, "
            f"net win {replay['improvement'] * 100:.1f}%",
            "detail": f"adaptive {replay['total_adaptive_ms']:.3f} ms vs "
            f"identity {replay['total_identity_ms']:.3f} ms",
        },
    ]
    table = format_table(
        ["Drill", "Scale", "Outcome", "Detail"],
        [[r["drill"], r["scale"], r["outcome"], r["detail"]] for r in rows],
        title="Expert placement: differential agreement, hot-expert wins, "
        "priced migration replay",
    )
    notes = {
        "differential": differential,
        "hot_grid": hot,
        "replay": replay,
        # lower-is-better gates for check_regression.py.  Brute-force
        # disagreements beyond the documented bound gate at exactly
        # zero; the hot-grid improvement gates through its floored
        # shortfall (see SHORTFALL_FLOOR); the replay win gates as the
        # adaptive/identity cost ratio.
        "regression_metrics": {
            "mismatches_beyond_bound": float(
                differential["mismatches_beyond_bound"]
            ),
            "worst_greedy_ratio": differential["worst_ratio"],
            "hot_improvement_shortfall_floored": max(
                hot["shortfall"], SHORTFALL_FLOOR
            ),
            "replay_adaptive_over_identity": replay["adaptive_over_identity"],
        },
    }
    return FigureResult(
        "placement",
        "expert placement & replication optimizer quality gates",
        rows,
        table,
        notes,
    )
