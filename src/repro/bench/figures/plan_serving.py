"""Plan-serving stress: thousands of mixed warm/cold requests.

Not a paper figure -- infrastructure validation for the serving layer
(:mod:`repro.serving`).  A production deployment's request stream is a
mix of cold compiles (new workloads), warm repeats (the steady state),
identical bursts (a fleet of trainers starting the same job), and
near-miss signatures (routing drifted one bucket over).  This experiment
drives all four shapes through one shared :class:`~repro.api.PlanStore`
and holds the serving layer to its claims:

- **burst** -- many concurrent identical requests against the *empty*
  store: coalescing must collapse them to exactly one planner run (run
  first, because once any same-identity bucket is stored, nearest
  serving answers the burst with *zero* request-path planner runs);
- **cold** -- one request per workload through a plain (no nearest, no
  memory cache) server: the planner-latency floor the warm paths are
  measured against;
- **warm** -- a long shuffled stream over the already-planned workloads:
  the steady state, whose p50 must sit far below the cold p50;
- **nearest** -- fresh routing seeds one bucket away from stored plans:
  served immediately from the closest bucket while the exact re-plan is
  hot-swapped in, with a bounded served-vs-exact predicted gap.

The workload suite is derived from *every* scenario preset
(:func:`repro.api.available_presets`): each preset's cluster kind, gate,
and hot-expert knobs are kept, while the model is swapped for the
miniature ``tiny`` config (8 GPUs) and the routing seed is made unique
per preset -- 26 structurally distinct store entries at CI-friendly
planner cost.
"""

from __future__ import annotations

import random
import statistics
import time

from ...api import PlanStore, Scenario, available_presets
from ...serving import NEAREST_PREDICTED_GAP_BOUND, PlanServer
from ..formatting import format_table
from .common import FigureResult

#: regression floor for the nearest-signature predicted gap: the realized
#: gap on this suite is ~1e-6 (the neighbor's schedule is near-optimal),
#: where a 20% relative tolerance would trip on float-level jitter.  The
#: metric is floored here so the gate only fires when the gap becomes
#: *meaningful* (> ~6% predicted-time error), far below the documented
#: 25% serving bound.
GAP_METRIC_FLOOR = 0.05

#: regression floor for the warm/cold latency ratio, for the same
#: reason: the realized ratio is ~0.001 (warm p50 is a ~40us memory-
#: cache read), where 20% relative tolerance would gate on scheduler
#: noise.  Floored at 1/60 the gate's 20% tolerance fires exactly at
#: the documented contract: warm p50 at least 50x below cold p50.
WARM_RATIO_FLOOR = 1.0 / 60.0


def serving_suite() -> list[Scenario]:
    """One tiny-ified workload per scenario preset (distinct routing
    seeds => distinct signature buckets => distinct store entries)."""
    suite = []
    for idx, name in enumerate(sorted(available_presets())):
        base = Scenario.preset(name)
        suite.append(
            Scenario(
                model="tiny",
                cluster=base.cluster,
                num_gpus=8,
                gate=base.gate,
                routing_seed=idx + 1,
                concentration=base.concentration,
                hot_experts=base.hot_experts,
                hot_boost=base.hot_boost,
            )
        )
    return suite


def _timed(server: PlanServer, scenario: Scenario):
    t0 = time.perf_counter()
    result = server.serve(scenario)
    return (time.perf_counter() - t0) * 1e3, result


def _percentiles(latencies_ms: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies_ms)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return statistics.median(ordered), p95


def run(
    warm_repeats: int = 75,
    burst: int = 64,
    probes: int = 8,
    seed: int = 0,
    store_root=None,
) -> FigureResult:
    """Serve the mixed request stream; returns per-phase latency rows."""
    import tempfile

    suite = serving_suite()
    rng = random.Random(seed)

    with tempfile.TemporaryDirectory() as tmp:
        root = store_root if store_root is not None else tmp
        store = PlanStore(root)

        with PlanServer(store) as server:
            # -- burst: concurrent identical requests, empty store -----
            burst_sc = suite[0].with_(routing_seed=1000)
            t0 = time.perf_counter()
            futures = [server.submit(burst_sc) for _ in range(burst)]
            for f in futures:
                f.result()
            burst_s = time.perf_counter() - t0
            burst_stats = dict(server.counters)
            burst_planner_runs = burst_stats["planner_runs"]

            # -- cold: the planner-latency floor (no shortcuts) --------
            cold_ms = []
            with PlanServer(store, nearest=False, memory_cache_size=0) as srv:
                for sc in suite:
                    ms, result = _timed(srv, sc)
                    assert result.origin == "planned", result.origin
                    cold_ms.append(ms)

            # -- warm: the shuffled steady state -----------------------
            stream = suite * warm_repeats
            rng.shuffle(stream)
            warm_ms = []
            for sc in stream:
                ms, result = _timed(server, sc)
                assert result.origin in ("memory", "store"), result.origin
                warm_ms.append(ms)

            # -- nearest: one bucket away from a stored plan -----------
            nearest_ms, distances = [], []
            for i in range(probes):
                probe = suite[0].with_(routing_seed=2000 + i)
                ms, result = _timed(server, probe)
                assert result.origin == "nearest", result.origin
                nearest_ms.append(ms)
                distances.append(result.distance)
            server.drain()
            stats = server.stats()

        max_gap = max(
            (e["predicted_gap"] for e in stats["hot_swap_events"]),
            default=0.0,
        )

    cold_p50, cold_p95 = _percentiles(cold_ms)
    warm_p50, warm_p95 = _percentiles(warm_ms)
    near_p50, near_p95 = _percentiles(nearest_ms)
    total = len(cold_ms) + burst + len(warm_ms) + probes

    rows = [
        {
            "phase": "cold",
            "requests": len(cold_ms),
            "p50_ms": cold_p50,
            "p95_ms": cold_p95,
            "planner_runs": len(cold_ms),
        },
        {
            "phase": "burst",
            "requests": burst,
            "p50_ms": burst_s / burst * 1e3,
            "p95_ms": burst_s / burst * 1e3,
            "planner_runs": burst_planner_runs,
        },
        {
            "phase": "warm",
            "requests": len(warm_ms),
            "p50_ms": warm_p50,
            "p95_ms": warm_p95,
            "planner_runs": 0,
        },
        {
            "phase": "nearest",
            "requests": probes,
            "p50_ms": near_p50,
            "p95_ms": near_p95,
            "planner_runs": stats["server"]["hot_swaps"],
        },
    ]
    table = format_table(
        ["Phase", "Requests", "p50 ms", "p95 ms", "Planner runs"],
        [
            [
                r["phase"],
                r["requests"],
                round(r["p50_ms"], 3),
                round(r["p95_ms"], 3),
                r["planner_runs"],
            ]
            for r in rows
        ],
        title=f"Plan serving under load ({total} requests, "
        f"{len(suite)} workloads derived from the preset suite)",
    )
    notes = {
        "total_requests": total,
        "suite_size": len(suite),
        "cold_p50_ms": cold_p50,
        "warm_p50_ms": warm_p50,
        "warm_speedup": cold_p50 / max(warm_p50, 1e-9),
        "burst_planner_runs": burst_planner_runs,
        "burst_coalesced": burst_stats["coalesced"],
        "nearest_hits": stats["server"]["nearest_hits"],
        "hot_swaps": stats["server"]["hot_swaps"],
        "max_nearest_distance": max(distances, default=0.0),
        "max_predicted_gap": max_gap,
        "predicted_gap_bound": NEAREST_PREDICTED_GAP_BOUND,
        "store_entries": stats["store_entries"],
        "store_bytes": stats["store_bytes"],
        "server_counters": stats["server"],
        # lower-is-better gates for check_regression.py.  The latency
        # ratio is wall-time based but machine-normalized (both phases
        # run in one interpreter against one store); burst_planner_runs
        # is a deterministic count (coalescing broke if it exceeds 1);
        # the gap metric is floored (see GAP_METRIC_FLOOR).
        "regression_metrics": {
            "warm_over_cold_p50_ratio_floored": max(
                warm_p50 / max(cold_p50, 1e-9), WARM_RATIO_FLOOR
            ),
            "burst_planner_runs": float(burst_planner_runs),
            "nearest_predicted_gap_floored": max(max_gap, GAP_METRIC_FLOOR),
        },
    }
    return FigureResult(
        "plan_serving",
        "mixed warm/cold plan-serving stress over the preset suite",
        rows,
        table,
        notes,
    )
