"""Unit tests for the op registry and shape inference."""

import pytest

from repro.ir import Dim, DType, Stream, TensorType, all_ops, get_op
from repro.ir.tensor import route_type


def t(*shape, dtype=DType.F16, dims=None):
    return TensorType(tuple(shape), dtype, tuple(dims) if dims else ())


HID = (Dim.BATCH, Dim.SEQ, Dim.HIDDEN)


class TestRegistry:
    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            get_op("not_a_real_op")

    def test_all_ops_nonempty_and_consistent(self):
        ops = all_ops()
        assert len(ops) > 30
        for name, spec in ops.items():
            assert spec.name == name

    def test_comm_ops_on_comm_stream(self):
        assert get_op("all_to_all").stream == Stream.COMM
        assert get_op("allreduce").stream == Stream.COMM
        assert get_op("matmul").stream == Stream.COMPUTE


class TestMatmulFamily:
    def test_matmul_shapes(self):
        out = get_op("matmul").infer([t(2, 8, 16), t(16, 32)], {})
        assert out[0].shape == (2, 8, 32)

    def test_matmul_mismatch(self):
        with pytest.raises(ValueError):
            get_op("matmul").infer([t(2, 8, 16), t(8, 32)], {})

    def test_matmul_flops(self):
        spec = get_op("matmul")
        ins = [t(4, 8, 16), t(16, 32)]
        outs = spec.infer(ins, {})
        assert spec.flops(ins, outs, {}) == 2 * 4 * 8 * 16 * 32

    def test_matmul_dx_dw(self):
        dy, w, x = t(2, 8, 32), t(16, 32), t(2, 8, 16)
        assert get_op("matmul_dx").infer([dy, w], {})[0].shape == (2, 8, 16)
        assert get_op("matmul_dw").infer([x, dy], {})[0].shape == (16, 32)


class TestElementwise:
    @pytest.mark.parametrize("op", ["gelu", "relu", "add", "softmax", "scale"])
    def test_same_shape(self, op):
        x = t(2, 4, 8)
        ins = [x, x] if op == "add" else [x]
        assert get_op(op).infer(ins, {})[0].shape == (2, 4, 8)

    def test_bias_add(self):
        assert get_op("bias_add").infer([t(2, 4, 8), t(8)], {})[0].shape == (2, 4, 8)

    def test_bias_grad(self):
        assert get_op("bias_grad").infer([t(2, 4, 8)], {})[0].shape == (8,)


class TestLayerNorm:
    def test_forward(self):
        out = get_op("layernorm").infer([t(2, 4, 8), t(8), t(8)], {})
        assert out[0].shape == (2, 4, 8)

    def test_dw_outputs_two(self):
        outs = get_op("layernorm_dw").infer([t(2, 4, 8), t(2, 4, 8)], {})
        assert len(outs) == 2
        assert outs[0].shape == (8,)


class TestAttention:
    def test_forward(self):
        x = t(2, 4, 8)
        assert get_op("attention").infer([x, x, x], {"num_heads": 2})[0].shape == x.shape

    def test_mismatched_qkv(self):
        with pytest.raises(ValueError):
            get_op("attention").infer([t(2, 4, 8), t(2, 4, 8), t(2, 4, 16)], {})

    def test_dx_outputs_three(self):
        x = t(2, 4, 8)
        outs = get_op("attention_dx").infer([x, x, x, x], {"num_heads": 2})
        assert len(outs) == 3

    def test_flops_quadratic_in_seq(self):
        spec = get_op("attention")
        f1 = spec.flops([t(1, 8, 16)] * 3, [t(1, 8, 16)], {})
        f2 = spec.flops([t(1, 16, 16)] * 3, [t(1, 16, 16)], {})
        assert f2 == 4 * f1


class TestSplitConcat:
    def test_split3(self):
        outs = get_op("split3").infer([t(2, 4, 24)], {})
        assert len(outs) == 3 and all(o.shape == (2, 4, 8) for o in outs)

    def test_split3_indivisible(self):
        with pytest.raises(ValueError):
            get_op("split3").infer([t(2, 4, 10)], {})

    def test_split_chunk_uneven(self):
        outs = [
            get_op("split_chunk").infer(
                [t(7, 3)], {"axis": 0, "parts": 3, "index": i}
            )[0]
            for i in range(3)
        ]
        assert [o.shape[0] for o in outs] == [3, 2, 2]

    def test_concat(self):
        out = get_op("concat").infer(
            [t(3, 4), t(2, 4)], {"axis": 0}
        )
        assert out[0].shape == (5, 4)

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            get_op("concat").infer([t(3, 4), t(2, 5)], {"axis": 0})


class TestMoEOps:
    def test_routing(self):
        out = get_op("routing").infer(
            [t(2, 4, 8)], {"gate_type": "switch", "capacity": 4}
        )
        assert out[0].shape == (8, 3)

    def test_routing_partial(self):
        cap = TensorType((8,), DType.I32, (Dim.EXPERT,))
        outs = get_op("routing_partial").infer(
            [t(2, 4, 8), cap], {"gate_type": "switch", "capacity": 4}
        )
        assert outs[0].shape == (8, 3)
        assert outs[1] == cap

    def test_moe_dispatch(self):
        out = get_op("moe_dispatch").infer(
            [t(2, 4, 16, dims=HID), route_type(8)],
            {"num_experts": 4, "capacity": 3},
        )
        assert out[0].shape == (4, 3, 16)
        assert out[0].dims == (Dim.EXPERT, Dim.CAPACITY, Dim.HIDDEN)

    def test_moe_combine(self):
        buf = get_op("moe_dispatch").infer(
            [t(2, 4, 16, dims=HID), route_type(8)],
            {"num_experts": 4, "capacity": 3},
        )[0]
        out = get_op("moe_combine").infer(
            [buf, route_type(8), t(2, 4, 4)], {}
        )
        assert out[0].shape == (2, 4, 16)

    def test_expert_ffn_roundtrip_shape(self):
        buf = TensorType((4, 3, 16), DType.F16, (Dim.EXPERT, Dim.CAPACITY, Dim.HIDDEN))
        w1, b1 = t(2, 16, 64), t(2, 64)
        w2, b2 = t(2, 64, 16), t(2, 16)
        out = get_op("expert_ffn").infer([buf, w1, b1, w2, b2], {})
        assert out[0].shape == buf.shape

    def test_expert_ffn_dw_outputs(self):
        buf = TensorType((4, 3, 16), DType.F16, (Dim.EXPERT, Dim.CAPACITY, Dim.HIDDEN))
        w1, b1 = t(2, 16, 64), t(2, 64)
        w2, b2 = t(2, 64, 16), t(2, 16)
        outs = get_op("expert_ffn_dw").infer([buf, buf, w1, b1, w2], {})
        assert [o.shape for o in outs] == [
            (2, 16, 64),
            (2, 64),
            (2, 64, 16),
            (2, 16),
        ]

    def test_route_slice(self):
        out = get_op("route_slice").infer(
            [route_type(16)], {"start": 4, "stop": 8}
        )
        assert out[0].shape == (4, 3)
        with pytest.raises(ValueError):
            get_op("route_slice").infer([route_type(16)], {"start": 8, "stop": 8})

    def test_route_concat(self):
        out = get_op("route_concat").infer([route_type(4), route_type(6)], {})
        assert out[0].shape == (10, 3)


class TestCommOps:
    def test_all_to_all_preserves_shape(self):
        buf = TensorType((4, 3, 16), DType.F16)
        assert get_op("all_to_all").infer([buf], {})[0] == buf

    def test_a2a_bytes(self):
        buf = TensorType((4, 3, 16), DType.F16)
        spec = get_op("all_to_all")
        assert spec.membytes([buf], [buf], {}) == buf.nbytes


class TestOptimizerOps:
    def test_sgd_update(self):
        w = t(8, 8)
        outs = get_op("sgd_update").infer([w, w, w], {"lr": 0.1, "momentum": 0.9})
        assert len(outs) == 2 and all(o.shape == (8, 8) for o in outs)

    def test_cross_entropy_scalar(self):
        logits = t(2, 4, 64)
        labels = TensorType((2, 4), DType.I32)
        out = get_op("cross_entropy").infer([logits, labels], {})
        assert out[0].shape == ()
