"""Unit tests for the dependency graph and reachability analysis."""

import numpy as np
import pytest

from repro.ir import DependencyGraph, DType, Program, TensorType, verify_schedulable


def chain_program(n=4):
    """x -> gelu -> gelu -> ... (a simple chain)."""
    p = Program("chain")
    x = p.add_input(TensorType((4, 4), DType.F16), "x")
    cur = x.id
    for _ in range(n):
        (y,) = p.add("gelu", [cur])
        cur = y.id
    return p


def diamond_program():
    """Two independent branches joined by an add."""
    p = Program("diamond")
    x = p.add_input(TensorType((4, 4), DType.F16), "x")
    (a,) = p.add("gelu", [x.id])
    (b,) = p.add("relu", [x.id])
    (c,) = p.add("add", [a.id, b.id])
    return p


class TestDependencyGraph:
    def test_chain_reachability(self):
        g = DependencyGraph.from_program(chain_program(4))
        assert g.reaches(0, 3)
        assert not g.reaches(3, 0)
        assert not g.independent(0, 3)

    def test_diamond_independence(self):
        g = DependencyGraph.from_program(diamond_program())
        assert g.independent(0, 1)  # the two branches
        assert not g.independent(0, 2)  # each branch feeds the add

    def test_independent_set_vectorized(self):
        g = DependencyGraph.from_program(diamond_program())
        mask = g.independent_set(0, np.array([1, 2]))
        assert mask.tolist() == [True, False]

    def test_ancestors_descendants(self):
        g = DependencyGraph.from_program(chain_program(3))
        assert g.descendants(0).tolist() == [1, 2]
        assert g.ancestors(2).tolist() == [0, 1]

    def test_edge_must_be_forward(self):
        g = DependencyGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(2, 1)

    def test_duplicate_definition_rejected(self):
        p = chain_program(2)
        p.instructions.append(p.instructions[-1])
        with pytest.raises(ValueError):
            DependencyGraph.from_program(p)


class TestVerifySchedulable:
    def test_valid_order(self):
        p = chain_program(3)
        verify_schedulable(p, p.instructions)

    def test_reversed_order_rejected(self):
        p = chain_program(3)
        with pytest.raises(ValueError):
            verify_schedulable(p, list(reversed(p.instructions)))

    def test_swapping_independent_ok(self):
        p = diamond_program()
        order = [p.instructions[1], p.instructions[0], p.instructions[2]]
        verify_schedulable(p, order)


class TestRealModelGraph:
    def test_forward_a2a_has_no_independent_dw(self, tiny_graph):
        """dW ops always transitively depend on forward all-to-alls, so the
        dW pass can never (incorrectly) overlap them -- paper Sec. 4.1."""
        from repro.ir import InstrKind

        p = tiny_graph.program
        g = DependencyGraph.from_program(p)
        instrs = p.instructions
        fwd_a2a = [
            i
            for i in range(tiny_graph.forward_len)
            if instrs[i].op == "all_to_all"
        ]
        dw = np.array(
            [i for i, ins in enumerate(instrs) if ins.kind == InstrKind.DW]
        )
        for a in fwd_a2a:
            assert not g.independent_set(a, dw).any()

    def test_backward_a2a_has_independent_dw(self, tiny_graph):
        from repro.ir import InstrKind

        p = tiny_graph.program
        g = DependencyGraph.from_program(p)
        instrs = p.instructions
        bwd_a2a = [
            i
            for i in range(tiny_graph.forward_len, len(instrs))
            if instrs[i].op == "all_to_all"
        ]
        dw = np.array(
            [i for i, ins in enumerate(instrs) if ins.kind == InstrKind.DW]
        )
        assert bwd_a2a, "model should contain backward all-to-alls"
        # the first backward a2a (deepest layer) has later-layer dWs free
        assert g.independent_set(bwd_a2a[0], dw).any()
