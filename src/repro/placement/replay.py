"""Trace-replay evaluation of placement migrations.

The ExpertMigration-style drill: walk a recorded dispatch-count trace
step by step, re-optimizing the placement as the routing distribution
drifts and *pricing* each candidate switch -- a migration only happens
when its steady-state win over ``horizon_steps`` exceeds the one-off
weight-transfer cost.  The report pairs the adaptive trajectory with
the stay-on-identity baseline over the *same* trace, so "did migrating
help, net of its cost?" is answerable from one replay.

:class:`MigrationEvent` is the telemetry record shared with
:class:`~repro.train.ReoptimizingTrainer` -- the trainer emits the same
events when its live drift detector triggers a priced migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .model import ExpertPlacement
from .optimizer import PlacementOptimizer, migration_cost_ms


@dataclass(frozen=True)
class MigrationEvent:
    """One priced placement-switch decision.

    Emitted whether or not the switch was taken: ``migrated`` records
    the verdict, and the before/after costs plus ``migration_cost_ms``
    record the pricing inputs, so rejected migrations are auditable too.
    ``layer`` is the MoE layer key (``None`` for an aggregate decision
    across layers, as the trainer emits); ``moved_experts`` then holds
    ``(layer, expert)`` pairs instead of bare expert ids.
    """

    step: int
    layer: object
    moved_experts: tuple
    replicated_experts: tuple
    bottleneck_before_ms: float
    bottleneck_after_ms: float
    migration_cost_ms: float
    horizon_steps: int
    migrated: bool

    @property
    def win_ms(self) -> float:
        """Per-step modeled win of the candidate placement."""
        return self.bottleneck_before_ms - self.bottleneck_after_ms

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "layer": self.layer,
            "moved_experts": list(self.moved_experts),
            "replicated_experts": list(self.replicated_experts),
            "bottleneck_before_ms": self.bottleneck_before_ms,
            "bottleneck_after_ms": self.bottleneck_after_ms,
            "migration_cost_ms": self.migration_cost_ms,
            "horizon_steps": self.horizon_steps,
            "migrated": self.migrated,
        }


@dataclass
class ReplayReport:
    """Outcome of :func:`replay_trace` over one recorded trace.

    ``identity_ms[i]`` / ``adaptive_ms[i]`` are the modeled bottleneck
    a2a times of step ``i`` under the identity placement vs. the
    adaptive policy; adaptive entries *include* the amortized weight
    transfer on the step a migration fired, so the totals compare
    honestly.
    """

    identity_ms: list[float] = field(default_factory=list)
    adaptive_ms: list[float] = field(default_factory=list)
    events: list[MigrationEvent] = field(default_factory=list)
    final_placement: ExpertPlacement | None = None

    @property
    def total_identity_ms(self) -> float:
        return float(sum(self.identity_ms))

    @property
    def total_adaptive_ms(self) -> float:
        return float(sum(self.adaptive_ms))

    @property
    def improvement_ms(self) -> float:
        """Net win of the adaptive policy (migration costs included)."""
        return self.total_identity_ms - self.total_adaptive_ms

    @property
    def improvement(self) -> float:
        """Fractional net win over the identity baseline."""
        if self.total_identity_ms <= 0.0:
            return 0.0
        return self.improvement_ms / self.total_identity_ms

    @property
    def migrations(self) -> list[MigrationEvent]:
        """The events whose priced switch was actually taken."""
        return [ev for ev in self.events if ev.migrated]


def replay_trace(
    trace,
    cluster,
    *,
    bytes_per_token: float = 1.0,
    expert_weight_bytes: float,
    horizon_steps: int = 50,
    optimizer: PlacementOptimizer | None = None,
    replan_every: int = 1,
) -> ReplayReport:
    """Replay a recorded dispatch-count trace under priced migrations.

    ``trace`` is a sequence of ``[num_gpus, num_experts]`` dispatch-count
    matrices (one per training step).  Every ``replan_every`` steps the
    optimizer searches for a better placement starting from the current
    one; a switch is taken only when ``win_ms * horizon_steps >
    migration_cost_ms`` -- the same pricing rule
    :class:`~repro.train.ReoptimizingTrainer` applies live.
    """
    if horizon_steps < 1:
        raise ValueError("horizon_steps must be >= 1")
    if replan_every < 1:
        raise ValueError("replan_every must be >= 1")
    opt = optimizer if optimizer is not None else PlacementOptimizer(cluster)
    report = ReplayReport()
    current: ExpertPlacement | None = None
    identity: ExpertPlacement | None = None
    for step, counts in enumerate(trace):
        counts = np.asarray(counts)
        if identity is None:
            g, e = counts.shape
            identity = ExpertPlacement.identity(e, g)
            current = identity
        identity_ms = opt.cost_ms(identity, counts, bytes_per_token)
        step_ms = opt.cost_ms(current, counts, bytes_per_token)
        if step % replan_every == 0:
            result = opt.optimize(counts, bytes_per_token, start=current)
            candidate = result.placement
            if candidate != current:
                before_ms = step_ms
                after_ms = result.bottleneck_ms
                cost = migration_cost_ms(
                    current, candidate, cluster, expert_weight_bytes
                )
                win = before_ms - after_ms
                migrated = win * horizon_steps > cost
                report.events.append(
                    MigrationEvent(
                        step=step,
                        layer=None,
                        moved_experts=candidate.moved_experts(current),
                        replicated_experts=candidate.replicated_experts,
                        bottleneck_before_ms=before_ms,
                        bottleneck_after_ms=after_ms,
                        migration_cost_ms=cost,
                        horizon_steps=horizon_steps,
                        migrated=migrated,
                    )
                )
                if migrated:
                    current = candidate
                    # charge the transfer to the step that performed it
                    step_ms = after_ms + cost
        report.identity_ms.append(identity_ms)
        report.adaptive_ms.append(step_ms)
    report.final_placement = current
    return report
