"""Tests for the distributed MoE layer and micro-batched execution --
the paper's mathematical-equivalence claims (Fig. 5)."""

import numpy as np
import pytest

from repro.moe import (
    DistributedMoELayer,
    forward_microbatched_capacity_passing,
    forward_microbatched_naive,
)


def make_layer(gate="switch", g=2, el=2, h=8, f=16, cf=1.0, k=1, seed=0):
    return DistributedMoELayer(
        num_devices=g,
        experts_per_device=el,
        hidden=h,
        ffn_hidden=f,
        gate_type=gate,
        capacity_factor=cf,
        top_k=k,
        seed=seed,
    )


def make_inputs(layer, t=24, seed=42):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((t, layer.hidden)) for _ in range(layer.g)]


class TestForward:
    def test_shapes(self):
        layer = make_layer()
        xs = make_inputs(layer)
        ys, cache = layer.forward(xs)
        assert all(y.shape == x.shape for x, y in zip(xs, ys))

    def test_deterministic(self):
        layer = make_layer()
        xs = make_inputs(layer)
        y1, _ = layer.forward(xs)
        y2, _ = layer.forward(xs)
        for a, b in zip(y1, y2):
            assert np.array_equal(a, b)

    def test_wrong_device_count_rejected(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            layer.forward(make_inputs(layer)[:1])

    def test_dropped_tokens_get_zero_output(self):
        layer = make_layer(cf=0.25)  # scarce capacity forces drops
        xs = make_inputs(layer)
        ys, cache = layer.forward(xs)
        for d in range(layer.g):
            dropped = cache.infos[d].dropped_tokens()
            assert len(dropped) > 0
            assert np.allclose(ys[d][dropped], 0.0)

    @pytest.mark.parametrize("gate", ["switch", "topk", "bpr", "random"])
    def test_all_gates_run(self, gate):
        layer = make_layer(gate=gate, k=2 if gate == "topk" else 1)
        ys, _ = layer.forward(make_inputs(layer))
        assert all(np.isfinite(y).all() for y in ys)


class TestBackward:
    def test_input_gradient_finite_difference(self):
        layer = make_layer()
        xs = make_inputs(layer, t=16)
        ys, cache = layer.forward(xs)
        rng = np.random.default_rng(3)
        dys = [rng.standard_normal(y.shape) for y in ys]
        dxs, grads = layer.backward(dys, cache)
        eps = 1e-6
        idx = (2, 3)
        orig = xs[0][idx]
        xs[0][idx] = orig + eps
        yp, _ = layer.forward(xs)
        xs[0][idx] = orig - eps
        ym, _ = layer.forward(xs)
        xs[0][idx] = orig
        num = sum(((p - m) / (2 * eps) * d).sum() for p, m, d in zip(yp, ym, dys))
        assert np.isclose(num, dxs[0][idx], atol=1e-7)

    def test_weight_gradients_finite_difference(self):
        layer = make_layer()
        xs = make_inputs(layer, t=16)
        ys, cache = layer.forward(xs)
        rng = np.random.default_rng(4)
        dys = [rng.standard_normal(y.shape) for y in ys]
        _, grads = layer.backward(dys, cache)
        eps = 1e-6
        checks = [
            (layer.params.w1[1], grads["w1"][1], (0, 1, 2)),
            (layer.params.w2[0], grads["w2"][0], (1, 3, 2)),
            (layer.params.b1[0], grads["b1"][0], (1, 5)),
            (layer.params.wg, sum(grads["wg"]), (2, 1)),
        ]
        for arr, grad, idx in checks:
            orig = arr[idx]
            arr[idx] = orig + eps
            yp, _ = layer.forward(xs)
            arr[idx] = orig - eps
            ym, _ = layer.forward(xs)
            arr[idx] = orig
            num = sum(
                ((p - m) / (2 * eps) * d).sum() for p, m, d in zip(yp, ym, dys)
            )
            assert np.isclose(num, grad[idx], atol=1e-6)


class TestMicrobatchEquivalence:
    """Paper Fig. 5: capacity passing is exact, naive micro-batching is not."""

    @pytest.mark.parametrize("gate", ["switch", "topk", "random"])
    @pytest.mark.parametrize("parts", [2, 3, 4])
    def test_capacity_passing_bit_exact(self, gate, parts):
        layer = make_layer(gate=gate, cf=1.0, k=2 if gate == "topk" else 1)
        xs = make_inputs(layer)
        ys, _ = layer.forward(xs)
        trace = forward_microbatched_capacity_passing(layer, xs, parts)
        for d in range(layer.g):
            assert np.allclose(trace.outputs[d], ys[d], atol=1e-12)

    def test_capacity_passing_same_token_dropping(self):
        layer = make_layer(cf=0.5)
        xs = make_inputs(layer)
        _, cache = layer.forward(xs)
        trace = forward_microbatched_capacity_passing(layer, xs, 3)
        for d in range(layer.g):
            # union of per-chunk drops == unpartitioned drops
            chunk_tokens = np.cumsum(
                [0] + [np.array_split(xs[d], 3)[p].shape[0] for p in range(3)]
            )
            dropped = []
            for p in range(3):
                dd = trace.infos[p][d].dropped_tokens() + chunk_tokens[p]
                dropped.extend(dd.tolist())
            assert sorted(dropped) == cache.infos[d].dropped_tokens().tolist()

    def test_naive_microbatching_drops_extra_tokens(self):
        """Fig. 5b: direct capacity scaling changes token dropping.

        Naive chunking can never drop *fewer* tokens than unpartitioned
        execution in aggregate expectation, and for some batches it drops
        strictly more (the paper's 3/4C vs 1/4C example).
        """
        layer = make_layer(cf=1.0, seed=5)
        strictly_more = False
        for seed in range(8):
            xs = make_inputs(layer, t=30, seed=seed)
            _, cache = layer.forward(xs)
            trace = forward_microbatched_naive(layer, xs, 3)
            full_drops = sum(
                len(cache.infos[d].dropped_tokens()) for d in range(layer.g)
            )
            naive_drops = sum(
                len(trace.infos[p][d].dropped_tokens())
                for d in range(layer.g)
                for p in range(3)
            )
            if naive_drops > full_drops:
                strictly_more = True
        assert strictly_more, "expected extra dropping on at least one batch"

    def test_bpr_capacity_passing_rejected(self):
        layer = make_layer(gate="bpr")
        xs = make_inputs(layer)
        with pytest.raises(ValueError):
            forward_microbatched_capacity_passing(layer, xs, 2)

    def test_invalid_parts_rejected(self):
        layer = make_layer()
        xs = make_inputs(layer, t=8)
        with pytest.raises(ValueError):
            forward_microbatched_capacity_passing(layer, xs, 9)
