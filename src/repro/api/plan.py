"""The plan artifact: an optimized schedule you can ship.

Lancet's output is a *schedule*, and the schedule -- not the optimizer
run that produced it -- is the deployable artifact (production MoE
systems precompute and distribute their overlap schedules).  A
:class:`Plan` bundles everything needed to execute and audit one:

- the optimized :class:`~repro.ir.Program` (with its per-instruction
  annotations: ``a2a_algo`` choices, partition degrees, dW placement),
- the :class:`~repro.runtime.ClusterSpec` and framework profile it was
  priced against,
- the routing signatures it was conditioned on,
- the policy knobs and a summary of what the planner did,
- the cost model's predicted iteration time.

``Plan.save`` / ``Plan.load`` round-trip through a versioned JSON schema;
loading refuses files whose schema *major* version does not match (and
raises a clear :class:`PlanError` for corrupted documents instead of
deserializing garbage).  Program reconstruction is bit-identical: a
reloaded plan simulates to exactly the original timeline.

Loading can defer program reconstruction (``materialize=False``): the
envelope (metadata, predicted time, signatures) is validated eagerly and
the instruction stream is decoded on first ``.program`` access -- this is
what lets a :class:`~repro.api.store.PlanStore` hand out warm plans in
milliseconds.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import asdict, dataclass

from ..ir import Program, SerializationError, program_from_json, program_to_json
from ..runtime.cluster import ClusterSpec
from ..runtime.device import COMPILED, FrameworkProfile
from .codec import (
    cluster_from_json,
    cluster_to_json,
    framework_from_json,
    framework_to_json,
    signatures_from_json,
    signatures_to_json,
)
from .scenario import Scenario

#: identifies the document type
PLAN_SCHEMA = "repro.api/plan"

#: schema version of plan artifacts; bump the major on any breaking
#: layout change -- loaders refuse mismatched majors (1.1 added the
#: optional "placement" section; 1.2 the optional "pipeline" section
#: carrying a staged plan's stage map; documents without either section
#: are unchanged)
PLAN_SCHEMA_VERSION = "1.2"


class PlanError(Exception):
    """A plan artifact that cannot be read, written, or reconstructed."""


class PlanSchemaError(PlanError):
    """A plan artifact written under an incompatible schema version."""


def _major(version: str) -> int:
    try:
        return int(str(version).split(".", 1)[0])
    except ValueError as err:
        raise PlanSchemaError(f"malformed schema version {version!r}") from err


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write-to-temp + rename, with umask-respecting permissions.

    ``mkstemp`` creates files 0600, which would make entries of a
    shared (multi-user) plan store unreadable to everyone but their
    author; restore the mode a plain ``open`` would have produced.
    """
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        current_umask = os.umask(0)
        os.umask(current_umask)
        os.chmod(tmp, 0o666 & ~current_umask)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class PlanPolicy:
    """The optimizer knobs a plan was produced under.

    Part of the plan's identity: the same graph compiled under different
    policies yields different store entries.
    """

    #: run the weight-gradient schedule pass (paper Sec. 4)
    enable_dw_schedule: bool = True
    #: run the operator partition pass (paper Sec. 5)
    enable_partition: bool = True
    #: Lina-style all-to-all priority: defer gradient all-reduce
    defer_allreduce: bool = False
    #: per-collective flat vs 2-hop hierarchical all-to-all choice
    enable_hierarchical_a2a: bool = False
    #: condition the plan on the scenario's realized routing signatures
    #: (False plans against the uniform static-shape approximation)
    skew_aware: bool = True
    #: rho -- largest partition count the DP considers
    max_partitions: int = 8
    #: gamma -- target execution time per instruction group (``None`` =
    #: the planner's derived default); part of the plan identity because
    #: it shapes which pipelines the DP can choose
    group_ms: float | None = None
    #: iota -- longest candidate range in groups (``None`` = derived)
    max_range_groups: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, obj: dict) -> "PlanPolicy":
        return cls(**obj)

    def hyper_params(self):
        """The :class:`~repro.core.partition.LancetHyperParams` this
        policy describes."""
        from ..core.partition import LancetHyperParams

        return LancetHyperParams(
            max_partitions=self.max_partitions,
            group_ms=self.group_ms,
            max_range_groups=self.max_range_groups,
        )


class Plan:
    """A compiled, serializable Lancet schedule (see module docstring).

    Construct via :func:`repro.api.compile`, :meth:`load`, or
    :meth:`from_dict` rather than directly.
    """

    def __init__(
        self,
        *,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        fingerprint: str,
        predicted_iteration_ms: float,
        program: Program | None = None,
        program_json: dict | None = None,
        framework: FrameworkProfile = COMPILED,
        signatures: dict | None = None,
        scenario: Scenario | None = None,
        planner: dict | None = None,
        meta: dict | None = None,
        report=None,
        placement=None,
        stage_map=None,
    ) -> None:
        from ..placement import normalize_placement
        if (program is None) == (program_json is None):
            raise ValueError("exactly one of program / program_json required")
        self._program = program
        self._program_json = program_json
        self.cluster = cluster
        self.policy = policy
        #: structural fingerprint of the *source* (unoptimized) graph
        self.fingerprint = fingerprint
        #: cost-model prediction of one iteration of this schedule
        self.predicted_iteration_ms = float(predicted_iteration_ms)
        self.framework = framework
        #: per-MoE-layer routing signatures the plan was conditioned on
        #: (``None`` = planned under the uniform approximation)
        self.signatures = dict(signatures) if signatures else None
        #: expert placement the plan assumes the cluster runs under
        #: (``{layer_key: ExpertPlacement}`` map; ``None`` = the default
        #: identity layout).  Part of the plan's identity: store keys are
        #: qualified by its fingerprint.
        self.placement = normalize_placement(placement)
        if stage_map is not None and isinstance(stage_map, dict):
            from ..pipeline import StageMap

            stage_map = StageMap.from_dict(stage_map)
        #: :class:`~repro.pipeline.StageMap` of a staged (hybrid
        #: pipeline x expert parallel) plan; ``None`` for flat plans.
        #: The request part (stages/microbatches/schedule) folds into
        #: store keys; the chosen boundaries ride along for audit.  For
        #: staged plans, ``program`` is the reassembled *per-microbatch*
        #: schedule and ``predicted_iteration_ms`` the full pipeline
        #: makespan over all microbatches.
        self.stage_map = stage_map
        self.scenario = scenario
        #: summary of the optimizer run that produced the plan
        self.planner = dict(planner or {})
        #: free-form metadata, persisted verbatim
        self.meta = dict(meta or {})
        #: full in-memory :class:`~repro.core.LancetReport` -- only
        #: available on freshly compiled plans, not after a reload
        self.report = report
        #: True when this plan came out of a :class:`PlanStore` instead
        #: of an optimizer run (set by :func:`repro.api.compile`)
        self.from_store = False

    # -- program access ------------------------------------------------------

    @property
    def program(self) -> Program:
        """The optimized schedule (decoded from JSON on first access for
        lazily loaded plans)."""
        if self._program is None:
            try:
                self._program = program_from_json(self._program_json)
            except SerializationError as err:
                raise PlanError(f"plan program failed to reconstruct: {err}") from err
            self._program_json = None
        return self._program

    @property
    def materialized(self) -> bool:
        """Whether the program has been decoded yet."""
        return self._program is not None

    # -- derived views -------------------------------------------------------

    def _instruction_summaries(self):
        """``(op, attrs)`` pairs without forcing program reconstruction:
        lazily loaded plans are summarized straight off the JSON."""
        if self._program is not None:
            return ((ins.op, ins.attrs) for ins in self._program.instructions)
        return (
            (io.get("op"), io.get("attrs", {}))
            for io in self._program_json.get("instructions", [])
        )

    def num_instructions(self) -> int:
        """Instruction count (cheap even before materialization)."""
        if self._program is not None:
            return len(self._program)
        return len(self._program_json.get("instructions", []))

    def a2a_algorithms(self) -> dict[str, int]:
        """Per-algorithm count of the plan's irregular all-to-alls."""
        counts: dict[str, int] = {}
        for op, attrs in self._instruction_summaries():
            if op == "all_to_all" and attrs.get("irregular"):
                algo = attrs.get("a2a_algo", "flat")
                counts[algo] = counts.get(algo, 0) + 1
        return counts

    def partition_degrees(self) -> list[int]:
        """Chunk counts of the plan's partitioned pipelines (one entry
        per MoE-layer pipeline, from the planner summary when available,
        else recovered from the instruction annotations)."""
        if "partition_degrees" in self.planner:
            return list(self.planner["partition_degrees"])
        degrees: dict[int, int] = {}
        for ins in self.program.instructions:
            if ins.partition is not None and ins.origin is not None:
                degrees[ins.origin] = max(
                    degrees.get(ins.origin, 0), ins.partition[1]
                )
        return sorted(degrees.values())

    def annotations(self) -> list[dict]:
        """Per-instruction schedule annotations (the plan's 'diff' vs a
        vanilla schedule): partitioned chunks and algorithm choices."""
        out = []
        for pos, ins in enumerate(self.program.instructions):
            entry = {}
            if ins.partition is not None:
                entry["partition"] = {
                    "index": ins.partition[0],
                    "parts": ins.partition[1],
                    "origin": ins.origin,
                }
            if ins.op == "all_to_all" and ins.attrs.get("irregular"):
                entry["a2a_algo"] = ins.attrs.get("a2a_algo", "flat")
            if ins.kind.value == "dw":
                entry["dw"] = True
            if entry:
                entry.update({"pos": pos, "op": ins.op, "uid": ins.uid})
                out.append(entry)
        return out

    # -- execution helpers ---------------------------------------------------

    def simulation_cluster(self) -> ClusterSpec:
        """The cluster the plan's *program* simulates against: the full
        cluster for flat plans, one stage subgroup for staged plans
        (whose program is the per-microbatch, subgroup-width schedule)."""
        if self.stage_map is None:
            return self.cluster
        from ..pipeline.stage import _subcluster

        return _subcluster(
            self.cluster, 0, self.cluster.num_gpus // self.stage_map.num_stages
        )

    def simulate(self, seed: int | None = None, routing=None, padded_a2a=False):
        """Ground-truth simulation of one iteration of this plan's
        program (for staged plans: one *microbatch* on one stage-width
        subgroup -- the pipeline-level figure is ``predicted_iteration_ms``).

        Uses the scenario's routing model when the plan has one (with
        ``seed`` overriding its seed); otherwise a fresh
        :class:`~repro.runtime.SyntheticRoutingModel`.
        """
        from ..runtime import SimulationConfig, SyntheticRoutingModel, simulate_program

        if routing is None:
            if self.scenario is not None:
                sc = self.scenario
                if seed is not None:
                    sc = sc.with_(routing_seed=seed)
                routing = sc.routing_model()
            else:
                routing = SyntheticRoutingModel(seed=1 if seed is None else seed)
        config = SimulationConfig(
            cluster=self.simulation_cluster(),
            framework=self.framework,
            padded_a2a=padded_a2a,
            routing=routing,
        )
        return simulate_program(self.program, config=config)

    def simulated_iteration_ms(self, seed: int | None = None) -> float:
        """Simulated makespan of one iteration (convenience)."""
        return self.simulate(seed=seed).makespan

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        import repro  # late: repro.__init__ imports this module

        from ..placement import placement_map_to_json

        program_json = (
            self._program_json
            if self._program_json is not None
            else program_to_json(self._program)
        )
        doc = {
            "schema": PLAN_SCHEMA,
            "schema_version": PLAN_SCHEMA_VERSION,
            "repro_version": getattr(repro, "__version__", "unknown"),
            "fingerprint": self.fingerprint,
            "predicted_iteration_ms": self.predicted_iteration_ms,
            "cluster": cluster_to_json(self.cluster),
            "framework": framework_to_json(self.framework),
            "policy": self.policy.to_dict(),
            "signatures": signatures_to_json(self.signatures),
            "scenario": self.scenario.to_dict() if self.scenario else None,
            "planner": self.planner,
            "meta": self.meta,
            "program": program_json,
        }
        if self.placement is not None:
            # key present only for placement-carrying plans: documents
            # written by placement-free pipelines stay byte-stable
            doc["placement"] = placement_map_to_json(self.placement)
        if self.stage_map is not None:
            # same optional-section pattern: flat plans stay byte-stable
            doc["pipeline"] = self.stage_map.to_dict()
        return doc

    @classmethod
    def from_dict(cls, obj: dict, materialize: bool = True) -> "Plan":
        """Reconstruct a plan from its serialized form.

        Validates the envelope eagerly; with ``materialize=True`` (the
        default) the program is decoded and validated immediately,
        otherwise on first ``.program`` access.
        """
        if not isinstance(obj, dict):
            raise PlanError(
                f"plan document must be a JSON object, got {type(obj).__name__}"
            )
        if obj.get("schema") != PLAN_SCHEMA:
            raise PlanError(
                f"not a plan document (schema={obj.get('schema')!r}, "
                f"expected {PLAN_SCHEMA!r})"
            )
        version = obj.get("schema_version", "0.0")
        if _major(version) != _major(PLAN_SCHEMA_VERSION):
            raise PlanSchemaError(
                f"plan was written under schema version {version}, which is "
                f"incompatible with this build (reads {PLAN_SCHEMA_VERSION}); "
                f"re-compile the plan"
            )
        from ..placement import placement_map_from_json

        try:
            program_json = obj["program"]
            if not isinstance(program_json, dict):
                raise PlanError("plan 'program' section must be an object")
            scenario = obj.get("scenario")
            plan = cls(
                placement=placement_map_from_json(obj.get("placement")),
                stage_map=obj.get("pipeline"),
                cluster=cluster_from_json(obj["cluster"]),
                policy=PlanPolicy.from_dict(obj["policy"]),
                fingerprint=str(obj["fingerprint"]),
                predicted_iteration_ms=float(obj["predicted_iteration_ms"]),
                program_json=program_json,
                framework=framework_from_json(obj["framework"]),
                signatures=signatures_from_json(obj.get("signatures")),
                scenario=Scenario.from_dict(scenario) if scenario else None,
                planner=obj.get("planner") or {},
                meta=obj.get("meta") or {},
            )
        except PlanError:
            raise
        except (KeyError, TypeError, ValueError) as err:
            raise PlanError(f"malformed plan document: {err}") from err
        if materialize:
            plan.program  # decode + validate now; raises PlanError on garbage
        return plan

    def save(self, path) -> pathlib.Path:
        """Write the plan as versioned JSON (atomically) and return the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(self.to_dict(), separators=(",", ":")))
        return path

    @classmethod
    def load(cls, path, materialize: bool = True) -> "Plan":
        """Read a plan written by :meth:`save`.

        Raises :class:`PlanError` (with a pointed message) for files
        that are not valid plan JSON, and :class:`PlanSchemaError` for
        plans written under an incompatible schema major version.
        """
        path = pathlib.Path(path)
        try:
            text = path.read_text()
        except OSError as err:
            raise PlanError(f"cannot read plan file {path}: {err}") from err
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as err:
            raise PlanError(
                f"{path} is not valid JSON (corrupted plan file?): {err}"
            ) from err
        return cls.from_dict(obj, materialize=materialize)

    # -- presentation --------------------------------------------------------

    def summary(self) -> str:
        """Human-readable overview (used by ``python -m repro inspect``)."""
        lines = [f"plan {self.fingerprint[:23]}  (schema v{PLAN_SCHEMA_VERSION})"]
        if self.scenario is not None:
            sc = self.scenario
            lines.append(
                f"  scenario: {sc.name}  batch={sc.resolved_batch()} "
                f"seq={sc.resolved_seq()} gate={sc.gate}"
            )
        lines.append(
            f"  cluster: {self.cluster.name} "
            f"({self.cluster.num_gpus}x {self.cluster.gpu.name}), "
            f"framework {self.framework.name}"
        )
        pol = ", ".join(f"{k}={v}" for k, v in self.policy.to_dict().items())
        lines.append(f"  policy: {pol}")
        if self.signatures:
            worst = max(sig.bottleneck for sig in self.signatures.values())
            lines.append(
                f"  routing: conditioned on {len(self.signatures)} layer "
                f"signature(s), worst bottleneck {worst:.2f}x"
            )
        else:
            lines.append("  routing: uniform approximation")
        if self.placement is not None:
            from ..placement import placement_map_fingerprint

            shadowed = sum(
                len(p.replicated_experts) for p in self.placement.values()
            )
            lines.append(
                f"  placement: {len(self.placement)} placement(s), "
                f"{shadowed} shadowed expert(s), "
                f"fingerprint {placement_map_fingerprint(self.placement)[:12]}"
            )
        if self.stage_map is not None:
            lines.append(f"  pipeline: {self.stage_map.describe()}")
        lines.append(
            f"  predicted iteration: {self.predicted_iteration_ms:.2f} ms"
        )
        if self.planner:
            keys = (
                "optimization_seconds",
                "num_dw_moved",
                "partition_degrees",
                "num_cost_evals",
            )
            shown = {k: self.planner[k] for k in keys if k in self.planner}
            if shown:
                lines.append(
                    "  planner: "
                    + ", ".join(f"{k}={v}" for k, v in shown.items())
                )
        # summarized off the serialized form when not yet materialized:
        # inspecting a plan must not require reconstructing it
        lines.append(
            f"  program: {self.num_instructions()} instructions, "
            f"a2a algorithms {self.a2a_algorithms() or '{}'}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        origin = "store" if self.from_store else "compile"
        return (
            f"Plan({self.fingerprint[:15]}..., "
            f"predicted={self.predicted_iteration_ms:.2f}ms, via {origin})"
        )
