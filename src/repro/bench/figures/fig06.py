"""Figure 6: effect of the partition range on forward time.

Paper: GPT-2 MoE forward pass on 16 A100 GPUs (32 experts), sweeping how
many non-MoE ops (measured by execution time, ms) before and after each
MoE layer are partitioned into the pipeline.  Two configurations:
(a) 8 layers, seq 512, batch 64 and (b) 16 layers, seq 1024, batch 12.
The curve is U-shaped -- too little partitioning leaves all-to-all
exposed, too much pays partition overhead -- and the DP solution should
sit at or near the minimum.
"""

from __future__ import annotations

from ...core.partition import RangePlan, apply_plans, infer_axes, plan_partitions
from ...models import GPT2MoEConfig
from ...models.gpt2_moe import build_forward
from ...runtime import ClusterSpec
from ..formatting import format_table
from .common import FigureResult, make_costs, simulate

CONFIGS = {
    "8L-s512-b64": dict(num_layers=8, seq=512, batch=64),
    "16L-s1024-b12": dict(num_layers=16, seq=1024, batch=12),
}


def _plans_for_range(graph, costs, range_ms: float, parts: int):
    """Fixed-extent plans: each MoE layer's core plus ~range_ms of ops
    on each side (clamped so consecutive ranges stay disjoint)."""
    p = graph.program
    pos = p.instr_index()
    durations = [costs.duration_ms(i, p) for i in p.instructions]
    plans = []
    prev_end = 0
    for ml in graph.moe_layers:
        start = pos[ml.dispatch_uid]
        end = pos[ml.a2a_second_uid] + 1
        acc = 0.0
        while start - 1 >= prev_end and acc < range_ms:
            nxt = p.instructions[start - 1]
            if nxt.op == "cross_entropy":
                break
            acc += durations[start - 1]
            start -= 1
        acc = 0.0
        while end < len(p.instructions) and acc < range_ms:
            nxt = p.instructions[end]
            if nxt.op in ("cross_entropy", "routing"):
                break
            acc += durations[end]
            end += 1
        instrs = p.instructions[start:end]
        axes = infer_axes(instrs, p)
        if axes is None:
            # fall back: shrink to the MoE block itself
            start = pos[ml.dispatch_uid]
            end = pos[ml.combine_uid] + 1
            instrs = p.instructions[start:end]
            axes = infer_axes(instrs, p)
            if axes is None:
                continue
        plans.append(
            RangePlan(start=start, end=end, parts=parts, axes=axes,
                      predicted_ms=0.0, sequential_ms=0.0)
        )
        prev_end = end
    return plans


def run(
    config: str = "8L-s512-b64",
    num_gpus: int = 16,
    range_points=(0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0),
    parts: int = 4,
) -> FigureResult:
    """Sweep the partition range for one Fig. 6 configuration."""
    c = CONFIGS[config]
    cfg = GPT2MoEConfig.gpt2_s_moe(num_layers=c["num_layers"])
    graph = build_forward(cfg, batch=c["batch"], seq=c["seq"], num_gpus=num_gpus)
    cluster = ClusterSpec.for_gpus("a100", num_gpus)
    costs = make_costs(cluster)

    base_tl = simulate(graph.program, cluster, padded_a2a=True)
    orig_ms = base_tl.makespan

    rows = [
        {"range_ms": "Orig.", "time_ms": orig_ms, "normalized": 1.0, "parts": 1}
    ]
    for r in range_points:
        plans = _plans_for_range(graph, costs, r, parts)
        prog = graph.program.clone()
        apply_plans(prog, plans)
        tl = simulate(prog, cluster, padded_a2a=False)
        rows.append(
            {
                "range_ms": r,
                "time_ms": tl.makespan,
                "normalized": tl.makespan / orig_ms,
                "parts": parts,
            }
        )

    # the DP solution of the partition pass
    dp = plan_partitions(graph.program, costs)
    prog = graph.program.clone()
    apply_plans(prog, dp.plans)
    tl = simulate(prog, cluster, padded_a2a=False)
    dp_row = {
        "range_ms": "DP",
        "time_ms": tl.makespan,
        "normalized": tl.makespan / orig_ms,
        "parts": [pl.parts for pl in dp.plans],
    }
    rows.append(dp_row)

    table = format_table(
        ["Partition range (ms)", "Fwd time (ms)", "Normalized", "k"],
        [[r["range_ms"], r["time_ms"], r["normalized"], r["parts"]] for r in rows],
        title=f"Fig. 6 ({config}) - partition range vs forward time",
    )
    sweep = [r for r in rows if isinstance(r["range_ms"], float)]
    best = min(sweep, key=lambda r: r["time_ms"])
    notes = {
        "u_shape": sweep[-1]["time_ms"] > best["time_ms"],
        "dp_within_pct_of_best": 100.0
        * (dp_row["time_ms"] - best["time_ms"])
        / best["time_ms"],
        "paper": "U-shaped curve; DP solution at/near the minimum",
    }
    return FigureResult("fig06", f"partition range sweep ({config})", rows, table, notes)
