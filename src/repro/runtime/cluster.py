"""Cluster topology and the hierarchical alpha-beta network model.

Substitute for the paper's EC2 clusters (Sec. 7): 8-node p4de (8x A100,
4x100 Gbps NICs per node, NVLink intra-node) and p3dn (8x V100, one
100 Gbps NIC per node).  All-to-all cost is dominated by the slower of the
intra-node (NVLink) and inter-node (NIC, shared by all GPUs of a node)
byte streams, plus a per-collective latency term -- a standard
hierarchical alpha-beta model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .device import A100, V100, GPUSpec
from .topology import HierarchicalTiming, Topology


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    **Unit conventions** (normative for the whole repo; asserted by
    ``tests/test_cluster_simulation.py``):

    - bandwidths (the beta terms) are **GB/s** -- 1e9 *bytes* per second.
      The ``_gbps`` suffix is historical and does **not** mean gigabit:
      NIC line rates quoted in Gbit/s are divided by 8 in the presets
      (p4de: 4 x 100 Gbit/s EFA = ``node_nic_gbps=50.0``; p3dn: one
      100 Gbit/s NIC = ``node_nic_gbps=12.5``);
    - latencies (the alpha terms) are **microseconds** (``*_us``);
    - buffer and traffic sizes are **bytes**;
    - every returned time is **milliseconds** (``*_ms`` methods).

    Attributes
    ----------
    gpu:
        Per-device performance model.
    num_nodes / gpus_per_node:
        Topology; total devices = product.
    intra_bw_gbps:
        Effective per-GPU NVLink bandwidth (GB/s) for intra-node traffic.
    node_nic_gbps:
        Aggregate NIC bandwidth per *node* (GB/s), shared by its GPUs.
    alpha_intra_us / alpha_inter_us:
        Latency floor (microseconds) of one collective step within /
        across nodes.
    """

    name: str
    gpu: GPUSpec
    num_nodes: int
    gpus_per_node: int = 8
    intra_bw_gbps: float = 200.0
    node_nic_gbps: float = 50.0
    alpha_intra_us: float = 8.0
    alpha_inter_us: float = 20.0

    @property
    def num_gpus(self) -> int:
        """Total device count."""
        return self.num_nodes * self.gpus_per_node

    @property
    def nic_per_gpu_gbps(self) -> float:
        """Inter-node bandwidth available to one GPU (NICs are shared)."""
        return self.node_nic_gbps / self.gpus_per_node

    @property
    def multi_node(self) -> bool:
        return self.num_nodes > 1

    @property
    def topology(self) -> Topology:
        """The cluster's physical layout (node-of-rank mapping, link
        speeds) as a standalone :class:`~repro.runtime.topology.Topology`
        -- the single home of the 2-hop all-to-all decomposition."""
        return Topology(
            num_nodes=self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            intra_bw_gbps=self.intra_bw_gbps,
            node_nic_gbps=self.node_nic_gbps,
            alpha_intra_us=self.alpha_intra_us,
            alpha_inter_us=self.alpha_inter_us,
        )

    def alpha_ms(self) -> float:
        """Latency floor of one collective involving all devices."""
        a = self.alpha_inter_us if self.multi_node else self.alpha_intra_us
        return a * 1e-3

    # -- collective cost models ------------------------------------------------

    def a2a_time_ms(self, send_bytes_per_gpu: float) -> float:
        """Uniform all-to-all: every GPU sends ``send_bytes_per_gpu`` total,
        spread evenly over all peers.

        The transfer splits into an intra-node share over NVLink and an
        inter-node share over the (shared) NICs; they proceed concurrently
        and the collective finishes with the slower stream.
        """
        g = self.num_gpus
        if g <= 1 or send_bytes_per_gpu <= 0:
            return self.alpha_intra_us * 1e-3
        frac_intra = (self.gpus_per_node - 1) / g if self.multi_node else (g - 1) / g
        frac_inter = (g - self.gpus_per_node) / g if self.multi_node else 0.0
        t_intra = (send_bytes_per_gpu * frac_intra) / (self.intra_bw_gbps * 1e9)
        t_inter = (send_bytes_per_gpu * frac_inter) / (self.nic_per_gpu_gbps * 1e9)
        return self.alpha_ms() + max(t_intra, t_inter) * 1e3

    def a2a_device_times_ms(self, pair_bytes: np.ndarray) -> np.ndarray:
        """Per-device busy time of an irregular all-to-all.

        ``pair_bytes[s, d]`` bytes flow from GPU ``s`` to GPU ``d``;
        device ``i`` is busy until its own send *and* receive streams
        drain on each network level, so its time is bounded by
        ``max(send_i, recv_i)`` per level.  Two latency terms account for
        the two-phase protocol (paper Fig. 10): phase 1 exchanges chunk
        sizes, phase 2 moves the data.

        The collective as a whole completes at ``result.max()``, which is
        exactly :meth:`a2a_time_ms_irregular` (busiest stream anywhere).
        """
        pair = np.asarray(pair_bytes, dtype=np.float64)
        g = self.num_gpus
        if pair.shape != (g, g):
            raise ValueError(f"pair_bytes must be [{g},{g}], got {pair.shape}")
        node_of = np.arange(g) // self.gpus_per_node
        same_node = node_of[:, None] == node_of[None, :]
        off_diag = ~np.eye(g, dtype=bool)

        intra = np.where(same_node & off_diag, pair, 0.0)
        inter = np.where(~same_node, pair, 0.0)

        # per-device bottleneck stream (send or receive) on each level
        intra_load = np.maximum(intra.sum(axis=1), intra.sum(axis=0))
        inter_load = np.maximum(inter.sum(axis=1), inter.sum(axis=0))
        t_intra = intra_load / (self.intra_bw_gbps * 1e9)
        t_inter = inter_load / (self.nic_per_gpu_gbps * 1e9)
        size_exchange = self.alpha_ms()  # phase 1: exchange chunk sizes
        return size_exchange + self.alpha_ms() + np.maximum(t_intra, t_inter) * 1e3

    def a2a_time_ms_irregular(self, pair_bytes: np.ndarray) -> float:
        """Irregular all-to-all (all-to-allv) completion time.

        Bounded by the most-loaded GPU's send or receive stream on each
        network level: the max of :meth:`a2a_device_times_ms`.
        """
        return float(self.a2a_device_times_ms(pair_bytes).max())

    # -- hierarchical (2-hop) all-to-all ---------------------------------------

    def hierarchical_a2a_timing(self, pair_bytes: np.ndarray) -> HierarchicalTiming:
        """Per-phase timing of the 2-hop all-to-all (see
        :mod:`repro.runtime.topology`): intra-node gather, node-aggregated
        inter-node exchange over the NICs, intra-node scatter."""
        return self.topology.phase_times_ms(pair_bytes)

    def hierarchical_a2a_device_times_ms(self, pair_bytes: np.ndarray) -> np.ndarray:
        """Per-device completion offsets of a hierarchical all-to-all.

        The counterpart of :meth:`a2a_device_times_ms` for the 2-hop
        algorithm; ``result.max()`` is exactly
        :meth:`hierarchical_a2a_time_ms_irregular`.
        """
        return self.hierarchical_a2a_timing(pair_bytes).device_times_ms()

    def hierarchical_a2a_time_ms_irregular(self, pair_bytes: np.ndarray) -> float:
        """Completion time of an irregular all-to-all run hierarchically.

        Phases serialize: latency floors plus the per-phase bottleneck
        (GPU NVLink stream for the intra phases, node-aggregate NIC for
        the inter phase).  On a single node this equals
        :meth:`a2a_time_ms_irregular` exactly -- the decomposition
        degenerates to the direct intra-node exchange.
        """
        return self.hierarchical_a2a_timing(pair_bytes).total_ms

    def allreduce_time_ms(self, nbytes: float) -> float:
        """Hierarchical all-reduce (NCCL-style).

        Intra-node reduce-scatter, inter-node ring all-reduce of the
        node-local partial sums over the aggregate node NICs, intra-node
        all-gather.  Unlike all-to-all, each byte crosses the node
        boundary only ~once per node, which is why gradient sync is far
        cheaper than MoE all-to-all on the same fabric.
        """
        g = self.num_gpus
        if g <= 1 or nbytes <= 0:
            return 0.0
        gl = self.gpus_per_node if self.multi_node else g
        t_intra = 2.0 * nbytes * (gl - 1) / gl / (self.intra_bw_gbps * 1e9)
        t_inter = 0.0
        if self.multi_node:
            n = self.num_nodes
            t_inter = 2.0 * nbytes * (n - 1) / n / (self.node_nic_gbps * 1e9)
        return 2 * self.alpha_ms() + (t_intra + t_inter) * 1e3

    # -- presets ----------------------------------------------------------------

    @classmethod
    def p4de(cls, num_nodes: int) -> "ClusterSpec":
        """Amazon EC2 p4de.24xlarge: 8x A100-80GB, 4x100 Gbps EFA NICs."""
        return cls(
            name=f"p4de-{num_nodes}n",
            gpu=A100,
            num_nodes=num_nodes,
            gpus_per_node=8,
            intra_bw_gbps=220.0,
            node_nic_gbps=50.0,  # 4 x 100 Gbps = 50 GB/s aggregate
            alpha_intra_us=8.0,
            alpha_inter_us=22.0,
        )

    @classmethod
    def p3dn(cls, num_nodes: int) -> "ClusterSpec":
        """Amazon EC2 p3dn.24xlarge: 8x V100-32GB, one 100 Gbps NIC."""
        return cls(
            name=f"p3dn-{num_nodes}n",
            gpu=V100,
            num_nodes=num_nodes,
            gpus_per_node=8,
            intra_bw_gbps=110.0,
            node_nic_gbps=12.5,  # 100 Gbps = 12.5 GB/s
            alpha_intra_us=10.0,
            alpha_inter_us=28.0,
        )

    @classmethod
    def for_gpus(cls, kind: str, num_gpus: int) -> "ClusterSpec":
        """Cluster of ``num_gpus`` devices of the given kind (a100/v100)."""
        if num_gpus % 8 != 0 and num_gpus > 8:
            raise ValueError("multi-node clusters must use full 8-GPU nodes")
        nodes = max(1, math.ceil(num_gpus / 8))
        kind = kind.lower()
        if kind in ("a100", "p4de"):
            spec = cls.p4de(nodes)
        elif kind in ("v100", "p3dn"):
            spec = cls.p3dn(nodes)
        else:
            raise ValueError(f"unknown cluster kind {kind!r}")
        if num_gpus < 8:
            object.__setattr__(spec, "gpus_per_node", num_gpus)
        return spec
