#!/usr/bin/env python3
"""Cross-process plan round-trip check (CI `plan-roundtrip` job).

Proves the plan-artifact contract end to end, across process
boundaries:

1. compile a scenario cold, save the plan, and simulate one iteration
   in this process;
2. spawn a **fresh Python process** that loads the saved plan and
   simulates the same iteration; the two makespans must be
   bit-identical (compared via ``float.hex``);
3. validate the checked-in **golden plan** in ``benchmarks/baselines/``:
   it must still load under the current schema, its fingerprint must
   still match a fresh build of its scenario's graph, and it must still
   simulate to the iteration time recorded inside it.

The golden plan pins the serialization schema *and* the simulator: a
change to either shows up here first.  After an intentional change,
regenerate with ``--update-golden``.

Usage:
    PYTHONPATH=src python tools/check_plan_roundtrip.py
    PYTHONPATH=src python tools/check_plan_roundtrip.py --update-golden
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
GOLDEN = REPO / "benchmarks" / "baselines" / "GOLDEN_plan_tiny-a100x8.json"
SCENARIO = "tiny/a100x8"

#: executed in a fresh interpreter: load plan, simulate, print the
#: exact makespan (hex) and predicted time
_CHILD = """
import sys
from repro.api import load_plan
plan = load_plan(sys.argv[1])
tl = plan.simulate()
print(tl.makespan.hex())
print(plan.predicted_iteration_ms.hex())
print(len(plan.program))
"""


def fresh_process_simulate(plan_path: pathlib.Path) -> tuple[str, str, int]:
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(plan_path)],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(REPO / "src"),
            # different hash seed than the parent: the round-trip must
            # not depend on process-local hashing anywhere
            "PYTHONHASHSEED": "12345",
        },
    )
    makespan_hex, predicted_hex, n_instrs = out.stdout.strip().splitlines()
    return makespan_hex, predicted_hex, int(n_instrs)


def check_cross_process() -> list[str]:
    from repro.api import PlanStore, Scenario, compile

    failures = []
    scenario = Scenario.preset(SCENARIO)
    with tempfile.TemporaryDirectory() as tmp:
        store = PlanStore(pathlib.Path(tmp) / "store")
        plan = compile(scenario, store=store)
        path = plan.save(pathlib.Path(tmp) / "plan.json")
        local_makespan = plan.simulate().makespan

        child_makespan, child_predicted, child_instrs = fresh_process_simulate(path)
        print(f"  in-process simulated iteration:  {local_makespan!r} ms")
        print(
            f"  fresh-process simulated iteration: "
            f"{float.fromhex(child_makespan)!r} ms"
        )
        if child_makespan != local_makespan.hex():
            failures.append(
                f"cross-process simulation mismatch: "
                f"{local_makespan.hex()} vs {child_makespan}"
            )
        if child_predicted != plan.predicted_iteration_ms.hex():
            failures.append("cross-process predicted_iteration_ms mismatch")
        if child_instrs != len(plan.program):
            failures.append("cross-process instruction count mismatch")

        # and the warm path: a fresh store instance must return the plan
        # without planning (the fleet story)
        warm = compile(scenario, store=PlanStore(store.root))
        if not warm.from_store:
            failures.append("warm compile did not come from the store")
        if warm.simulate().makespan.hex() != local_makespan.hex():
            failures.append("warm store plan simulates differently")
    return failures


def write_golden() -> None:
    from repro.api import Scenario, compile

    plan = compile(Scenario.preset(SCENARIO))
    plan.meta["golden"] = {
        "scenario": SCENARIO,
        "simulated_iteration_ms_hex": plan.simulate().makespan.hex(),
        "note": (
            "pins the plan schema and the simulator; regenerate with "
            "tools/check_plan_roundtrip.py --update-golden"
        ),
    }
    plan.save(GOLDEN)
    print(f"wrote {GOLDEN}")


def check_golden() -> list[str]:
    from repro.api import Scenario, graph_fingerprint, load_plan

    if not GOLDEN.exists():
        return [f"golden plan missing: {GOLDEN} (run with --update-golden)"]
    plan = load_plan(GOLDEN)
    failures = []
    expected = plan.meta.get("golden", {})
    recorded = expected.get("simulated_iteration_ms_hex")
    simulated = plan.simulate().makespan
    print(f"  golden plan simulated iteration: {simulated!r} ms")
    if recorded != simulated.hex():
        failures.append(
            f"golden plan simulation drifted: recorded "
            f"{float.fromhex(recorded) if recorded else None!r}, "
            f"got {simulated!r}"
        )
    fresh = graph_fingerprint(Scenario.preset(SCENARIO).build_graph())
    if plan.fingerprint != fresh:
        failures.append(
            "golden plan fingerprint no longer matches a fresh graph build "
            f"({plan.fingerprint[:23]}... vs {fresh[:23]}...)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the checked-in golden plan",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    if args.update_golden:
        write_golden()
        return 0

    failures = []
    print("cross-process round-trip:")
    failures += check_cross_process()
    print("golden plan:")
    failures += check_golden()
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nplan round-trip OK (bit-identical across processes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
