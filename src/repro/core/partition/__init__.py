"""Operator partition pass: axis inference, pipeline scheduling, DP."""

from .axis_inference import (
    InferenceResult,
    MOE_ONLY_OPS,
    infer_axes,
    range_is_moe_only,
)
from .dp import (
    ConsumerIndex,
    DPResult,
    Group,
    LancetHyperParams,
    PlannerState,
    RangePlan,
    build_groups,
    forward_length,
    max_range_for,
    plan_partitions,
)
from .dp_reference import plan_partitions_reference
from .pass_ import OperatorPartitionPass
from .pipeline import (
    PipelineCost,
    PlanCaches,
    RangeContext,
    Stage,
    build_stages,
    chunk_duration_ms,
    chunk_type,
    max_feasible_parts,
    pipeline_cost_ms,
    sequential_cost_ms,
)
from .rewriter import apply_plan, apply_plans
from .rules import RuleContext, entry_domain, rules_for

__all__ = [
    "ConsumerIndex",
    "DPResult",
    "Group",
    "InferenceResult",
    "LancetHyperParams",
    "MOE_ONLY_OPS",
    "OperatorPartitionPass",
    "PipelineCost",
    "PlanCaches",
    "PlannerState",
    "RangeContext",
    "RangePlan",
    "RuleContext",
    "Stage",
    "apply_plan",
    "apply_plans",
    "build_groups",
    "build_stages",
    "chunk_duration_ms",
    "chunk_type",
    "entry_domain",
    "forward_length",
    "infer_axes",
    "max_feasible_parts",
    "max_range_for",
    "pipeline_cost_ms",
    "plan_partitions",
    "plan_partitions_reference",
    "range_is_moe_only",
    "rules_for",
    "sequential_cost_ms",
]
