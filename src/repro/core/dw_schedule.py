"""Weight Gradient Computation Schedule Pass (paper Sec. 4, Alg. 1).

Weight-gradient (dW) computations are leaves of the backward dependency
graph: nothing in the backward chain consumes them (Fig. 3a), so they can
be delayed to run concurrently with all-to-all communication.  The pass:

1. **Labelling** (Sec. 4.1): for every all-to-all ``Ia``, compute the set
   ``W_Ia`` of dW instructions with no directed path to or from ``Ia``
   (via the transitive closure of the dependency graph).
2. **Scheduling** (Sec. 4.2): the assignment of dWs to all-to-alls is a
   generalized assignment problem (NP-hard), so a best-fit greedy is
   used: walk the all-to-alls in program order, and for each one pick
   still-unassigned compatible dWs whose duration best matches the
   remaining un-overlapped all-to-all time.
3. **Reordering**: place each chosen dW right after its all-to-all, then
   legalize (dependents such as gradient all-reduces are deferred past
   the moved dW by a priority topological sort).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..ir import DependencyGraph, Instruction, InstrKind, Pass, Program
from .cost_model import CostEstimator


@dataclass
class A2AOverlapRecord:
    """Planning record for one all-to-all."""

    a2a_uid: int
    a2a_ms: float
    assigned_uids: list[int] = field(default_factory=list)
    assigned_ms: float = 0.0

    @property
    def planned_overlap_ms(self) -> float:
        """Overlap the greedy expects (capped at the all-to-all time)."""
        return min(self.a2a_ms, self.assigned_ms)


@dataclass
class DWScheduleReport:
    """Outcome of the pass, for inspection and the ablation study."""

    records: list[A2AOverlapRecord] = field(default_factory=list)
    num_dw_total: int = 0
    num_dw_moved: int = 0
    #: True when all-to-all durations (the overlap budgets) were priced
    #: against observed routing signatures -- a skewed realization means
    #: longer all-to-alls and therefore room for more dW overlap
    skew_aware: bool = False

    @property
    def total_a2a_ms(self) -> float:
        return sum(r.a2a_ms for r in self.records)

    @property
    def total_planned_overlap_ms(self) -> float:
        return sum(r.planned_overlap_ms for r in self.records)


def legalize_order(
    program: Program, desired: list[Instruction]
) -> list[Instruction]:
    """Topologically sort ``desired`` keeping its order where legal.

    Greedy list scheduling: instructions become ready once all their
    producers are placed; among ready instructions, the one earliest in
    ``desired`` goes first.  Needed because moving a dW later must also
    push its consumers (e.g. the gradient all-reduce) after it.
    """
    idx_of = {ins.uid: i for i, ins in enumerate(desired)}
    producer_of: dict[int, int] = {}
    for ins in desired:
        for o in ins.outputs:
            producer_of[o] = ins.uid

    blockers: dict[int, set[int]] = {}
    dependents: dict[int, list[int]] = {}
    for ins in desired:
        need = set()
        for v in ins.inputs:
            p = producer_of.get(v)
            if p is not None and p != ins.uid:
                need.add(p)
        blockers[ins.uid] = need
        for p in need:
            dependents.setdefault(p, []).append(ins.uid)

    by_uid = {ins.uid: ins for ins in desired}
    ready = [idx_of[ins.uid] for ins in desired if not blockers[ins.uid]]
    heapq.heapify(ready)
    out: list[Instruction] = []
    while ready:
        i = heapq.heappop(ready)
        ins = desired[i]
        out.append(ins)
        for dep_uid in dependents.get(ins.uid, ()):  # release dependents
            b = blockers[dep_uid]
            b.discard(ins.uid)
            if not b:
                heapq.heappush(ready, idx_of[dep_uid])
    if len(out) != len(desired):
        raise RuntimeError("cycle detected while legalizing schedule")
    return out


#: alternative greedy selection strategies, for the design-choice ablation
#: (the paper uses best-fit; `benchmarks/bench_ablation_dw_strategy.py`
#: quantifies why)
DW_STRATEGIES = ("best_fit", "first_fit", "largest_first")


class WeightGradSchedulePass(Pass):
    """Best-fit greedy dW-to-all-to-all overlap scheduling (Alg. 1).

    Parameters
    ----------
    costs:
        Cost oracle for instruction durations.
    strategy:
        How the next dW is chosen for the remaining un-overlapped time
        ``tu``: ``best_fit`` (paper Alg. 1: minimize ``|tu - t_dW|``),
        ``first_fit`` (earliest compatible dW in program order) or
        ``largest_first`` (largest remaining dW).
    """

    name = "weight-grad-schedule"

    def __init__(self, costs: CostEstimator, strategy: str = "best_fit") -> None:
        if strategy not in DW_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick from {DW_STRATEGIES}"
            )
        self.costs = costs
        self.strategy = strategy
        self.report = DWScheduleReport()

    def run(self, program: Program) -> Program:
        instrs = program.instructions
        n = len(instrs)
        graph = DependencyGraph.from_program(program)

        a2a_pos = [i for i in range(n) if instrs[i].op == "all_to_all"]
        dw_pos = np.array(
            [i for i in range(n) if instrs[i].kind == InstrKind.DW], dtype=np.int64
        )
        self.report = DWScheduleReport(
            num_dw_total=len(dw_pos),
            skew_aware=bool(self.costs.signatures),
        )
        if not a2a_pos or len(dw_pos) == 0:
            return program

        t_dw = np.array(
            [self.costs.duration_ms(instrs[i], program) for i in dw_pos]
        )

        used = np.zeros(len(dw_pos), dtype=bool)
        assignment: dict[int, list[int]] = {}

        for a in a2a_pos:
            # Sec. 4.1: W_Ia = dWs with no path to/from the all-to-all
            compatible = graph.independent_set(a, dw_pos)
            t_a = self.costs.duration_ms(instrs[a], program)
            rec = A2AOverlapRecord(a2a_uid=instrs[a].uid, a2a_ms=t_a)
            tu = t_a
            chosen: list[int] = []
            while tu > 0:
                avail = np.nonzero(compatible & ~used)[0]
                if avail.size == 0:
                    break
                if self.strategy == "best_fit":
                    # paper Alg. 1 line 18: minimize |tu - t_dw|
                    j = avail[np.argmin(np.abs(tu - t_dw[avail]))]
                elif self.strategy == "first_fit":
                    j = avail[0]  # dw_pos is in program order
                else:  # largest_first
                    j = avail[np.argmax(t_dw[avail])]
                used[j] = True
                tu -= t_dw[j]
                chosen.append(int(dw_pos[j]))
                rec.assigned_uids.append(instrs[dw_pos[j]].uid)
                rec.assigned_ms += float(t_dw[j])
            if chosen:
                assignment[a] = chosen
            self.report.records.append(rec)

        self.report.num_dw_moved = int(used.sum())
        if not assignment:
            return program

        # Reorder: drop moved dWs from their original slots and replay
        # them right after their assigned all-to-all.
        moved = {p for lst in assignment.values() for p in lst}
        desired: list[Instruction] = []
        for pos, ins in enumerate(instrs):
            if pos in moved:
                continue
            desired.append(ins)
            for p in assignment.get(pos, ()):  # keep best-fit order
                desired.append(instrs[p])

        program.replace_order(legalize_order(program, desired))
        return program
