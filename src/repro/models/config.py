"""Model configurations for the GPT-2 MoE benchmark models.

The paper evaluates two variants (Sec. 7): GPT2-S-MoE (12 layers, hidden
768) and GPT2-L-MoE (24 layers, hidden 1024), with every other Transformer
block's feed-forward replaced by an MoE layer and *two experts per GPU* at
every cluster size (weak scaling of the expert count).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


#: Gating methods whose expert assignment can be decided from a prefix of
#: the batch (paper Sec. 2.3): partitioning is allowed both before and
#: after the MoE layer for these.
BATCH_PREFIX_STABLE_GATES = frozenset({"switch", "topk", "random", "hash"})

#: Gating methods that need the whole batch before deciding assignments
#: (e.g. Batch Prioritized Routing sorts all tokens by importance), so only
#: post-MoE partitioning is legal.
BATCH_DEPENDENT_GATES = frozenset({"bpr", "expert_choice"})

ALL_GATES = BATCH_PREFIX_STABLE_GATES | BATCH_DEPENDENT_GATES


@dataclass(frozen=True)
class GPT2MoEConfig:
    """Architecture hyper-parameters of a GPT-2 style MoE model.

    Attributes mirror the paper's setup; ``moe_every=2`` means every second
    Transformer block hosts an MoE layer.
    """

    name: str = "gpt2-moe"
    num_layers: int = 12
    hidden: int = 768
    num_heads: int = 12
    ffn_mult: int = 4
    vocab_size: int = 50_257
    max_seq: int = 1024
    moe_every: int = 2
    experts_per_gpu: int = 2
    capacity_factor: float = 1.25
    gate: str = "switch"
    top_k: int = 1
    #: add a dense *shared expert* to every MoE layer (PR-MoE /
    #: DeepSeek-MoE style, paper Sec. 8): all tokens flow through it, and
    #: its computation naturally overlaps the all-to-all.
    shared_expert: bool = False
    #: hidden size of the shared expert's FFN (defaults to ffn_hidden/4,
    #: the "smaller shared expert" of PR-MoE)
    shared_expert_mult: int = 1

    def __post_init__(self) -> None:
        if self.gate not in ALL_GATES:
            raise ValueError(f"unknown gate {self.gate!r}; pick from {sorted(ALL_GATES)}")
        if self.hidden % self.num_heads != 0:
            raise ValueError("hidden must be divisible by num_heads")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")

    @property
    def ffn_hidden(self) -> int:
        """Feed-forward inner dimension (dense blocks and experts)."""
        return self.ffn_mult * self.hidden

    @property
    def num_moe_layers(self) -> int:
        """Number of MoE layers in the model."""
        return sum(1 for i in range(self.num_layers) if self.is_moe_layer(i))

    def is_moe_layer(self, layer: int) -> bool:
        """Whether block ``layer`` (0-based) hosts an MoE feed-forward."""
        return layer % self.moe_every == (self.moe_every - 1)

    def num_experts(self, num_gpus: int) -> int:
        """Total expert count when running on ``num_gpus`` devices."""
        return self.experts_per_gpu * num_gpus

    def capacity(self, batch: int, seq: int, num_gpus: int) -> int:
        """Per-expert, per-device token capacity ``C`` (GShard convention).

        Each device may send up to ``C`` tokens to each expert, with
        ``C = ceil(capacity_factor * top_k * tokens / num_experts)``.
        """
        tokens = batch * seq
        e = self.num_experts(num_gpus)
        c = -(-int(self.capacity_factor * self.top_k * tokens) // e)
        return max(c, 1)

    @property
    def gate_is_batch_prefix_stable(self) -> bool:
        """True if partitioning *before* the MoE layer keeps gating exact."""
        return self.gate in BATCH_PREFIX_STABLE_GATES

    def with_gate(self, gate: str, top_k: int | None = None) -> "GPT2MoEConfig":
        """Copy of this config with a different gating method."""
        return replace(self, gate=gate, top_k=top_k if top_k is not None else self.top_k)

    # -- paper presets ------------------------------------------------------

    @classmethod
    def gpt2_s_moe(cls, **overrides) -> "GPT2MoEConfig":
        """GPT2-S-MoE: 12 layers, hidden 768 (paper Sec. 7)."""
        base = dict(name="GPT2-S-MoE", num_layers=12, hidden=768, num_heads=12)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def gpt2_l_moe(cls, **overrides) -> "GPT2MoEConfig":
        """GPT2-L-MoE: 24 layers, hidden 1024 (paper Sec. 7)."""
        base = dict(name="GPT2-L-MoE", num_layers=24, hidden=1024, num_heads=16)
        base.update(overrides)
        return cls(**base)

    @classmethod
    def tiny(cls, **overrides) -> "GPT2MoEConfig":
        """A miniature config for tests: 2 layers, hidden 16, vocab 64."""
        base = dict(
            name="tiny",
            num_layers=2,
            hidden=16,
            num_heads=2,
            vocab_size=64,
            max_seq=32,
        )
        base.update(overrides)
        return cls(**base)


@dataclass(frozen=True)
class RunConfig:
    """A concrete training-run setting: model x batch x cluster size."""

    model: GPT2MoEConfig
    batch_per_gpu: int
    seq_len: int
    num_gpus: int

    @property
    def num_experts(self) -> int:
        return self.model.num_experts(self.num_gpus)

    @property
    def capacity(self) -> int:
        return self.model.capacity(self.batch_per_gpu, self.seq_len, self.num_gpus)

    @property
    def tokens_per_gpu(self) -> int:
        return self.batch_per_gpu * self.seq_len
