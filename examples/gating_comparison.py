#!/usr/bin/env python
"""How the gating method constrains Lancet's partition space.

The paper (Sec. 2.3, Fig. 4) distinguishes gates whose routing can be
decided from a batch *prefix* (Switch, top-k, random, hash) -- which
allow partitioning both before and after the MoE layer -- from gates
that need the whole batch (Batch Prioritized Routing, expert-choice),
which only allow partitioning after the gate.

This example runs the partition pass under both kinds of gate and shows
(i) which ops land inside the chosen pipelines and (ii) the capacity-
passing property that makes prefix-stable gates safe to partition.

Run:  python examples/gating_comparison.py

See docs/TUTORIAL.md for the end-to-end walkthrough and docs/API.md
for the optimizer surface used here.
"""

import numpy as np

from repro import ClusterSpec, GPT2MoEConfig, LancetOptimizer, build_training_graph
from repro.moe import (
    DistributedMoELayer,
    forward_microbatched_capacity_passing,
    forward_microbatched_naive,
)


def pipeline_ops(graph, report):
    """Which op types were included in the chosen partition ranges."""
    ops = set()
    for plan in report.partition.plans:
        for ins in graph.program.instructions[plan.start : plan.end]:
            ops.add(ins.op)
    return ops


def main() -> None:
    cluster = ClusterSpec.p4de(2)
    print("=== partition range vs gating method (paper Fig. 4c/4d) ===")
    for gate in ("switch", "bpr"):
        cfg = GPT2MoEConfig.gpt2_s_moe(gate=gate)
        graph = build_training_graph(cfg, batch=24, seq=512, num_gpus=16)
        _, report = LancetOptimizer(cluster).optimize(graph)
        ops = pipeline_ops(graph, report)
        print(f"\ngate={gate}: {len(report.partition.plans)} pipelines, "
              f"parts={[p.parts for p in report.partition.plans]}")
        print(f"  ops inside pipelines: {sorted(ops)}")
        if gate == "bpr":
            assert "routing" not in ops, "BPR gate must stay outside!"
            print("  -> the batch-dependent gate stays OUTSIDE the pipeline "
                  "(only post-gate ops are partitioned, Fig. 4c)")
        else:
            assert "routing" in ops
            print("  -> the prefix-stable gate is partitioned too "
                  "(pre- and post-MoE ops pipelined, Fig. 4d)")

    print("\n=== capacity passing vs naive micro-batching (paper Fig. 5) ===")
    layer = DistributedMoELayer(
        num_devices=2, experts_per_device=2, hidden=16, ffn_hidden=32,
        gate_type="switch", capacity_factor=1.0, seed=3,
    )
    rng = np.random.default_rng(0)
    xs = [rng.standard_normal((48, 16)) for _ in range(2)]
    full, cache = layer.forward(xs)
    exact = forward_microbatched_capacity_passing(layer, xs, parts=4)
    naive = forward_microbatched_naive(layer, xs, parts=4)

    err_exact = max(np.abs(exact.outputs[d] - full[d]).max() for d in range(2))
    err_naive = max(np.abs(naive.outputs[d] - full[d]).max() for d in range(2))
    drops_full = sum(len(cache.infos[d].dropped_tokens()) for d in range(2))
    drops_naive = sum(
        len(naive.infos[p][d].dropped_tokens())
        for p in range(4) for d in range(2)
    )
    print(f"capacity-passing micro-batch: max |diff| = {err_exact:.2e} "
          f"(bit-exact: {err_exact == 0.0})")
    print(f"naive micro-batch:            max |diff| = {err_naive:.2e}, "
          f"dropped {drops_naive} tokens vs {drops_full} unpartitioned")
    print("-> Lancet's capacity-passing gate preserves routing exactly; "
          "naive micro-batching does not.")


if __name__ == "__main__":
    main()
