"""Chaos-harness gate: the reliability contracts of the fault stack.

Runs the three seeded chaos drills (``repro.bench.figures
.fault_recovery``) and asserts the documented reliability contracts
directly, on top of the baseline-diffed regression metrics:

1. **Injection fidelity** -- randomized fault schedules (stragglers,
   NIC degradation, rank loss) produce *bit-identical* timelines on the
   scalar and vectorized simulator paths: zero mismatched timelines.
2. **Failure-aware re-planning** -- the trainer detects an injected
   persistent straggler within a bounded number of steps, estimates its
   magnitude accurately, and its post-re-plan schedule lands within 10%
   of an oracle plan compiled directly against the degraded cluster;
   after the fault heals it recovers back to the nominal target.
3. **Graceful degradation** -- under store I/O faults, a stalling
   planner, blown deadlines, and an opened circuit breaker, *every*
   request is answered (zero unhandled exceptions) and the tier
   counters prove the whole fallback chain fired, including the
   half-open breaker recovery and the late landing of abandoned runs.
"""

import pytest
from conftest import run_figure

from repro.bench.figures import fault_recovery


def test_fault_recovery(benchmark):
    result = run_figure(benchmark, fault_recovery.run)
    injector = result.notes["injector"]
    trainer = result.notes["trainer"]
    server = result.notes["server"]

    # contract 1: bit-identical faulted timelines, real fault coverage
    assert injector["mismatched_timelines"] == 0
    assert injector["faulted_steps"] > 0
    assert set(injector["kinds_seen"]) == {
        "straggler", "nic_degrade", "rank_loss"
    }
    assert injector["worst_makespan_inflation"] > 1.0

    # contract 2: detect -> estimate -> re-plan within 10% of the
    # oracle -> recover
    assert 0 <= trainer["detection_latency_steps"] <= 5
    assert trainer["estimated_slowdown"] == pytest.approx(
        trainer["injected_slowdown"], rel=0.05
    )
    assert trainer["replans"] >= 2  # one on fault, one on recovery
    assert trainer["recovery_gap"] <= 0.10, (
        f"post-re-plan schedule {trainer['post_replan_ms']:.3f} ms is "
        f"{trainer['recovery_gap'] * 100:.1f}% behind the oracle's "
        f"{trainer['oracle_ms']:.3f} ms"
    )
    assert trainer["recovered_step"] > trainer["heal_step"]
    assert trainer["back_to_nominal"]

    # contract 3: every request answered, the whole chain fired
    counters = server["counters"]
    assert server["unanswered"] == 0
    assert counters["errors"] == 0
    assert server["injected_store_errors"] > 0
    assert counters["store_retries"] > 0
    assert counters["deadline_hits"] > 0
    assert counters["planner_timeouts"] > 0
    assert counters["breaker_short_circuits"] > 0
    assert counters["stale_hits"] > 0
    assert counters["baseline_plans"] > 0
    assert counters["late_plans"] > 0  # abandoned runs still land
    assert server["breaker"]["trips"] >= 1
    assert server["breaker"]["state"] == "closed"  # healed by the end
    assert server["origins"].get("planned", 0) > 0  # cold planning resumed
