"""Pipeline-planner gate: differential agreement + staged-split wins.

Runs the three seeded pipeline drills (``repro.bench.figures.pipeline``)
and asserts the documented quality contracts directly, on top of the
baseline-diffed regression metrics:

1. **Differential agreement** -- on every staged simulation in the grid
   (real programs x staged clusters x routing realizations x both
   schedules), the scan scheduler's job times are bit-identical to the
   naive event-replay reference: zero mismatches, ever.
2. **Staged-split wins** -- on every multi-node hot-grid point the
   planner-chosen stage boundaries beat the naive even split's full
   pipelined iteration time by at least the documented target (mean
   over routing seeds), the "boundary placement is a planning decision"
   claim.
3. **Schedule ablation** -- on identical per-stage costs 1F1B never
   loses iteration time to GPipe, and never holds more microbatches in
   flight (the activation-memory high-water mark) on any stage.
"""

from conftest import run_figure

from repro.bench.figures import pipeline


def test_pipeline(benchmark):
    result = run_figure(benchmark, pipeline.run)
    differential = result.notes["differential"]
    hot = result.notes["hot_grid"]
    schedule = result.notes["schedule"]

    # contract 1: bit-identity is a contract, not a tolerance
    assert differential["mismatches"] == 0
    assert differential["runs"] >= 24
    assert differential["jobs_compared"] >= 200

    # contract 2: every grid point clears the improvement target
    assert hot["min_improvement"] >= hot["target"], (
        f"worst grid point won only {hot['min_improvement'] * 100:.1f}% "
        f"over the even split (target {hot['target'] * 100:.0f}%)"
    )
    for point in hot["points"]:
        assert point["mean_improvement"] > 0
        assert point["chosen_split"] != point["even_split"], (
            f"{point['cluster']}: the planner found no better split than "
            "even, so the grid no longer exercises the search"
        )

    # contract 3: 1F1B never loses to GPipe on identical costs
    assert schedule["worst_1f1b_over_gpipe"] <= 1.0 + 1e-9
    assert schedule["peak_violations"] == 0
    for point in schedule["points"]:
        assert point["1f1b_peak_in_flight"] <= point["gpipe_peak_in_flight"]
