"""Tests for the benchmark harness and formatting."""

import pytest

from repro.bench import (
    Setting,
    estimate_memory_gb,
    format_table,
    model_by_name,
    paper_batch,
    run_setting,
)


class TestSettings:
    def test_paper_batches(self):
        assert paper_batch("a100", "GPT2-S-MoE") == 24
        assert paper_batch("a100", "GPT2-L-MoE") == 48
        assert paper_batch("v100", "GPT2-S-MoE") == 16
        assert paper_batch("v100", "GPT2-L-MoE") == 8

    def test_model_by_name(self):
        assert model_by_name("GPT2-S-MoE").num_layers == 12
        assert model_by_name("GPT2-L-MoE").hidden == 1024
        with pytest.raises(ValueError):
            model_by_name("GPT3")

    def test_setting_resolves_batch(self):
        s = Setting("GPT2-S-MoE", "v100", 16, "raf")
        assert s.resolved_batch() == 16
        s2 = Setting("GPT2-S-MoE", "v100", 16, "raf", batch=4)
        assert s2.resolved_batch() == 4


class TestRunSetting:
    @pytest.fixture(scope="class")
    def measurement(self):
        return run_setting(
            Setting("GPT2-S-MoE", "a100", 16, "raf", batch=4, seq=128)
        )

    def test_fields_populated(self, measurement):
        m = measurement
        assert m.iteration_ms > 0
        assert m.a2a_total_ms > 0
        assert m.expert_fwd_ms > 0
        assert m.memory_gb > 0
        # decomposition adds up (plus idle)
        assert (
            m.comm_only_ms + m.comp_only_ms + m.overlap_ms
            <= m.iteration_ms + 1e-6
        )

    def test_memoized(self):
        s = Setting("GPT2-S-MoE", "a100", 16, "raf", batch=4, seq=128)
        a = run_setting(s)
        b = run_setting(s)
        assert a is b

    def test_lancet_info(self):
        m = run_setting(
            Setting("GPT2-S-MoE", "a100", 16, "lancet", batch=4, seq=128)
        )
        assert "pass_seconds" in m.info
        assert "predicted_ms" in m.info

    def test_others_bucket(self, measurement):
        assert measurement.others_ms > 0


class TestDefaultSeed:
    def test_set_default_seed_changes_realization(self):
        """run_setting with no explicit seed follows the session default
        (the CLI's --seed); explicit seeds are unaffected."""
        from repro.bench import set_default_seed

        # lancet runs un-padded all-to-alls, so the realized routing
        # (and therefore the seed) shows up in the simulated time
        s = Setting("GPT2-S-MoE", "a100", 16, "lancet", batch=2, seq=64)
        try:
            base = run_setting(s)
            assert run_setting(s, seed=1).iteration_ms == base.iteration_ms
            set_default_seed(99)
            shifted = run_setting(s)
            assert shifted.iteration_ms != base.iteration_ms
            assert run_setting(s, seed=1).iteration_ms == base.iteration_ms
        finally:
            set_default_seed(1)


class TestMemoryEstimate:
    def test_deepspeed_needs_more(self, tiny_graph):
        ds = estimate_memory_gb(tiny_graph, "deepspeed")
        raf = estimate_memory_gb(tiny_graph, "raf")
        assert ds > raf


class TestFormatting:
    def test_table_alignment(self):
        t = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]], title="T")
        lines = t.split("\n")
        assert lines[0] == "T"
        assert "xyz" in t and "2.50" in t and "0.001" in t

    def test_empty_rows(self):
        t = format_table(["col"], [])
        assert "col" in t
