"""Trusted reference implementations for the differential harness.

Two oracles the production placement code is verified against:

- :func:`remap_pair_bytes_reference` -- a pure-Python (scalar loops,
  no numpy arithmetic) mirror of :meth:`ExpertPlacement.pair_bytes`.
  It follows the same numerical contract -- identity placements take the
  exact owner-summed integer reduction, everything else accumulates
  ``(count * bytes_per_token) * fraction`` per replica in expert order
  -- so the vectorized implementation must match it **bit for bit**.
- :func:`brute_force_placement` -- exhaustive enumeration of every
  single-replica assignment, the ground-truth optimum the greedy
  :class:`~repro.placement.PlacementOptimizer` is differentially tested
  against on small configurations.
"""

from __future__ import annotations

import itertools

import numpy as np

from .model import ExpertPlacement

#: enumeration guard: G**E assignments beyond this refuse to run
#: (brute force is a test oracle for small configs, not a planner)
MAX_BRUTE_FORCE_ASSIGNMENTS = 80_000


def remap_pair_bytes_reference(
    placement: ExpertPlacement, counts, bytes_per_token: float
) -> np.ndarray:
    """Pure-Python mirror of :meth:`ExpertPlacement.pair_bytes`.

    ``counts`` rows are sources; entries must be integral (dispatch
    counts are token tallies).  Returns a float64 ``[sources,
    num_devices]`` matrix bit-identical to the production remap.
    """
    rows = [list(row) for row in np.asarray(counts)]
    sources = len(rows)
    g, e = placement.num_devices, placement.num_experts
    bpt = float(bytes_per_token)
    pair = [[0.0] * g for _ in range(sources)]
    if placement.is_identity and sources == g:
        el = e // g
        for s in range(sources):
            for d in range(g):
                total = 0
                for j in range(el):
                    total += int(rows[s][d * el + j])
                pair[s][d] = float(total) * bpt
        return np.array(pair, dtype=np.float64)
    for expert in range(e):
        for device, fraction in placement.assignments[expert]:
            for s in range(sources):
                pair[s][device] += (float(rows[s][expert]) * bpt) * fraction
    return np.array(pair, dtype=np.float64)


def brute_force_placement(
    counts,
    bytes_per_token: float,
    cluster,
    cost_fn=None,
    max_assignments: int = MAX_BRUTE_FORCE_ASSIGNMENTS,
) -> tuple[ExpertPlacement, float]:
    """Exhaustive single-replica optimum: the differential ground truth.

    Enumerates all ``G**E`` expert->device assignments (no replication
    -- the reference space the greedy optimizer must match or beat,
    since greedy may additionally replicate) and returns the cheapest
    as ``(placement, cost_ms)``.  ``cost_fn(pair_bytes) -> ms`` defaults
    to the :class:`~repro.placement.PlacementOptimizer` objective for
    ``cluster``; ties keep the first assignment in lexicographic order,
    so the result is deterministic.
    """
    counts = np.asarray(counts)
    sources, e = counts.shape
    g = cluster.num_gpus
    total = g**e
    if total > max_assignments:
        raise ValueError(
            f"brute force would enumerate {total} assignments "
            f"(> {max_assignments}); use a smaller config"
        )
    if cost_fn is None:
        from .optimizer import PlacementOptimizer

        cost_fn = PlacementOptimizer(cluster).pair_cost_ms
    # one scaled add per expert, in expert order: bit-identical to
    # ExpertPlacement.pair_bytes for single-replica placements (f=1.0
    # scales are exact)
    scaled = counts.astype(np.float64) * float(bytes_per_token)
    best_assign = None
    best_cost = np.inf
    for assign in itertools.product(range(g), repeat=e):
        pair = np.zeros((sources, g))
        for expert, device in enumerate(assign):
            pair[:, device] += scaled[:, expert] * 1.0
        cost = cost_fn(pair)
        if cost < best_cost:
            best_assign, best_cost = assign, cost
    placement = ExpertPlacement(
        e, g, tuple(((d, 1.0),) for d in best_assign)
    )
    return placement, float(best_cost)
