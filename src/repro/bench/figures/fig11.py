"""Figures 11 & 12: training iteration time vs cluster size.

Paper: weak scaling (fixed per-GPU batch) on 16/32/64 GPUs, both models,
both clusters.  Fig. 11 uses the Switch gate and compares DeepSpeed, RAF,
Tutel and Lancet; Fig. 12 uses the Batch Prioritized gate and compares
RAF, Tutel and Lancet.  Lancet wins everywhere, by up to ~1.2-1.3x.
"""

from __future__ import annotations

from ..formatting import format_table
from ..harness import PAPER_GPU_COUNTS, Measurement, Setting, run_setting
from .common import FigureResult

SWITCH_FRAMEWORKS = ("deepspeed", "raf", "tutel", "lancet")
BPR_FRAMEWORKS = ("raf", "tutel", "lancet")


def run(
    gate: str = "switch",
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    gpu_counts=PAPER_GPU_COUNTS,
    frameworks=None,
) -> FigureResult:
    """Reproduce one gate's iteration-time grid."""
    if frameworks is None:
        frameworks = SWITCH_FRAMEWORKS if gate == "switch" else BPR_FRAMEWORKS
    figure = "fig11" if gate == "switch" else "fig12"

    rows = []
    speedups = []
    for model in models:
        for cluster in clusters:
            for gpus in gpu_counts:
                group: dict[str, Measurement] = {}
                for fw in frameworks:
                    m = run_setting(
                        Setting(
                            model=model,
                            cluster_kind=cluster,
                            num_gpus=gpus,
                            framework=fw,
                            gate=gate,
                        )
                    )
                    group[fw] = m
                best_baseline = min(
                    v.iteration_ms for k, v in group.items() if k != "lancet"
                )
                speedup = best_baseline / group["lancet"].iteration_ms
                speedups.append(speedup)
                for fw in frameworks:
                    m = group[fw]
                    rows.append(
                        {
                            "model": model,
                            "cluster": cluster,
                            "gpus": gpus,
                            "framework": fw,
                            "iteration_ms": m.iteration_ms,
                            "exposed_a2a_ms": m.exposed_a2a_ms,
                            "speedup_vs_best_baseline": (
                                speedup if fw == "lancet" else None
                            ),
                            "info": {
                                k: v
                                for k, v in m.info.items()
                                if k in ("degree",)
                            },
                        }
                    )

    table = format_table(
        ["Model", "Cluster", "GPUs", "Framework", "Iter (ms)", "Lancet speedup"],
        [
            [
                r["model"],
                r["cluster"],
                r["gpus"],
                r["framework"],
                r["iteration_ms"],
                r["speedup_vs_best_baseline"] or "",
            ]
            for r in rows
        ],
        title=f"Fig. {'11' if gate == 'switch' else '12'} - iteration time "
        f"({gate} gate)",
    )
    notes = {
        "max_speedup": max(speedups),
        "avg_speedup": sum(speedups) / len(speedups),
        "paper_switch": "A100: up to 1.21x (avg 1.17x); V100: up to 1.3x (avg 1.22x)",
        "paper_bpr": "A100: up to 1.24x (avg 1.17x); V100: up to 1.24x (avg 1.21x)",
    }
    return FigureResult(
        figure, f"iteration time, {gate} gate", rows, table, notes
    )
