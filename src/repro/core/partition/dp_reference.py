"""Reference (naive) partition DP -- retained for equivalence testing.

This is the original, straightforward implementation of the paper's
Sec. 5.1 recurrence ``T(n) = min_{i<n} ( T(i) + min_k P(i, n, k) )``:
every candidate range rebuilds its axis inference, rescans the whole
program for outside consumers, and re-evaluates every pipeline cost from
scratch.  The production planner (:mod:`.dp`) computes the *same*
function incrementally with persistent caches and vectorized
relaxations; ``tests/test_fast_replan.py`` asserts the two agree bit for
bit on randomized programs and routing signatures.

Keep this module dumb and obvious: its value is that its correctness can
be checked by reading it next to the paper.
"""

from __future__ import annotations

import numpy as np

from ...ir import Program
from ..cost_model import CostEstimator
from .axis_inference import InferenceResult, infer_axes
from .dp import (
    DPResult,
    LancetHyperParams,
    RangePlan,
    _auto_group_ms,
    build_groups,
    forward_length,
    max_range_for,
)
from .pipeline import max_feasible_parts, pipeline_cost_ms


def plan_partitions_reference(
    program: Program,
    costs: CostEstimator,
    params: LancetHyperParams = LancetHyperParams(),
) -> DPResult:
    """Run the naive DP over the forward pass; same contract as
    :func:`~repro.core.partition.dp.plan_partitions`."""
    fwd_end = forward_length(program)
    group_ms = params.group_ms or _auto_group_ms(program, fwd_end, costs)
    groups = build_groups(program, fwd_end, costs, group_ms)
    ng = len(groups)
    result = DPResult(num_groups=ng, skew_aware=bool(costs.signatures))
    if ng == 0:
        return result

    max_range = max_range_for(groups, params)

    seq_prefix = np.concatenate([[0.0], np.cumsum([g.time_ms for g in groups])])
    has_a2a_prefix = np.concatenate(
        [[0], np.cumsum([1 if g.has_a2a else 0 for g in groups])]
    )

    consumers_after_cache: dict[tuple[int, int], set[int]] = {}

    def consumers_after(i_pos: int, n_pos: int) -> set[int]:
        key = (i_pos, n_pos)
        hit = consumers_after_cache.get(key)
        if hit is not None:
            return hit
        outside: set[int] = set(program.outputs) | set(program.grads.values())
        for pos, ins in enumerate(program.instructions):
            if pos < i_pos or pos >= n_pos:
                outside.update(ins.inputs)
        consumers_after_cache[key] = outside
        return outside

    # DP tables
    T = np.full(ng + 1, np.inf)
    T[0] = 0.0
    parent: list[tuple[int, int, RangePlan | None]] = [(0, 0, None)] * (ng + 1)
    axes_cache: dict[tuple[int, int], InferenceResult | None] = {}

    for n in range(1, ng + 1):
        lo = max(0, n - max_range)
        for i in range(lo, n):
            seq = float(seq_prefix[n] - seq_prefix[i])
            # k = 1: no partitioning
            if T[i] + seq < T[n]:
                T[n] = T[i] + seq
                parent[n] = (i, 1, None)
            if has_a2a_prefix[n] - has_a2a_prefix[i] == 0:
                continue  # nothing to overlap: pipelining is pointless
            i_pos, n_pos = groups[i].start, groups[n - 1].end
            key = (i_pos, n_pos)
            axes = axes_cache.get(key, "miss")
            if axes == "miss":
                instrs = program.instructions[i_pos:n_pos]
                axes = infer_axes(instrs, program)
                axes_cache[key] = axes
            if axes is None:
                continue
            instrs = program.instructions[i_pos:n_pos]
            outside = consumers_after(i_pos, n_pos)
            k_limit = max_feasible_parts(instrs, program, axes)
            for k in params.k_candidates:
                if k > k_limit:
                    continue

                result.num_cost_evals += 1
                result.num_pipeline_sims += 1
                cost = pipeline_cost_ms(
                    program, instrs, axes, k, costs, outside
                )
                if T[i] + cost.total_ms < T[n]:
                    plan = RangePlan(
                        start=i_pos,
                        end=n_pos,
                        parts=k,
                        axes=axes,
                        predicted_ms=cost.total_ms,
                        sequential_ms=seq,
                    )
                    T[n] = T[i] + cost.total_ms
                    parent[n] = (i, k, plan)

    # reconstruct the chosen ranges
    plans: list[RangePlan] = []
    n = ng
    while n > 0:
        i, _k, plan = parent[n]
        if plan is not None:
            plans.append(plan)
        n = i
    plans.reverse()

    result.plans = plans
    result.baseline_fwd_ms = float(seq_prefix[ng])
    result.optimized_fwd_ms = float(T[ng])
    return result
