"""Dynamic-programming partition-range selection (paper Sec. 5.1).

``T(n) = min_{i<n} ( T(i) + min_k P(i, n, k) )`` over the forward
instruction sequence, where ``P(i, n, k)`` is the pipelined cost of
instructions i..n split into k parts (from the pipeline scheduler) and
``T`` accumulates the optimal prefix time.

Exactly as the paper prescribes for tractability:

* consecutive instructions are grouped by execution time (group size
  gamma) and the DP runs over groups;
* the candidate range length is capped (iota);
* the number of partitions k is capped (rho) -- and only ranges that
  contain an all-to-all are worth pipelining, so everything else falls
  back to the k=1 sequential cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...ir import InstrKind, Program
from ..cost_model import CostEstimator
from .axis_inference import InferenceResult, infer_axes
from .pipeline import max_feasible_parts, pipeline_cost_ms


@dataclass(frozen=True)
class LancetHyperParams:
    """The three optimization-speed knobs of paper Sec. 6.

    Attributes
    ----------
    max_partitions:
        rho -- the largest number of partitions k considered.
    group_ms:
        gamma -- target execution time per instruction group.  None picks
        it so that ~5 groups separate consecutive MoE layers (the paper's
        experimental setting).
    max_range_groups:
        iota -- the longest candidate range, in groups.  None derives it
        from the spacing between MoE layers (one pipeline per MoE layer).
    """

    max_partitions: int = 8
    group_ms: float | None = None
    max_range_groups: int | None = None

    @property
    def k_candidates(self) -> list[int]:
        """Partition counts to evaluate (powers of two up to rho)."""
        ks = []
        k = 2
        while k <= self.max_partitions:
            ks.append(k)
            k *= 2
        return ks


#: ops that anchor the MoE pipeline structure; each gets its own group so
#: candidate ranges can start/stop exactly at these boundaries
STRUCTURAL_OPS = frozenset(
    {"routing", "moe_dispatch", "all_to_all", "expert_ffn", "moe_combine"}
)


@dataclass
class Group:
    """A run of consecutive forward instructions treated atomically."""

    start: int  # instruction position (inclusive)
    end: int  # instruction position (exclusive)
    time_ms: float
    has_a2a: bool


@dataclass
class RangePlan:
    """One chosen partition range."""

    start: int  # instruction position (inclusive)
    end: int  # instruction position (exclusive)
    parts: int
    axes: InferenceResult
    predicted_ms: float
    sequential_ms: float


@dataclass
class DPResult:
    """Outcome of partition planning."""

    plans: list[RangePlan] = field(default_factory=list)
    baseline_fwd_ms: float = 0.0
    optimized_fwd_ms: float = 0.0
    num_groups: int = 0
    num_cost_evals: int = 0
    #: True when the DP priced all-to-alls against observed routing
    #: signatures rather than the uniform static-shape approximation
    skew_aware: bool = False


def forward_length(program: Program) -> int:
    """Length of the forward-pass prefix of the program."""
    for pos, ins in enumerate(program.instructions):
        if ins.kind in (InstrKind.DX, InstrKind.DW, InstrKind.OPTIMIZER):
            return pos
    return len(program.instructions)


def build_groups(
    program: Program,
    fwd_end: int,
    costs: CostEstimator,
    group_ms: float,
) -> list[Group]:
    """Group consecutive forward instructions by execution time.

    MoE-structural ops are isolated in their own groups so that ranges
    can align with the dispatch/all-to-all/expert/combine boundaries.
    """
    groups: list[Group] = []
    cur_start = None
    cur_time = 0.0

    def close(endpos: int) -> None:
        nonlocal cur_start, cur_time
        if cur_start is not None:
            groups.append(Group(cur_start, endpos, cur_time, False))
            cur_start = None
            cur_time = 0.0

    for pos in range(fwd_end):
        ins = program.instructions[pos]
        t = costs.duration_ms(ins, program)
        if ins.op in STRUCTURAL_OPS:
            close(pos)
            groups.append(
                Group(pos, pos + 1, t, has_a2a=(ins.op == "all_to_all"))
            )
            continue
        if cur_start is None:
            cur_start = pos
        cur_time += t
        if cur_time >= group_ms:
            close(pos + 1)
    close(fwd_end)
    return groups


def _auto_group_ms(
    program: Program, fwd_end: int, costs: CostEstimator
) -> float:
    """Pick gamma so ~5 groups separate consecutive MoE layers (Sec. 7)."""
    a2a_pos = [
        p
        for p in range(fwd_end)
        if program.instructions[p].op == "all_to_all"
    ]
    if not a2a_pos:
        total = sum(
            costs.duration_ms(program.instructions[p], program)
            for p in range(fwd_end)
        )
        return max(total / 10.0, 0.05)
    # time of non-MoE instructions between consecutive MoE layers
    first = a2a_pos[0]
    span = sum(
        costs.duration_ms(program.instructions[p], program)
        for p in range(first)
        if program.instructions[p].op not in STRUCTURAL_OPS
    )
    return max(span / 5.0, 0.02)


def plan_partitions(
    program: Program,
    costs: CostEstimator,
    params: LancetHyperParams = LancetHyperParams(),
) -> DPResult:
    """Run the DP over the forward pass and return the chosen ranges."""
    fwd_end = forward_length(program)
    group_ms = params.group_ms or _auto_group_ms(program, fwd_end, costs)
    groups = build_groups(program, fwd_end, costs, group_ms)
    ng = len(groups)
    result = DPResult(num_groups=ng, skew_aware=bool(costs.signatures))
    if ng == 0:
        return result

    if params.max_range_groups is not None:
        max_range = params.max_range_groups
    else:
        # one pipeline per MoE layer: cap ranges at the group distance
        # between consecutive forward all-to-alls
        a2a_groups = [gi for gi, g in enumerate(groups) if g.has_a2a]
        if len(a2a_groups) >= 3:
            max_range = a2a_groups[2] - a2a_groups[0] + 2
        else:
            max_range = ng
    max_range = max(3, min(max_range, ng))

    seq_prefix = np.concatenate([[0.0], np.cumsum([g.time_ms for g in groups])])
    has_a2a_prefix = np.concatenate(
        [[0], np.cumsum([1 if g.has_a2a else 0 for g in groups])]
    )

    consumers_after_cache: dict[tuple[int, int], set[int]] = {}

    def consumers_after(i_pos: int, n_pos: int) -> set[int]:
        key = (i_pos, n_pos)
        hit = consumers_after_cache.get(key)
        if hit is not None:
            return hit
        outside: set[int] = set(program.outputs) | set(program.grads.values())
        for pos, ins in enumerate(program.instructions):
            if pos < i_pos or pos >= n_pos:
                outside.update(ins.inputs)
        consumers_after_cache[key] = outside
        return outside

    # DP tables
    T = np.full(ng + 1, np.inf)
    T[0] = 0.0
    parent: list[tuple[int, int, RangePlan | None]] = [(0, 0, None)] * (ng + 1)
    axes_cache: dict[tuple[int, int], InferenceResult | None] = {}

    for n in range(1, ng + 1):
        lo = max(0, n - max_range)
        for i in range(lo, n):
            seq = float(seq_prefix[n] - seq_prefix[i])
            # k = 1: no partitioning
            if T[i] + seq < T[n]:
                T[n] = T[i] + seq
                parent[n] = (i, 1, None)
            if has_a2a_prefix[n] - has_a2a_prefix[i] == 0:
                continue  # nothing to overlap: pipelining is pointless
            i_pos, n_pos = groups[i].start, groups[n - 1].end
            key = (i_pos, n_pos)
            axes = axes_cache.get(key, "miss")
            if axes == "miss":
                instrs = program.instructions[i_pos:n_pos]
                axes = infer_axes(instrs, program)
                axes_cache[key] = axes
            if axes is None:
                continue
            instrs = program.instructions[i_pos:n_pos]
            outside = consumers_after(i_pos, n_pos)
            k_limit = max_feasible_parts(instrs, program, axes)
            for k in params.k_candidates:
                if k > k_limit:
                    continue
                result.num_cost_evals += 1
                cost = pipeline_cost_ms(
                    program, instrs, axes, k, costs, outside
                )
                if T[i] + cost.total_ms < T[n]:
                    plan = RangePlan(
                        start=i_pos,
                        end=n_pos,
                        parts=k,
                        axes=axes,
                        predicted_ms=cost.total_ms,
                        sequential_ms=seq,
                    )
                    T[n] = T[i] + cost.total_ms
                    parent[n] = (i, k, plan)

    # reconstruct the chosen ranges
    plans: list[RangePlan] = []
    n = ng
    while n > 0:
        i, _k, plan = parent[n]
        if plan is not None:
            plans.append(plan)
        n = i
    plans.reverse()

    result.plans = plans
    result.baseline_fwd_ms = float(seq_prefix[ng])
    result.optimized_fwd_ms = float(T[ng])
    return result
