"""Disk-backed plan cache shared across processes.

A :class:`PlanStore` maps *what was planned* -- the canonical key
``(graph fingerprint, cluster spec, framework, policy, signature
bucket)`` -- to a saved :class:`~repro.api.plan.Plan`, so that a second
process (or a fleet of trainers) gets a warm plan for the price of a
JSON read instead of a planner run.  Keys contain nothing process-local
(see :mod:`repro.api.fingerprint`); signatures enter the key in their
quantized bucket form, exactly like the in-memory plan cache of
:class:`~repro.train.ReoptimizingTrainer`, so realizations that would
yield the same plan share an entry.

Layout: one ``<digest>.plan.json`` per entry under the store root, plus
``scenario_index.json`` mapping scenario identities to entry digests --
the memo that lets ``compile(scenario, store=...)`` answer a warm lookup
without even building the graph.  Writes are atomic (write-to-temp +
rename), so concurrent writers at worst duplicate work, never corrupt
an entry.  Reads of entries this process already loaded are served from
an in-memory cache, invalidated by file mtime/size.
"""

from __future__ import annotations

import json
import pathlib

from ..runtime.cluster import ClusterSpec
from ..runtime.device import FrameworkProfile
from .codec import cluster_to_json, framework_to_json
from .fingerprint import canonical_digest
from .plan import (
    Plan,
    PlanError,
    PlanPolicy,
    PlanSchemaError,
    atomic_write_text,
)
from .scenario import Scenario

#: quantization (decimal digits) of signature loads in store keys --
#: matches the ReoptimizingTrainer plan-cache default
DEFAULT_KEY_DIGITS = 2


def signature_bucket(signatures: dict | None, digits: int = DEFAULT_KEY_DIGITS):
    """Quantized, canonical form of a signature mapping for cache keys
    (``None`` -- the uniform approximation -- buckets as ``None``)."""
    if not signatures:
        return None
    return [
        [str(layer), list(sig.key(digits))]
        for layer, sig in sorted(signatures.items(), key=lambda kv: str(kv[0]))
    ]


class PlanStore:
    """Disk-backed, cross-process plan cache (see module docstring).

    Parameters
    ----------
    root:
        Directory holding the entries (created if missing).
    digits:
        Signature-bucket quantization used in keys.
    """

    def __init__(self, root, digits: int = DEFAULT_KEY_DIGITS) -> None:
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.digits = digits
        self._memory: dict[str, tuple[tuple, Plan]] = {}
        self.stats = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "memory_hits": 0,
            "scenario_hits": 0,
        }

    # -- keys ----------------------------------------------------------------

    def key_for(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        signatures: dict | None = None,
    ) -> str:
        """Digest of the canonical cache key."""
        payload = {
            "fingerprint": fingerprint,
            "cluster": cluster_to_json(cluster),
            "framework": framework_to_json(framework),
            "policy": policy.to_dict(),
            "signatures": signature_bucket(signatures, self.digits),
        }
        return canonical_digest(payload)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key[:32]}.plan.json"

    # -- lookups -------------------------------------------------------------

    def get(
        self,
        fingerprint: str,
        cluster: ClusterSpec,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        signatures: dict | None = None,
    ) -> Plan | None:
        """Warm plan for a key, or ``None`` on a miss.

        Loaded plans are lazy (the program decodes on first access);
        corrupted entries raise :class:`~repro.api.plan.PlanError`
        rather than deserializing garbage.
        """
        key = self.key_for(fingerprint, cluster, policy, framework, signatures)
        plan = self._load(key)
        self.stats["hits" if plan is not None else "misses"] += 1
        return plan

    def _load(self, key: str) -> Plan | None:
        path = self.path_for(key)
        try:
            st = path.stat()
        except OSError:
            return None
        stamp = (st.st_mtime_ns, st.st_size)
        cached = self._memory.get(key)
        if cached is not None and cached[0] == stamp:
            self.stats["memory_hits"] += 1
            return cached[1]
        try:
            plan = Plan.load(path, materialize=False)
        except PlanSchemaError as err:
            # preserve the type: schema mismatches mean "re-compile",
            # not "corrupt", and callers dispatch on it
            raise PlanSchemaError(f"plan store entry {path}: {err}") from err
        except PlanError as err:
            raise PlanError(f"corrupt plan store entry {path}: {err}") from err
        plan.from_store = True
        self._memory[key] = (stamp, plan)
        return plan

    def put(self, plan: Plan, index_scenario: bool = True) -> pathlib.Path:
        """Persist a plan under its canonical key; returns the entry path.

        Only disk loads are memoized -- a later ``get`` of this entry
        returns a *store* plan (``from_store=True``), not the caller's
        freshly compiled object.  ``index_scenario=False`` suppresses
        the scenario-index entry (used when the plan was compiled with
        overrides -- cluster, explicit signatures -- that a plain
        scenario compile would not reproduce).
        """
        key = self.key_for(
            plan.fingerprint,
            plan.cluster,
            plan.policy,
            plan.framework,
            plan.signatures,
        )
        path = plan.save(self.path_for(key))
        self._memory.pop(key, None)
        self.stats["puts"] += 1
        if index_scenario and plan.scenario is not None:
            self._index_scenario(plan.scenario, plan.policy, plan.framework, key)
        return path

    # -- scenario index ------------------------------------------------------
    #
    # The canonical key needs the graph fingerprint and observed
    # signatures, both of which cost a graph build to recompute.  For
    # declarative scenarios that mapping is deterministic, so the store
    # memoizes scenario identity -> entry digest on every put; a warm
    # ``compile(scenario, store=...)`` then costs one JSON read total.

    @property
    def _index_path(self) -> pathlib.Path:
        return self.root / "scenario_index.json"

    def _scenario_key(
        self, scenario: Scenario, policy: PlanPolicy, framework: FrameworkProfile
    ) -> str:
        return canonical_digest(
            {
                "scenario": scenario.to_dict(),
                "policy": policy.to_dict(),
                "framework": framework_to_json(framework),
            }
        )

    def _read_index(self) -> dict:
        try:
            return json.loads(self._index_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def _index_scenario(
        self,
        scenario: Scenario,
        policy: PlanPolicy,
        framework: FrameworkProfile,
        key: str,
    ) -> None:
        index = self._read_index()
        index[self._scenario_key(scenario, policy, framework)] = key
        atomic_write_text(
            self._index_path, json.dumps(index, indent=1, sort_keys=True)
        )

    def lookup_scenario(
        self,
        scenario: Scenario,
        policy: PlanPolicy,
        framework: FrameworkProfile,
    ) -> Plan | None:
        """Warm plan for a scenario identity, or ``None``."""
        key = self._read_index().get(
            self._scenario_key(scenario, policy, framework)
        )
        plan = self._load(key) if key else None
        if plan is not None:
            self.stats["scenario_hits"] += 1
            self.stats["hits"] += 1
        else:
            self.stats["misses"] += 1
        return plan

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> list[pathlib.Path]:
        """Paths of every stored plan."""
        return sorted(self.root.glob("*.plan.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def clear(self) -> None:
        """Delete every entry (and the scenario index)."""
        for path in self.entries():
            path.unlink()
        try:
            self._index_path.unlink()
        except OSError:
            pass
        self._memory.clear()

    def __repr__(self) -> str:
        return f"PlanStore({str(self.root)!r}, {len(self)} plans)"
