"""Unit tests for the routing algorithms."""

import numpy as np
import pytest

from repro.moe import (
    route_bpr,
    route_expert_choice,
    route_hash,
    route_random,
    route_switch,
    route_tokens,
    topk_choices,
)
from repro.moe.layer import softmax


def make_probs(t=32, e=4, seed=0):
    rng = np.random.default_rng(seed)
    return softmax(rng.standard_normal((t, e)))


def assert_valid(info):
    """Structural invariants every routing result must satisfy."""
    assert info.token_idx.shape == info.expert_idx.shape == info.slot_idx.shape
    assert (info.slot_idx >= 0).all() and (info.slot_idx < info.capacity).all()
    assert (info.expert_idx >= 0).all() and (info.expert_idx < info.num_experts).all()
    assert (info.token_idx >= 0).all() and (info.token_idx < info.num_tokens).all()
    # a capacity slot may hold at most one token
    pairs = set(zip(info.expert_idx.tolist(), info.slot_idx.tolist()))
    assert len(pairs) == len(info.expert_idx)
    # capacity respected
    assert (info.expert_counts() <= info.capacity).all()


class TestTopKChoices:
    def test_orders_by_probability(self):
        probs = np.array([[0.1, 0.6, 0.3]])
        assert topk_choices(probs, 2).tolist() == [[1, 2]]

    def test_tie_break_deterministic(self):
        probs = np.array([[0.4, 0.4, 0.2]])
        assert topk_choices(probs, 1).tolist() == [[0]]

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            topk_choices(make_probs(4, 3), 4)


class TestSwitchRouting:
    def test_structure(self):
        info, counts = route_switch(make_probs(), capacity=10)
        assert_valid(info)
        assert (counts == info.expert_counts()).all()

    def test_everyone_routed_with_ample_capacity(self):
        info, _ = route_switch(make_probs(32, 4), capacity=32)
        assert len(info.token_idx) == 32
        assert len(info.dropped_tokens()) == 0

    def test_argmax_assignment(self):
        probs = make_probs(16, 4)
        info, _ = route_switch(probs, capacity=16)
        assert (info.expert_idx == probs.argmax(axis=1)[info.token_idx]).all()

    def test_fcfs_dropping(self):
        """With capacity 1, only the first token per expert survives."""
        probs = np.array([[0.9, 0.1], [0.8, 0.2], [0.2, 0.8]])
        info, _ = route_switch(probs, capacity=1)
        kept = set(info.token_idx.tolist())
        assert kept == {0, 2}  # token 1 dropped (expert 0 full)
        assert info.dropped_tokens().tolist() == [1]

    def test_prefix_stability(self):
        """Routing a prefix with carried counts == routing the full batch."""
        probs = make_probs(40, 4, seed=3)
        full, _ = route_switch(probs, capacity=8)
        a, counts = route_switch(probs[:25], capacity=8)
        b, _ = route_switch(probs[25:], capacity=8, capacity_counts=counts)
        merged = np.concatenate(
            [
                np.stack([a.token_idx, a.expert_idx, a.slot_idx], 1),
                np.stack([b.token_idx + 25, b.expert_idx, b.slot_idx], 1),
            ]
        )
        merged = merged[np.lexsort((merged[:, 2], merged[:, 1], merged[:, 0]))]
        assert np.array_equal(merged, full.sorted_tuples())


class TestTopKRouting:
    def test_k2_doubles_assignments(self):
        probs = make_probs(16, 4)
        info, _ = route_switch(probs, capacity=16, k=2)
        assert len(info.token_idx) == 32
        assert_valid(info)

    def test_token_major_priority(self):
        """Tokens claim capacity for all k choices in token order (the
        batch-prefix-stable order the capacity-passing gate requires)."""
        probs = np.array(
            [[0.5, 0.3, 0.2], [0.45, 0.35, 0.2], [0.1, 0.6, 0.3]]
        )
        info, _ = route_switch(probs, capacity=1, k=2)
        pairs = set(zip(info.token_idx.tolist(), info.expert_idx.tolist()))
        # t0 claims e0 and e1; t1 finds both full; t2 gets only e2
        assert (0, 0) in pairs and (0, 1) in pairs
        assert (1, 0) not in pairs and (1, 1) not in pairs
        assert (2, 2) in pairs and (2, 1) not in pairs

    def test_topk_prefix_stability(self):
        probs = make_probs(40, 4, seed=11)
        full, _ = route_switch(probs, capacity=6, k=2)
        a, counts = route_switch(probs[:17], capacity=6, k=2)
        b, _ = route_switch(probs[17:], capacity=6, k=2, capacity_counts=counts)
        merged = np.concatenate(
            [a.sorted_tuples(), b.sorted_tuples() + np.array([17, 0, 0])]
        )
        merged = merged[np.lexsort((merged[:, 2], merged[:, 1], merged[:, 0]))]
        assert np.array_equal(merged, full.sorted_tuples())


class TestBPR:
    def test_high_importance_wins(self):
        """BPR keeps the most confident tokens when capacity is scarce."""
        probs = np.array([[0.55, 0.45], [0.95, 0.05], [0.6, 0.4]])
        info, _ = route_bpr(probs, capacity=1)
        kept_for_e0 = info.token_idx[info.expert_idx == 0]
        assert kept_for_e0.tolist() == [1]  # most important, not first

    def test_not_prefix_stable(self):
        with pytest.raises(ValueError):
            route_tokens(make_probs(), "bpr", 4, capacity_counts=np.zeros(4))

    def test_differs_from_fcfs(self):
        probs = make_probs(64, 4, seed=7)
        fcfs, _ = route_switch(probs, capacity=4)
        bpr, _ = route_bpr(probs, capacity=4)
        assert fcfs != bpr


class TestRandomRouting:
    def test_counter_based_determinism(self):
        probs = make_probs(32, 8)
        a, _ = route_random(probs, capacity=16, seed=5)
        b, _ = route_random(probs, capacity=16, seed=5)
        assert a == b
        c, _ = route_random(probs, capacity=16, seed=6)
        assert a != c

    def test_token_offset_gives_prefix_stability(self):
        probs = make_probs(30, 4, seed=2)
        full, _ = route_random(probs, capacity=30, seed=9)
        a, counts = route_random(probs[:12], capacity=30, seed=9, token_offset=0)
        b, _ = route_random(
            probs[12:], capacity=30, seed=9, token_offset=12,
            capacity_counts=counts,
        )
        merged = np.concatenate(
            [a.sorted_tuples(), b.sorted_tuples() + np.array([12, 0, 0])]
        )
        merged = merged[np.lexsort((merged[:, 2], merged[:, 1], merged[:, 0]))]
        assert np.array_equal(merged, full.sorted_tuples())

    def test_without_replacement(self):
        probs = make_probs(64, 4)
        info, _ = route_random(probs, capacity=64, k=3)
        for t in range(64):
            experts = info.expert_idx[info.token_idx == t]
            assert len(set(experts.tolist())) == len(experts)


class TestHashRouting:
    def test_same_token_same_expert(self):
        ids = np.array([5, 9, 5, 9, 5])
        info, _ = route_hash(ids, num_experts=8, capacity=8)
        e_of = {}
        for t, e in zip(info.token_idx, info.expert_idx):
            e_of.setdefault(ids[t], set()).add(e)
        assert all(len(s) == 1 for s in e_of.values())

    def test_requires_ids(self):
        with pytest.raises(ValueError):
            route_tokens(make_probs(), "hash", 4)


class TestExpertChoice:
    def test_experts_fill_to_capacity(self):
        probs = make_probs(64, 4)
        info, _ = route_expert_choice(probs, capacity=8)
        assert (info.expert_counts() == 8).all()

    def test_picks_top_scoring_tokens(self):
        probs = make_probs(16, 2, seed=1)
        info, _ = route_expert_choice(probs, capacity=4)
        for e in range(2):
            mine = set(info.token_idx[info.expert_idx == e].tolist())
            top = set(np.argsort(-probs[:, e], kind="stable")[:4].tolist())
            assert mine == top

    def test_not_prefix_stable(self):
        with pytest.raises(ValueError):
            route_tokens(
                make_probs(), "expert_choice", 4, capacity_counts=np.zeros(4)
            )


class TestDispatcher:
    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            route_tokens(make_probs(), "nope", 4)

    @pytest.mark.parametrize("gate", ["switch", "topk", "random", "bpr"])
    def test_all_gates_valid(self, gate):
        info, _ = route_tokens(make_probs(), gate, 8, k=2)
        assert_valid(info)
