"""Seeded chaos wrappers for end-to-end fault drills.

These are the injection seams the chaos harness
(``benchmarks/bench_fault_recovery.py``, ``pytest -m chaos``) threads
through the serving stack: a :class:`FlakyStore` that raises transient
``OSError`` on a seeded schedule (exercising the server's bounded
retry) and a :class:`FlakyPlanner` that fails or stalls on a seeded
schedule (exercising the planner timeout, circuit breaker, and the
tiered fallback chain).  Both are deterministic in their seed, so chaos
runs are reproducible and CI-gateable.
"""

from __future__ import annotations

import time

import numpy as np


class FlakyStore:
    """Wrap a :class:`~repro.api.store.PlanStore` with seeded I/O faults.

    ``error_rate`` of ``get``/``put``/``nearest`` calls raise a
    transient ``OSError`` -- but never more than ``max_consecutive`` in
    a row, so a caller with bounded retries always eventually succeeds.
    Everything else delegates to the wrapped store.
    """

    def __init__(
        self,
        store,
        *,
        seed: int,
        error_rate: float = 0.2,
        max_consecutive: int = 2,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
        self._store = store
        self._rng = np.random.default_rng(seed)
        self.error_rate = error_rate
        self.max_consecutive = max_consecutive
        self._consecutive = 0
        self.injected_errors = 0

    def _maybe_fail(self, op: str) -> None:
        if (
            self._consecutive < self.max_consecutive
            and self._rng.random() < self.error_rate
        ):
            self._consecutive += 1
            self.injected_errors += 1
            raise OSError(f"injected transient {op} failure")
        self._consecutive = 0

    def get(self, *args, **kwargs):
        self._maybe_fail("get")
        return self._store.get(*args, **kwargs)

    def put(self, *args, **kwargs):
        self._maybe_fail("put")
        return self._store.put(*args, **kwargs)

    def nearest(self, *args, **kwargs):
        self._maybe_fail("nearest")
        return self._store.nearest(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._store, name)


class FlakyPlanner:
    """Wrap a planner callable with seeded failures and stalls.

    Compatible with the ``plan_resolved`` signature the
    :class:`~repro.serving.PlanServer` planner seam expects.  Failures
    come from two sources: a seeded per-call ``fail_rate``, and an
    *outage window* ``[outage[0], outage[1])`` over the call counter
    during which every call fails (driving the circuit breaker open).
    ``delay_s`` stalls each successful call, exercising planner
    timeouts.
    """

    def __init__(
        self,
        planner,
        *,
        seed: int = 0,
        fail_rate: float = 0.0,
        outage: tuple[int, int] | None = None,
        delay_s: float = 0.0,
    ) -> None:
        self._planner = planner
        self._rng = np.random.default_rng(seed)
        self.fail_rate = fail_rate
        self.outage = outage
        self.delay_s = delay_s
        self.calls = 0
        self.failures = 0

    def __call__(self, resolved, check: bool = True):
        call = self.calls
        self.calls += 1
        in_outage = (
            self.outage is not None
            and self.outage[0] <= call < self.outage[1]
        )
        if in_outage or (
            self.fail_rate > 0 and self._rng.random() < self.fail_rate
        ):
            self.failures += 1
            raise RuntimeError(
                f"injected planner failure (call {call}"
                f"{', outage' if in_outage else ''})"
            )
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        return self._planner(resolved, check=check)
