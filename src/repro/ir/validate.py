"""IR well-formedness checks.

Run after every pass in debug mode; Lancet's transformations must keep the
program a valid, topologically ordered SSA sequence.
"""

from __future__ import annotations

from .graph import verify_schedulable
from .ops import get_op
from .program import Program


class ValidationError(Exception):
    """Raised when a program violates an IR invariant."""


def validate(program: Program) -> None:
    """Check SSA, ordering, and shape-inference consistency.

    Raises
    ------
    ValidationError
        With a description of the first violation found.
    """
    seen_defs: set[int] = set(program.inputs) | set(program.params) | set(
        program.states
    )
    for root in list(seen_defs):
        if root not in program.values:
            raise ValidationError(f"root value %{root} missing from value table")

    for pos, instr in enumerate(program.instructions):
        try:
            spec = get_op(instr.op)
        except KeyError as e:
            raise ValidationError(str(e)) from None

        for vin in instr.inputs:
            if vin not in program.values:
                raise ValidationError(
                    f"instr {pos} ({instr.op}) reads unknown value %{vin}"
                )
            if vin not in seen_defs:
                raise ValidationError(
                    f"instr {pos} ({instr.op}) reads %{vin} before definition"
                )
        for vout in instr.outputs:
            if vout in seen_defs:
                raise ValidationError(
                    f"instr {pos} ({instr.op}) redefines %{vout} (SSA violation)"
                )
            seen_defs.add(vout)

        in_types = [program.type_of(v) for v in instr.inputs]
        try:
            expected = spec.infer(in_types, instr.attrs)
        except Exception as e:  # shape function rejected the inputs
            raise ValidationError(
                f"instr {pos} ({instr.op}) shape inference failed: {e}"
            ) from e
        actual = [program.type_of(v) for v in instr.outputs]
        if len(expected) != len(actual):
            raise ValidationError(
                f"instr {pos} ({instr.op}): {len(actual)} outputs, "
                f"inference gives {len(expected)}"
            )
        for i, (exp, act) in enumerate(zip(expected, actual)):
            if exp.shape != act.shape or exp.dtype != act.dtype:
                raise ValidationError(
                    f"instr {pos} ({instr.op}) output {i}: recorded type "
                    f"{act!r} != inferred {exp!r}"
                )

    for vid in program.outputs:
        if vid not in seen_defs:
            raise ValidationError(f"program output %{vid} is never defined")

    # double-check with the scheduling verifier (catches subtle order bugs)
    verify_schedulable(program, program.instructions)
