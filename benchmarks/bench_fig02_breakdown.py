"""Fig. 2: execution-time breakdown and overlap upper bounds.

Regenerates the motivation figure: all-to-all dwarfs expert computation,
so hiding only experts (Curr.) is a weak ceiling while hiding all-to-all
(Opt.) is a strong one.
"""

from conftest import run_figure
from repro.bench.figures import fig02


def test_fig02_breakdown(benchmark):
    result = run_figure(benchmark, fig02.run)
    # paper shape: all-to-all exceeds expert computation significantly
    assert result.notes["max_a2a_over_expert"] > 2.0
    for row in result.rows:
        # Curr. (hide experts) is a much weaker bound than Opt. (hide a2a)
        assert row["opt_speedup"] > row["curr_speedup"]
        assert 1.0 < row["curr_speedup"] < 1.3
