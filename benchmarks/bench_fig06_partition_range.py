"""Fig. 6: effect of partition range on forward time (both configs).

The curve must be U-shaped (partitioning helps, over-partitioning hurts)
and the DP-selected range must land at or near the sweep minimum.
"""

import pytest

from conftest import run_figure
from repro.bench.figures import fig06


@pytest.mark.parametrize("config", ["8L-s512-b64", "16L-s1024-b12"])
def test_fig06_partition_range(benchmark, config):
    result = run_figure(
        benchmark,
        fig06.run,
        config=config,
        range_points=(0.0, 1.0, 3.0, 6.0, 10.0),
    )
    assert result.notes["u_shape"], "expected U-shaped range/time curve"
    assert result.notes["dp_within_pct_of_best"] < 10.0
    sweep = [r for r in result.rows if isinstance(r["range_ms"], float)]
    orig = next(r for r in result.rows if r["range_ms"] == "Orig.")
    assert min(r["time_ms"] for r in sweep) < orig["time_ms"]
