"""Functional collectives over simulated devices.

The numeric stand-in for NCCL: dense and irregular (two-phase, paper
Fig. 10) all-to-all over per-device expert buffers, and ring all-reduce.
The irregular variant moves only the realized token rows and reports the
per-pair byte matrix (what the network model charges for); with
zero-padded buffers its result is bit-identical to the dense exchange --
asserted by the test suite.

:func:`hierarchical_all_to_all` is the topology-aware (2-hop) variant:
same logical transfers, routed intra-node gather -> inter-node exchange
-> intra-node scatter (see :mod:`repro.runtime.topology`), bit-identical
to :func:`all_to_all_irregular`.
"""

from __future__ import annotations

import numpy as np

from ..moe.dispatch import (
    exchange_expert_buffers,
    exchange_expert_buffers_inverse,
)
from .topology import HierarchicalTraffic, Topology


def all_to_all_dense(bufs: list[np.ndarray], direction: str) -> list[np.ndarray]:
    """Dense all-to-all moving full [E, C, H] buffers.

    ``direction='scatter'`` routes dispatch buffers to expert owners
    (first all-to-all); ``'gather'`` is its inverse (second all-to-all).
    """
    if direction == "scatter":
        return exchange_expert_buffers(bufs)
    if direction == "gather":
        return exchange_expert_buffers_inverse(bufs)
    raise ValueError(f"unknown direction {direction!r}")


def _pair_bytes(counts: np.ndarray, el: int, row_bytes: int, direction: str) -> np.ndarray:
    """Bytes moved between device pairs given per-(src, expert) counts."""
    g = counts.shape[0]
    per_owner = counts.reshape(g, g, el).sum(axis=2).astype(np.float64)
    pair = per_owner * row_bytes
    if direction == "gather":
        pair = pair.T.copy()
    return pair


def all_to_all_irregular(
    bufs: list[np.ndarray],
    counts: np.ndarray,
    direction: str,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Two-phase irregular all-to-all (all-to-allv).

    Phase 1 exchanges the chunk sizes (``counts[src, e]`` = tokens device
    ``src`` routed to expert ``e``); phase 2 moves only those rows.
    Unused capacity slots of the output are zero, so with zero-padded
    inputs the result equals :func:`all_to_all_dense`.

    Returns (received buffers, pair-bytes matrix for the network model).
    """
    g = len(bufs)
    e, c, h = bufs[0].shape
    el = e // g
    counts = np.asarray(counts)
    if counts.shape != (g, e):
        raise ValueError(f"counts must be [{g},{e}], got {counts.shape}")
    if counts.max(initial=0) > c:
        raise ValueError("counts exceed capacity")
    row_bytes = h * bufs[0].dtype.itemsize

    out: list[np.ndarray] = []
    if direction == "scatter":
        # recv[d][le*g + s, :n] = bufs[s][d*el + le, :n],  n = counts[s, d*el+le]
        for d in range(g):
            recv = np.zeros((el * g, c, h), dtype=bufs[0].dtype)
            for s in range(g):
                for le in range(el):
                    n = int(counts[s, d * el + le])
                    recv[le * g + s, :n] = bufs[s][d * el + le, :n]
            out.append(recv)
    elif direction == "gather":
        # inverse: out[d][s*el + le, :n] = bufs[s][le*g + d, :n]
        for d in range(g):
            send = np.zeros((el * g, c, h), dtype=bufs[0].dtype)
            for s in range(g):
                for le in range(el):
                    n = int(counts[d, s * el + le])
                    send[s * el + le, :n] = bufs[s][le * g + d, :n]
            out.append(send)
    else:
        raise ValueError(f"unknown direction {direction!r}")

    return out, _pair_bytes(counts, el, row_bytes, direction)


def _logical_blocks(
    bufs: list[np.ndarray], counts: np.ndarray, direction: str
) -> list[tuple[int, int, int, np.ndarray]]:
    """The (src device, dst device, output slot, rows) transfers of one
    irregular all-to-all -- the algorithm-independent description both
    the flat and the hierarchical exchange realize."""
    g = len(bufs)
    e, c, _h = bufs[0].shape
    el = e // g
    counts = np.asarray(counts)
    if counts.shape != (g, e):
        raise ValueError(f"counts must be [{g},{e}], got {counts.shape}")
    if counts.max(initial=0) > c:
        raise ValueError("counts exceed capacity")
    blocks = []
    for s in range(g):
        for d in range(g):
            for le in range(el):
                if direction == "scatter":
                    # recv[d][le*g + s, :n] = bufs[s][d*el + le, :n]
                    n = int(counts[s, d * el + le])
                    data = bufs[s][d * el + le, :n]
                    slot = le * g + s
                elif direction == "gather":
                    # out[d][s*el + le, :n] = bufs[s][le*g + d, :n]
                    n = int(counts[d, s * el + le])
                    data = bufs[s][le * g + d, :n]
                    slot = s * el + le
                else:
                    raise ValueError(f"unknown direction {direction!r}")
                if n:
                    blocks.append((s, d, slot, data))
    return blocks


def hierarchical_all_to_all(
    bufs: list[np.ndarray],
    counts: np.ndarray,
    direction: str,
    topology: Topology,
) -> tuple[list[np.ndarray], np.ndarray, HierarchicalTraffic]:
    """2-hop (topology-aware) irregular all-to-all.

    Moves exactly the rows :func:`all_to_all_irregular` moves, but in
    three phases over the physical links (see
    :mod:`repro.runtime.topology`):

    1. intra-node gather: same-node blocks are delivered directly; each
       cross-node block rides NVLink to its node's send relay for the
       destination node;
    2. inter-node exchange: relays move the node-aggregated traffic over
       the NICs to the receive relay of the destination node;
    3. intra-node scatter: receive relays fan blocks out to their final
       destination GPUs.

    The received buffers are **bit-identical** to
    :func:`all_to_all_irregular` (asserted by
    ``tests/test_hierarchical_a2a.py``); the realized per-phase traffic
    is returned alongside, and matches
    :meth:`Topology.decompose_pair_bytes` of the logical pair-bytes
    matrix -- which is how the network model prices the collective
    without running it.

    Returns (received buffers, logical pair-bytes matrix, per-phase
    realized traffic).
    """
    g = len(bufs)
    if topology.num_gpus != g:
        raise ValueError(
            f"topology covers {topology.num_gpus} GPUs, got {g} buffers"
        )
    e, c, h = bufs[0].shape
    el = e // g
    row_bytes = h * bufs[0].dtype.itemsize

    intra_gather = np.zeros((g, g))
    inter_node = np.zeros((topology.num_nodes, topology.num_nodes))
    intra_scatter = np.zeros((g, g))

    # phase 1: deliver same-node blocks, stage cross-node blocks on the
    # send relay of (source node, destination node)
    staged: list[list[tuple[int, int, int, np.ndarray]]] = [[] for _ in range(g)]
    delivered: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(g)]
    for s, d, slot, data in _logical_blocks(bufs, counts, direction):
        ns, nd = topology.node_of(s), topology.node_of(d)
        if s == d:
            delivered[d].append((slot, data))  # never leaves the device
            continue
        if ns == nd:
            intra_gather[s, d] += data.shape[0] * row_bytes
            delivered[d].append((slot, data))
            continue
        r1 = topology.send_relay(ns, nd)
        if s != r1:
            intra_gather[s, r1] += data.shape[0] * row_bytes
        staged[r1].append((s, d, slot, data))

    # phase 2: relays exchange node-aggregated traffic over the NICs
    staged2: list[list[tuple[int, int, np.ndarray]]] = [[] for _ in range(g)]
    for r1 in range(g):
        for s, d, slot, data in staged[r1]:
            ns, nd = topology.node_of(s), topology.node_of(d)
            r2 = topology.recv_relay(ns, nd)
            inter_node[ns, nd] += data.shape[0] * row_bytes
            staged2[r2].append((d, slot, data))

    # phase 3: receive relays scatter to the final destinations
    for r2 in range(g):
        for d, slot, data in staged2[r2]:
            if r2 != d:
                intra_scatter[r2, d] += data.shape[0] * row_bytes
            delivered[d].append((slot, data))

    out: list[np.ndarray] = []
    for d in range(g):
        recv = np.zeros((el * g, c, h), dtype=bufs[0].dtype)
        for slot, data in delivered[d]:
            recv[slot, : data.shape[0]] = data
        out.append(recv)

    pair = _pair_bytes(np.asarray(counts), el, row_bytes, direction)
    return out, pair, HierarchicalTraffic(intra_gather, inter_node, intra_scatter)


def device_byte_loads(pair_bytes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-device (send, recv) byte totals of an all-to-all.

    Self-traffic (the diagonal) stays on-device and is excluded.  The
    spread of these loads across devices is what makes skewed routing
    slow: the collective completes with the busiest device.
    """
    pair = np.asarray(pair_bytes, dtype=np.float64)
    g = pair.shape[0]
    if pair.shape != (g, g):
        raise ValueError(f"pair_bytes must be square, got {pair.shape}")
    off = np.where(np.eye(g, dtype=bool), 0.0, pair)
    return off.sum(axis=1), off.sum(axis=0)


def allreduce_sum(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """All-reduce (sum): every device receives the elementwise sum."""
    total = arrays[0].copy()
    for a in arrays[1:]:
        total += a
    return [total.copy() for _ in arrays]


def allreduce_mean(arrays: list[np.ndarray]) -> list[np.ndarray]:
    """All-reduce (mean): data-parallel gradient averaging."""
    out = allreduce_sum(arrays)
    g = len(arrays)
    return [a / g for a in out]
