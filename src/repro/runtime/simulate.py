"""Timed execution of an IR program on the simulated cluster.

This is the "hardware" of the reproduction: a discrete-event simulation
with the standard two-stream GPU model (one compute stream, one NCCL
communication stream).  Instructions issue **in program order** onto
their stream; an instruction starts when its stream is free *and* all its
data dependencies have completed -- exactly the semantics the paper's
pipeline scheduler assumes (Sec. 5.3: "start time = max over (i) end of
dependencies and (ii) end of the previous instruction of the same type").

Two simulation modes share the cost model:

- :func:`simulate_program` -- the SPMD-symmetric fast path: all devices
  run the same program on equal-sized data, so one representative device
  timeline suffices.  Collective durations come from the cluster-wide
  network model (the busiest participant's stream).
- :func:`simulate_cluster` -- ``G`` per-device timelines with
  device-resolved collectives: each device's all-to-all busy time is its
  own send/receive bottleneck under the realized routing, collectives
  start once every participant has arrived and complete at the max over
  participants, and per-device straggler slowdowns stretch compute.
  With uniform routing and no stragglers this degenerates to ``G``
  copies of the representative timeline, bit-for-bit.
- :func:`simulate_cluster_batch` -- ``B`` routing / straggler scenarios
  of one program evaluated in a single vectorized pass
  (:mod:`~repro.runtime.batch`), bit-identical to running
  :func:`simulate_cluster` once per scenario.  The scalar loop is the
  retained reference; the batch path is what the planner sweeps and the
  figure benchmarks lean on.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

import math

from ..ir import Dim, Instruction, Program, Stream, TensorType, get_op
from .cluster import ClusterSpec
from .device import COMPILED, FrameworkProfile
from .routing_model import (
    RoutingSignature,
    SyntheticRoutingModel,
    UniformRoutingModel,
)
from .timeline import ClusterTimeline, Interval, Timeline

#: Ops whose kernel time is scaled by the framework's dispatch multiplier
#: (DeepSpeed's slow dispatch vs Tutel's fast kernels, paper Sec. 7).
DISPATCH_OPS = {
    "moe_dispatch",
    "moe_combine",
    "moe_dispatch_dx",
    "moe_combine_dx",
    "moe_combine_dprobs",
    "routing",
    "routing_partial",
}


def _scale_capacity(
    t: TensorType, parts: int, occupancy: float = 1.0
) -> TensorType:
    """Shrink the capacity (or token) dimension of an irregular chunk,
    optionally also by the realized occupancy (block-sparse kernels)."""
    if t.has_dim(Dim.CAPACITY):
        i = t.dim_index(Dim.CAPACITY)
    elif t.has_dim(Dim.TOKENS):
        i = t.dim_index(Dim.TOKENS)
    else:
        return t
    shape = list(t.shape)
    shape[i] = max(1, math.ceil(shape[i] * occupancy / parts))
    return t.with_shape(tuple(shape))


#: expert computation ops whose padded slots a block-sparse kernel skips
EXPERT_BUF_OPS = frozenset({"expert_ffn", "expert_ffn_dx", "expert_ffn_dw"})


@dataclass
class SimulationConfig:
    """Everything that determines ground-truth op durations."""

    cluster: ClusterSpec
    framework: FrameworkProfile = COMPILED
    #: True = all-to-alls move the full padded buffer (baseline behaviour);
    #: False = irregular all-to-all moving only realized token counts
    #: (Lancet's two-phase protocol, paper Fig. 10).
    padded_a2a: bool = True
    #: MegaBlocks-style block-sparse expert kernels (paper Sec. 8 future
    #: work): expert computation skips padded capacity slots, so its cost
    #: scales with realized tokens instead of E*C.
    block_sparse_experts: bool = False
    routing: SyntheticRoutingModel | UniformRoutingModel = field(
        default_factory=lambda: SyntheticRoutingModel(seed=0)
    )
    #: Per-device compute slowdown multipliers (1.0 = nominal speed), for
    #: heterogeneous-cluster / straggler scenarios.  A sequence of length
    #: ``cluster.num_gpus`` or a mapping ``{device_index: factor}``
    #: (unlisted devices run at 1.0).  Affects compute only -- network
    #: time is modelled by the cluster, not the GPU clock.  ``None``
    #: means all devices are nominal; only :func:`simulate_cluster`
    #: resolves per-device factors (the representative-device
    #: :func:`simulate_program` ignores them).
    straggler_slowdown: Sequence[float] | Mapping[int, float] | None = None

    def device_slowdowns(self) -> np.ndarray:
        """Resolved per-device compute multipliers, shape [num_gpus]."""
        g = self.cluster.num_gpus
        if self.straggler_slowdown is None:
            return np.ones(g)
        if isinstance(self.straggler_slowdown, Mapping):
            out = np.ones(g)
            for d, f in self.straggler_slowdown.items():
                if not 0 <= d < g:
                    raise ValueError(f"straggler device {d} out of range")
                out[d] = float(f)
        else:
            out = np.asarray(self.straggler_slowdown, dtype=np.float64)
            if out.shape != (g,):
                raise ValueError(
                    f"straggler_slowdown must have length {g}, got {out.shape}"
                )
        if (out <= 0).any():
            raise ValueError("straggler slowdown factors must be positive")
        return out


class GroundTruthCost:
    """Ground-truth duration of each instruction under a config."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._compute_cache: dict = {}

    # -- compute ops -------------------------------------------------------------

    def _compute_ms(self, instr: Instruction, program: Program) -> float:
        spec = get_op(instr.op)
        fw = self.config.framework
        gpu = self.config.cluster.gpu
        in_types = [program.type_of(v) for v in instr.inputs]
        out_types = [program.type_of(v) for v in instr.outputs]
        irr_parts = int(instr.attrs.get("irr_parts", 1))
        occupancy = 1.0
        if (
            self.config.block_sparse_experts
            and instr.op in EXPERT_BUF_OPS
            and "tokens" in instr.attrs
        ):
            buf = in_types[0]
            slots = buf.shape[0] * buf.shape[1]
            occupancy = min(1.0, instr.attrs["tokens"] / slots)
        if irr_parts > 1 or occupancy < 1.0:
            # irregular chunk and/or block-sparse kernel: only realized
            # capacity slots are computed (grouped GEMM over real rows)
            in_types = [
                _scale_capacity(t, irr_parts, occupancy) for t in in_types
            ]
            out_types = [
                _scale_capacity(t, irr_parts, occupancy) for t in out_types
            ]
        key = (
            instr.op,
            tuple(t.shape for t in in_types),
            fw.name,
        )
        hit = self._compute_cache.get(key)
        if hit is not None:
            return hit
        flops = spec.flops(in_types, out_types, instr.attrs)
        nbytes = spec.membytes(in_types, out_types, instr.attrs)
        t = gpu.op_time_ms(flops, nbytes) * fw.compute_mult
        if instr.op in DISPATCH_OPS:
            t *= fw.dispatch_mult
        t += fw.launch_ms(spec.kernels)
        self._compute_cache[key] = t
        return t

    # -- communication ops ----------------------------------------------------------

    def a2a_pair_bytes(
        self, instr: Instruction, program: Program
    ) -> np.ndarray | None:
        """Realized pair-bytes matrix of an irregular all-to-all, or
        ``None`` when the collective moves the full padded buffer."""
        if self.config.padded_a2a or not instr.attrs.get("irregular", False):
            return None
        cluster = self.config.cluster
        buf_t = program.type_of(instr.inputs[0])
        e, c, h = buf_t.shape
        g = cluster.num_gpus
        tokens = int(instr.attrs.get("tokens", e * c))
        layer_key = instr.attrs.get("moe_layer", instr.origin or instr.uid)
        fraction = 1.0
        if instr.partition is not None:
            fraction = 1.0 / instr.partition[1]
        return self.config.routing.pair_bytes_for(
            layer_key,
            g,
            e,
            tokens,
            c if fraction == 1.0 else int(np.ceil(c)),
            bytes_per_token=h * buf_t.dtype.nbytes,
            fraction=fraction,
        )

    def a2a_expert_counts(
        self, instr: Instruction, program: Program
    ) -> tuple[np.ndarray, float] | None:
        """Realized expert-level dispatch counts of an irregular
        all-to-all, as ``(counts [num_gpus, num_experts],
        bytes_per_token)`` -- or ``None`` when the collective moves the
        full padded buffer.

        The expert-resolved companion of :meth:`a2a_pair_bytes` (same
        routing draw, same capacity and chunk-fraction handling): pair
        bytes collapse experts onto their owner devices, which is enough
        to *price* an all-to-all but not to *re-place* experts -- the
        placement optimizer needs the per-expert decomposition.
        """
        if self.config.padded_a2a or not instr.attrs.get("irregular", False):
            return None
        cluster = self.config.cluster
        buf_t = program.type_of(instr.inputs[0])
        e, c, h = buf_t.shape
        g = cluster.num_gpus
        tokens = int(instr.attrs.get("tokens", e * c))
        layer_key = instr.attrs.get("moe_layer", instr.origin or instr.uid)
        fraction = 1.0
        if instr.partition is not None:
            fraction = 1.0 / instr.partition[1]
        counts = self.config.routing.counts_for(
            layer_key,
            g,
            e,
            tokens,
            c if fraction == 1.0 else int(np.ceil(c)),
            fraction=fraction,
        )
        return counts, float(h * buf_t.dtype.nbytes)

    def _a2a_ms(self, instr: Instruction, program: Program) -> float:
        pair = self.a2a_pair_bytes(instr, program)
        if pair is None:
            buf_t = program.type_of(instr.inputs[0])
            return self.config.cluster.a2a_time_ms(float(buf_t.nbytes))
        if instr.attrs.get("a2a_algo") == "hierarchical":
            # the plan chose the 2-hop algorithm for this collective
            return self.config.cluster.hierarchical_a2a_time_ms_irregular(pair)
        return self.config.cluster.a2a_time_ms_irregular(pair)

    def duration_ms(self, instr: Instruction, program: Program) -> float:
        """Ground-truth duration of one instruction in milliseconds."""
        if instr.op == "all_to_all":
            return self._a2a_ms(instr, program)
        if instr.op == "allreduce":
            nbytes = float(program.type_of(instr.inputs[0]).nbytes)
            return self.config.cluster.allreduce_time_ms(nbytes)
        return self._compute_ms(instr, program)

    # -- device-resolved costs (simulate_cluster) -------------------------------

    def collective_device_times(
        self, instr: Instruction, program: Program
    ) -> np.ndarray:
        """Per-participant busy time of a collective, shape [num_gpus].

        Padded all-to-alls and all-reduces are symmetric (every device
        moves the same bytes); irregular all-to-alls resolve to each
        device's own send/receive bottleneck under the realized routing,
        so hot-expert owners stay busy longer.  ``result.max()`` always
        equals the representative-device :meth:`duration_ms`.
        """
        g = self.config.cluster.num_gpus
        if instr.op == "all_to_all":
            pair = self.a2a_pair_bytes(instr, program)
            if pair is None:
                buf_t = program.type_of(instr.inputs[0])
                return np.full(
                    g, self.config.cluster.a2a_time_ms(float(buf_t.nbytes))
                )
            if instr.attrs.get("a2a_algo") == "hierarchical":
                return self.config.cluster.hierarchical_a2a_device_times_ms(
                    pair
                )
            return self.config.cluster.a2a_device_times_ms(pair)
        if instr.op == "allreduce":
            nbytes = float(program.type_of(instr.inputs[0]).nbytes)
            return np.full(g, self.config.cluster.allreduce_time_ms(nbytes))
        raise ValueError(f"{instr.op!r} is not a collective")

    def device_duration_ms(
        self, instr: Instruction, program: Program, slowdown: float = 1.0
    ) -> float:
        """Compute-op duration on one device, with its straggler factor."""
        t = self._compute_ms(instr, program)
        return t if slowdown == 1.0 else t * slowdown


def simulate_program(
    program: Program,
    cost: GroundTruthCost | None = None,
    config: SimulationConfig | None = None,
    duration_fn=None,
) -> Timeline:
    """Simulate one training iteration; returns the device timeline.

    Provide either a :class:`GroundTruthCost` / :class:`SimulationConfig`
    pair, or a raw ``duration_fn(instr, program) -> ms`` (used by Lancet's
    internal pipeline scheduler with *predicted* costs).
    """
    if duration_fn is None:
        if cost is None:
            if config is None:
                raise ValueError("need cost, config, or duration_fn")
            cost = GroundTruthCost(config)
        duration_fn = cost.duration_ms

    value_ready: dict[int, float] = {}
    stream_free = {Stream.COMPUTE: 0.0, Stream.COMM: 0.0}
    intervals: list[Interval] = []

    for instr in program.instructions:
        stream = Stream.COMM if instr.is_comm else Stream.COMPUTE
        dep_ready = 0.0
        for v in instr.inputs:
            t = value_ready.get(v, 0.0)
            if t > dep_ready:
                dep_ready = t
        start = max(stream_free[stream], dep_ready)
        dur = duration_fn(instr, program)
        end = start + dur
        stream_free[stream] = end
        for o in instr.outputs:
            value_ready[o] = end
        intervals.append(
            Interval(
                uid=instr.uid,
                op=instr.op,
                kind=instr.kind.value,
                stream=stream,
                start=start,
                end=end,
            )
        )

    return Timeline(intervals)


def simulate_cluster(
    program: Program,
    cost: GroundTruthCost | None = None,
    config: SimulationConfig | None = None,
) -> ClusterTimeline:
    """Simulate one iteration with ``G`` per-device timelines.

    Same program-order two-stream semantics as :func:`simulate_program`,
    but every device is tracked individually:

    - compute instructions run on each device's compute stream, scaled
      by that device's straggler factor (``config.straggler_slowdown``);
    - collectives synchronize: the transfer starts once **every**
      participant has arrived (max over per-device ready times), each
      device's busy interval lasts its own device-resolved duration
      (e.g. a hot-expert owner's all-to-all runs longer), and outputs
      become ready -- and comm streams free -- only when the whole
      collective completes (max over participants).

    With :class:`UniformRoutingModel` routing and no stragglers all
    devices see identical costs, and each per-device timeline is
    bit-for-bit the :func:`simulate_program` timeline.
    """
    if cost is None:
        if config is None:
            raise ValueError("need cost or config")
        cost = GroundTruthCost(config)
    g = cost.config.cluster.num_gpus
    slowdowns = cost.config.device_slowdowns()

    value_ready = [dict() for _ in range(g)]  # type: list[dict[int, float]]
    stream_free = [
        {Stream.COMPUTE: 0.0, Stream.COMM: 0.0} for _ in range(g)
    ]
    intervals: list[list[Interval]] = [[] for _ in range(g)]

    for instr in program.instructions:
        stream = Stream.COMM if instr.is_comm else Stream.COMPUTE
        arrivals = []
        for d in range(g):
            dep_ready = 0.0
            for v in instr.inputs:
                t = value_ready[d].get(v, 0.0)
                if t > dep_ready:
                    dep_ready = t
            arrivals.append(max(stream_free[d][stream], dep_ready))

        if instr.is_comm:
            # collective: wait for all participants, resolve per-device
            # busy times, release everyone at the common completion time
            start = max(arrivals)
            times = cost.collective_device_times(instr, program)
            complete = start + float(times.max())
            for d in range(g):
                end_d = start + float(times[d])
                stream_free[d][stream] = complete
                for o in instr.outputs:
                    value_ready[d][o] = complete
                intervals[d].append(
                    Interval(
                        uid=instr.uid,
                        op=instr.op,
                        kind=instr.kind.value,
                        stream=stream,
                        start=start,
                        end=end_d,
                    )
                )
        else:
            for d in range(g):
                dur = cost.device_duration_ms(instr, program, slowdowns[d])
                end = arrivals[d] + dur
                stream_free[d][stream] = end
                for o in instr.outputs:
                    value_ready[d][o] = end
                intervals[d].append(
                    Interval(
                        uid=instr.uid,
                        op=instr.op,
                        kind=instr.kind.value,
                        stream=stream,
                        start=arrivals[d],
                        end=end,
                    )
                )

    return ClusterTimeline([Timeline(ivs) for ivs in intervals])


def simulate_cluster_batch(
    program: Program,
    configs: Sequence[SimulationConfig] | None = None,
    costs: Sequence[GroundTruthCost] | None = None,
):
    """Simulate ``B`` scenarios of one program in one vectorized pass.

    Each entry of ``configs`` (or pre-built ``costs``) is one candidate
    scenario -- a routing realization, straggler pattern, framework or
    protocol variant -- against the *same* instruction stream.  All
    scenarios must share the device count.  Returns a
    :class:`~repro.runtime.batch.BatchClusterResult` whose per-scenario
    timelines are bit-identical to calling :func:`simulate_cluster` once
    per scenario; makespans come straight from the packed arrays, and
    full :class:`~repro.runtime.timeline.ClusterTimeline` objects are
    materialized only on request.

    Vectorizing is safe for bit-identity because every scalar update is
    a float64 ``max`` or a single add -- operations numpy reproduces
    elementwise exactly; no sum is ever reassociated.
    """
    from .batch import pack_scenarios, simulate_scenarios

    if costs is None:
        if configs is None:
            raise ValueError("need configs or costs")
        costs = [GroundTruthCost(c) for c in configs]
    return simulate_scenarios(pack_scenarios(program, list(costs)))


def iteration_time_ms(
    program: Program, config: SimulationConfig
) -> float:
    """Convenience: simulated makespan of one iteration."""
    return simulate_program(program, config=config).makespan


def observed_routing_signatures(
    program: Program, config: SimulationConfig, with_counts: bool = False
) -> dict[object, RoutingSignature]:
    """Per-MoE-layer routing signatures of a config's realized routing.

    Walks the program's irregular all-to-alls, resolves each layer's
    realized pair-bytes matrix under ``config.routing`` (the same draw
    the ground-truth simulator will see, thanks to the per-layer-key
    cache), and summarizes it as a :class:`RoutingSignature`.  This is
    what the skew-aware optimizer plans against; on real hardware the
    counts would come from the gate's dispatch statistics instead.

    With ``with_counts=True`` the signatures are built from the
    expert-level dispatch counts instead (numerically identical loads)
    and carry the counts as provenance, making them
    :meth:`~RoutingSignature.remap`-able under an expert placement.
    The default stays counts-free: plain pricing doesn't need the
    decomposition and counts enlarge every signature.

    Returns an empty dict for padded configs (no realized irregularity).
    """
    cost = GroundTruthCost(config)
    signatures: dict[object, RoutingSignature] = {}
    for instr in program.instructions:
        if instr.op != "all_to_all" or not instr.attrs.get("irregular"):
            continue
        key = instr.attrs.get("moe_layer", instr.origin or instr.uid)
        if key in signatures:
            continue
        if with_counts:
            got = cost.a2a_expert_counts(instr, program)
            if got is None:
                continue
            counts, bytes_per_token = got
            if instr.partition is not None:
                # a chunk carries 1/k of the layer's traffic; scale back
                # to the full collective (chunk-independent signature)
                counts = counts * instr.partition[1]
            signatures[key] = RoutingSignature.from_counts(
                counts,
                bytes_per_token=bytes_per_token,
                topology=config.cluster.topology,
            )
            continue
        pair = cost.a2a_pair_bytes(instr, program)
        if pair is None:
            continue
        if instr.partition is not None:
            # a chunk carries 1/k of the layer's traffic; scale back to
            # the full collective so the signature is chunk-independent
            pair = pair * instr.partition[1]
        signatures[key] = RoutingSignature.from_pair_bytes(
            pair, topology=config.cluster.topology
        )
    return signatures
