"""Unit tests for the autodiff backward builder."""


from repro.ir import (
    Dim,
    DType,
    InstrKind,
    Program,
    TensorType,
    build_backward,
    insert_gradient_sync,
    validate,
)


def linear_loss_program():
    """x @ w -> bias -> gelu -> matmul -> cross_entropy."""
    p = Program("toy")
    x = p.add_input(
        TensorType((2, 4), DType.I32, (Dim.BATCH, Dim.SEQ)), "ids"
    )
    labels = p.add_input(
        TensorType((2, 4), DType.I32, (Dim.BATCH, Dim.SEQ)), "labels"
    )
    wte = p.add_param(TensorType((16, 8), DType.F16, (Dim.VOCAB, Dim.HIDDEN)), "wte")
    w = p.add_param(TensorType((8, 16), DType.F16), "w")
    b = p.add_param(TensorType((16,), DType.F16), "b")
    (e,) = p.add("embedding", [wte.id, x.id])
    (h,) = p.add("matmul", [e.id, w.id])
    (h,) = p.add("bias_add", [h.id, b.id])
    (h,) = p.add("gelu", [h.id])
    (loss,) = p.add("cross_entropy", [h.id, labels.id])
    p.outputs.append(loss.id)
    return p, loss.id, {"wte": wte.id, "w": w.id, "b": b.id}


class TestBuildBackward:
    def test_grads_for_all_params(self):
        p, loss, params = linear_loss_program()
        build_backward(p, loss)
        validate(p)
        for name, pid in params.items():
            assert pid in p.grads, f"missing grad for {name}"

    def test_kinds_assigned(self):
        p, loss, params = linear_loss_program()
        build_backward(p, loss)
        kinds = {i.kind for i in p.instructions}
        assert InstrKind.DW in kinds and InstrKind.DX in kinds

    def test_dw_ops_are_weight_grads(self):
        p, loss, params = linear_loss_program()
        build_backward(p, loss)
        dw_ops = {i.op for i in p.instructions if i.kind == InstrKind.DW}
        assert "matmul_dw" in dw_ops
        assert "bias_grad" in dw_ops
        assert "embedding_dw" in dw_ops

    def test_grad_accumulation_for_fanout(self):
        """A value used twice gets its gradients summed with an add."""
        p = Program("fan")
        x = p.add_input(TensorType((2, 4), DType.F16), "x")
        w = p.add_param(TensorType((4, 4), DType.F16), "w")
        labels = p.add_input(TensorType((2,), DType.I32), "labels")
        (h,) = p.add("matmul", [x.id, w.id])
        (a,) = p.add("gelu", [h.id])
        (b,) = p.add("relu", [h.id])
        (s,) = p.add("add", [a.id, b.id])
        (loss,) = p.add("cross_entropy", [s.id, labels.id])
        build_backward(p, loss.id)
        validate(p)
        dx_adds = [
            i
            for i in p.instructions
            if i.op == "add" and i.kind == InstrKind.DX
        ]
        assert dx_adds, "fan-out gradient accumulation should emit an add"

    def test_backward_on_model_graph(self, tiny_graph):
        p = tiny_graph.program
        validate(p)
        # every parameter receives a gradient
        assert set(p.grads.keys()) == set(p.params)

    def test_backward_a2a_direction_flipped(self, tiny_graph):
        p = tiny_graph.program
        fwd = p.instructions[: tiny_graph.forward_len]
        bwd = p.instructions[tiny_graph.forward_len :]
        fwd_dirs = [i.attrs["direction"] for i in fwd if i.op == "all_to_all"]
        bwd_dirs = [i.attrs["direction"] for i in bwd if i.op == "all_to_all"]
        assert fwd_dirs == ["scatter", "gather"]
        # backward mirrors: gradient of gather is scatter and vice versa
        assert bwd_dirs == ["scatter", "gather"]


class TestGradientSync:
    def test_allreduce_only_for_shared_params(self, tiny_cfg):
        from repro.models import build_forward

        g = build_forward(tiny_cfg, batch=4, seq=8, num_gpus=2)
        p = g.program
        build_backward(p, g.loss)
        n_params = len(p.params)
        n_expert = len(g.expert_params)
        insert_gradient_sync(p, g.expert_params)
        n_ar = sum(1 for i in p.instructions if i.op == "allreduce")
        assert n_ar == n_params - n_expert

    def test_allreduce_placed_after_producer(self, tiny_graph):
        p = tiny_graph.program
        producers = p.producers()
        pos = p.instr_index()
        for instr in p.instructions:
            if instr.op != "allreduce":
                continue
            src = producers[instr.inputs[0]]
            assert pos[src.uid] < pos[instr.uid]


class TestInsertSGD:
    def test_sgd_updates_every_param(self, tiny_graph):
        p = tiny_graph.program
        n_sgd = sum(1 for i in p.instructions if i.op == "sgd_update")
        assert n_sgd == len(p.params)
        assert len(p.states) == len(p.params)

    def test_sgd_kind(self, tiny_graph):
        p = tiny_graph.program
        for i in p.instructions:
            if i.op == "sgd_update":
                assert i.kind == InstrKind.OPTIMIZER
