"""Training substrate: synthetic data, optimizer, numeric training loop."""

from .data import SyntheticCorpus
from .loop import StepResult, Trainer
from .optimizer import SGD

__all__ = ["SGD", "StepResult", "SyntheticCorpus", "Trainer"]
