"""Tensor types and values for the Lancet IR.

The IR is shape-static (as in RAF/TVM, the compilers Lancet builds on): every
value carries a concrete shape and dtype.  Dimensions additionally carry a
*role* (batch, sequence, hidden, expert, capacity, ...) because the operator
partition pass reasons about *which* dimension of a tensor is being split --
the paper's partition-axis inference (Sec. 5.2) distinguishes e.g. the batch
axis from the capacity axis, and has a special irregular axis ``A_irr`` for
MoE dispatch buffers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class DType(enum.Enum):
    """Element types supported by the simulated runtime."""

    F32 = "f32"
    F16 = "f16"
    I32 = "i32"
    I64 = "i64"
    BOOL = "bool"

    @property
    def nbytes(self) -> int:
        """Size of one element in bytes."""
        return _DTYPE_BYTES[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_DTYPE_BYTES = {
    DType.F32: 4,
    DType.F16: 2,
    DType.I32: 4,
    DType.I64: 8,
    DType.BOOL: 1,
}


class Dim(enum.Enum):
    """Semantic role of a tensor dimension.

    Roles are advisory metadata used by the partition pass to generate
    partition rules; shapes remain the source of truth for sizes.
    """

    BATCH = "B"
    SEQ = "S"
    HIDDEN = "H"
    FFN = "F"
    HEAD = "A"
    VOCAB = "V"
    EXPERT = "E"
    LOCAL_EXPERT = "El"
    CAPACITY = "C"
    TOKENS = "T"
    GENERIC = "*"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Sentinel partition axis meaning "tensor is not partitioned".
NOT_PARTITIONED = -1

#: Sentinel partition axis for the paper's irregular partition ``A_irr``
#: (Fig. 5c): MoE dispatch buffers split into variable-sized token groups.
AXIS_IRREGULAR = -2


def axis_name(axis: int) -> str:
    """Human-readable name for a partition axis value."""
    if axis == NOT_PARTITIONED:
        return "NP"
    if axis == AXIS_IRREGULAR:
        return "A_irr"
    return str(axis)


@dataclass(frozen=True)
class TensorType:
    """Static type of an IR value: shape, dtype and per-dim roles.

    Parameters
    ----------
    shape:
        Concrete dimension sizes.
    dtype:
        Element type.
    dims:
        Role of each dimension; defaults to :attr:`Dim.GENERIC` for all.
    """

    shape: tuple[int, ...]
    dtype: DType = DType.F16
    dims: tuple[Dim, ...] = field(default=())

    def __post_init__(self) -> None:
        if not all(isinstance(s, int) and s >= 0 for s in self.shape):
            raise ValueError(f"shape must be non-negative ints, got {self.shape}")
        if self.dims and len(self.dims) != len(self.shape):
            raise ValueError(
                f"dims {self.dims} must match shape rank {len(self.shape)}"
            )
        if not self.dims:
            object.__setattr__(self, "dims", (Dim.GENERIC,) * len(self.shape))

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return self.numel * self.dtype.nbytes

    def dim_index(self, role: Dim) -> int:
        """Index of the first dimension with the given role.

        Raises
        ------
        ValueError
            If no dimension has that role.
        """
        for i, d in enumerate(self.dims):
            if d == role:
                return i
        raise ValueError(f"no dimension with role {role} in {self}")

    def has_dim(self, role: Dim) -> bool:
        """Whether any dimension has the given role."""
        return role in self.dims

    def with_shape(self, shape: tuple[int, ...]) -> "TensorType":
        """Same dtype/roles with a new shape (rank must match)."""
        if len(shape) != self.rank:
            raise ValueError(f"rank mismatch: {shape} vs {self.shape}")
        return TensorType(shape, self.dtype, self.dims)

    def split(self, axis: int, parts: int, index: int) -> "TensorType":
        """Type of the ``index``-th chunk when splitting ``axis`` into ``parts``.

        Chunk sizes follow numpy's ``array_split`` convention: the first
        ``size % parts`` chunks get one extra element.
        """
        if not 0 <= axis < self.rank:
            raise ValueError(f"axis {axis} out of range for rank {self.rank}")
        size = self.shape[axis]
        if parts < 1 or parts > max(size, 1):
            raise ValueError(f"cannot split size {size} into {parts} parts")
        base, extra = divmod(size, parts)
        chunk = base + (1 if index < extra else 0)
        new_shape = self.shape[:axis] + (chunk,) + self.shape[axis + 1 :]
        return self.with_shape(new_shape)

    def __repr__(self) -> str:
        dims = ",".join(d.value for d in self.dims)
        return f"{self.dtype.value}[{dims}]{list(self.shape)}"


#: Type used for opaque routing metadata produced by MoE gates.  Numeric
#: execution stores a :class:`repro.moe.routing.RoutingInfo` in such values;
#: the timed executor only needs an (approximate) size for them.
def route_type(num_tokens: int) -> TensorType:
    """Type of the opaque routing-metadata value for ``num_tokens`` tokens."""
    return TensorType((num_tokens, 3), DType.I32, (Dim.TOKENS, Dim.GENERIC))


def is_route_type(t: TensorType) -> bool:
    """Whether a type is the opaque routing-metadata type."""
    return (
        t.rank == 2
        and t.dtype == DType.I32
        and t.dims[0] == Dim.TOKENS
        and t.shape[1] == 3
    )


@dataclass(frozen=True)
class Value:
    """A single SSA value in the IR.

    Values are produced by exactly one instruction (or are program inputs /
    parameters) and may be consumed by any number of instructions.
    """

    id: int
    type: TensorType
    name: str = ""

    def __repr__(self) -> str:
        nm = self.name or f"v{self.id}"
        return f"%{nm}:{self.type!r}"
