"""Unit tests for model configs and graph builders."""

import pytest

from repro import GPT2MoEConfig, build_training_graph
from repro.ir import InstrKind, validate
from repro.models import (
    BATCH_DEPENDENT_GATES,
    BATCH_PREFIX_STABLE_GATES,
    RunConfig,
    build_forward,
)


class TestConfig:
    def test_presets_match_paper(self):
        s = GPT2MoEConfig.gpt2_s_moe()
        l = GPT2MoEConfig.gpt2_l_moe()
        assert (s.num_layers, s.hidden) == (12, 768)
        assert (l.num_layers, l.hidden) == (24, 1024)

    def test_every_other_layer_is_moe(self):
        cfg = GPT2MoEConfig.gpt2_s_moe()
        moe_layers = [i for i in range(cfg.num_layers) if cfg.is_moe_layer(i)]
        assert moe_layers == [1, 3, 5, 7, 9, 11]
        assert cfg.num_moe_layers == 6

    def test_two_experts_per_gpu(self):
        cfg = GPT2MoEConfig.gpt2_s_moe()
        assert cfg.num_experts(16) == 32
        assert cfg.num_experts(64) == 128

    def test_capacity_formula(self):
        cfg = GPT2MoEConfig.gpt2_s_moe(capacity_factor=1.25)
        # 24*512 tokens, 32 experts: ceil(1.25 * 12288 / 32) = 480
        assert cfg.capacity(24, 512, 16) == 480

    def test_capacity_scales_with_topk(self):
        cfg = GPT2MoEConfig.gpt2_s_moe(gate="topk", top_k=2)
        assert cfg.capacity(24, 512, 16) == 960

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            GPT2MoEConfig.tiny(gate="nonsense")

    def test_gate_classification(self):
        assert "switch" in BATCH_PREFIX_STABLE_GATES
        assert "bpr" in BATCH_DEPENDENT_GATES
        assert GPT2MoEConfig.tiny(gate="switch").gate_is_batch_prefix_stable
        assert not GPT2MoEConfig.tiny(gate="bpr").gate_is_batch_prefix_stable

    def test_run_config(self):
        rc = RunConfig(GPT2MoEConfig.gpt2_s_moe(), 24, 512, 16)
        assert rc.num_experts == 32
        assert rc.tokens_per_gpu == 12288

    def test_with_gate(self):
        cfg = GPT2MoEConfig.tiny().with_gate("bpr")
        assert cfg.gate == "bpr"


class TestForwardBuilder:
    def test_structure(self, tiny_forward):
        p = tiny_forward.program
        validate(p)
        counts = p.count_ops()
        assert counts["all_to_all"] == 2 * tiny_forward.cfg.num_moe_layers
        assert counts["expert_ffn"] == tiny_forward.cfg.num_moe_layers
        assert counts["attention"] == tiny_forward.cfg.num_layers
        assert counts["cross_entropy"] == 1

    def test_moe_layer_info_consistent(self, tiny_forward):
        p = tiny_forward.program
        by_uid = {i.uid: i for i in p.instructions}
        for ml in tiny_forward.moe_layers:
            assert by_uid[ml.routing_uid].op == "routing"
            assert by_uid[ml.a2a_first_uid].attrs["direction"] == "scatter"
            assert by_uid[ml.a2a_second_uid].attrs["direction"] == "gather"
            assert by_uid[ml.expert_uid].op == "expert_ffn"

    def test_seq_too_long_rejected(self, tiny_cfg):
        with pytest.raises(ValueError):
            build_forward(tiny_cfg, batch=2, seq=tiny_cfg.max_seq + 1, num_gpus=2)

    def test_expert_params_marked(self, tiny_forward):
        p = tiny_forward.program
        names = {p.values[v].name for v in tiny_forward.expert_params}
        assert all(".w1" in n or ".b1" in n or ".w2" in n or ".b2" in n for n in names)


class TestTrainingGraphBuilder:
    def test_full_graph_valid(self, tiny_graph):
        validate(tiny_graph.program)

    def test_kind_partition(self, tiny_graph):
        p = tiny_graph.program
        fwd = p.instructions[: tiny_graph.forward_len]
        assert all(
            i.kind in (InstrKind.FORWARD, InstrKind.COMM) for i in fwd
        )
        kinds_after = {i.kind for i in p.instructions[tiny_graph.forward_len :]}
        assert InstrKind.DW in kinds_after

    def test_no_sync_single_gpu(self, tiny_cfg):
        g = build_training_graph(tiny_cfg, batch=4, seq=8, num_gpus=1)
        assert not any(i.op == "allreduce" for i in g.program.instructions)

    def test_gpt2_s_instruction_count_scales(self):
        g12 = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=2, seq=8, num_gpus=2
        )
        g24 = build_training_graph(
            GPT2MoEConfig.gpt2_l_moe(), batch=2, seq=8, num_gpus=2
        )
        assert len(g24.program) > 1.7 * len(g12.program)
