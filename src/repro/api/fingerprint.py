"""Stable identities for graphs, clusters, and policies.

A :class:`~repro.api.store.PlanStore` entry must be reusable by a
different process than the one that produced it, so cache keys cannot
contain anything process-local (instruction uids, object ids, hash
randomization).  Everything here reduces to canonical JSON hashed with
SHA-256.
"""

from __future__ import annotations

import hashlib
import json

from ..ir import Program, structural_program_dict


def canonical_digest(payload) -> str:
    """SHA-256 hex digest of a JSON-compatible payload's canonical form."""
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def graph_fingerprint(graph_or_program) -> str:
    """Structural fingerprint of a training graph.

    Uid-independent (see :func:`repro.ir.structural_program_dict`): two
    processes that build the same model/batch/cluster-size graph compute
    the same fingerprint, which is what lets a fleet share one plan
    store.  Accepts a :class:`~repro.models.ModelGraph` or a raw
    :class:`~repro.ir.Program`.
    """
    program = getattr(graph_or_program, "program", graph_or_program)
    if not isinstance(program, Program):
        raise TypeError(
            f"expected a ModelGraph or Program, got {type(graph_or_program).__name__}"
        )
    return "sha256:" + canonical_digest(structural_program_dict(program))
