"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``plan``
    Compile a scenario into a :class:`~repro.api.Plan` artifact
    (optionally through a disk :class:`~repro.api.PlanStore`).
``run``
    Execute a plan (from a file, a store, or compiled on the spot):
    one ground-truth simulated iteration, reported vs the baseline.
``inspect``
    Summarize a saved plan artifact without executing it.
``figures [ids...] [--fast]``
    Reproduce paper figures (default: all) and print the tables.
``optimize [--model S|L] [--cluster a100|v100] [--gpus N] [--out F]``
    Optimize one training graph and report the schedule + simulated
    gain (legacy spelling of ``plan`` + ``run``; kept stable).
``serve stats | serve warm``
    Plan-serving utilities over a shared store directory: ``stats``
    summarizes a store (entries, bytes, signature buckets); ``warm``
    batch-compiles presets through a coalescing
    :class:`~repro.serving.PlanServer` and prints its telemetry.
``list``
    List available figure ids and scenario presets.

Every command accepts ``--seed`` (the synthetic routing seed) and
commands that produce results accept ``--out`` to write them as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _write_json(path: str | None, payload: dict) -> None:
    if not path:
        return
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")


def _scenario_from_args(args: argparse.Namespace):
    from .api import Scenario

    if args.preset:
        scenario = Scenario.preset(args.preset)
        overrides = {}
        if args.batch is not None:
            overrides["batch"] = args.batch
        if args.gpus is not None:
            overrides["num_gpus"] = args.gpus
        if args.seq is not None:
            overrides["seq"] = args.seq
        if overrides:
            scenario = scenario.with_(**overrides)
    else:
        model = "GPT2-S-MoE" if args.model.upper().startswith("S") else "GPT2-L-MoE"
        scenario = Scenario(
            model=model,
            cluster=args.cluster,
            num_gpus=args.gpus if args.gpus is not None else 16,
            batch=args.batch,
            seq=args.seq,
        )
    if args.seed is not None:
        scenario = scenario.with_(routing_seed=args.seed)
    if getattr(args, "stages", None) is not None:
        scenario = scenario.with_(pipeline_stages=args.stages)
    if getattr(args, "microbatches", None) is not None:
        scenario = scenario.with_(microbatches=args.microbatches)
    if getattr(args, "schedule", None) is not None:
        scenario = scenario.with_(pipeline_schedule=args.schedule)
    return scenario


def _policy_from_args(args: argparse.Namespace):
    from .api import PlanPolicy

    return PlanPolicy(
        defer_allreduce=getattr(args, "defer_allreduce", False),
        enable_hierarchical_a2a=getattr(args, "hierarchical", False),
        skew_aware=not getattr(args, "uniform", False),
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    from .api import PlanStore, compile

    scenario = _scenario_from_args(args)
    store = PlanStore(args.store) if args.store else None
    t0 = time.perf_counter()
    plan = compile(scenario, policy=_policy_from_args(args), store=store)
    seconds = time.perf_counter() - t0
    origin = "plan store (warm)" if plan.from_store else "optimizer (cold)"
    print(plan.summary())
    print(f"  compiled in {seconds:.3f}s via {origin}")
    if store is not None:
        print(f"  store: {store.root} ({len(store)} plans)")
    if args.out:
        plan.save(args.out)
        print(f"wrote {args.out}")
    return 0


def _load_or_compile_plan(args: argparse.Namespace):
    from .api import PlanStore, compile, load_plan

    if args.plan:
        return load_plan(args.plan)
    store = PlanStore(args.store) if args.store else None
    return compile(
        _scenario_from_args(args), policy=_policy_from_args(args), store=store
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from .runtime import SimulationConfig, simulate_program

    plan = _load_or_compile_plan(args)
    scenario = plan.scenario
    staged = plan.stage_map is not None
    timeline = plan.simulate(seed=args.seed)
    # for staged plans the program (and hence the simulation and the
    # baseline below) is one *microbatch* on one stage-width subgroup;
    # the pipeline-level iteration is the plan's prediction
    unit = "microbatch" if staged else "iteration"
    result = {
        "fingerprint": plan.fingerprint,
        "scenario": scenario.to_dict() if scenario else None,
        "predicted_iteration_ms": plan.predicted_iteration_ms,
        f"simulated_{unit}_ms": timeline.makespan,
        "exposed_a2a_ms": timeline.exposed_time_of({"all_to_all"}),
        "from_store": plan.from_store,
    }
    print(f"plan {plan.fingerprint[:23]}")
    print(f"  predicted iteration: {plan.predicted_iteration_ms:.2f} ms")
    if staged:
        print(f"  pipeline: {plan.stage_map.describe()}")
    print(f"  simulated {unit}: {timeline.makespan:.2f} ms")
    print(f"  exposed all-to-all:  {result['exposed_a2a_ms']:.2f} ms")
    if scenario is not None:
        # compare against the unoptimized schedule of the same scenario
        # (same realization the plan was simulated under)
        sc = scenario
        if args.seed is not None:
            sc = sc.with_(routing_seed=args.seed)
        baseline = simulate_program(
            sc.build_graph().program,
            config=SimulationConfig(
                cluster=plan.simulation_cluster(),
                framework=plan.framework,
                padded_a2a=True,
                routing=sc.routing_model(),
            ),
        )
        result[f"baseline_{unit}_ms"] = baseline.makespan
        result["speedup"] = baseline.makespan / timeline.makespan
        print(
            f"  baseline (unoptimized): {baseline.makespan:.2f} ms "
            f"-> {result['speedup']:.2f}x {unit} speedup"
        )
    _write_json(args.out, result)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .api import load_plan

    plan = load_plan(args.plan_file, materialize=not args.shallow)
    print(plan.summary())
    if args.annotations:
        for entry in plan.annotations():
            print(f"  {entry}")
    if args.out:
        payload = plan.to_dict()
        if args.shallow:
            payload.pop("program", None)
        _write_json(args.out, payload)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .bench import ALL_FIGURES, set_default_seed

    if args.seed is not None:
        set_default_seed(args.seed)
    wanted = args.ids or list(ALL_FIGURES)
    unknown = [w for w in wanted if w not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {list(ALL_FIGURES)}")
        return 2
    fast_overrides = {
        "fig06": dict(range_points=(0.0, 1.0, 3.0, 8.0)),
        "fig11": dict(gpu_counts=(16, 32)),
        "fig12": dict(gpu_counts=(16, 32)),
        "fig14": dict(gpu_counts=(16, 32)),
        "fig15": dict(gpu_counts=(16, 32)),
        "fig16": dict(models=("GPT2-S-MoE",)),
        "headline": dict(gpu_counts=(16,)),
        "topology": dict(node_counts=(1, 2), hot_boosts=(0.0, 0.7)),
    }
    for fig in wanted:
        kwargs = fast_overrides.get(fig, {}) if args.fast else {}
        result = ALL_FIGURES[fig](**kwargs)
        print("=" * 72)
        print(result.table)
        for k, v in result.notes.items():
            if k != "reductions":
                print(f"  {k}: {v}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from . import (
        GPT2MoEConfig,
        LancetOptimizer,
        SimulationConfig,
        build_training_graph,
        simulate_program,
    )
    from .bench import paper_batch
    from .runtime import ClusterSpec, SyntheticRoutingModel

    model = "GPT2-S-MoE" if args.model.upper().startswith("S") else "GPT2-L-MoE"
    cfg = (
        GPT2MoEConfig.gpt2_s_moe()
        if model == "GPT2-S-MoE"
        else GPT2MoEConfig.gpt2_l_moe()
    )
    seed = 1 if args.seed is None else args.seed
    gpus = args.gpus if args.gpus is not None else 16
    batch = args.batch or paper_batch(args.cluster, model)
    graph = build_training_graph(cfg, batch=batch, seq=args.seq, num_gpus=gpus)
    cluster = ClusterSpec.for_gpus(args.cluster, gpus)
    optimized, report = LancetOptimizer(
        cluster, defer_allreduce=args.defer_allreduce
    ).optimize(graph)

    before = simulate_program(
        graph.program,
        config=SimulationConfig(
            cluster=cluster,
            padded_a2a=True,
            routing=SyntheticRoutingModel(seed=seed),
        ),
    )
    after = simulate_program(
        optimized,
        config=SimulationConfig(
            cluster=cluster,
            padded_a2a=False,
            routing=SyntheticRoutingModel(seed=seed),
        ),
    )
    print(f"{model} batch={batch} seq={args.seq} on {gpus}x{cluster.gpu.name}")
    print(f"  optimization: {report.optimization_seconds:.2f}s "
          f"({report.dw_schedule.num_dw_moved} dW moved, "
          f"{len(report.partition.plans)} pipelines "
          f"k={[p.parts for p in report.partition.plans]})")
    print(f"  iteration: {before.makespan:.1f} ms -> {after.makespan:.1f} ms "
          f"({before.makespan / after.makespan:.2f}x)")
    e0 = before.exposed_time_of({"all_to_all"})
    e1 = after.exposed_time_of({"all_to_all"})
    print(f"  exposed all-to-all: {e0:.1f} ms -> {e1:.1f} ms "
          f"(-{100 * (1 - e1 / max(e0, 1e-9)):.0f}%)")
    _write_json(
        args.out,
        {
            "setting": {
                "model": model,
                "cluster": args.cluster,
                "gpus": gpus,
                "batch": batch,
                "seq": args.seq,
                "seed": seed,
                "defer_allreduce": args.defer_allreduce,
            },
            "report": report.summary_dict(),
            "baseline_iteration_ms": before.makespan,
            "optimized_iteration_ms": after.makespan,
            "speedup": before.makespan / after.makespan,
            "exposed_a2a_ms_before": e0,
            "exposed_a2a_ms_after": e1,
        },
    )
    return 0


def _cmd_serve_stats(args: argparse.Namespace) -> int:
    from .api import PlanStore
    from .api.plan import PlanError

    try:
        # read-only: stats over a missing root is a well-formed empty
        # report, not a freshly created directory as a side effect
        store = PlanStore(args.store, create=False)
    except PlanError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    buckets = store._read_signature_index()
    payload = {
        "root": str(store.root),
        "exists": store.root.is_dir(),
        "entries": len(store),
        "bytes": store.total_bytes(),
        "max_entries": store.max_entries,
        "max_bytes": store.max_bytes,
        "digits": store.digits,
        "signature_bases": len(buckets),
        "signature_buckets": sum(len(v) for v in buckets.values()),
    }
    print(f"plan store {payload['root']}")
    print(f"  entries: {payload['entries']} "
          f"({payload['bytes'] / 1024:.1f} KiB)")
    print(f"  bounds:  max_entries={payload['max_entries']} "
          f"max_bytes={payload['max_bytes']}")
    print(f"  signature index: {payload['signature_buckets']} buckets "
          f"across {payload['signature_bases']} base identities "
          f"(digits={payload['digits']})")
    _write_json(args.out, payload)
    return 0


def _cmd_serve_warm(args: argparse.Namespace) -> int:
    from .api import PlanStore, Scenario
    from .serving import PlanServer

    store = PlanStore(args.store)
    scenarios = [Scenario.preset(name) for name in args.presets]
    if args.seed is not None:
        scenarios = [sc.with_(routing_seed=args.seed) for sc in scenarios]
    scenarios = scenarios * max(1, args.repeat)
    t0 = time.perf_counter()
    with PlanServer(
        store, policy=_policy_from_args(args), max_workers=args.jobs
    ) as server:
        futures = [server.submit(sc) for sc in scenarios]
        origins: dict[str, int] = {}
        for future in futures:
            origin = future.result().origin
            origins[origin] = origins.get(origin, 0) + 1
        server.drain()
        stats = server.stats()
    seconds = time.perf_counter() - t0
    print(f"warmed {len(scenarios)} requests in {seconds:.2f}s "
          f"({len(args.presets)} presets x{max(1, args.repeat)})")
    print(f"  origins: {origins}")
    print(f"  server:  {stats['server']}")
    print(f"  store:   {stats['store_entries']} entries, "
          f"{stats['store_bytes'] / 1024:.1f} KiB")
    _write_json(args.out, {"seconds": seconds, "origins": origins, **stats})
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .api import available_presets
    from .bench import ALL_FIGURES

    print("figures:")
    for fig in ALL_FIGURES:
        print(f"  {fig}")
    print("scenario presets:")
    for name in available_presets():
        print(f"  {name}")
    return 0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", default=None,
        help="scenario preset name (see `python -m repro list`)",
    )
    parser.add_argument(
        "--model", default="S",
        help="S or L (default S; ignored when --preset is given)",
    )
    parser.add_argument("--cluster", default="a100", choices=["a100", "v100"])
    parser.add_argument("--gpus", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument(
        "--seq", type=int, default=None,
        help="sequence length (default: the scenario's; overrides presets)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="plan-store directory (warm lookups + publishing)",
    )
    parser.add_argument(
        "--uniform", action="store_true",
        help="plan against the uniform approximation (no routing conditioning)",
    )
    parser.add_argument(
        "--hierarchical", action="store_true",
        help="enable per-collective flat vs 2-hop all-to-all choice",
    )
    # part of the plan's policy identity: `plan` and `run` must accept
    # the same policy flags or store lookups between them silently miss
    parser.add_argument(
        "--defer-allreduce", action="store_true",
        help="enable the Lina-style a2a-priority extension",
    )
    # the pipeline request is part of the plan's identity too (folded
    # into scenario + store keys), so the same same-flags rule applies
    parser.add_argument(
        "--stages", type=int, default=None, metavar="N",
        help="pipeline stages (hybrid pipeline x expert parallelism; "
        "must divide the GPU count)",
    )
    parser.add_argument(
        "--microbatches", type=int, default=None, metavar="M",
        help="microbatches per iteration (requires --stages > 1; "
        "must divide the per-GPU batch)",
    )
    parser.add_argument(
        "--schedule", default=None, choices=["1f1b", "gpipe"],
        help="microbatch schedule for staged scenarios (default 1f1b)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Lancet (MLSys 2024) reproduction"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=None,
        help="synthetic routing seed (default: the scenario/plan's own, "
        "i.e. 1 unless the artifact says otherwise)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser(
        "plan", parents=[common], help="compile a scenario into a plan artifact"
    )
    _add_scenario_args(p_plan)
    p_plan.add_argument("--out", default=None, help="write the plan JSON here")
    p_plan.set_defaults(fn=_cmd_plan)

    p_run = sub.add_parser(
        "run", parents=[common], help="execute a plan (simulated iteration)"
    )
    p_run.add_argument(
        "--plan", default=None, metavar="FILE", help="saved plan artifact"
    )
    _add_scenario_args(p_run)
    p_run.add_argument("--out", default=None, help="write results JSON here")
    p_run.set_defaults(fn=_cmd_run)

    p_ins = sub.add_parser(
        "inspect", parents=[common], help="summarize a saved plan artifact"
    )
    p_ins.add_argument("plan_file", help="path to a plan JSON")
    p_ins.add_argument(
        "--annotations", action="store_true",
        help="list per-instruction schedule annotations",
    )
    p_ins.add_argument(
        "--shallow", action="store_true",
        help="skip program reconstruction (envelope only)",
    )
    p_ins.add_argument("--out", default=None, help="write the plan dict here")
    p_ins.set_defaults(fn=_cmd_inspect)

    p_fig = sub.add_parser(
        "figures", parents=[common], help="reproduce paper figures"
    )
    p_fig.add_argument("ids", nargs="*", help="figure ids (default: all)")
    p_fig.add_argument("--fast", action="store_true", help="reduced grids")
    p_fig.set_defaults(fn=_cmd_figures)

    p_opt = sub.add_parser(
        "optimize", parents=[common], help="optimize one training graph"
    )
    p_opt.add_argument("--model", default="S", help="S or L (default S)")
    p_opt.add_argument("--cluster", default="a100", choices=["a100", "v100"])
    p_opt.add_argument("--gpus", type=int, default=None)
    p_opt.add_argument("--batch", type=int, default=None)
    p_opt.add_argument("--seq", type=int, default=512)
    p_opt.add_argument(
        "--defer-allreduce", action="store_true",
        help="enable the Lina-style a2a-priority extension",
    )
    p_opt.add_argument(
        "--out", default=None, help="write the optimization report as JSON"
    )
    p_opt.set_defaults(fn=_cmd_optimize)

    p_srv = sub.add_parser(
        "serve", help="plan-serving utilities over a shared store"
    )
    srv_sub = p_srv.add_subparsers(dest="action", required=True)

    p_stats = srv_sub.add_parser(
        "stats", help="summarize a plan-store directory"
    )
    p_stats.add_argument(
        "--store", required=True, metavar="DIR", help="plan-store directory"
    )
    p_stats.add_argument("--out", default=None, help="write stats JSON here")
    p_stats.set_defaults(fn=_cmd_serve_stats)

    p_warm = srv_sub.add_parser(
        "warm", parents=[common],
        help="batch-compile presets through a coalescing PlanServer",
    )
    p_warm.add_argument(
        "presets", nargs="+",
        help="scenario preset names (see `python -m repro list`)",
    )
    p_warm.add_argument(
        "--store", required=True, metavar="DIR", help="plan-store directory"
    )
    p_warm.add_argument(
        "--repeat", type=int, default=1,
        help="submit each preset this many times (shows coalescing)",
    )
    p_warm.add_argument(
        "--jobs", type=int, default=None, help="planner thread-pool width"
    )
    p_warm.add_argument(
        "--uniform", action="store_true",
        help="plan against the uniform approximation (no routing conditioning)",
    )
    p_warm.add_argument(
        "--hierarchical", action="store_true",
        help="enable per-collective flat vs 2-hop all-to-all choice",
    )
    p_warm.add_argument(
        "--defer-allreduce", action="store_true",
        help="enable the Lina-style a2a-priority extension",
    )
    p_warm.add_argument("--out", default=None, help="write telemetry JSON here")
    p_warm.set_defaults(fn=_cmd_serve_warm)

    p_list = sub.add_parser(
        "list", parents=[common], help="list figure ids and scenario presets"
    )
    p_list.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    from .api import PlanError

    try:
        return args.fn(args)
    except PlanError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
