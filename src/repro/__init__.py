"""repro: a reproduction of Lancet (MLSys 2024).

Lancet accelerates Mixture-of-Experts training by overlapping all-to-all
communication with computation across the *whole* training graph: weight-
gradient computations are rescheduled to hide backward-pass all-to-alls,
and non-MoE forward computation is partitioned into a computation/
communication pipeline around each MoE layer.

Typical usage -- the :mod:`repro.api` facade::

    from repro import PlanStore, Scenario, compile

    plan = compile(Scenario.preset("gpt2-s-moe/a100x16"),
                   store=PlanStore("plans/"))
    timeline = plan.simulate()

The pre-facade entry points remain supported unchanged (the facade
composes them)::

    from repro import (
        GPT2MoEConfig, build_training_graph, ClusterSpec, LancetOptimizer,
        SimulationConfig, simulate_program,
    )

    graph = build_training_graph(GPT2MoEConfig.gpt2_s_moe(),
                                 batch=24, seq=512, num_gpus=16)
    cluster = ClusterSpec.p4de(2)
    optimized, report = LancetOptimizer(cluster).optimize(graph)
"""

__version__ = "1.5.0"

from .api import (
    Plan,
    PlanError,
    PlanPolicy,
    PlanSchemaError,
    PlanStore,
    Scenario,
    compile,
    graph_fingerprint,
    load_plan,
)
from .core import (
    LancetHyperParams,
    LancetOptimizer,
    LancetReport,
    OperatorPartitionPass,
    WeightGradSchedulePass,
)
from .ir import InstrKind, PassManager, Program, validate
from .models import GPT2MoEConfig, ModelGraph, RunConfig, build_training_graph
from .runtime import (
    ClusterSpec,
    ClusterTimeline,
    RoutingSignature,
    SimulationConfig,
    SyntheticRoutingModel,
    Timeline,
    Topology,
    UniformRoutingModel,
    simulate_cluster,
    simulate_program,
)
from .faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    StragglerDetector,
    derive_degraded,
)
from .placement import (
    ExpertPlacement,
    MigrationEvent,
    PlacementOptimizer,
    PlacementResult,
)
from .serving import HotSwapEvent, PlanServer, ServeResult, compile_many
from .train import ReoptimizingTrainer, Trainer

#: legacy spelling of :func:`repro.api.compile` (kept for callers that
#: avoid shadowing the ``compile`` builtin)
compile_plan = compile

__all__ = [
    "ClusterSpec",
    "ClusterTimeline",
    "FaultInjector",
    "FaultSchedule",
    "ExpertPlacement",
    "FaultSpec",
    "GPT2MoEConfig",
    "HotSwapEvent",
    "InstrKind",
    "LancetHyperParams",
    "LancetOptimizer",
    "LancetReport",
    "MigrationEvent",
    "ModelGraph",
    "OperatorPartitionPass",
    "PassManager",
    "Plan",
    "PlanError",
    "PlanPolicy",
    "PlanSchemaError",
    "PlacementOptimizer",
    "PlacementResult",
    "PlanServer",
    "PlanStore",
    "Program",
    "ReoptimizingTrainer",
    "RoutingSignature",
    "RunConfig",
    "Scenario",
    "ServeResult",
    "SimulationConfig",
    "StragglerDetector",
    "SyntheticRoutingModel",
    "Timeline",
    "Topology",
    "Trainer",
    "UniformRoutingModel",
    "WeightGradSchedulePass",
    "build_training_graph",
    "compile",
    "compile_many",
    "compile_plan",
    "derive_degraded",
    "graph_fingerprint",
    "load_plan",
    "simulate_cluster",
    "simulate_program",
    "validate",
    "__version__",
]
