"""End-to-end chaos drills (``pytest -m chaos``; excluded from tier-1).

These run the same seeded drills as the CI chaos job's benchmark gate
(``benchmarks/bench_fault_recovery.py``) but assert the reliability
contracts directly, so a chaos regression points at the broken layer
(injector fidelity / trainer recovery / server degradation) rather than
at a diffed metric.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fault_recovery

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return fault_recovery.run(
        store_root=tmp_path_factory.mktemp("chaos-store")
    )


def test_injector_is_bit_identical_under_chaos(result):
    injector = result.notes["injector"]
    assert injector["mismatched_timelines"] == 0
    assert injector["faulted_steps"] > 0
    assert set(injector["kinds_seen"]) == {
        "straggler", "nic_degrade", "rank_loss"
    }


def test_trainer_detects_and_recovers(result):
    trainer = result.notes["trainer"]
    assert 0 <= trainer["detection_latency_steps"] <= 5
    assert trainer["estimated_slowdown"] == pytest.approx(
        trainer["injected_slowdown"], rel=0.05
    )
    assert trainer["recovery_gap"] <= 0.10
    assert trainer["back_to_nominal"]


def test_every_request_answered_under_chaos(result):
    server = result.notes["server"]
    counters = server["counters"]
    assert server["unanswered"] == 0
    assert counters["errors"] == 0
    # the whole degradation ladder fired
    assert counters["deadline_hits"] > 0
    assert counters["planner_timeouts"] > 0
    assert counters["breaker_short_circuits"] > 0
    assert counters["stale_hits"] > 0
    assert counters["baseline_plans"] > 0
    assert counters["late_plans"] > 0
    assert server["breaker"]["state"] == "closed"  # healed by the end


def test_chaos_seeds_are_reproducible(tmp_path):
    a = fault_recovery.run(
        num_schedules=2, steps_per_schedule=10, trainer_steps=16,
        seed=42, store_root=tmp_path / "a",
    )
    b = fault_recovery.run(
        num_schedules=2, steps_per_schedule=10, trainer_steps=16,
        seed=42, store_root=tmp_path / "b",
    )
    assert a.notes["injector"] == b.notes["injector"]
    assert a.notes["trainer"] == b.notes["trainer"]
    # the server drill's latencies are wall-clock, but its decision
    # counters are seed-deterministic
    assert a.notes["server"]["origins"] == b.notes["server"]["origins"]
