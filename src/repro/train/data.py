"""Synthetic language-modeling data.

Stands in for WikiText (paper Sec. 7): token streams with a Zipfian
unigram distribution, which is the only property of the data that
matters to this reproduction -- it shapes gate-probability skew and
hence expert load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SyntheticCorpus:
    """Deterministic synthetic token stream.

    Attributes
    ----------
    vocab_size:
        Token id range.
    zipf_alpha:
        Exponent of the unigram distribution (1.0 ~ natural language).
    seed:
        RNG seed; the same corpus always yields the same batches.
    """

    vocab_size: int
    zipf_alpha: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        ranks = np.arange(1, self.vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_alpha)
        self._probs = weights / weights.sum()

    def tokens(self, n: int, stream: int = 0) -> np.ndarray:
        """``n`` token ids from the given stream."""
        rng = np.random.default_rng((self.seed, stream))
        return rng.choice(self.vocab_size, size=n, p=self._probs).astype(np.int64)

    def batch(
        self, batch: int, seq: int, step: int = 0, device: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """(input_ids, labels) for one device at one step.

        Labels are the next-token shift of the inputs, as in standard
        causal language modeling.
        """
        flat = self.tokens(batch * seq + 1, stream=step * 1009 + device)
        ids = flat[:-1].reshape(batch, seq)
        labels = flat[1:].reshape(batch, seq)
        return ids, labels

    def device_batches(
        self, num_devices: int, batch: int, seq: int, step: int = 0
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-device (input, label) shards for one data-parallel step."""
        return [
            self.batch(batch, seq, step=step, device=d)
            for d in range(num_devices)
        ]
