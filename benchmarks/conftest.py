"""Benchmark-suite helpers: run a figure once, record, and persist."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_figure(benchmark, runner, **kwargs):
    """Benchmark one figure runner (single round: these are experiment
    harnesses, not micro-benchmarks) and persist its table."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{result.figure}.txt"
    notes = "\n".join(
        f"  {k}: {v}" for k, v in result.notes.items() if k != "reductions"
    )
    out.write_text(f"{result.table}\n\nnotes:\n{notes}\n")
    print(f"\n{result.table}\nnotes:\n{notes}")
    return result


@pytest.fixture(autouse=True)
def _shared_measurement_cache():
    """Benchmarks share the harness measurement cache within a session
    (figures legitimately reuse grid points, as in the paper)."""
    yield
