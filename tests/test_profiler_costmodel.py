"""Tests for the caching op profiler and communication cost model."""

import pytest

from repro.core import CachingOpProfiler, CommCostModel, CostEstimator
from repro.ir import DType, TensorType
from repro.runtime import COMPILED, TUTEL


@pytest.fixture()
def profiler(a100_16):
    return CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED)


class TestCachingProfiler:
    def test_profiles_once_per_shape(self, profiler):
        t = [TensorType((64, 128), DType.F16), TensorType((128, 64), DType.F16)]
        profiler.op_time_ms("matmul", t)
        n = profiler.profile_count
        profiler.op_time_ms("matmul", t)
        assert profiler.profile_count == n

    def test_distinct_shapes_profiled_separately(self, profiler):
        a = [TensorType((64, 128), DType.F16), TensorType((128, 64), DType.F16)]
        b = [TensorType((32, 128), DType.F16), TensorType((128, 64), DType.F16)]
        profiler.op_time_ms("matmul", a)
        n = profiler.profile_count
        profiler.op_time_ms("matmul", b)
        assert profiler.profile_count == n + 1
        assert profiler.cache_size() >= 2

    def test_attrs_in_cache_key(self, profiler):
        t = [TensorType((2, 16, 32), DType.F16)] * 3
        profiler.op_time_ms("attention", t, {"num_heads": 2})
        n = profiler.profile_count
        profiler.op_time_ms("attention", t, {"num_heads": 4})
        assert profiler.profile_count == n + 1

    def test_bigger_op_costs_more(self, profiler):
        small = [TensorType((64, 64), DType.F16), TensorType((64, 64), DType.F16)]
        big = [TensorType((512, 512), DType.F16), TensorType((512, 512), DType.F16)]
        assert profiler.op_time_ms("matmul", big) > profiler.op_time_ms(
            "matmul", small
        )

    def test_framework_overheads_applied(self, a100_16):
        compiled = CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED)
        eager = CachingOpProfiler(gpu=a100_16.gpu, framework=TUTEL)
        t = [TensorType((256, 256), DType.F16), TensorType((256, 256), DType.F16)]
        assert eager.op_time_ms("matmul", t) > compiled.op_time_ms("matmul", t)

    def test_partitioned_op_relatively_slower(self, profiler):
        """k chunks of a matmul cost more in total than the whole matmul
        (efficiency loss + extra launches) -- paper Challenge 2."""
        whole = [
            TensorType((4096, 768), DType.F16),
            TensorType((768, 768), DType.F16),
        ]
        quarter = [
            TensorType((1024, 768), DType.F16),
            TensorType((768, 768), DType.F16),
        ]
        t_whole = profiler.op_time_ms("matmul", whole)
        t_quarter = profiler.op_time_ms("matmul", quarter)
        assert 4 * t_quarter > t_whole


class TestCommCostModel:
    @pytest.fixture()
    def comm(self, a100_16):
        return CommCostModel(a100_16)

    def test_monotone_in_size(self, comm):
        assert comm.a2a_ms(2**24) > comm.a2a_ms(2**20)
        assert comm.allreduce_ms(2**24) > comm.allreduce_ms(2**20)

    def test_interpolation_matches_model_at_sample_points(self, comm, a100_16):
        for nbytes in (2**12, 2**20, 2**26):
            assert comm.a2a_ms(nbytes) == pytest.approx(
                a100_16.a2a_time_ms(nbytes), rel=1e-9
            )

    def test_interpolation_between_points(self, comm, a100_16):
        nbytes = 3 * 2**19  # halfway between 2^19 and 2^20
        exact = a100_16.a2a_time_ms(nbytes)
        assert comm.a2a_ms(nbytes) == pytest.approx(exact, rel=0.05)

    def test_static_shape_approximation(self, comm):
        """Partitioned cost = uniform cost at capacity C/n (paper Sec. 3)."""
        full = 2**24
        assert comm.a2a_partitioned_ms(full, 4) == pytest.approx(
            comm.a2a_ms(full / 4)
        )
        with pytest.raises(ValueError):
            comm.a2a_partitioned_ms(full, 0)

    def test_sub_min_bytes_clamps_to_latency_floor(self, comm, a100_16):
        """Buffers below the smallest profiled size cost the latency
        floor -- never less, and never a negative extrapolation."""
        floor = comm.a2a_ms(comm.min_bytes)
        for nbytes in (0.0, 1.0, 512.0, comm.min_bytes / 2):
            assert comm.a2a_ms(nbytes) == floor
            assert comm.allreduce_ms(nbytes) == comm.allreduce_ms(
                comm.min_bytes
            )
        assert floor > 0

    def test_beyond_max_bytes_extrapolates(self, comm, a100_16):
        """Buffers past the 2 GB anchor extrapolate at the last profiled
        bandwidth instead of clamping flat (8 GB must cost ~4x 2 GB)."""
        at_max = comm.a2a_ms(comm.max_bytes)
        beyond = comm.a2a_ms(4 * comm.max_bytes)
        assert beyond > at_max
        # the analytic network model is linear in bytes up there, so the
        # extrapolation should agree with it closely
        assert beyond == pytest.approx(
            a100_16.a2a_time_ms(4 * comm.max_bytes), rel=1e-6
        )
        assert comm.allreduce_ms(4 * comm.max_bytes) == pytest.approx(
            a100_16.allreduce_time_ms(4 * comm.max_bytes), rel=1e-6
        )

    def test_skewed_reduces_to_legacy_exactly(self, comm):
        """A balanced (or absent) signature must reproduce the legacy
        static-shape estimate bit-for-bit."""
        from repro.runtime import RoutingSignature

        full = 3 * 2**22
        for parts in (1, 2, 4):
            legacy = comm.a2a_partitioned_ms(full, parts)
            assert comm.a2a_skewed_ms(full, parts) == legacy
            assert (
                comm.a2a_skewed_ms(full, parts, RoutingSignature.uniform(16))
                == legacy
            )
        with pytest.raises(ValueError):
            comm.a2a_skewed_ms(full, 0)

    def test_skewed_prices_bottleneck_bytes(self, comm):
        """A skewed signature prices at mean_send_bytes * bottleneck."""
        from repro.runtime import RoutingSignature

        sig = RoutingSignature(
            load=(2.0,) + (14.0 / 15.0,) * 15, mean_send_bytes=2**22
        )
        expected = comm.a2a_ms(2**22 * 2.0)
        assert comm.a2a_skewed_ms(2**24, 1, sig) == expected
        assert comm.a2a_skewed_ms(2**24, 4, sig) == comm.a2a_ms(
            2**22 * 2.0 / 4
        )
        # without an absolute volume, fall back to the static size
        rel_only = RoutingSignature(load=sig.load)
        assert comm.a2a_skewed_ms(2**24, 1, rel_only) == comm.a2a_ms(
            2**24 * 2.0
        )


class TestCostEstimator:
    def test_prediction_tracks_ground_truth(self, a100_16):
        """Predicted iteration time within a tight band of the simulated
        ground truth for an unoptimized padded schedule."""
        from repro import GPT2MoEConfig, build_training_graph
        from repro.runtime import (
            SimulationConfig,
            UniformRoutingModel,
            simulate_program,
        )

        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=4), batch=8, seq=256, num_gpus=16
        )
        costs = CostEstimator(
            CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
            CommCostModel(a100_16),
        )
        predicted = costs.predict_iteration_ms(graph.program)
        actual = simulate_program(
            graph.program,
            config=SimulationConfig(
                cluster=a100_16, padded_a2a=True, routing=UniformRoutingModel()
            ),
        ).makespan
        # prediction assumes irregular fill for irregular-capable a2a, so
        # it slightly undershoots a padded execution
        assert 0.8 * actual < predicted <= actual * 1.05

    def test_irr_parts_scaling(self, a100_16, tiny_graph):
        """An irregular chunk is priced at ~1/k of the full op."""
        costs = CostEstimator(
            CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
            CommCostModel(a100_16),
        )
        p = tiny_graph.program
        expert = next(i for i in p.instructions if i.op == "expert_ffn")
        full = costs.duration_ms(expert, p)
        chunk = expert.with_(attrs={**expert.attrs, "irr_parts": 4})
        quarter = costs.duration_ms(chunk, p)
        assert quarter < full
