"""Parameter / input initialization for numeric execution of model graphs.

Produces per-device value dictionaries suitable for
:class:`repro.runtime.executor.NumericExecutor`: data-parallel parameters
are replicated across devices, expert parameters get independent draws
(expert parallelism), and each device receives its own input batch shard.
"""

from __future__ import annotations

import numpy as np

from ..ir import DType
from .gpt2_moe import ModelGraph


def _init_array(shape, name: str, rng: np.random.Generator) -> np.ndarray:
    """Scaled-normal init for weights, zeros for biases/norm offsets."""
    if not shape:
        return np.zeros(())
    lname = name.lower()
    if lname.endswith((".b", ".b1", ".b2", ".beta")) or "bias" in lname:
        return np.zeros(shape)
    if lname.endswith(".gamma"):
        return np.ones(shape)
    fan_in = shape[-2] if len(shape) >= 2 else shape[-1]
    return rng.standard_normal(shape) * (1.0 / np.sqrt(max(fan_in, 1)))


def init_param_values(
    graph: ModelGraph, seed: int = 0
) -> list[dict[int, np.ndarray]]:
    """Per-device parameter + optimizer-state values.

    Non-expert parameters are identical on every device (data
    parallelism); expert parameters differ per device.
    """
    p = graph.program
    g = graph.num_gpus
    shared_rng = np.random.default_rng(seed)
    device_rngs = [np.random.default_rng(seed + 1000 + d) for d in range(g)]
    envs: list[dict[int, np.ndarray]] = [{} for _ in range(g)]

    for pid in p.params:
        val = p.values[pid]
        if pid in graph.expert_params:
            for d in range(g):
                envs[d][pid] = _init_array(val.type.shape, val.name, device_rngs[d])
        else:
            arr = _init_array(val.type.shape, val.name, shared_rng)
            for d in range(g):
                envs[d][pid] = arr.copy()

    for sid in p.states:
        val = p.values[sid]
        for d in range(g):
            envs[d][sid] = np.zeros(val.type.shape)

    return envs


def make_batch(
    graph: ModelGraph, seed: int = 0
) -> list[dict[int, np.ndarray]]:
    """Per-device input batches (token ids and labels)."""
    p = graph.program
    rng = np.random.default_rng(seed + 99)
    out: list[dict[int, np.ndarray]] = [{} for _ in range(graph.num_gpus)]
    for vid in p.inputs:
        val = p.values[vid]
        for d in range(graph.num_gpus):
            if val.type.dtype in (DType.I32, DType.I64):
                arr = rng.integers(
                    0, graph.cfg.vocab_size, size=val.type.shape, dtype=np.int64
                )
            else:
                arr = rng.standard_normal(val.type.shape)
            out[d][vid] = arr
    return out


def init_device_values(
    graph: ModelGraph, seed: int = 0
) -> list[dict[int, np.ndarray]]:
    """Params + states + a batch, merged per device (executor-ready)."""
    params = init_param_values(graph, seed)
    batch = make_batch(graph, seed)
    return [{**params[d], **batch[d]} for d in range(graph.num_gpus)]
