"""Integration: every transformation composed at once, still bit-exact.

The optimizer applies many partition plans plus the dW reorder (plus,
optionally, the gradient-sync yield pass) to one program.  These tests
force *all* of it onto the tiny model — both MoE layers pipelined at
different widths, dW rescheduling, all-reduce yielding — and assert the
numerics never move.
"""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro import GPT2MoEConfig, build_training_graph, validate
from repro.core import (
    CachingOpProfiler,
    CommCostModel,
    CostEstimator,
    GradSyncDeferPass,
    WeightGradSchedulePass,
)
from repro.core.partition import RangePlan, apply_plans, infer_axes
from repro.models.init import init_device_values
from repro.runtime import COMPILED, ClusterSpec, run_program
from repro.train import Trainer


@pytest.fixture(scope="module")
def graph():
    # four blocks -> two MoE layers (1 and 3), so multiple plans coexist
    return build_training_graph(
        GPT2MoEConfig.tiny(num_layers=4), batch=8, seq=8, num_gpus=2
    )


@pytest.fixture(scope="module")
def costs():
    cluster = ClusterSpec.for_gpus("a100", 2)
    return CostEstimator(
        CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
        CommCostModel(cluster),
    )


def plans_for_all_moe_layers(graph, parts_list):
    """A forced plan per MoE layer, with the given partition widths."""
    p = graph.program
    pos = p.instr_index()
    plans = []
    for ml, parts in zip(graph.moe_layers, parts_list):
        start = pos[ml.gate_matmul_uid] - 1
        end = pos[ml.combine_uid] + 2
        instrs = p.instructions[start:end]
        axes = infer_axes(instrs, p)
        assert axes is not None
        plans.append(
            RangePlan(start=start, end=end, parts=parts, axes=axes,
                      predicted_ms=0.0, sequential_ms=0.0)
        )
    return plans


def fully_transformed(graph, costs, parts_list=(4, 2), defer=True):
    program = graph.program.clone()
    apply_plans(program, plans_for_all_moe_layers(graph, parts_list))
    program = WeightGradSchedulePass(costs).run(program)
    if defer:
        program = GradSyncDeferPass().run(program)
    validate(program)
    return program


class TestFullComposition:
    def test_both_moe_layers_partitioned(self, graph, costs):
        program = fully_transformed(graph, costs, defer=False)
        counts = program.count_ops()
        # both gates became capacity-passing partials: 4 + 2 chunks
        assert counts.get("routing_partial", 0) == 6
        assert counts.get("routing", 0) == 0
        assert counts.get("capacity_init", 0) == 2

    def test_bit_exact_loss_and_grads(self, graph, costs):
        program = fully_transformed(graph, costs)
        vals = init_device_values(graph, seed=3)
        base = run_program(graph.program, fresh_values(vals))
        out = run_program(program, fresh_values(vals))
        for d in range(2):
            assert np.array_equal(base[d][graph.loss], out[d][graph.loss])
        for pid, gid in graph.program.grads.items():
            assert np.allclose(
                base[0][gid], out[0][program.grads[pid]], rtol=0, atol=0
            ), graph.program.values[pid].name

    def test_multi_step_training_identical(self, graph, costs):
        program = fully_transformed(graph, costs)
        base = Trainer(graph, seed=11)
        opt = Trainer(graph, program=program, seed=11)
        for _ in range(4):
            rb, ro = base.step(), opt.step()
            assert rb.losses == ro.losses

    def test_mixed_partition_widths(self, graph, costs):
        """Different k per MoE layer (what the DP actually produces)."""
        for parts_list in [(2, 4), (8, 2), (3, 5)]:
            program = graph.program.clone()
            apply_plans(program, plans_for_all_moe_layers(graph, parts_list))
            validate(program)
            vals = init_device_values(graph, seed=0)
            base = run_program(graph.program, fresh_values(vals))
            out = run_program(program, fresh_values(vals))
            assert np.array_equal(base[0][graph.loss], out[0][graph.loss]), (
                parts_list
            )

    def test_composition_with_bpr_gate(self, costs):
        """BPR: post-gate plans on both layers + dW + defer, bit-exact."""
        graph = build_training_graph(
            GPT2MoEConfig.tiny(num_layers=4, gate="bpr"), batch=8, seq=8,
            num_gpus=2,
        )
        p = graph.program
        pos = p.instr_index()
        plans = []
        for ml, parts in zip(graph.moe_layers, (4, 2)):
            start = pos[ml.dispatch_uid]
            end = pos[ml.combine_uid] + 2
            instrs = p.instructions[start:end]
            axes = infer_axes(instrs, p)
            assert axes is not None
            plans.append(
                RangePlan(start=start, end=end, parts=parts, axes=axes,
                          predicted_ms=0.0, sequential_ms=0.0)
            )
        program = p.clone()
        apply_plans(program, plans)
        program = WeightGradSchedulePass(costs).run(program)
        program = GradSyncDeferPass().run(program)
        validate(program)
        vals = init_device_values(graph, seed=0)
        base = run_program(p, fresh_values(vals))
        out = run_program(program, fresh_values(vals))
        assert np.array_equal(base[0][graph.loss], out[0][graph.loss])

    def test_shared_expert_full_composition(self, costs):
        graph = build_training_graph(
            GPT2MoEConfig.tiny(num_layers=4, shared_expert=True),
            batch=8, seq=8, num_gpus=2,
        )
        program = fully_transformed(graph, costs, parts_list=(2, 2))
        vals = init_device_values(graph, seed=0)
        base = run_program(graph.program, fresh_values(vals))
        out = run_program(program, fresh_values(vals))
        assert np.array_equal(base[0][graph.loss], out[0][graph.loss])
