"""Naive pure-Python event-replay reference for the staged simulator.

An independently-written oracle for differential testing: instead of the
scan scheduler's per-stage sweeps, this replays the pipeline one event at
a time -- among all stages' ready head jobs, always dispatch the one with
the earliest candidate start time (ties broken by stage index), exactly
as a global event queue would.

Both implementations must agree *bit for bit*: each stage executes its
jobs in the same fixed order, and every start/end time is built from the
same float64 ``max``/add expressions over the same operands, so any
divergence is a real scheduling bug, not float noise.
"""

from __future__ import annotations

from .schedule import Job
from .simulate import StageCosts, _dep_time


def replay_reference(
    costs: StageCosts, orders: list[list[Job]]
) -> dict[tuple[str, int, int], tuple[float, float]]:
    """Event-replay oracle; returns ``job.key -> (start, end)``.

    Raises ``RuntimeError`` on deadlock (no ready head job while work
    remains), like the scan scheduler.
    """
    num = costs.num_stages
    if len(orders) != num:
        raise ValueError(f"{len(orders)} job orders for {num} stages")
    done: dict[tuple[str, int, int], float] = {}
    times: dict[tuple[str, int, int], tuple[float, float]] = {}
    free = [0.0] * num
    heads = [0] * num
    remaining = sum(len(o) for o in orders)

    while remaining:
        best = None  # (candidate_start, stage, job)
        for s in range(num):
            if heads[s] >= len(orders[s]):
                continue
            job = orders[s][heads[s]]
            dep = _dep_time(job, done, costs)
            if dep is None:
                continue
            candidate = max(free[s], dep)
            if best is None or candidate < best[0]:
                best = (candidate, s, job)
        if best is None:
            stuck = [
                orders[s][heads[s]]
                for s in range(num)
                if heads[s] < len(orders[s])
            ]
            raise RuntimeError(
                f"pipeline replay deadlocked; blocked heads: {stuck}"
            )
        start, s, job = best
        dur = (
            costs.forward_ms[s] if job.kind == "F" else costs.backward_ms[s]
        )
        end = start + dur
        times[job.key] = (start, end)
        done[job.key] = end
        free[s] = end
        heads[s] += 1
        remaining -= 1

    return times
