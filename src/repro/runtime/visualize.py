"""ASCII rendering of execution timelines.

Turns a :class:`~repro.runtime.timeline.Timeline` into a two-lane text
chart (computation stream / communication stream) so overlap structure is
visible at a glance in a terminal:

    comp |EEEE####.....##EEEE######          |
    comm |    AAAAAAAAAA      AAAAARRR       |

Legend: ``A`` all-to-all, ``R`` all-reduce, ``E`` expert computation,
``d`` dW computation, ``#`` other computation, space = idle.
"""

from __future__ import annotations

from ..ir import Stream
from .timeline import ClusterTimeline, Timeline

#: op name -> glyph (checked in order; first match wins)
_GLYPHS: list[tuple[tuple[str, ...], str]] = [
    (("all_to_all",), "A"),
    (("allreduce",), "R"),
    (("expert_ffn", "expert_ffn_dx", "expert_ffn_dw"), "E"),
    (("matmul_dw", "bias_grad", "layernorm_dw", "embedding_dw",
      "pos_embedding_dw"), "d"),
    (("split_chunk", "concat", "accumulate", "route_concat", "route_slice"), "s"),
]


def _glyph(op: str) -> str:
    for ops, g in _GLYPHS:
        if op in ops:
            return g
    return "#"


_LEGEND = (
    "legend: A=all-to-all R=all-reduce E=experts d=dW s=split/concat #=other"
)


def _lanes(timeline: Timeline, width: int, t0: float, t1: float) -> dict:
    """Character lanes (one per stream) for a [t0, t1) window.

    Each column covers ``(t1 - t0) / width`` milliseconds and shows the
    glyph of the op occupying most of that column on each stream.
    """
    col_ms = (t1 - t0) / width
    lanes = {Stream.COMPUTE: [" "] * width, Stream.COMM: [" "] * width}
    occupancy = {
        Stream.COMPUTE: [0.0] * width,
        Stream.COMM: [0.0] * width,
    }
    for iv in timeline.intervals:
        lane = lanes[iv.stream]
        occ = occupancy[iv.stream]
        lo = max(int((iv.start - t0) / col_ms), 0)
        hi = min(int((iv.end - t0) / col_ms) + 1, width)
        for c in range(lo, hi):
            cs = t0 + c * col_ms
            ce = cs + col_ms
            covered = max(0.0, min(iv.end, ce) - max(iv.start, cs))
            if covered > occ[c]:
                occ[c] = covered
                lane[c] = _glyph(iv.op)
    return lanes


def render_timeline(
    timeline: Timeline,
    width: int = 100,
    start_ms: float | None = None,
    end_ms: float | None = None,
) -> str:
    """Render the two streams as fixed-width character lanes."""
    if not timeline.intervals:
        return "(empty timeline)"
    t0 = 0.0 if start_ms is None else start_ms
    t1 = timeline.makespan if end_ms is None else end_ms
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    lanes = _lanes(timeline, width, t0, t1)
    header = f"{t0:.1f} ms {'-' * max(width - 18, 1)} {t1:.1f} ms"
    return "\n".join(
        [
            header,
            "comp |" + "".join(lanes[Stream.COMPUTE]) + "|",
            "comm |" + "".join(lanes[Stream.COMM]) + "|",
            _LEGEND,
        ]
    )


def render_cluster_timeline(
    cluster_timeline: ClusterTimeline,
    width: int = 100,
    start_ms: float | None = None,
    end_ms: float | None = None,
    devices: list[int] | None = None,
) -> str:
    """Render several per-device timelines on one shared time axis.

    One comp/comm lane pair per device, so load imbalance is visible as
    devices whose all-to-all (``A``) columns extend further right.
    ``devices`` selects a subset (default: all).
    """
    if not cluster_timeline.devices:
        return "(empty cluster timeline)"
    picks = (
        list(range(cluster_timeline.num_devices))
        if devices is None
        else list(devices)
    )
    t0 = 0.0 if start_ms is None else start_ms
    t1 = cluster_timeline.makespan if end_ms is None else end_ms
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1})")
    label_w = max((len(f"d{d}") for d in picks), default=0)
    # indent the ruler by the lane prefix ("<label> comp |") so its
    # start/end marks line up with the lane columns
    pad = " " * (label_w + len(" comp |"))
    lines = [f"{pad}{t0:.1f} ms {'-' * max(width - 18, 1)} {t1:.1f} ms"]
    for d in picks:
        lanes = _lanes(cluster_timeline.device(d), width, t0, t1)
        tag = f"d{d}".rjust(label_w)
        lines.append(
            f"{tag} comp |" + "".join(lanes[Stream.COMPUTE]) + "|"
        )
        lines.append(
            f"{' ' * label_w} comm |" + "".join(lanes[Stream.COMM]) + "|"
        )
    lines.append(_LEGEND)
    return "\n".join(lines)


def imbalance_summary(cluster_timeline: ClusterTimeline) -> str:
    """One-line summary of per-device all-to-all load imbalance."""
    per = cluster_timeline.per_device_time_of({"all_to_all"})
    if not per:
        return "(no devices)"
    lo, hi = min(per), max(per)
    crit = cluster_timeline.critical_device
    return (
        f"makespan {cluster_timeline.makespan:.1f} ms | "
        f"a2a busy/device min {lo:.1f} / max {hi:.1f} ms "
        f"(spread {hi - lo:.1f}) | critical device d{crit}"
    )


def overlap_summary(timeline: Timeline) -> str:
    """One-line textual summary of the overlap structure."""
    bd = timeline.breakdown()
    total = max(bd.makespan, 1e-9)
    return (
        f"makespan {bd.makespan:.1f} ms | "
        f"comm-only {bd.comm_only:.1f} ({100 * bd.comm_only / total:.0f}%) | "
        f"overlap {bd.overlapped:.1f} ({100 * bd.overlapped / total:.0f}%) | "
        f"comp-only {bd.comp_only:.1f} ({100 * bd.comp_only / total:.0f}%)"
    )
