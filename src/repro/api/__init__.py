"""repro.api: the compile()/Plan facade over the Lancet machinery.

The optimized *schedule* is the product; this package makes it a
first-class, shippable artifact:

- :class:`Scenario` -- declarative workload spec with named presets for
  every benchmark workload (``Scenario.preset("gpt2-s-moe/a100x16")``).
- :func:`compile` -- one front door: scenario (or graph) in, plan out.
- :class:`Plan` -- the optimized program plus everything needed to
  execute, audit, and re-verify it; ``save``/``load`` round-trip through
  a versioned JSON schema with bit-identical program reconstruction.
- :class:`PlanStore` -- disk-backed cross-process cache keyed by
  (graph fingerprint, cluster spec, policy, signature bucket): plan
  once, reuse everywhere.

Typical usage::

    from repro.api import PlanStore, Scenario, compile

    store = PlanStore("~/.cache/lancet-plans")
    plan = compile(Scenario.preset("gpt2-s-moe/a100x16"), store=store)
    plan.save("plan.json")          # or let the store keep it
    timeline = plan.simulate()      # ground-truth one-iteration replay

The pre-facade surface (:class:`~repro.core.LancetOptimizer`,
:class:`~repro.train.Trainer`, :func:`~repro.runtime.simulate_program`)
remains fully supported; the facade composes it rather than replacing it.
"""

from .compiler import compile, load_plan
from .fingerprint import canonical_digest, graph_fingerprint
from .plan import (
    PLAN_SCHEMA,
    PLAN_SCHEMA_VERSION,
    Plan,
    PlanError,
    PlanPolicy,
    PlanSchemaError,
)
from .scenario import Scenario, available_presets
from .store import PlanStore, bucket_distance, signature_bucket

__all__ = [
    "PLAN_SCHEMA",
    "PLAN_SCHEMA_VERSION",
    "Plan",
    "PlanError",
    "PlanPolicy",
    "PlanSchemaError",
    "PlanStore",
    "Scenario",
    "available_presets",
    "bucket_distance",
    "canonical_digest",
    "compile",
    "graph_fingerprint",
    "load_plan",
    "signature_bucket",
]
