"""Top-level GPT-2 MoE graph builders.

Produces the full training-iteration IR (forward + backward + gradient
sync + SGD) that Lancet's passes consume -- the benchmark workload of the
paper (Sec. 7: HuggingFace GPT-2 with every other FFN replaced by an MoE
layer, SGD with momentum).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import (
    Dim,
    DType,
    Program,
    TensorType,
    build_backward,
    insert_gradient_sync,
    insert_sgd,
    validate,
)
from .config import GPT2MoEConfig
from .transformer import BuildContext, MoELayerInfo, add_layernorm, add_transformer_block


@dataclass
class ModelGraph:
    """A built model: the IR program plus structural metadata."""

    program: Program
    cfg: GPT2MoEConfig
    batch: int
    seq: int
    num_gpus: int
    loss: int
    moe_layers: list[MoELayerInfo] = field(default_factory=list)
    expert_params: set[int] = field(default_factory=set)
    #: number of instructions in the forward pass (prefix of the program)
    forward_len: int = 0


def build_forward(
    cfg: GPT2MoEConfig,
    batch: int,
    seq: int,
    num_gpus: int,
    dtype: DType = DType.F16,
) -> ModelGraph:
    """Build the forward pass: embeddings, blocks, LM head, loss."""
    if seq > cfg.max_seq:
        raise ValueError(f"seq {seq} exceeds max_seq {cfg.max_seq}")
    p = Program(f"{cfg.name}-b{batch}-s{seq}-g{num_gpus}")
    ctx = BuildContext(p, cfg, batch, seq, num_gpus, dtype)

    ids = p.add_input(
        TensorType((batch, seq), DType.I32, (Dim.BATCH, Dim.SEQ)), "input_ids"
    )
    labels = p.add_input(
        TensorType((batch, seq), DType.I32, (Dim.BATCH, Dim.SEQ)), "labels"
    )

    def stamp(start: int, layer: int) -> None:
        # annotate block membership so the pipeline stage-partitioner can
        # assign instructions to stages (attrs dicts are mutable on the
        # otherwise-frozen Instruction)
        for instr in p.instructions[start:]:
            instr.attrs.setdefault("layer", layer)

    wte = ctx.param((cfg.vocab_size, cfg.hidden), (Dim.VOCAB, Dim.HIDDEN), "wte")
    wpe = ctx.param((seq, cfg.hidden), (Dim.SEQ, Dim.HIDDEN), "wpe")
    (x,) = p.add("embedding", [wte, ids.id], out_names=["tok_emb"])
    (x,) = p.add("pos_embedding", [x.id, wpe], out_names=["emb"])
    stamp(0, 0)  # embeddings ride with the first block's stage
    xid = x.id

    for layer in range(cfg.num_layers):
        block_start = len(p.instructions)
        xid = add_transformer_block(ctx, xid, layer)
        stamp(block_start, layer)

    head_start = len(p.instructions)
    xid = add_layernorm(ctx, xid, "ln_f")
    w_lm = ctx.param((cfg.hidden, cfg.vocab_size), (Dim.HIDDEN, Dim.VOCAB), "lm_head.w")
    (logits,) = p.add("matmul", [xid, w_lm], out_names=["logits"])
    (loss,) = p.add("cross_entropy", [logits.id, labels.id], out_names=["loss"])
    stamp(head_start, cfg.num_layers - 1)  # head rides with the last block
    p.outputs.append(loss.id)

    return ModelGraph(
        program=p,
        cfg=cfg,
        batch=batch,
        seq=seq,
        num_gpus=num_gpus,
        loss=loss.id,
        moe_layers=ctx.moe_layers,
        expert_params=ctx.expert_params,
        forward_len=len(p.instructions),
    )


def build_training_graph(
    cfg: GPT2MoEConfig,
    batch: int,
    seq: int,
    num_gpus: int,
    lr: float = 0.01,
    momentum: float = 0.9,
    gradient_sync: bool = True,
    dtype: DType = DType.F16,
    check: bool = True,
) -> ModelGraph:
    """Build the full training-iteration IR for one step.

    Parameters
    ----------
    gradient_sync:
        Insert all-reduce for data-parallel (non-expert) gradients.
    check:
        Run the IR validator on the result.
    """
    graph = build_forward(cfg, batch, seq, num_gpus, dtype)
    p = graph.program
    build_backward(p, graph.loss)
    if gradient_sync and num_gpus > 1:
        insert_gradient_sync(p, graph.expert_params)
    insert_sgd(p, lr=lr, momentum=momentum)
    if check:
        validate(p)
    return graph
