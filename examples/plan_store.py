#!/usr/bin/env python
"""Plan artifacts: compile once, save, and reuse everywhere.

Demonstrates the ``repro.api`` plan lifecycle:

1. compile a scenario into a ``Plan`` through a disk ``PlanStore``,
2. show that a second compile -- as a new process would -- gets the plan
   back from the store without running the planner at all,
3. save/load the artifact and verify the reconstruction is
   bit-identical (same simulated timeline),
4. hand the plan to a ``Trainer`` and train with it directly.

Run:  python examples/plan_store.py
"""

import tempfile
import time
from pathlib import Path

from repro import PlanStore, Scenario, Trainer, compile, load_plan


def main() -> None:
    scenario = Scenario.preset("tiny/a100x8")
    with tempfile.TemporaryDirectory() as tmp:
        store = PlanStore(Path(tmp) / "plans")

        # 1. cold compile: runs both Lancet passes, publishes to the store
        t0 = time.perf_counter()
        plan = compile(scenario, store=store)
        cold = time.perf_counter() - t0
        print(plan.summary())
        print(f"\ncold compile: {cold * 1e3:.1f} ms "
              f"({plan.planner['num_cost_evals']} DP cost evaluations)")

        # 2. warm lookup: a fresh PlanStore object stands in for a new
        #    process; the plan comes back from disk, planner untouched
        t0 = time.perf_counter()
        warm_plan = compile(scenario, store=PlanStore(store.root))
        warm = time.perf_counter() - t0
        print(f"warm lookup:  {warm * 1e3:.1f} ms "
              f"(from_store={warm_plan.from_store}, "
              f"{cold / warm:.0f}x faster, 0 cost evaluations)")

        # 3. artifact round-trip: save, reload, and verify bit-identity
        path = Path(tmp) / "tiny.plan.json"
        plan.save(path)
        reloaded = load_plan(path)
        a = plan.simulate().makespan
        b = reloaded.simulate().makespan
        print(f"\nartifact round-trip: {path.stat().st_size // 1024} KB, "
              f"simulated {a:.4f} ms vs {b:.4f} ms "
              f"(bit-identical: {a == b})")

        # 4. train with the plan: Trainer accepts the artifact directly
        trainer = Trainer(scenario.build_graph(), program=reloaded)
        losses = [trainer.step().mean_loss for _ in range(3)]
        print(f"\ntrained 3 steps with the reloaded plan, "
              f"losses {['%.3f' % v for v in losses]}")


if __name__ == "__main__":
    main()
