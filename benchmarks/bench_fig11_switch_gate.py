"""Fig. 11: iteration time vs cluster size with the Switch gate.

Full paper grid: {GPT2-S-MoE, GPT2-L-MoE} x {V100, A100} x {16, 32, 64}
GPUs x {DeepSpeed, RAF, Tutel, Lancet}.  Lancet must win every setting;
the paper reports up to 1.3x over the best baseline.
"""

from conftest import run_figure
from repro.bench.figures import fig11


def test_fig11_switch_gate(benchmark):
    result = run_figure(benchmark, fig11.run, gate="switch")
    # Lancet is fastest in every group
    for row in result.rows:
        if row["framework"] == "lancet":
            assert row["speedup_vs_best_baseline"] > 1.0
    assert 1.1 < result.notes["max_speedup"] < 1.6
    assert result.notes["avg_speedup"] > 1.1
    # weak scaling: iteration time grows with the GPU count
    lancet = [r for r in result.rows if r["framework"] == "lancet"]
    for a, b in zip(lancet, lancet[1:]):
        same_series = (a["model"], a["cluster"]) == (b["model"], b["cluster"])
        if same_series and a["gpus"] < b["gpus"]:
            assert b["iteration_ms"] > a["iteration_ms"]
