"""Load-imbalance scenario family (extension; not a paper figure).

Exercises the per-device simulator: skewed expert popularity, per-layer
hot experts and a straggler GPU, for a padded baseline (RAF) vs Lancet's
irregular all-to-all.  Padded communication is skew-insensitive but
always pays the full-buffer price; Lancet is cheaper everywhere while
its completion tracks the hottest device.
"""

from conftest import run_figure
from repro.bench.figures import imbalance


def test_imbalance_scenarios(benchmark):
    result = run_figure(benchmark, imbalance.run)
    by = {(r["framework"], r["scenario"]): r for r in result.rows}
    # padded RAF: hot routing does not change communication time
    assert by[("raf", "hot")]["iteration_ms"] == by[("raf", "uniform")][
        "iteration_ms"
    ]
    # lancet's irregular a2a responds to skew (mild = no capacity
    # clipping, so more imbalance means a slower collective) and spreads
    # the per-device busy times under hot experts, but stays ahead of RAF
    assert by[("lancet", "mild")]["iteration_ms"] > by[("lancet", "uniform")][
        "iteration_ms"
    ]
    assert by[("lancet", "hot")]["a2a_spread_ms"] > by[("lancet", "uniform")][
        "a2a_spread_ms"
    ]
    for scen in ("uniform", "mild", "hot", "straggler"):
        assert by[("lancet", scen)]["iteration_ms"] < by[("raf", scen)][
            "iteration_ms"
        ]
    # a straggler hurts both frameworks
    assert result.notes["max_slowdown"] > 1.0
