"""repro.serving: the production plan-serving layer.

Where :mod:`repro.api` makes one compiled schedule a shippable artifact,
this package makes *serving* those artifacts at fleet scale a first-class
operation (see the ROADMAP's "plan-serving at production scale" and the
per-traffic-pattern serving argument of MoNTA, arXiv 2411.00662):

- :class:`PlanServer` -- concurrent front end over one shared
  :class:`~repro.api.PlanStore`: request **coalescing** (identical
  concurrent compiles share one planner run), **nearest-signature
  serving** (the closest stored routing bucket answers immediately while
  the exact re-plan runs in the background and is hot-swapped in), an
  in-process memory cache, and full hit/miss/coalesce/hot-swap
  telemetry.
- :func:`compile_many` -- one-shot batch compile with coalescing.
- :class:`ServeResult` / :class:`HotSwapEvent` -- per-request and
  per-swap observability records.
- **Graceful degradation** (``docs/RELIABILITY.md``) -- per-request
  deadlines, planner timeouts with late-landing abandoned runs, bounded
  retry over transient store I/O errors, a :class:`CircuitBreaker` on
  the planner path, and a tiered fallback chain (exact -> nearest ->
  stale -> baseline) so every request is answered even while the
  planner or store is down.

Typical usage::

    from repro.api import PlanStore, Scenario
    from repro.serving import PlanServer

    store = PlanStore("plans/", max_entries=4096)
    with PlanServer(store) as server:
        plans = server.compile_many(
            [Scenario.preset("tiny/a100x8")] * 100)   # 1 planner run
        print(server.stats()["server"])

The CLI mirror is ``python -m repro serve`` (``stats`` / ``warm``); the
deployment-shaped guide is ``docs/SERVING.md``.
"""

from .server import (
    DEFAULT_MAX_DISTANCE,
    NEAREST_PREDICTED_GAP_BOUND,
    CircuitBreaker,
    HotSwapEvent,
    PlanServer,
    ServeResult,
    compile_many,
)

__all__ = [
    "DEFAULT_MAX_DISTANCE",
    "NEAREST_PREDICTED_GAP_BOUND",
    "CircuitBreaker",
    "HotSwapEvent",
    "PlanServer",
    "ServeResult",
    "compile_many",
]
